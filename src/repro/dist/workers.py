"""The worker-process runtime: a command server around one shard's state.

Each shard process owns exactly the state a single-process protected CG
owns — the (protected) matrix block, the protected ``x``/``r``/``p``
slices, the plain SpMV output ``w`` — but *no* control flow: the CG
recurrence lives in the coordinator, which drives the shard through the
lockstep command protocol below.  Protection is genuinely per-shard: a
shard with protection enabled runs its own
:class:`~repro.solvers.toolkit.ProtectedIteration` (own engine, own
check schedule, own recovery manager), so a bit flip in one shard's
block is detected, corrected or escalated entirely inside that shard.

Command protocol (one request dict in, one reply dict out, always):

========== =============================== ================================
command    request fields                  reply fields
========== =============================== ================================
xstart     ``x`` (local slice or None)     ``xb`` — x at boundary rows
residual   ``halo`` (x halo values)        ``rr`` partial, ``pb`` boundary
spmv       ``halo`` (p halo values)        ``pw`` partial
update     ``alpha``, ``it``               ``rr`` partial
pbound     ``beta``                        ``pb`` — p at boundary rows
checkpoint —                               ``x`` — the local x slice
snapshot   —                               ``x``, ``r``, ``p``, ``w``
seed       ``x``, ``r``, ``p``, ``w``      every round reply field
finish     —                               ``x``, ``info`` counter block
shutdown   —                               (no reply; the worker exits)
========== =============================== ================================

``snapshot``/``seed`` are the erasure-recovery sub-protocol: after a
shard death the coordinator snapshots every survivor's full solver
state, reconstructs the dead shard's slices algebraically, and seeds
the respawned worker with them.  The seed reply carries *all* round
reply fields (``xb``/``pb``/``rr``/``pw``/``x``/``info``) so the healed
round can stand in for whichever round the death interrupted.

A shard started with ``erasure: True`` in its payload holds a checksum
stripe instead of owned rows: its block (shape ``(stripe, n_halo)``)
owns no columns, so its SpMV consumes the halo alone, and its ``b`` is
the checksum of the data shards' slices.  Running the ordinary command
handlers on that state keeps the checksums consistent with the data
shards at every round boundary — the whole point of the encoded layout.

Every reply carries ``status``: ``"ok"``; ``"due"`` when a local DUE was
*recovered* by the shard's own policy (the coordinator must then restart
the global recurrence, since this shard's state may have rolled back);
or ``"error"`` with ``error``/``message`` fields when the command failed
terminally (unrecovered DUE, bug) — the coordinator re-raises those.

Halo values cross the pipe as plain floats: the wire is outside every
protection domain, exactly as the paper's ABFT protects memory-resident
structures, not interconnect traffic.
"""

from __future__ import annotations

import time

import numpy as np

from repro.recover.policy import RECOVERABLE_ERRORS
from repro.solvers.toolkit import ProtectedIteration

#: How long a hang-injected worker sleeps — far past any round timeout,
#: so the coordinator's liveness logic (not the sleep ending) decides.
_HANG_SECONDS = 600.0


class ShardState:
    """One shard's matrix block, vector slices and protection domain.

    Built from the pool's pickled payload (schema below); a respawned
    worker reconstructs this object from the same pristine payload,
    which re-encodes the block from source — the "recover by re-encoding"
    path of the shard-death story.

    Payload schema: ``index`` (shard number), ``matrix`` (the local
    :class:`~repro.csr.matrix.CSRMatrix` block, owned columns first),
    ``b`` (the local right-hand-side slice), ``boundary_idx`` (local rows
    to publish each exchange) and ``protection`` (a
    :class:`~repro.protect.config.ProtectionConfig` or ``None``).
    Optional: ``erasure`` (True for a checksum shard — the block then
    consumes the halo alone) and ``hang`` (fault injection: a command
    spec this worker stops replying at, exercising timeout-expiry death
    detection — e.g. ``{"cmd": "update", "it": 4}`` or
    ``{"cmd": "finish"}``).
    """

    def __init__(self, payload: dict):
        self.index = int(payload["index"])
        self.erasure = bool(payload.get("erasure"))
        self.hang = payload.get("hang")
        self.b = np.asarray(payload["b"], dtype=np.float64)
        self.boundary_idx = np.asarray(payload["boundary_idx"], dtype=np.int64)
        self.n_local = int(self.b.size)
        matrix = payload["matrix"]
        protection = payload.get("protection")
        if protection is not None and protection.enabled:
            self.ctx = ProtectedIteration(
                protection.wrap_matrix(matrix),
                engine=protection.engine(),
                vector_scheme=protection.vector_scheme,
            )
        else:
            self.ctx = None
            self.matrix = matrix
        zeros = np.zeros(self.n_local)
        self.x = self._wrap(zeros, "x")
        self.r = self._wrap(zeros, "r")
        self.p = self._wrap(zeros, "p")
        self.w = np.zeros(self.n_local)

    # -- protection-transparent vector plumbing -------------------------
    def _wrap(self, values, name):
        if self.ctx is not None:
            return self.ctx.wrap(values, name)
        return np.array(values, dtype=np.float64, copy=True)

    def _read(self, container) -> np.ndarray:
        return self.ctx.read(container) if self.ctx is not None else container

    def _write(self, container, values):
        # Returns the (possibly new) container — callers must rebind,
        # exactly like the solver bodies do: for unprotected vectors the
        # toolkit's write returns the fresh array instead of mutating.
        if self.ctx is not None:
            return self.ctx.write(container, values)
        container[:] = values
        return container

    def _spmv(self, x_ext: np.ndarray) -> np.ndarray:
        if self.ctx is not None:
            return self.ctx.spmv(x_ext)
        return self.matrix.matvec(x_ext)

    def _extend(self, local: np.ndarray, halo) -> np.ndarray:
        """The column space the local block consumes.

        ``[local, halo]`` for a data shard; an erasure shard's encoded
        block owns no columns, so its input is the halo alone.
        """
        halo = np.asarray(halo, dtype=np.float64)
        if self.erasure:
            return halo
        return np.concatenate([local, halo]) if halo.size else np.asarray(local)

    def _should_hang(self, msg: dict) -> bool:
        """True when the injected hang spec matches this command."""
        spec = self.hang
        if not spec or spec.get("cmd") != msg.get("cmd"):
            return False
        if "it" in spec and int(msg.get("it", -1)) != int(spec["it"]):
            return False
        return True

    # -- command handlers -----------------------------------------------
    def execute(self, msg: dict) -> dict:
        """Run one command; local recovered DUEs become ``status: "due"``."""
        if self._should_hang(msg):
            # The injected hang: stop replying without exiting, so only
            # the coordinator's round timeout can classify this shard.
            time.sleep(_HANG_SECONDS)
        try:
            return self._dispatch(msg)
        except RECOVERABLE_ERRORS as exc:
            if self.ctx is None:
                raise
            # Shard-local recovery: repairs the block / rolls the slices
            # back per this shard's own policy, or re-raises when the
            # policy says so.  The coordinator restarts the recurrence.
            self.ctx.recover(exc)
            return {"status": "due", "error": type(exc).__name__,
                    "message": str(exc)}

    def _dispatch(self, msg: dict) -> dict:
        cmd = msg["cmd"]
        if cmd == "xstart":
            if msg.get("x") is not None:
                self.x = self._write(
                    self.x, np.asarray(msg["x"], dtype=np.float64)
                )
            return {"xb": self._read(self.x)[self.boundary_idx].copy()}
        if cmd == "residual":
            x_ext = self._extend(self._read(self.x), msg["halo"])
            r_val = self.b - self._spmv(x_ext)
            self.r = self._write(self.r, r_val)
            self.p = self._write(self.p, r_val)
            return {
                "rr": float(np.dot(r_val, r_val)),
                "pb": r_val[self.boundary_idx].copy(),
            }
        if cmd == "spmv":
            if self.ctx is not None:
                self.ctx.begin_iteration()
            p_val = self._read(self.p)
            self.w = self._spmv(self._extend(p_val, msg["halo"]))
            return {"pw": float(np.dot(p_val, self.w))}
        if cmd == "update":
            alpha = float(msg["alpha"])
            self.x = self._write(
                self.x, self._read(self.x) + alpha * self._read(self.p)
            )
            r_val = self._read(self.r) - alpha * self.w
            self.r = self._write(self.r, r_val)
            if self.ctx is not None:
                self.ctx.maybe_checkpoint(int(msg["it"]))
            return {"rr": float(np.dot(r_val, r_val))}
        if cmd == "pbound":
            beta = float(msg["beta"])
            p_val = self._read(self.r) + beta * self._read(self.p)
            self.p = self._write(self.p, p_val)
            return {"pb": p_val[self.boundary_idx].copy()}
        if cmd == "checkpoint":
            return {"x": self._value(self.x)}
        if cmd == "snapshot":
            return {
                "x": self._value(self.x),
                "r": self._value(self.r),
                "p": self._value(self.p),
                "w": np.array(self.w, dtype=np.float64, copy=True),
            }
        if cmd == "seed":
            self.x = self._write(self.x, np.asarray(msg["x"], dtype=np.float64))
            self.r = self._write(self.r, np.asarray(msg["r"], dtype=np.float64))
            self.p = self._write(self.p, np.asarray(msg["p"], dtype=np.float64))
            self.w = np.array(msg["w"], dtype=np.float64, copy=True)
            x_val = self._read(self.x)
            r_val = self._read(self.r)
            p_val = self._read(self.p)
            # The superset of every round's reply fields: the healed
            # round hands these out as if the interrupted round finished.
            return {
                "xb": x_val[self.boundary_idx].copy(),
                "pb": p_val[self.boundary_idx].copy(),
                "rr": float(np.dot(r_val, r_val)),
                "pw": float(np.dot(p_val, self.w)),
                "x": self._value(self.x),
                "info": self.ctx.info() if self.ctx is not None else {},
            }
        if cmd == "finish":
            x_final = self._value(self.x)
            info = {}
            if self.ctx is not None:
                self.ctx.finish()  # the mandatory end-of-step sweep
                info = self.ctx.info()
            return {"x": x_final, "info": info}
        raise ValueError(f"unknown shard command {cmd!r}")

    def _value(self, container) -> np.ndarray:
        values = (
            self.ctx.value_of(container) if self.ctx is not None else container
        )
        return np.array(values, dtype=np.float64, copy=True)


def shard_worker_main(conn, payload: dict) -> None:
    """The worker-process entry point: serve commands until shutdown.

    Runs in a spawn-context child (resolved by name through the sweep
    executor's runner machinery, so it must stay at module scope).
    Construction failures and terminal command errors are reported as
    ``status: "error"`` replies rather than tracebacks on stderr — the
    coordinator owns surfacing them.
    """
    try:
        state = ShardState(payload)
    except Exception as exc:  # noqa: BLE001 - reported to the coordinator
        try:
            conn.send({"status": "error", "error": type(exc).__name__,
                       "message": f"shard start-up failed: {exc}"})
        finally:
            conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg.get("cmd") == "shutdown":
            break
        try:
            reply = state.execute(msg)
            reply.setdefault("status", "ok")
        except Exception as exc:  # noqa: BLE001 - reported to the coordinator
            reply = {"status": "error", "error": type(exc).__name__,
                     "message": str(exc)}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
