"""The worker-process runtime: a command server around one shard's state.

Each shard process owns exactly the state a single-process protected CG
owns — the (protected) matrix block, the protected ``x``/``r``/``p``
slices, the plain SpMV output ``w`` — but *no* control flow: the CG
recurrence lives in the coordinator, which drives the shard through the
lockstep command protocol below.  Protection is genuinely per-shard: a
shard with protection enabled runs its own
:class:`~repro.solvers.toolkit.ProtectedIteration` (own engine, own
check schedule, own recovery manager), so a bit flip in one shard's
block is detected, corrected or escalated entirely inside that shard.

Command protocol (one request dict in, one reply dict out, always):

========== =============================== ================================
command    request fields                  reply fields
========== =============================== ================================
xstart     ``x`` (local slice or None)     ``xb`` — x at boundary rows
residual   ``halo`` (x halo values)        ``rr`` partial, ``pb`` boundary
spmv       ``halo`` (p halo values)        ``pw`` partial
update     ``alpha``, ``it``               ``rr`` partial
pbound     ``beta``                        ``pb`` — p at boundary rows
checkpoint —                               ``x`` — the local x slice
finish     —                               ``x``, ``info`` counter block
shutdown   —                               (no reply; the worker exits)
========== =============================== ================================

Every reply carries ``status``: ``"ok"``; ``"due"`` when a local DUE was
*recovered* by the shard's own policy (the coordinator must then restart
the global recurrence, since this shard's state may have rolled back);
or ``"error"`` with ``error``/``message`` fields when the command failed
terminally (unrecovered DUE, bug) — the coordinator re-raises those.

Halo values cross the pipe as plain floats: the wire is outside every
protection domain, exactly as the paper's ABFT protects memory-resident
structures, not interconnect traffic.
"""

from __future__ import annotations

import numpy as np

from repro.recover.policy import RECOVERABLE_ERRORS
from repro.solvers.toolkit import ProtectedIteration


class ShardState:
    """One shard's matrix block, vector slices and protection domain.

    Built from the pool's pickled payload (schema below); a respawned
    worker reconstructs this object from the same pristine payload,
    which re-encodes the block from source — the "recover by re-encoding"
    path of the shard-death story.

    Payload schema: ``index`` (shard number), ``matrix`` (the local
    :class:`~repro.csr.matrix.CSRMatrix` block, owned columns first),
    ``b`` (the local right-hand-side slice), ``boundary_idx`` (local rows
    to publish each exchange) and ``protection`` (a
    :class:`~repro.protect.config.ProtectionConfig` or ``None``).
    """

    def __init__(self, payload: dict):
        self.index = int(payload["index"])
        self.b = np.asarray(payload["b"], dtype=np.float64)
        self.boundary_idx = np.asarray(payload["boundary_idx"], dtype=np.int64)
        self.n_local = int(self.b.size)
        matrix = payload["matrix"]
        protection = payload.get("protection")
        if protection is not None and protection.enabled:
            self.ctx = ProtectedIteration(
                protection.wrap_matrix(matrix),
                engine=protection.engine(),
                vector_scheme=protection.vector_scheme,
            )
        else:
            self.ctx = None
            self.matrix = matrix
        zeros = np.zeros(self.n_local)
        self.x = self._wrap(zeros, "x")
        self.r = self._wrap(zeros, "r")
        self.p = self._wrap(zeros, "p")
        self.w = np.zeros(self.n_local)

    # -- protection-transparent vector plumbing -------------------------
    def _wrap(self, values, name):
        if self.ctx is not None:
            return self.ctx.wrap(values, name)
        return np.array(values, dtype=np.float64, copy=True)

    def _read(self, container) -> np.ndarray:
        return self.ctx.read(container) if self.ctx is not None else container

    def _write(self, container, values):
        # Returns the (possibly new) container — callers must rebind,
        # exactly like the solver bodies do: for unprotected vectors the
        # toolkit's write returns the fresh array instead of mutating.
        if self.ctx is not None:
            return self.ctx.write(container, values)
        container[:] = values
        return container

    def _spmv(self, x_ext: np.ndarray) -> np.ndarray:
        if self.ctx is not None:
            return self.ctx.spmv(x_ext)
        return self.matrix.matvec(x_ext)

    def _extend(self, local: np.ndarray, halo) -> np.ndarray:
        """``[local, halo]`` — the column space the local block consumes."""
        halo = np.asarray(halo, dtype=np.float64)
        return np.concatenate([local, halo]) if halo.size else np.asarray(local)

    # -- command handlers -----------------------------------------------
    def execute(self, msg: dict) -> dict:
        """Run one command; local recovered DUEs become ``status: "due"``."""
        try:
            return self._dispatch(msg)
        except RECOVERABLE_ERRORS as exc:
            if self.ctx is None:
                raise
            # Shard-local recovery: repairs the block / rolls the slices
            # back per this shard's own policy, or re-raises when the
            # policy says so.  The coordinator restarts the recurrence.
            self.ctx.recover(exc)
            return {"status": "due", "error": type(exc).__name__,
                    "message": str(exc)}

    def _dispatch(self, msg: dict) -> dict:
        cmd = msg["cmd"]
        if cmd == "xstart":
            if msg.get("x") is not None:
                self.x = self._write(
                    self.x, np.asarray(msg["x"], dtype=np.float64)
                )
            return {"xb": self._read(self.x)[self.boundary_idx].copy()}
        if cmd == "residual":
            x_ext = self._extend(self._read(self.x), msg["halo"])
            r_val = self.b - self._spmv(x_ext)
            self.r = self._write(self.r, r_val)
            self.p = self._write(self.p, r_val)
            return {
                "rr": float(np.dot(r_val, r_val)),
                "pb": r_val[self.boundary_idx].copy(),
            }
        if cmd == "spmv":
            if self.ctx is not None:
                self.ctx.begin_iteration()
            p_val = self._read(self.p)
            self.w = self._spmv(self._extend(p_val, msg["halo"]))
            return {"pw": float(np.dot(p_val, self.w))}
        if cmd == "update":
            alpha = float(msg["alpha"])
            self.x = self._write(
                self.x, self._read(self.x) + alpha * self._read(self.p)
            )
            r_val = self._read(self.r) - alpha * self.w
            self.r = self._write(self.r, r_val)
            if self.ctx is not None:
                self.ctx.maybe_checkpoint(int(msg["it"]))
            return {"rr": float(np.dot(r_val, r_val))}
        if cmd == "pbound":
            beta = float(msg["beta"])
            p_val = self._read(self.r) + beta * self._read(self.p)
            self.p = self._write(self.p, p_val)
            return {"pb": p_val[self.boundary_idx].copy()}
        if cmd == "checkpoint":
            return {"x": self._value(self.x)}
        if cmd == "finish":
            x_final = self._value(self.x)
            info = {}
            if self.ctx is not None:
                self.ctx.finish()  # the mandatory end-of-step sweep
                info = self.ctx.info()
            return {"x": x_final, "info": info}
        raise ValueError(f"unknown shard command {cmd!r}")

    def _value(self, container) -> np.ndarray:
        values = (
            self.ctx.value_of(container) if self.ctx is not None else container
        )
        return np.array(values, dtype=np.float64, copy=True)


def shard_worker_main(conn, payload: dict) -> None:
    """The worker-process entry point: serve commands until shutdown.

    Runs in a spawn-context child (resolved by name through the sweep
    executor's runner machinery, so it must stay at module scope).
    Construction failures and terminal command errors are reported as
    ``status: "error"`` replies rather than tracebacks on stderr — the
    coordinator owns surfacing them.
    """
    try:
        state = ShardState(payload)
    except Exception as exc:  # noqa: BLE001 - reported to the coordinator
        try:
            conn.send({"status": "error", "error": type(exc).__name__,
                       "message": f"shard start-up failed: {exc}"})
        finally:
            conn.close()
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg.get("cmd") == "shutdown":
            break
        try:
            reply = state.execute(msg)
            reply.setdefault("status", "ok")
        except Exception as exc:  # noqa: BLE001 - reported to the coordinator
            reply = {"status": "error", "error": type(exc).__name__,
                     "message": str(exc)}
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    conn.close()
