"""``python -m repro.dist``: one sharded solve, verified against reference.

The smoke driver CI leans on: builds the campaign's randomised
five-point system, solves it distributed (optionally terminating a shard
mid-solve to exercise the recovery path), solves it again in-process,
and exits non-zero unless the sharded solution matches the reference —
so "kill a worker, still converge to the right answer" is a single shell
command.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def add_dist_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the distributed-solve flags (shared with ``repro dist``)."""
    parser.add_argument("--grid", type=int, default=16,
                        help="five-point grid side (n = grid**2 unknowns)")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker-process count")
    parser.add_argument("--scheme", default="secded64",
                        help="per-shard ECC scheme, or 'none' for "
                             "unprotected shards")
    parser.add_argument("--interval", type=int, default=4,
                        help="per-shard check interval (deferred engine)")
    parser.add_argument("--recovery", default="rollback",
                        choices=["raise", "repopulate", "rollback", "erasure"],
                        help="shard-death / DUE policy")
    parser.add_argument("--max-retries", type=int, default=3)
    parser.add_argument("--erasure-shards", type=int, default=1,
                        help="checksum shards kept by --recovery erasure")
    parser.add_argument("--kill-iter", type=int, default=None,
                        help="terminate a shard at this iteration "
                             "(omit for a fault-free run)")
    parser.add_argument("--kill-shard", type=int, default=None,
                        help="which shard to kill (default: the last one)")
    parser.add_argument("--round-timeout", type=float, default=None,
                        help="seconds before an unresponsive shard is "
                             "declared dead (default: the exchange "
                             "layer's 120 s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--eps", type=float, default=1e-20)
    parser.add_argument("--max-iters", type=int, default=10_000)
    parser.add_argument("--tol", type=float, default=1e-8,
                        help="max-abs mismatch vs the reference that "
                             "still counts as success")


def run(args) -> int:
    """Execute one verified distributed solve; 0 on match, 1 otherwise."""
    from repro.csr.build import five_point_operator
    from repro.dist.exchange import DEFAULT_ROUND_TIMEOUT
    from repro.dist.solve import distributed_solve
    from repro.protect.config import ProtectionConfig
    from repro.recover.policy import RecoveryPolicy
    from repro.solvers.registry import solve

    rng = np.random.default_rng(args.seed)
    shape = (args.grid, args.grid)
    matrix = five_point_operator(
        args.grid, args.grid,
        rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3,
    )
    b = rng.standard_normal(matrix.n_rows)

    protection = None
    if args.scheme != "none" or args.recovery != "raise":
        scheme = None if args.scheme == "none" else args.scheme
        protection = ProtectionConfig(
            element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=scheme,
            interval=0 if scheme is None else args.interval,
            correct=False,
            recovery=RecoveryPolicy(strategy=args.recovery,
                                    max_retries=args.max_retries,
                                    erasure_shards=args.erasure_shards),
        )
    kill_plan = None
    if args.kill_iter is not None:
        kill_shard = (args.kill_shard if args.kill_shard is not None
                      else args.shards - 1)
        kill_plan = [(args.kill_iter, kill_shard)]

    result = distributed_solve(
        matrix, b, n_shards=args.shards, protection=protection,
        eps=args.eps, max_iters=args.max_iters, kill_plan=kill_plan,
        round_timeout=(DEFAULT_ROUND_TIMEOUT if args.round_timeout is None
                       else args.round_timeout),
    )
    reference = solve(matrix, b, method="cg", eps=args.eps,
                      max_iters=args.max_iters)
    mismatch = float(np.max(np.abs(result.x - reference.x)))
    stats = result.info["distributed"]
    extra = (f" + {stats['erasure_shards']} erasure"
             if stats["erasure_shards"] else "")
    print(f"distributed cg: {stats['n_shards']} shards{extra}, "
          f"{result.iterations} iters, converged={result.converged}, "
          f"residual {result.final_residual:.3e}")
    print(f"recovery: {stats['deaths']} death(s), {stats['respawns']} "
          f"respawn(s), {stats['restarts']} DUE restart(s), "
          f"{stats['checkpoints']} checkpoint(s), "
          f"{stats['reconstructions']} reconstruction(s), "
          f"policy {stats['recovery']}")
    print(f"max |x_dist - x_ref| = {mismatch:.3e} (tol {args.tol:.1e})")
    if not result.converged or mismatch > args.tol:
        print("FAIL: distributed solution does not match the reference")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    """Parse arguments and run the verified smoke solve."""
    parser = argparse.ArgumentParser(
        prog="repro.dist",
        description="Row-sharded protected CG with shard-death recovery",
    )
    add_dist_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
