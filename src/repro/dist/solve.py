"""The coordinator: distributed CG over shard workers, death included.

The recurrence is the textbook one from
:func:`repro.solvers.cg.protected_cg_run`, re-cut along the process
boundary: vector updates happen inside the shards, the coordinator owns
only the scalars (``alpha``/``beta``/``rr``) and the halo routing.  One
CG iteration is three lockstep rounds —

1. ``spmv``   — ship each shard its p-halo, get partial ``p·w`` back;
2. ``update`` — broadcast ``alpha``, get partial ``r·r`` back;
3. ``pbound`` — broadcast ``beta``, get fresh p-boundaries back —

with every global scalar reduced by summing the per-shard partials in
shard-index order, an *ordered* allreduce: results are bitwise
deterministic for a fixed shard count, and differ from the
single-process solve only by float re-association (tolerance-level, see
docs/distributed.md).

Shard death (a worker process lost mid-round, whether injected through
``kill_plan`` or real) surfaces from the exchange layer's collect and is
handled here by the solve's
:class:`~repro.recover.policy.RecoveryPolicy`: ``"raise"`` (or no
policy) propagates :class:`~repro.errors.ShardDeathError`; the
checkpoint strategies respawn the dead worker from its pristine payload
— re-encoding the lost block — seed its x-slice from the coordinator's
checkpoint (``repopulate``: dead shard only, survivors keep their
iterate; ``rollback``: every shard restored, iteration counter reset)
and restart the recurrence from the resulting global iterate.  A
``status: "due"`` reply (a shard recovered a *local* DUE by itself)
triggers the same recurrence restart without any respawn.

``"erasure"`` is the fault-*oblivious* fourth response: the pool is
built from an encoded layout
(:func:`~repro.dist.partition.encode_partition`) carrying ``k`` extra
checksum shards, the coordinator takes **no** checkpoints, and a death
is healed in place — survivors are snapshotted, the dead shard's
``x``/``r``/``p``/``w`` are reconstructed algebraically
(:class:`~repro.recover.erasure.ErasureCodec`), the respawned worker is
seeded with them, and the interrupted round's replies are completed
from the seed reply, so the recurrence continues exactly where it was.
Because every survivor finished the round the dead shard missed (the
lockstep invariant) and CG's vector updates are linear in the global
scalars, the reconstruction lands on the dead shard's *post-round*
state — no rollback window, no replayed iterations.  A true-residual
restart remains as a guarded fallback for non-finite reconstructions.
"""

from __future__ import annotations

import numpy as np

from repro.dist.exchange import DEFAULT_ROUND_TIMEOUT, ShardPool
from repro.dist.partition import (
    ErasurePlan,
    PartitionPlan,
    encode_partition,
    partition_matrix,
)
from repro.errors import (
    BoundsViolationError,
    ConfigurationError,
    DetectedUncorrectableError,
    ShardDeathError,
)
from repro.recover.policy import RecoveryPolicy
from repro.solvers.base import SolverResult

#: The solver state every shard snapshots/seeds during an erasure heal.
_STATE_FIELDS = ("x", "r", "p", "w")

#: Worker error names the erasure strategy converts into shard deaths:
#: an unrecovered in-shard DUE means the shard's state is untrusted, and
#: reconstruction-from-peers is exactly the repair erasure coding buys.
_INTEGRITY_ERRORS = ("DetectedUncorrectableError", "BoundsViolationError")


class _DeathSignal(Exception):
    """Internal: a round lost shards; carries who died."""

    def __init__(self, shards):
        self.shards = tuple(shards)
        super().__init__(f"shards {list(shards)} died")


class _RestartSignal(Exception):
    """Internal: the recurrence must be re-derived from the current x."""


def _reraise_shard_error(index: int, reply: dict) -> None:
    """Map a worker's ``status: "error"`` reply back onto a real exception."""
    name = reply.get("error", "RuntimeError")
    message = f"shard {index}: {reply.get('message', 'worker failed')}"
    if name == "DetectedUncorrectableError":
        raise DetectedUncorrectableError(f"dist-shard-{index}", message=message)
    if name == "BoundsViolationError":
        raise BoundsViolationError(f"dist-shard-{index}", message=message)
    raise RuntimeError(message)


class _Coordinator:
    """One distributed solve's mutable state: pool, scalars, recovery."""

    def __init__(self, plan: PartitionPlan, pool: ShardPool,
                 recovery: RecoveryPolicy | None, x0: np.ndarray,
                 eplan: ErasurePlan | None = None):
        self.plan = plan
        self.pool = pool
        self.recovery = recovery
        self.eplan = eplan
        self.codec = eplan.codec() if eplan is not None else None
        self.n_data = plan.n_shards
        self.escalates = recovery is not None and recovery.escalates
        self.retries_left = recovery.max_retries if self.escalates else 0
        # The initial checkpoint: x0's slices, so a recovery target exists
        # from the very first iteration on (mirrors maybe_checkpoint(0)).
        # Erasure mode holds no checkpoints at all — that is its point.
        self.saved_it = 0
        self.saved_slices = (
            None if eplan is not None
            else [plan.slice_vector(x0, s) for s in range(plan.n_shards)]
        )
        self.it = 0
        self.iters_executed = 0
        self.rr = float("inf")
        self.pb: list[np.ndarray] = []
        self.norms: list[float] = []
        self.converged = False
        self.deaths = 0
        self.respawns = 0
        self.restarts = 0
        self.checkpoints = 0
        self.reconstructions = 0
        self.fallback_restarts = 0
        self.unseeded: set[int] = set()

    @property
    def k(self) -> int:
        """Erasure shard count (0 outside erasure mode)."""
        return self.eplan.k if self.eplan is not None else 0

    # -- rounds ---------------------------------------------------------
    def round(self, messages) -> list[dict]:
        """One lockstep round; deaths/DUEs/errors become control flow."""
        replies, dead = self.pool.roundtrip(messages)
        dead = set(dead)
        if self.eplan is not None:
            dead |= self._integrity_deaths(replies)
            if dead:
                replies = self.heal(replies, dead)
        elif dead:
            raise _DeathSignal(sorted(dead))
        due = False
        for index in range(self.pool.n_shards):
            reply = replies[index]
            status = reply.get("status", "ok")
            if status == "error":
                _reraise_shard_error(index, reply)
            due = due or status == "due"
        if due:
            raise _RestartSignal
        return [replies[i] for i in range(self.pool.n_shards)]

    def _integrity_deaths(self, replies: dict) -> set[int]:
        """Kill shards whose reply is an unrecovered integrity error.

        Under erasure the reply's state is untrusted but the shard is
        reconstructible, so "corrupted" and "dead" converge: terminate
        the worker and let :meth:`heal` rebuild it from its peers.  The
        poisoned replies are dropped — the heal's seed replies stand in.
        """
        dead = set()
        for index in list(replies):
            reply = replies[index]
            if (reply.get("status") == "error"
                    and reply.get("error") in _INTEGRITY_ERRORS):
                self.pool.kill(index)
                replies.pop(index)
                dead.add(index)
        return dead

    def halos(self, boundaries: list[np.ndarray]) -> list[np.ndarray]:
        """Per-shard halo vectors assembled from published boundaries."""
        out = [
            self.plan.halo_for(s, boundaries)
            for s in range(self.n_data)
        ]
        for j in range(self.k):
            out.append(self.eplan.halo_for(j, boundaries))
        return out

    def restart(self, slices=None) -> None:
        """(Re)derive the recurrence from the current global iterate.

        ``slices`` seeds per-shard x values first (``None`` entries keep
        the shard's current x); then one ``xstart`` + one ``residual``
        round rebuild ``r = b - A x``, ``p = r`` and the global ``rr``.
        """
        if slices is None:
            slices = [None] * self.pool.n_shards
        xb = self.round([
            {"cmd": "xstart", "x": x_s} for x_s in slices
        ])
        halos = self.halos([reply["xb"] for reply in xb[:self.n_data]])
        replies = self.round([
            {"cmd": "residual", "halo": halo} for halo in halos
        ])
        # Ordered reduce over the data shards; erasure partials are
        # checksum dot-products, not pieces of the global scalar.
        self.rr = sum(reply["rr"] for reply in replies[:self.n_data])
        self.pb = [reply["pb"] for reply in replies[:self.n_data]]
        self.norms.append(float(np.sqrt(self.rr)))

    def maybe_checkpoint(self) -> None:
        """Gather x slices on the recovery cadence (checkpoint strategies).

        Erasure mode never checkpoints: the redundancy lives in the
        checksum shards, so the happy path pays zero gather traffic
        (``info["distributed"]["checkpoints"]`` stays 0, asserted in
        the tier-1 suite).
        """
        if not self.escalates or self.eplan is not None:
            return
        if self.it % self.recovery.checkpoint_interval:
            return
        replies = self.round([{"cmd": "checkpoint"}] * self.plan.n_shards)
        self.saved_slices = [reply["x"] for reply in replies]
        self.saved_it = self.it
        self.checkpoints += 1

    # -- shard-death recovery (checkpoint strategies) --------------------
    def recover_death(self, shards) -> list:
        """Respawn the dead shards; return the xstart slices to seed.

        Raises :class:`ShardDeathError` when no escalating policy is
        attached or the retry budget is exhausted — the unrecovered
        outcome the campaign counts as an abort.
        """
        self.deaths += len(shards)
        if not self.escalates or self.retries_left <= 0:
            raise ShardDeathError(shards, self.it)
        self.retries_left -= 1
        for index in shards:
            self.pool.respawn(index)
            self.respawns += 1
        if self.recovery.strategy == "rollback":
            # Everyone back to the checkpointed iterate; the counter too.
            self.it = self.saved_it
            return list(self.saved_slices)
        # repopulate: only the lost shards are seeded (from the newest
        # checkpointed slice); survivors keep their current iterate.
        return [
            self.saved_slices[s] if s in shards else None
            for s in range(self.plan.n_shards)
        ]

    # -- shard-death recovery (erasure) ----------------------------------
    def heal(self, replies: dict, dead: set[int]) -> dict:
        """Reconstruct and re-seed dead shards; complete the round in place.

        Every survivor finished the interrupted round (the lockstep
        invariant), so their snapshots — and the erasure shards'
        checksums, updated by the same recurrence — describe the
        *post-round* global state.  Reconstruction therefore yields the
        dead shard's post-round slices; after seeding, the seed replies
        (which carry every round reply field) are merged over the
        collected ones and the caller never learns the round broke.
        Cascading deaths during the snapshot/seed sub-rounds loop back
        in, each new death event spending one retry.
        """
        pending = set(dead)
        new_deaths = set(dead)
        while True:
            self.deaths += len(new_deaths)
            if self.retries_left <= 0:
                raise ShardDeathError(sorted(pending), self.it)
            self.retries_left -= 1
            self.unseeded = set(pending)
            for index in sorted(new_deaths):
                self.pool.respawn(index)
                self.respawns += 1

            survivors = [
                i for i in range(self.pool.n_shards) if i not in pending
            ]
            snaps, snap_dead = self.pool.subround(survivors, {"cmd": "snapshot"})
            snap_dead = set(snap_dead) | self._integrity_deaths(snaps)
            if snap_dead:
                pending |= snap_dead
                new_deaths = snap_dead
                continue
            for index, reply in snaps.items():
                if reply.get("status", "ok") == "error":
                    _reraise_shard_error(index, reply)

            dead_data = [i for i in sorted(pending) if i < self.n_data]
            live_checks = {
                j: snaps[self.n_data + j]
                for j in range(self.k)
                if self.n_data + j not in pending
            }
            if len(dead_data) > len(live_checks):
                raise ShardDeathError(sorted(pending), self.it)
            state = {
                field: {
                    i: np.asarray(snaps[i][field], dtype=np.float64)
                    for i in survivors if i < self.n_data
                }
                for field in _STATE_FIELDS
            }
            recon, fallback = self._reconstruct(dead_data, state, live_checks,
                                                sorted(pending))

            # Full per-field data state = survivors + reconstruction;
            # dead *erasure* shards are re-seeded with fresh checksums
            # of exactly that state, so consistency holds from here on.
            full = {
                field: [
                    state[field][s] if s in state[field] else recon[field][s]
                    for s in range(self.n_data)
                ]
                for field in _STATE_FIELDS
            }
            seeds = {}
            for index in sorted(pending):
                if index < self.n_data:
                    seeds[index] = {
                        "cmd": "seed",
                        **{f: recon[f][index] for f in _STATE_FIELDS},
                    }
                else:
                    j = index - self.n_data
                    seeds[index] = {
                        "cmd": "seed",
                        **{f: self.codec.encode(full[f], j)
                           for f in _STATE_FIELDS},
                    }
            seed_replies, seed_dead = self.pool.subround(sorted(pending), seeds)
            seed_dead = set(seed_dead) | self._integrity_deaths(seed_replies)
            if seed_dead:
                pending |= seed_dead
                new_deaths = seed_dead
                continue
            for index, reply in seed_replies.items():
                if reply.get("status", "ok") == "error":
                    _reraise_shard_error(index, reply)

            self.unseeded = set()
            self.reconstructions += len(dead_data)
            if fallback:
                # x was recovered but the recurrence state was not
                # numerically usable: fall back to a true-residual
                # restart from the reconstructed iterate.
                self.fallback_restarts += 1
                raise _RestartSignal
            merged = dict(replies)
            merged.update(seed_replies)
            return merged

    def _reconstruct(self, dead_data, state, live_checks, pending):
        """Dead data shards' slices per field; True when falling back.

        The guarded fallback: when the full-state reconstruction is not
        finite, recover ``x`` alone (zero-filling the recurrence
        fields) so a true-residual restart can continue from the right
        iterate.  An unrecoverable ``x`` is a real loss —
        :class:`ShardDeathError`.
        """
        empty = {f: {} for f in _STATE_FIELDS}
        if not dead_data:
            return empty, False
        try:
            recon = {
                field: self.codec.reconstruct(
                    dead_data, state[field],
                    {j: np.asarray(snap[field], dtype=np.float64)
                     for j, snap in live_checks.items()},
                )
                for field in _STATE_FIELDS
            }
            return recon, False
        except ArithmeticError:
            pass
        try:
            x_rec = self.codec.reconstruct(
                dead_data, state["x"],
                {j: np.asarray(snap["x"], dtype=np.float64)
                 for j, snap in live_checks.items()},
            )
        except ArithmeticError:
            raise ShardDeathError(pending, self.it) from None
        recon = {
            field: {d: np.zeros(self.codec.sizes[d]) for d in dead_data}
            for field in _STATE_FIELDS
        }
        recon["x"] = x_rec
        return recon, True


def _erasure_payloads(eplan: ErasurePlan, codec, b_slices, protection,
                      hang_by_shard) -> list[dict]:
    """Worker payloads for the k checksum shards of an encoded layout."""
    n_data = eplan.n_data
    return [
        {
            "index": n_data + block.index,
            "erasure": True,
            "matrix": block.matrix,
            "b": codec.encode(b_slices, block.index),
            "boundary_idx": np.empty(0, dtype=np.int64),
            "protection": protection,
            "hang": hang_by_shard.get(n_data + block.index),
        }
        for block in eplan.blocks
    ]


def distributed_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    n_shards: int = 2,
    method: str = "cg",
    protection=None,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    kill_plan=None,
    hang_plan=None,
    round_timeout: float = DEFAULT_ROUND_TIMEOUT,
) -> SolverResult:
    """Solve ``A x = b`` by CG sharded across worker processes.

    Parameters
    ----------
    A:
        A square :class:`~repro.csr.matrix.CSRMatrix` (a
        :class:`~repro.protect.matrix.ProtectedCSRMatrix` is decoded
        first — each shard re-encodes its own block under its own
        protection domain, so a pre-encoded global matrix cannot be
        sharded as-is).
    n_shards:
        Worker-process count; clamped to ``n_rows`` by the partitioner.
        Under the ``"erasure"`` recovery strategy the pool additionally
        spawns ``recovery.erasure_shards`` checksum shards (they sit at
        pool indices ``n_shards..``, addressable by ``kill_plan``).
    protection:
        A :class:`~repro.protect.config.ProtectionConfig` applied
        *per shard* (each worker gets its own engine over its block and
        slices), or ``None`` for unprotected shards.  The config's
        ``recovery`` policy does double duty: inside a shard it handles
        local DUEs exactly as in a single-process solve, and at the
        coordinator it governs shard-death responses (strategy, retry
        budget, checkpoint cadence / erasure shard count).
    kill_plan:
        Fault-injection hook: ``(iteration, shard)`` pairs; at the start
        of each listed iteration the coordinator terminates that shard's
        process, exercising the recovery path deterministically.
    hang_plan:
        Fault-injection hook for *timeout-expiry* death detection:
        ``(iteration, shard)`` pairs; the listed shard stops replying at
        that iteration's ``update`` round without exiting, so only the
        ``round_timeout`` can flush it out.  ``iteration -1`` hangs the
        shard at the ``finish`` sweep instead.  One spec per shard;
        respawned workers re-arm it (they rebuild from the pristine
        payload), which matters only if the same coordinator iteration
        is replayed.
    round_timeout:
        Seconds one lockstep round may take before an unresponsive shard
        is declared dead (see :mod:`repro.dist.exchange`).

    Returns a :class:`~repro.solvers.base.SolverResult` whose ``info``
    carries a ``distributed`` block (shard counts, deaths, respawns,
    restarts, checkpoints, reconstructions, executed iterations) plus
    each shard's own counter block.
    """
    if method != "cg":
        raise ConfigurationError(
            f"distributed solves support method='cg' only, not {method!r}"
        )
    if protection is not None and not hasattr(protection, "enabled"):
        raise ConfigurationError(
            "distributed solves take a ProtectionConfig (or None); sessions "
            "are single-process by design"
        )
    if hasattr(A, "to_csr"):
        A = A.to_csr()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (A.n_rows,):
        raise ConfigurationError(
            f"b has shape {b.shape}, expected ({A.n_rows},)"
        )
    x0 = np.zeros(A.n_rows) if x0 is None else np.asarray(x0, dtype=np.float64)

    recovery = protection.recovery if protection is not None else None
    erasure = recovery is not None and recovery.strategy == "erasure"
    hang_by_shard: dict[int, dict] = {}
    for hang_it, hang_shard in (hang_plan or ()):
        spec = ({"cmd": "finish"} if int(hang_it) < 0
                else {"cmd": "update", "it": int(hang_it)})
        hang_by_shard[int(hang_shard)] = spec

    if erasure:
        eplan = encode_partition(A, n_shards, recovery.erasure_shards)
        plan = eplan.plan
        codec = eplan.codec()
    else:
        eplan, codec = None, None
        plan = partition_matrix(A, n_shards)
    b_slices = [plan.slice_vector(b, s) for s in range(plan.n_shards)]
    payloads = [
        {
            "index": block.index,
            "matrix": block.matrix,
            "b": b_slices[block.index],
            "boundary_idx": block.boundary_idx,
            "protection": protection,
            "hang": hang_by_shard.get(block.index),
        }
        for block in plan.blocks
    ]
    if erasure:
        payloads += _erasure_payloads(eplan, codec, b_slices, protection,
                                      hang_by_shard)
    kills: dict[int, list[int]] = {}
    for kill_it, kill_shard in (kill_plan or ()):
        kills.setdefault(int(kill_it), []).append(int(kill_shard))

    with ShardPool(payloads, round_timeout=round_timeout) as pool:
        coord = _Coordinator(plan, pool, recovery, x0, eplan=eplan)
        slices = [plan.slice_vector(x0, s) for s in range(plan.n_shards)]
        if erasure:
            slices += codec.encode_all(slices)
        need_restart = True
        while True:
            try:
                if need_restart:  # initial start or post-recovery restart
                    coord.restart(slices)
                    need_restart = False
                coord.converged = coord.rr < eps
                while not coord.converged and coord.it < max_iters:
                    for shard in kills.pop(coord.it, ()):
                        pool.kill(shard)
                    halos = coord.halos(coord.pb)
                    spmv = coord.round([
                        {"cmd": "spmv", "halo": halo} for halo in halos
                    ])
                    # Ordered reduce over the data shards only.
                    pw = sum(reply["pw"] for reply in spmv[:coord.n_data])
                    if pw == 0.0:
                        break
                    alpha = coord.rr / pw
                    update = coord.round(
                        [{"cmd": "update", "alpha": alpha, "it": coord.it + 1}]
                        * pool.n_shards
                    )
                    rr_new = sum(reply["rr"] for reply in update[:coord.n_data])
                    coord.it += 1
                    coord.iters_executed += 1
                    coord.norms.append(float(np.sqrt(rr_new)))
                    if rr_new < eps:
                        coord.rr = rr_new
                        coord.converged = True
                        break
                    pbound = coord.round(
                        [{"cmd": "pbound", "beta": rr_new / coord.rr}]
                        * pool.n_shards
                    )
                    coord.pb = [reply["pb"] for reply in pbound[:coord.n_data]]
                    coord.rr = rr_new
                    coord.maybe_checkpoint()
                finish = coord.round([{"cmd": "finish"}] * pool.n_shards)
                break
            except _DeathSignal as signal:
                slices = coord.recover_death(signal.shards)
                need_restart = True
            except _RestartSignal:
                coord.restarts += 1
                slices = [None] * pool.n_shards
                need_restart = True
        x = plan.assemble([reply["x"] for reply in finish[:plan.n_shards]])

    info = {
        "distributed": {
            "n_shards": plan.n_shards,
            "erasure_shards": coord.k,
            "deaths": coord.deaths,
            "respawns": coord.respawns,
            "restarts": coord.restarts,
            "checkpoints": coord.checkpoints,
            "reconstructions": coord.reconstructions,
            "fallback_restarts": coord.fallback_restarts,
            "iters_executed": coord.iters_executed,
            "recovery": recovery.strategy if recovery is not None else "raise",
        },
        "shards": [reply["info"] for reply in finish[:plan.n_shards]],
    }
    if erasure:
        info["erasure_shards"] = [
            reply["info"] for reply in finish[plan.n_shards:]
        ]
    return SolverResult(
        x=x,
        iterations=coord.it,
        converged=coord.converged,
        residual_norms=coord.norms,
        info=info,
    )
