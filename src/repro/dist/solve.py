"""The coordinator: distributed CG over shard workers, death included.

The recurrence is the textbook one from
:func:`repro.solvers.cg.protected_cg_run`, re-cut along the process
boundary: vector updates happen inside the shards, the coordinator owns
only the scalars (``alpha``/``beta``/``rr``) and the halo routing.  One
CG iteration is three lockstep rounds —

1. ``spmv``   — ship each shard its p-halo, get partial ``p·w`` back;
2. ``update`` — broadcast ``alpha``, get partial ``r·r`` back;
3. ``pbound`` — broadcast ``beta``, get fresh p-boundaries back —

with every global scalar reduced by summing the per-shard partials in
shard-index order, an *ordered* allreduce: results are bitwise
deterministic for a fixed shard count, and differ from the
single-process solve only by float re-association (tolerance-level, see
docs/distributed.md).

Shard death (a worker process lost mid-round, whether injected through
``kill_plan`` or real) surfaces from the exchange layer's collect and is
handled here by the solve's
:class:`~repro.recover.policy.RecoveryPolicy`: ``"raise"`` (or no
policy) propagates :class:`~repro.errors.ShardDeathError`; the
escalating strategies respawn the dead worker from its pristine payload
— re-encoding the lost block — seed its x-slice from the coordinator's
checkpoint (``repopulate``: dead shard only, survivors keep their
iterate; ``rollback``: every shard restored, iteration counter reset)
and restart the recurrence from the resulting global iterate.  A
``status: "due"`` reply (a shard recovered a *local* DUE by itself)
triggers the same recurrence restart without any respawn.
"""

from __future__ import annotations

import numpy as np

from repro.dist.exchange import DEFAULT_ROUND_TIMEOUT, ShardPool
from repro.dist.partition import PartitionPlan, partition_matrix
from repro.errors import (
    BoundsViolationError,
    ConfigurationError,
    DetectedUncorrectableError,
    ShardDeathError,
)
from repro.recover.policy import RecoveryPolicy
from repro.solvers.base import SolverResult


class _DeathSignal(Exception):
    """Internal: a round lost shards; carries who died."""

    def __init__(self, shards):
        self.shards = tuple(shards)
        super().__init__(f"shards {list(shards)} died")


class _RestartSignal(Exception):
    """Internal: a shard recovered a local DUE; restart the recurrence."""


def _reraise_shard_error(index: int, reply: dict) -> None:
    """Map a worker's ``status: "error"`` reply back onto a real exception."""
    name = reply.get("error", "RuntimeError")
    message = f"shard {index}: {reply.get('message', 'worker failed')}"
    if name == "DetectedUncorrectableError":
        raise DetectedUncorrectableError(f"dist-shard-{index}", message=message)
    if name == "BoundsViolationError":
        raise BoundsViolationError(f"dist-shard-{index}", message=message)
    raise RuntimeError(message)


class _Coordinator:
    """One distributed solve's mutable state: pool, scalars, checkpoint."""

    def __init__(self, plan: PartitionPlan, pool: ShardPool,
                 recovery: RecoveryPolicy | None, x0: np.ndarray):
        self.plan = plan
        self.pool = pool
        self.recovery = recovery
        self.escalates = recovery is not None and recovery.escalates
        self.retries_left = recovery.max_retries if self.escalates else 0
        # The initial checkpoint: x0's slices, so a recovery target exists
        # from the very first iteration on (mirrors maybe_checkpoint(0)).
        self.saved_it = 0
        self.saved_slices = [
            plan.slice_vector(x0, s) for s in range(plan.n_shards)
        ]
        self.it = 0
        self.rr = float("inf")
        self.pb: list[np.ndarray] = []
        self.norms: list[float] = []
        self.converged = False
        self.deaths = 0
        self.respawns = 0
        self.restarts = 0

    # -- rounds ---------------------------------------------------------
    def round(self, messages) -> list[dict]:
        """One lockstep round; deaths/DUEs/errors become control flow."""
        replies, dead = self.pool.roundtrip(messages)
        if dead:
            raise _DeathSignal(dead)
        due = False
        for index in range(self.pool.n_shards):
            reply = replies[index]
            status = reply.get("status", "ok")
            if status == "error":
                _reraise_shard_error(index, reply)
            due = due or status == "due"
        if due:
            raise _RestartSignal
        return [replies[i] for i in range(self.pool.n_shards)]

    def halos(self, boundaries: list[np.ndarray]) -> list[np.ndarray]:
        """Per-shard halo vectors assembled from published boundaries."""
        return [
            self.plan.halo_for(s, boundaries)
            for s in range(self.plan.n_shards)
        ]

    def restart(self, slices=None) -> None:
        """(Re)derive the recurrence from the current global iterate.

        ``slices`` seeds per-shard x values first (``None`` entries keep
        the shard's current x); then one ``xstart`` + one ``residual``
        round rebuild ``r = b - A x``, ``p = r`` and the global ``rr``.
        """
        if slices is None:
            slices = [None] * self.plan.n_shards
        xb = self.round([
            {"cmd": "xstart", "x": x_s} for x_s in slices
        ])
        halos = self.halos([reply["xb"] for reply in xb])
        replies = self.round([
            {"cmd": "residual", "halo": halo} for halo in halos
        ])
        self.rr = sum(reply["rr"] for reply in replies)  # ordered reduce
        self.pb = [reply["pb"] for reply in replies]
        self.norms.append(float(np.sqrt(self.rr)))

    def maybe_checkpoint(self) -> None:
        """Gather x slices on the recovery cadence (escalating policies)."""
        if not self.escalates:
            return
        if self.it % self.recovery.checkpoint_interval:
            return
        replies = self.round([{"cmd": "checkpoint"}] * self.plan.n_shards)
        self.saved_slices = [reply["x"] for reply in replies]
        self.saved_it = self.it

    # -- shard-death recovery -------------------------------------------
    def recover_death(self, shards) -> list:
        """Respawn the dead shards; return the xstart slices to seed.

        Raises :class:`ShardDeathError` when no escalating policy is
        attached or the retry budget is exhausted — the unrecovered
        outcome the campaign counts as an abort.
        """
        self.deaths += len(shards)
        if not self.escalates or self.retries_left <= 0:
            raise ShardDeathError(shards, self.it)
        self.retries_left -= 1
        for index in shards:
            self.pool.respawn(index)
            self.respawns += 1
        if self.recovery.strategy == "rollback":
            # Everyone back to the checkpointed iterate; the counter too.
            self.it = self.saved_it
            return list(self.saved_slices)
        # repopulate: only the lost shards are seeded (from the newest
        # checkpointed slice); survivors keep their current iterate.
        return [
            self.saved_slices[s] if s in shards else None
            for s in range(self.plan.n_shards)
        ]


def distributed_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    n_shards: int = 2,
    method: str = "cg",
    protection=None,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    kill_plan=None,
    round_timeout: float = DEFAULT_ROUND_TIMEOUT,
) -> SolverResult:
    """Solve ``A x = b`` by CG sharded across worker processes.

    Parameters
    ----------
    A:
        A square :class:`~repro.csr.matrix.CSRMatrix` (a
        :class:`~repro.protect.matrix.ProtectedCSRMatrix` is decoded
        first — each shard re-encodes its own block under its own
        protection domain, so a pre-encoded global matrix cannot be
        sharded as-is).
    n_shards:
        Worker-process count; clamped to ``n_rows`` by the partitioner.
    protection:
        A :class:`~repro.protect.config.ProtectionConfig` applied
        *per shard* (each worker gets its own engine over its block and
        slices), or ``None`` for unprotected shards.  The config's
        ``recovery`` policy does double duty: inside a shard it handles
        local DUEs exactly as in a single-process solve, and at the
        coordinator it governs shard-death respawns (strategy, retry
        budget, checkpoint cadence).
    kill_plan:
        Fault-injection hook: ``(iteration, shard)`` pairs; at the start
        of each listed iteration the coordinator terminates that shard's
        process, exercising the recovery path deterministically.
    round_timeout:
        Seconds one lockstep round may take before an unresponsive shard
        is declared dead (see :mod:`repro.dist.exchange`).

    Returns a :class:`~repro.solvers.base.SolverResult` whose ``info``
    carries a ``distributed`` block (shard count, deaths, respawns,
    recurrence restarts) plus each shard's own counter block.
    """
    if method != "cg":
        raise ConfigurationError(
            f"distributed solves support method='cg' only, not {method!r}"
        )
    if protection is not None and not hasattr(protection, "enabled"):
        raise ConfigurationError(
            "distributed solves take a ProtectionConfig (or None); sessions "
            "are single-process by design"
        )
    if hasattr(A, "to_csr"):
        A = A.to_csr()
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (A.n_rows,):
        raise ConfigurationError(
            f"b has shape {b.shape}, expected ({A.n_rows},)"
        )
    x0 = np.zeros(A.n_rows) if x0 is None else np.asarray(x0, dtype=np.float64)

    plan = partition_matrix(A, n_shards)
    payloads = [
        {
            "index": block.index,
            "matrix": block.matrix,
            "b": plan.slice_vector(b, block.index),
            "boundary_idx": block.boundary_idx,
            "protection": protection,
        }
        for block in plan.blocks
    ]
    kills: dict[int, list[int]] = {}
    for kill_it, kill_shard in (kill_plan or ()):
        kills.setdefault(int(kill_it), []).append(int(kill_shard))
    recovery = protection.recovery if protection is not None else None

    with ShardPool(payloads, round_timeout=round_timeout) as pool:
        coord = _Coordinator(plan, pool, recovery, x0)
        slices = [plan.slice_vector(x0, s) for s in range(plan.n_shards)]
        need_restart = True
        while True:
            try:
                if need_restart:  # initial start or post-recovery restart
                    coord.restart(slices)
                    need_restart = False
                coord.converged = coord.rr < eps
                while not coord.converged and coord.it < max_iters:
                    for shard in kills.pop(coord.it, ()):
                        pool.kill(shard)
                    halos = coord.halos(coord.pb)
                    spmv = coord.round([
                        {"cmd": "spmv", "halo": halo} for halo in halos
                    ])
                    pw = sum(reply["pw"] for reply in spmv)  # ordered reduce
                    if pw == 0.0:
                        break
                    alpha = coord.rr / pw
                    update = coord.round(
                        [{"cmd": "update", "alpha": alpha, "it": coord.it + 1}]
                        * plan.n_shards
                    )
                    rr_new = sum(reply["rr"] for reply in update)
                    coord.it += 1
                    coord.norms.append(float(np.sqrt(rr_new)))
                    if rr_new < eps:
                        coord.rr = rr_new
                        coord.converged = True
                        break
                    pbound = coord.round(
                        [{"cmd": "pbound", "beta": rr_new / coord.rr}]
                        * plan.n_shards
                    )
                    coord.pb = [reply["pb"] for reply in pbound]
                    coord.rr = rr_new
                    coord.maybe_checkpoint()
                finish = coord.round([{"cmd": "finish"}] * plan.n_shards)
                break
            except _DeathSignal as signal:
                slices = coord.recover_death(signal.shards)
                need_restart = True
            except _RestartSignal:
                coord.restarts += 1
                slices = [None] * plan.n_shards
                need_restart = True
        x = plan.assemble([reply["x"] for reply in finish])

    info = {
        "distributed": {
            "n_shards": plan.n_shards,
            "deaths": coord.deaths,
            "respawns": coord.respawns,
            "restarts": coord.restarts,
            "recovery": recovery.strategy if recovery is not None else "raise",
        },
        "shards": [reply["info"] for reply in finish],
    }
    return SolverResult(
        x=x,
        iterations=coord.it,
        converged=coord.converged,
        residual_norms=coord.norms,
        info=info,
    )
