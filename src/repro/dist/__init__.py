"""repro.dist — distributed row-sharded protected solves.

Partitions one large sparse system into contiguous row shards, runs a
single conjugate-gradient solve across spawn-context worker processes —
each shard owning its *own* protection domain (a per-shard
:class:`~repro.protect.engine.DeferredVerificationEngine` over its matrix
block and vector slices) — and survives whole-shard process loss by
respawning the dead worker and re-encoding its block from the pristine
partition while the surviving shards keep their state.  Under
``RecoveryPolicy(strategy="erasure")`` the pool carries ``k`` extra
checksum shards (:func:`~repro.dist.partition.encode_partition`) and a
dead shard's state is *reconstructed algebraically* from the survivors
instead of restored from checkpoints — the fault-oblivious mode.

The subsystem splits into four layers:

* :mod:`repro.dist.partition` — the deterministic row partitioner:
  per-shard CSR blocks with locally remapped columns plus the halo index
  maps (which external columns each shard reads, which owned rows it
  must publish);
* :mod:`repro.dist.exchange` — the wire layer: spawn-context worker
  processes over duplex pipes, lockstep broadcast/collect rounds with
  shard-death detection, and the halo/reduction assembly helpers;
* :mod:`repro.dist.workers` — the worker-process runtime: a command
  server around one shard's protected CG state;
* :mod:`repro.dist.solve` — the coordinator: the distributed CG driver,
  checkpointing, and the :class:`~repro.recover.policy.RecoveryPolicy`-
  driven shard-death respawn path.

Entry points: ``repro.solve(A, b, method="cg", distributed=n)`` routes
here via the solver registry, and ``python -m repro.dist`` is the CLI
smoke driver.  See docs/distributed.md for the protocol and recovery
semantics.
"""

from repro.dist.partition import (
    ErasureBlock,
    ErasurePlan,
    PartitionPlan,
    ShardBlock,
    encode_partition,
    partition_matrix,
    partition_rows,
)
from repro.dist.solve import distributed_solve

__all__ = [
    "ErasureBlock",
    "ErasurePlan",
    "PartitionPlan",
    "ShardBlock",
    "distributed_solve",
    "encode_partition",
    "partition_matrix",
    "partition_rows",
]
