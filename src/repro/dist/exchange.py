"""The wire layer: spawn-context shard workers and lockstep rounds.

The distributed solve is *coordinator-driven*: worker shards never talk
to each other, they answer commands.  Each iteration the coordinator
broadcasts one command to every live shard, collects exactly one reply
per shard, and only then moves on — a lockstep request/reply round over
duplex :func:`multiprocessing.Pipe` connections.  That discipline is
what makes whole-shard loss recoverable at *any* point: a round either
completed on a shard (its reply was read) or it did not, so after a
death the coordinator knows every survivor sits at the same step of the
recurrence and can restart it globally.

Death detection is part of :meth:`ShardPool.collect`: a shard whose
process has exited and whose pipe holds no pending reply is declared
dead for the round.  Replies already readable from a dying shard are
still drained first — a shard that answered before being killed counts
as having completed the round.  The pool reports deaths to the caller
(the :mod:`repro.dist.solve` coordinator) rather than raising; policy —
respawn vs :class:`~repro.errors.ShardDeathError` — lives there.

Workers are spawn-context processes (consistent with the sweep executor:
BLAS thread pools and fork do not mix) running
:func:`repro.dist.workers.shard_worker_main`, so everything crossing the
pipe — the start-up payload and every message — must be picklable.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.errors import ShardDeathError
from repro.sweeps.executor import resolve_runner

#: How long one collect round may take before an unresponsive-but-alive
#: shard is treated as dead (terminated and reported like a crash).  A
#: whole round is a handful of local SpMVs, so minutes means a hang.
DEFAULT_ROUND_TIMEOUT = 120.0

#: Seconds between liveness polls while waiting for a reply.
_POLL_TICK = 0.01


class ShardLink:
    """One worker shard: its process handle plus the coordinator's pipe end.

    Created (and re-created, after a death) by :class:`ShardPool`; the
    link owns process lifecycle for its shard — spawn, terminate, join —
    and the raw send/receive primitives the pool's rounds are built on.
    """

    def __init__(self, index: int, runner: str, payload: dict, ctx):
        self.index = index
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=resolve_runner(runner),
            args=(child_conn, payload),
            name=f"repro-dist-shard-{index}",
        )
        self.process.start()
        # The parent must drop its handle on the child end or EOF on the
        # pipe can never be observed after the worker dies.
        child_conn.close()

    def alive(self) -> bool:
        """True while the worker process is running."""
        return self.process.is_alive()

    def send(self, message: dict) -> bool:
        """Send one command; False when the pipe is already broken."""
        try:
            self.conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def try_recv(self):
        """Non-blocking receive: the pending reply, or ``None``."""
        try:
            if self.conn.poll(0):
                return self.conn.recv()
        except (EOFError, OSError):
            pass
        return None

    def terminate(self) -> None:
        """Kill the worker process (the shard-death fault injector)."""
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)

    def close(self) -> None:
        """Release the pipe and reap the process."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        self.process.close()


class ShardPool:
    """All shard links of one distributed solve, with lockstep rounds.

    Parameters
    ----------
    payloads:
        Per-shard picklable start-up dicts (see
        :func:`repro.dist.workers.shard_worker_main` for the schema).
        Kept by the pool: a respawn re-sends the pristine payload, which
        is what "re-encode the lost shard from its source" means.
    runner:
        Importable ``"module:function"`` worker entry point, resolved in
        the spawned process exactly like sweep-executor runners.
    round_timeout:
        Seconds a :meth:`collect` round may wait before alive-but-silent
        shards are terminated and reported as dead.
    """

    def __init__(
        self,
        payloads: list[dict],
        *,
        runner: str = "repro.dist.workers:shard_worker_main",
        round_timeout: float = DEFAULT_ROUND_TIMEOUT,
    ):
        self._ctx = multiprocessing.get_context("spawn")
        self._runner = runner
        self._payloads = list(payloads)
        self.round_timeout = float(round_timeout)
        self.links: list[ShardLink] = [
            ShardLink(i, runner, payload, self._ctx)
            for i, payload in enumerate(self._payloads)
        ]

    @property
    def n_shards(self) -> int:
        """Number of shards (dead or alive) in the pool."""
        return len(self.links)

    def respawn(self, index: int) -> None:
        """Replace a dead shard with a fresh worker from its pristine payload."""
        self.links[index].close()
        self.links[index] = ShardLink(
            index, self._runner, self._payloads[index], self._ctx
        )

    def kill(self, index: int) -> None:
        """Terminate one shard mid-solve — the fault-injection hook."""
        self.links[index].terminate()

    def broadcast(self, messages) -> None:
        """Send one command per shard (a shared dict, or one per shard)."""
        if isinstance(messages, dict):
            messages = [messages] * self.n_shards
        for link, message in zip(self.links, messages):
            link.send(message)

    def collect(self, indices=None) -> tuple[dict[int, dict], list[int]]:
        """Read one reply per shard; report who died instead.

        Returns ``(replies, dead)``: ``replies`` maps shard index to the
        reply dict for every shard that completed the round, ``dead``
        lists the shards that did not (process gone with nothing left in
        the pipe, or alive but silent past the round timeout — those are
        terminated first so the two cases converge).  Dead shards'
        replies are drained before the verdict, so a shard killed
        *after* answering still counts as having finished the round.
        ``indices`` restricts the round to a subset of shards (the
        erasure-recovery sub-rounds); the default is every shard.
        """
        replies: dict[int, dict] = {}
        dead: list[int] = []
        pending = set(range(self.n_shards) if indices is None else indices)
        deadline = time.monotonic() + self.round_timeout
        while pending:
            progressed = False
            for index in sorted(pending):
                link = self.links[index]
                reply = link.try_recv()
                if reply is not None:
                    replies[index] = reply
                    pending.discard(index)
                    progressed = True
                elif not link.alive():
                    # Drain once more: the reply may have raced the exit.
                    reply = link.try_recv()
                    if reply is not None:
                        replies[index] = reply
                    else:
                        dead.append(index)
                    pending.discard(index)
                    progressed = True
            if not pending or progressed:
                continue
            if time.monotonic() > deadline:
                for index in sorted(pending):
                    self.links[index].terminate()
                    dead.extend([index])
                    pending.discard(index)
                break
            time.sleep(_POLL_TICK)
        return replies, sorted(dead)

    def roundtrip(self, messages) -> tuple[dict[int, dict], list[int]]:
        """One full lockstep round: broadcast then collect."""
        self.broadcast(messages)
        return self.collect()

    def subround(self, indices, messages) -> tuple[dict[int, dict], list[int]]:
        """A lockstep round over a *subset* of shards.

        ``messages`` is either one shared dict or a mapping from shard
        index to its message.  Used by the erasure recovery's
        snapshot/seed sub-protocol, where the survivors and the
        respawned shards get different commands.
        """
        indices = sorted(indices)
        if isinstance(messages, dict) and "cmd" in messages:
            messages = {index: messages for index in indices}
        for index in indices:
            self.links[index].send(messages[index])
        return self.collect(indices)

    def require_all(
        self, replies: dict[int, dict], dead: list[int], iteration: int | None = None
    ) -> list[dict]:
        """Replies in shard order, or :class:`ShardDeathError` listing the dead.

        The convenience for rounds where death is *not* being handled
        (set-up, teardown, raise-strategy solves): any loss becomes the
        error the caller propagates.
        """
        if dead:
            raise ShardDeathError(dead, iteration)
        return [replies[i] for i in range(self.n_shards)]

    def shutdown(self) -> None:
        """Best-effort orderly stop: ask workers to exit, then reap them."""
        for link in self.links:
            if link.alive():
                link.send({"cmd": "shutdown"})
        for link in self.links:
            link.process.join(timeout=2.0)
            link.close()

    def __enter__(self) -> "ShardPool":
        """Context-manager entry: the pool itself."""
        return self

    def __exit__(self, *exc) -> None:
        """Context-manager exit: always tear the workers down."""
        self.shutdown()
