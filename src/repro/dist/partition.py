"""Deterministic row partitioner: per-shard CSR blocks + halo index maps.

One square CSR matrix becomes ``n_shards`` contiguous row blocks.  Each
shard's block is itself a valid :class:`~repro.csr.matrix.CSRMatrix`
whose columns are *locally remapped*: owned columns (those inside the
shard's row range) come first as ``0..n_local-1``, followed by the
shard's **halo** — the sorted external columns its rows reference, which
other shards own.  An SpMV against the block therefore consumes the
concatenation ``[x_local, x_halo]``, which is exactly what the exchange
layer delivers each iteration.

Everything here is a pure function of ``(matrix, n_shards)`` — no RNG,
no worker-count dependence — so the same partition plan is rebuilt
identically by the coordinator, by a respawned worker, and by any test
asserting halo maps.  The plan also precomputes the communication
schedule the coordinator needs:

* ``boundary_idx[s]`` — which of shard *s*'s local rows any other shard
  reads (what *s* must publish each halo exchange);
* ``halo_src_shard[t]`` / ``halo_src_pos[t]`` — for each entry of shard
  *t*'s halo, which shard publishes it and at which position of that
  shard's boundary array (how the coordinator assembles halos from the
  published boundaries).

Degenerate shapes are first-class: ``n_shards > n_rows`` clamps to one
row per shard, a single shard has an empty halo, and a (block-)diagonal
matrix partitions into shards with empty halos and empty boundaries.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csr.matrix import CSRMatrix
from repro.errors import ConfigurationError


def partition_rows(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous row ranges, one per shard.

    The first ``n_rows % n_shards`` shards take one extra row, so shard
    sizes differ by at most one.  ``n_shards`` is clamped to ``n_rows``
    (a shard must own at least one row); callers read the effective
    shard count off the returned list's length.
    """
    if n_rows < 1:
        raise ConfigurationError("cannot partition an empty matrix")
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    n_shards = min(n_shards, n_rows)
    base, extra = divmod(n_rows, n_shards)
    ranges = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclasses.dataclass(frozen=True)
class ShardBlock:
    """One shard's slice of the partitioned system.

    Attributes
    ----------
    index:
        The shard's position in the plan.
    row_start / row_stop:
        The global half-open row range ``[row_start, row_stop)`` this
        shard owns.
    matrix:
        The local CSR block, shape ``(n_local, n_local + n_halo)`` with
        columns remapped as described in the module docstring.
    halo_cols:
        Sorted *global* column indices of the halo (``int64``); empty
        when the shard's rows only touch owned columns.
    boundary_idx:
        Sorted *local* row indices (``int64``) that at least one other
        shard reads — the values this shard publishes each exchange.
    """

    index: int
    row_start: int
    row_stop: int
    matrix: CSRMatrix
    halo_cols: np.ndarray
    boundary_idx: np.ndarray

    @property
    def n_local(self) -> int:
        """Rows (and owned columns) of this shard."""
        return self.row_stop - self.row_start

    @property
    def n_halo(self) -> int:
        """External columns this shard reads each iteration."""
        return int(self.halo_cols.size)


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """The full deterministic decomposition of one matrix.

    Attributes
    ----------
    n_rows:
        Global problem size.
    row_ranges:
        Tuple of per-shard global ``(lo, hi)`` row ranges.
    blocks:
        One :class:`ShardBlock` per shard.
    halo_src_shard / halo_src_pos:
        Per shard *t*, parallel ``int64`` arrays over ``halo_cols[t]``:
        entry *k* of *t*'s halo is published by shard
        ``halo_src_shard[t][k]`` at position ``halo_src_pos[t][k]`` of
        that shard's boundary array.
    """

    n_rows: int
    row_ranges: tuple[tuple[int, int], ...]
    blocks: tuple[ShardBlock, ...]
    halo_src_shard: tuple[np.ndarray, ...]
    halo_src_pos: tuple[np.ndarray, ...]

    @property
    def n_shards(self) -> int:
        """The effective shard count (after clamping to ``n_rows``)."""
        return len(self.blocks)

    def owner_of(self, cols: np.ndarray) -> np.ndarray:
        """Map global column indices to the shard index owning each."""
        starts = np.array([lo for lo, _ in self.row_ranges], dtype=np.int64)
        return np.searchsorted(starts, np.asarray(cols, dtype=np.int64),
                               side="right") - 1

    def slice_vector(self, x: np.ndarray, shard: int) -> np.ndarray:
        """Shard ``shard``'s owned slice of a global vector (a copy)."""
        lo, hi = self.row_ranges[shard]
        return np.array(x[lo:hi], dtype=np.float64, copy=True)

    def assemble(self, slices) -> np.ndarray:
        """Concatenate per-shard owned slices back into a global vector."""
        out = np.empty(self.n_rows, dtype=np.float64)
        for (lo, hi), part in zip(self.row_ranges, slices):
            out[lo:hi] = part
        return out

    def halo_for(self, shard: int, boundaries) -> np.ndarray:
        """Assemble shard ``shard``'s halo values from published boundaries.

        ``boundaries`` is a sequence of per-shard arrays, each shard's
        values at its ``boundary_idx`` positions (what the exchange
        round collected).  Order of the result matches
        ``blocks[shard].halo_cols``.
        """
        src = self.halo_src_shard[shard]
        pos = self.halo_src_pos[shard]
        halo = np.empty(src.size, dtype=np.float64)
        for s in np.unique(src):
            mask = src == s
            halo[mask] = boundaries[s][pos[mask]]
        return halo


def partition_matrix(matrix: CSRMatrix, n_shards: int) -> PartitionPlan:
    """Partition a square CSR matrix into row shards with halo maps.

    Raises :class:`~repro.errors.ConfigurationError` for non-square
    input — row ownership doubles as column ownership, so the two index
    spaces must coincide (every solver this feeds is SPD anyway).
    """
    if matrix.n_rows != matrix.n_cols:
        raise ConfigurationError(
            f"row sharding needs a square matrix, got shape {matrix.shape}"
        )
    ranges = partition_rows(matrix.n_rows, n_shards)
    ptr = matrix.rowptr.astype(np.int64)
    colidx = matrix.colidx.astype(np.int64)

    blocks_raw = []
    for s, (lo, hi) in enumerate(ranges):
        seg = slice(ptr[lo], ptr[hi])
        cols = colidx[seg]
        values = matrix.values[seg]
        local_ptr = ptr[lo:hi + 1] - ptr[lo]
        n_local = hi - lo
        owned = (cols >= lo) & (cols < hi)
        halo_cols = np.unique(cols[~owned])
        local_cols = np.empty(cols.size, dtype=np.int64)
        local_cols[owned] = cols[owned] - lo
        local_cols[~owned] = n_local + np.searchsorted(halo_cols, cols[~owned])
        local = CSRMatrix(
            values.copy(),
            local_cols.astype(np.uint32),
            local_ptr.astype(np.uint32),
            (n_local, n_local + int(halo_cols.size)),
        )
        blocks_raw.append((s, lo, hi, local, halo_cols))

    # Publication maps: which local rows of each shard anyone else reads.
    starts = np.array([lo for lo, _ in ranges], dtype=np.int64)
    needed_by_shard: list[set] = [set() for _ in ranges]
    for s, lo, hi, _local, halo_cols in blocks_raw:
        owners = np.searchsorted(starts, halo_cols, side="right") - 1
        for o in np.unique(owners):
            o_lo = ranges[o][0]
            needed_by_shard[int(o)].update(
                (halo_cols[owners == o] - o_lo).tolist()
            )
    boundary_idx = [
        np.array(sorted(needed), dtype=np.int64) for needed in needed_by_shard
    ]

    blocks = tuple(
        ShardBlock(index=s, row_start=lo, row_stop=hi, matrix=local,
                   halo_cols=halo_cols, boundary_idx=boundary_idx[s])
        for s, lo, hi, local, halo_cols in blocks_raw
    )

    # Assembly maps: where each halo entry comes from.
    halo_src_shard = []
    halo_src_pos = []
    for block in blocks:
        owners = np.searchsorted(starts, block.halo_cols, side="right") - 1
        pos = np.empty(block.halo_cols.size, dtype=np.int64)
        for o in np.unique(owners):
            mask = owners == o
            o_lo = ranges[int(o)][0]
            pos[mask] = np.searchsorted(
                boundary_idx[int(o)], block.halo_cols[mask] - o_lo
            )
        halo_src_shard.append(owners.astype(np.int64))
        halo_src_pos.append(pos)

    return PartitionPlan(
        n_rows=matrix.n_rows,
        row_ranges=tuple(ranges),
        blocks=blocks,
        halo_src_shard=tuple(halo_src_shard),
        halo_src_pos=tuple(halo_src_pos),
    )
