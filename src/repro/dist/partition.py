"""Deterministic row partitioner: per-shard CSR blocks + halo index maps.

One square CSR matrix becomes ``n_shards`` contiguous row blocks.  Each
shard's block is itself a valid :class:`~repro.csr.matrix.CSRMatrix`
whose columns are *locally remapped*: owned columns (those inside the
shard's row range) come first as ``0..n_local-1``, followed by the
shard's **halo** — the sorted external columns its rows reference, which
other shards own.  An SpMV against the block therefore consumes the
concatenation ``[x_local, x_halo]``, which is exactly what the exchange
layer delivers each iteration.

Everything here is a pure function of ``(matrix, n_shards)`` — no RNG,
no worker-count dependence — so the same partition plan is rebuilt
identically by the coordinator, by a respawned worker, and by any test
asserting halo maps.  The plan also precomputes the communication
schedule the coordinator needs:

* ``boundary_idx[s]`` — which of shard *s*'s local rows any other shard
  reads (what *s* must publish each halo exchange);
* ``halo_src_shard[t]`` / ``halo_src_pos[t]`` — for each entry of shard
  *t*'s halo, which shard publishes it and at which position of that
  shard's boundary array (how the coordinator assembles halos from the
  published boundaries).

Degenerate shapes are first-class: ``n_shards > n_rows`` clamps to one
row per shard, a single shard has an empty halo, and a (block-)diagonal
matrix partitions into shards with empty halos and empty boundaries.

:func:`encode_partition` builds the *encoded layout* the
``"erasure"`` recovery strategy runs on: the same data-shard plan plus
``k`` extra erasure shards whose blocks are weighted-sum combinations
of the data shards' rows (:mod:`repro.recover.erasure`), with the
boundary/halo maps extended so the erasure shards' reads ride the same
exchange rounds as everyone else's.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csr.matrix import CSRMatrix
from repro.errors import ConfigurationError
from repro.recover.erasure import ErasureCodec


def partition_rows(n_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Balanced contiguous row ranges, one per shard.

    The first ``n_rows % n_shards`` shards take one extra row, so shard
    sizes differ by at most one.  ``n_shards`` is clamped to ``n_rows``
    (a shard must own at least one row); callers read the effective
    shard count off the returned list's length.
    """
    if n_rows < 1:
        raise ConfigurationError("cannot partition an empty matrix")
    if n_shards < 1:
        raise ConfigurationError("n_shards must be >= 1")
    n_shards = min(n_shards, n_rows)
    base, extra = divmod(n_rows, n_shards)
    ranges = []
    lo = 0
    for s in range(n_shards):
        hi = lo + base + (1 if s < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


@dataclasses.dataclass(frozen=True)
class ShardBlock:
    """One shard's slice of the partitioned system.

    Attributes
    ----------
    index:
        The shard's position in the plan.
    row_start / row_stop:
        The global half-open row range ``[row_start, row_stop)`` this
        shard owns.
    matrix:
        The local CSR block, shape ``(n_local, n_local + n_halo)`` with
        columns remapped as described in the module docstring.
    halo_cols:
        Sorted *global* column indices of the halo (``int64``); empty
        when the shard's rows only touch owned columns.
    boundary_idx:
        Sorted *local* row indices (``int64``) that at least one other
        shard reads — the values this shard publishes each exchange.
    """

    index: int
    row_start: int
    row_stop: int
    matrix: CSRMatrix
    halo_cols: np.ndarray
    boundary_idx: np.ndarray

    @property
    def n_local(self) -> int:
        """Rows (and owned columns) of this shard."""
        return self.row_stop - self.row_start

    @property
    def n_halo(self) -> int:
        """External columns this shard reads each iteration."""
        return int(self.halo_cols.size)


@dataclasses.dataclass(frozen=True)
class PartitionPlan:
    """The full deterministic decomposition of one matrix.

    Attributes
    ----------
    n_rows:
        Global problem size.
    row_ranges:
        Tuple of per-shard global ``(lo, hi)`` row ranges.
    blocks:
        One :class:`ShardBlock` per shard.
    halo_src_shard / halo_src_pos:
        Per shard *t*, parallel ``int64`` arrays over ``halo_cols[t]``:
        entry *k* of *t*'s halo is published by shard
        ``halo_src_shard[t][k]`` at position ``halo_src_pos[t][k]`` of
        that shard's boundary array.
    """

    n_rows: int
    row_ranges: tuple[tuple[int, int], ...]
    blocks: tuple[ShardBlock, ...]
    halo_src_shard: tuple[np.ndarray, ...]
    halo_src_pos: tuple[np.ndarray, ...]

    @property
    def n_shards(self) -> int:
        """The effective shard count (after clamping to ``n_rows``)."""
        return len(self.blocks)

    def owner_of(self, cols: np.ndarray) -> np.ndarray:
        """Map global column indices to the shard index owning each."""
        starts = np.array([lo for lo, _ in self.row_ranges], dtype=np.int64)
        return np.searchsorted(starts, np.asarray(cols, dtype=np.int64),
                               side="right") - 1

    def slice_vector(self, x: np.ndarray, shard: int) -> np.ndarray:
        """Shard ``shard``'s owned slice of a global vector (a copy)."""
        lo, hi = self.row_ranges[shard]
        return np.array(x[lo:hi], dtype=np.float64, copy=True)

    def assemble(self, slices) -> np.ndarray:
        """Concatenate per-shard owned slices back into a global vector."""
        out = np.empty(self.n_rows, dtype=np.float64)
        for (lo, hi), part in zip(self.row_ranges, slices):
            out[lo:hi] = part
        return out

    def halo_for(self, shard: int, boundaries) -> np.ndarray:
        """Assemble shard ``shard``'s halo values from published boundaries.

        ``boundaries`` is a sequence of per-shard arrays, each shard's
        values at its ``boundary_idx`` positions (what the exchange
        round collected).  Order of the result matches
        ``blocks[shard].halo_cols``.
        """
        return _assemble_halo(
            self.halo_src_shard[shard], self.halo_src_pos[shard], boundaries
        )


def _assemble_halo(src: np.ndarray, pos: np.ndarray, boundaries) -> np.ndarray:
    """Gather one requester's halo from the published boundary arrays."""
    halo = np.empty(src.size, dtype=np.float64)
    for s in np.unique(src):
        mask = src == s
        halo[mask] = boundaries[s][pos[mask]]
    return halo


def _row_blocks(matrix: CSRMatrix, ranges) -> list[tuple]:
    """Cut the CSR into per-shard local blocks (owned columns first)."""
    ptr = matrix.rowptr.astype(np.int64)
    colidx = matrix.colidx.astype(np.int64)
    blocks_raw = []
    for s, (lo, hi) in enumerate(ranges):
        seg = slice(ptr[lo], ptr[hi])
        cols = colidx[seg]
        values = matrix.values[seg]
        local_ptr = ptr[lo:hi + 1] - ptr[lo]
        n_local = hi - lo
        owned = (cols >= lo) & (cols < hi)
        halo_cols = np.unique(cols[~owned])
        local_cols = np.empty(cols.size, dtype=np.int64)
        local_cols[owned] = cols[owned] - lo
        local_cols[~owned] = n_local + np.searchsorted(halo_cols, cols[~owned])
        local = CSRMatrix(
            values.copy(),
            local_cols.astype(np.uint32),
            local_ptr.astype(np.uint32),
            (n_local, n_local + int(halo_cols.size)),
        )
        blocks_raw.append((s, lo, hi, local, halo_cols))
    return blocks_raw


def _communication_maps(ranges, halo_lists):
    """Boundary + assembly maps for a set of halo requesters.

    ``halo_lists`` holds one sorted global-column array per requester —
    the data shards first, optionally followed by erasure shards.  Rows
    are only ever *owned* by the data shards described by ``ranges``;
    extra requesters simply widen what the owners must publish.

    Returns ``(boundary_idx, src_shard, src_pos)``: per *owner* the
    sorted local rows anyone reads, and per *requester* the parallel
    (owner shard, boundary position) arrays over its halo.
    """
    starts = np.array([lo for lo, _ in ranges], dtype=np.int64)
    needed_by_shard: list[set] = [set() for _ in ranges]
    for halo_cols in halo_lists:
        owners = np.searchsorted(starts, halo_cols, side="right") - 1
        for o in np.unique(owners):
            o_lo = ranges[int(o)][0]
            needed_by_shard[int(o)].update(
                (halo_cols[owners == o] - o_lo).tolist()
            )
    boundary_idx = [
        np.array(sorted(needed), dtype=np.int64) for needed in needed_by_shard
    ]
    src_shard, src_pos = [], []
    for halo_cols in halo_lists:
        owners = np.searchsorted(starts, halo_cols, side="right") - 1
        pos = np.empty(halo_cols.size, dtype=np.int64)
        for o in np.unique(owners):
            mask = owners == o
            o_lo = ranges[int(o)][0]
            pos[mask] = np.searchsorted(
                boundary_idx[int(o)], halo_cols[mask] - o_lo
            )
        src_shard.append(owners.astype(np.int64))
        src_pos.append(pos)
    return boundary_idx, src_shard, src_pos


def _assemble_plan(matrix, ranges, blocks_raw, extra_halos=()):
    """Build a :class:`PartitionPlan`, optionally serving extra requesters.

    Returns ``(plan, extra_src)`` where ``extra_src`` pairs up the
    ``(src_shard, src_pos)`` maps of the ``extra_halos`` requesters.
    """
    halo_lists = [halo_cols for *_rest, halo_cols in blocks_raw]
    halo_lists += list(extra_halos)
    boundary_idx, src_shard, src_pos = _communication_maps(ranges, halo_lists)
    blocks = tuple(
        ShardBlock(index=s, row_start=lo, row_stop=hi, matrix=local,
                   halo_cols=halo_cols, boundary_idx=boundary_idx[s])
        for s, lo, hi, local, halo_cols in blocks_raw
    )
    n_data = len(blocks_raw)
    plan = PartitionPlan(
        n_rows=matrix.n_rows,
        row_ranges=tuple(ranges),
        blocks=blocks,
        halo_src_shard=tuple(src_shard[:n_data]),
        halo_src_pos=tuple(src_pos[:n_data]),
    )
    extra_src = list(zip(src_shard[n_data:], src_pos[n_data:]))
    return plan, extra_src


def partition_matrix(matrix: CSRMatrix, n_shards: int) -> PartitionPlan:
    """Partition a square CSR matrix into row shards with halo maps.

    Raises :class:`~repro.errors.ConfigurationError` for non-square
    input — row ownership doubles as column ownership, so the two index
    spaces must coincide (every solver this feeds is SPD anyway).
    """
    if matrix.n_rows != matrix.n_cols:
        raise ConfigurationError(
            f"row sharding needs a square matrix, got shape {matrix.shape}"
        )
    ranges = partition_rows(matrix.n_rows, n_shards)
    blocks_raw = _row_blocks(matrix, ranges)
    plan, _ = _assemble_plan(matrix, ranges, blocks_raw)
    return plan


@dataclasses.dataclass(frozen=True)
class ErasureBlock:
    """One erasure shard's encoded slice of the system.

    The block's rows are the weighted sum of the data shards' rows
    (each zero-padded to the stripe length), so applying it to the
    global vector yields exactly the same weighted sum of the data
    shards' SpMV outputs — which is how an erasure shard keeps its
    checksums consistent by running the ordinary CG recurrence.

    Attributes
    ----------
    index:
        The checksum row ``j`` (``0..k-1``); the shard itself sits at
        pool position ``n_data + j``.
    weights:
        The ``(n_data,)`` combination weights of checksum ``j``.
    matrix:
        The encoded CSR block, shape ``(stripe, n_halo)``: it owns no
        global rows, so *every* column it reads is halo.
    halo_cols:
        Sorted global column indices the encoded rows reference.
    """

    index: int
    weights: np.ndarray
    matrix: CSRMatrix
    halo_cols: np.ndarray

    @property
    def stripe(self) -> int:
        """Checksum length (the largest data shard's row count)."""
        return self.matrix.n_rows


@dataclasses.dataclass(frozen=True)
class ErasurePlan:
    """The encoded layout: a data partition plus ``k`` erasure shards.

    ``plan`` is a regular :class:`PartitionPlan` over the data shards
    whose ``boundary_idx`` maps are *extended* to also publish the rows
    the erasure shards read; erasure shards publish nothing (they own
    no rows), so the data-side halo assembly is unchanged.
    """

    plan: PartitionPlan
    blocks: tuple[ErasureBlock, ...]
    halo_src_shard: tuple[np.ndarray, ...]
    halo_src_pos: tuple[np.ndarray, ...]

    @property
    def k(self) -> int:
        """Number of erasure shards."""
        return len(self.blocks)

    @property
    def n_data(self) -> int:
        """Number of data shards."""
        return self.plan.n_shards

    @property
    def stripe(self) -> int:
        """Checksum length shared by every erasure shard."""
        return self.blocks[0].stripe

    def codec(self) -> ErasureCodec:
        """The matching vector codec (same sizes, same weights)."""
        sizes = [block.n_local for block in self.plan.blocks]
        return ErasureCodec(sizes, self.k)

    def halo_for(self, j: int, boundaries) -> np.ndarray:
        """Erasure shard ``j``'s halo from the data shards' boundaries."""
        return _assemble_halo(
            self.halo_src_shard[j], self.halo_src_pos[j], boundaries
        )


def encode_partition(matrix: CSRMatrix, n_shards: int, k: int = 1) -> ErasurePlan:
    """Partition with ``k`` erasure shards riding the exchange schedule.

    The data-shard blocks are byte-identical to
    :func:`partition_matrix`'s except for their ``boundary_idx``, which
    grows to cover the erasure shards' reads (for a stencil matrix that
    typically means every data row is published each exchange — the
    price of keeping the checksums hot).  Erasure shard ``j``'s block is
    built by scaling each data shard's rows with ``weights[j][shard]``,
    shifting them onto the common stripe, and summing overlaps.
    """
    if matrix.n_rows != matrix.n_cols:
        raise ConfigurationError(
            f"row sharding needs a square matrix, got shape {matrix.shape}"
        )
    ranges = partition_rows(matrix.n_rows, n_shards)
    blocks_raw = _row_blocks(matrix, ranges)
    codec = ErasureCodec([hi - lo for lo, hi in ranges], k)

    # Encoded COO triples: global row r of data shard s lands on stripe
    # row (r - lo_s) with its values scaled by weights[j][s].
    ptr = matrix.rowptr.astype(np.int64)
    colidx = matrix.colidx.astype(np.int64)
    nnz_rows = np.repeat(np.arange(matrix.n_rows, dtype=np.int64), np.diff(ptr))
    starts = np.array([lo for lo, _ in ranges], dtype=np.int64)
    nnz_owner = np.searchsorted(starts, nnz_rows, side="right") - 1
    stripe_rows = nnz_rows - starts[nnz_owner]

    order = np.lexsort((colidx, stripe_rows))
    sorted_rows = stripe_rows[order]
    sorted_cols = colidx[order]
    keys = sorted_rows * matrix.n_cols + sorted_cols
    first = np.ones(keys.size, dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    group_starts = np.flatnonzero(first)
    out_rows = sorted_rows[group_starts]
    out_cols = sorted_cols[group_starts]
    halo_cols = np.unique(out_cols)
    local_cols = np.searchsorted(halo_cols, out_cols)
    rowptr = np.searchsorted(out_rows, np.arange(codec.stripe + 1))

    eblocks = []
    for j in range(k):
        scaled = matrix.values[order] * codec.weights[j][nnz_owner[order]]
        values = np.add.reduceat(scaled, group_starts)
        encoded = CSRMatrix(
            values,
            local_cols.astype(np.uint32),
            rowptr.astype(np.uint32),
            (codec.stripe, int(halo_cols.size)),
        )
        eblocks.append(
            ErasureBlock(index=j, weights=codec.weights[j].copy(),
                         matrix=encoded, halo_cols=halo_cols)
        )

    plan, extra_src = _assemble_plan(
        matrix, ranges, blocks_raw,
        extra_halos=[block.halo_cols for block in eblocks],
    )
    return ErasurePlan(
        plan=plan,
        blocks=tuple(eblocks),
        halo_src_shard=tuple(src for src, _ in extra_src),
        halo_src_pos=tuple(pos for _, pos in extra_src),
    )
