"""Experiment harness: timing, host overhead measurement, reporting.

Two evidence sources feed every figure reproduction:

* **host measurements** (:mod:`repro.harness.overhead`) — the actual
  NumPy kernels of this library, protected vs unprotected, timed on the
  machine running the benchmarks;
* **platform model** (:mod:`repro.platforms`) — calibrated predictions
  for the paper's five machines.

:mod:`repro.harness.experiments` assembles both into the per-figure
tables, and :mod:`repro.harness.report` prints them.
"""

from repro.harness.timing import time_callable, Timing
from repro.harness.overhead import (
    measure_element_overheads,
    measure_rowptr_overheads,
    measure_vector_overheads,
    measure_interval_curve,
    measure_full_protection,
)
from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentRow,
    run_experiment,
)
from repro.harness.report import format_table, format_interval_series

__all__ = [
    "time_callable",
    "Timing",
    "measure_element_overheads",
    "measure_rowptr_overheads",
    "measure_vector_overheads",
    "measure_interval_curve",
    "measure_full_protection",
    "EXPERIMENTS",
    "ExperimentRow",
    "run_experiment",
    "format_table",
    "format_interval_series",
]
