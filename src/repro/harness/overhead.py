"""Host overhead measurement: the paper's experiments on *this* machine.

Each function builds the TeaLeaf operator for an ``n x n`` deck, runs the
relevant kernel loop protected and unprotected, and reports the relative
runtime overhead — the same quantity the paper's Figs. 4-9 plot.  The
kernel loop is a faithful CG-iteration body (SpMV + two dots + three
axpys) rather than a full solve, so measurements are stable and scale
with grid size, not condition number.
"""

from __future__ import annotations

import numpy as np

from repro.csr.build import five_point_operator
from repro.csr.matrix import CSRMatrix
from repro.harness.timing import overhead_ratio, time_callable
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector
from repro.protect.kernels import protected_spmv


def tealeaf_like_matrix(n: int = 256, seed: int = 0) -> CSRMatrix:
    """A TeaLeaf-shaped operator: n x n grid, 5 stored entries per row."""
    rng = np.random.default_rng(seed)
    kx = rng.uniform(0.5, 2.0, (n, n))
    ky = rng.uniform(0.5, 2.0, (n, n))
    return five_point_operator(n, n, kx, ky, 0.25)


def _cg_iteration_body(matvec, x, r, p):
    """One CG-shaped kernel mix: SpMV + 2 dots + 3 axpy-scale updates."""
    w = matvec(p)
    alpha = float(np.dot(r, r)) / float(np.dot(p, w))
    x = x + alpha * p
    r = r - alpha * w
    beta = float(np.dot(r, r))
    p = r + (beta + 1e-30) * p
    return x, r, p


def measure_element_overheads(
    n: int = 256, schemes=("sed", "secded64", "secded128", "crc32c"),
    iters: int = 4, repeats: int = 5,
) -> dict[str, float]:
    """Fig. 4 on the host: CSR-element protection overhead per scheme."""
    matrix = tealeaf_like_matrix(n)
    x = np.random.default_rng(1).standard_normal(matrix.n_cols)

    def baseline():
        for _ in range(iters):
            matrix.matvec(x)

    t_base = time_callable(baseline, repeats=repeats)
    out = {}
    for scheme in schemes:
        pmat = ProtectedCSRMatrix(matrix, scheme, None)

        def run():
            policy = CheckPolicy(interval=1, correct=False)
            for _ in range(iters):
                protected_spmv(pmat, x, policy)

        out[scheme] = overhead_ratio(time_callable(run, repeats=repeats), t_base)
    return out


def measure_rowptr_overheads(
    n: int = 256, schemes=("sed", "secded64", "secded128", "crc32c"),
    iters: int = 4, repeats: int = 5,
) -> dict[str, float]:
    """Fig. 5 on the host: row-pointer protection overhead per scheme."""
    matrix = tealeaf_like_matrix(n)
    x = np.random.default_rng(2).standard_normal(matrix.n_cols)

    def baseline():
        for _ in range(iters):
            matrix.matvec(x)

    t_base = time_callable(baseline, repeats=repeats)
    out = {}
    for scheme in schemes:
        pmat = ProtectedCSRMatrix(matrix, None, scheme)

        def run():
            policy = CheckPolicy(interval=1, correct=False)
            for _ in range(iters):
                protected_spmv(pmat, x, policy)

        out[scheme] = overhead_ratio(time_callable(run, repeats=repeats), t_base)
    return out


def measure_vector_overheads(
    n: int = 256, schemes=("sed", "secded64", "secded128", "crc32c"),
    iters: int = 4, repeats: int = 5,
) -> dict[str, float]:
    """Fig. 9 on the host: dense-vector protection overhead per scheme."""
    matrix = tealeaf_like_matrix(n)
    rng = np.random.default_rng(3)
    x0 = rng.standard_normal(matrix.n_cols)
    r0 = rng.standard_normal(matrix.n_cols)

    def baseline():
        x, r, p = x0.copy(), r0.copy(), r0.copy()
        for _ in range(iters):
            x, r, p = _cg_iteration_body(matrix.matvec, x, r, p)

    t_base = time_callable(baseline, repeats=repeats)
    out = {}
    for scheme in schemes:

        def run():
            px = ProtectedVector(x0, scheme)
            pr = ProtectedVector(r0, scheme)
            pp = ProtectedVector(r0, scheme)
            for _ in range(iters):
                p_val = pp.values()
                pp.check(correct=False)
                w = matrix.matvec(p_val)
                r_val = pr.values()
                pr.check(correct=False)
                alpha = float(np.dot(r_val, r_val)) / float(np.dot(p_val, w))
                px.check(correct=False)
                px.store(px.values() + alpha * p_val)
                r_new = r_val - alpha * w
                pr.store(r_new)
                beta = float(np.dot(r_new, r_new))
                pp.store(r_new + (beta + 1e-30) * p_val)

        out[scheme] = overhead_ratio(time_callable(run, repeats=repeats), t_base)
    return out


def measure_interval_curve(
    scheme: str, n: int = 256, intervals=(1, 2, 4, 8, 16, 32, 64, 128),
    iters: int = 16, repeats: int = 3,
) -> dict[int, float]:
    """Figs. 6-8 on the host: whole-matrix overhead vs check interval."""
    matrix = tealeaf_like_matrix(n)
    x = np.random.default_rng(4).standard_normal(matrix.n_cols)

    def baseline():
        for _ in range(iters):
            matrix.matvec(x)

    t_base = time_callable(baseline, repeats=repeats)
    pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
    out = {}
    for interval in intervals:

        def run():
            policy = CheckPolicy(interval=int(interval), correct=False)
            for _ in range(iters):
                protected_spmv(pmat, x, policy)
            if policy.end_of_step():
                pmat.check_all(correct=False)

        out[int(interval)] = overhead_ratio(
            time_callable(run, repeats=repeats), t_base
        )
    return out


def measure_full_protection(
    n: int = 192, scheme: str = "secded64", repeats: int = 3,
    interval: int = 1, vector_interval: int | None = None,
    method: str = "cg",
) -> float:
    """T1(b) on the host: whole matrix + all vectors protected.

    ``interval``/``vector_interval`` select the deferred-verification
    schedule; the default of 1 is the paper's check-on-every-access mode.
    ``method`` picks any registered solver (the registry threads all of
    them through the engine, so the ablation covers Jacobi/Chebyshev's
    different kernel mixes too).
    """
    from repro.protect.config import ProtectionConfig
    from repro.solvers.registry import solve

    matrix = tealeaf_like_matrix(n)
    b = np.random.default_rng(5).standard_normal(matrix.n_rows)
    eps, iters = 1e-12, 60
    config = ProtectionConfig(
        element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=scheme,
        interval=interval, vector_interval=vector_interval, correct=False,
    )

    t_base = time_callable(
        lambda: solve(matrix, b, method=method, eps=eps, max_iters=iters),
        repeats=repeats,
    )
    pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
    t_prot = time_callable(
        lambda: solve(pmat, b, method=method, protection=config,
                      eps=eps, max_iters=iters),
        repeats=repeats,
    )
    return overhead_ratio(t_prot, t_base)


def measure_deferred_full_protection(
    n: int = 192, scheme: str = "secded64", repeats: int = 3,
    intervals=(1, 8, 16, 32), method: str = "cg",
) -> dict[int, float]:
    """Full-protection overhead vs deferred-verification interval.

    The engine's headline curve: how far dirty-window write buffering
    plus amortised checks push the T1(b) overhead down as the window
    widens.  The matrix and the unprotected baseline are measured once
    and shared by every interval so the curve's columns differ only in
    the schedule, not in baseline jitter.
    """
    from repro.protect.config import ProtectionConfig
    from repro.solvers.registry import solve

    matrix = tealeaf_like_matrix(n)
    b = np.random.default_rng(5).standard_normal(matrix.n_rows)
    eps, iters = 1e-12, 60

    t_base = time_callable(
        lambda: solve(matrix, b, method=method, eps=eps, max_iters=iters),
        repeats=repeats,
    )
    pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
    out = {}
    for interval in intervals:
        config = ProtectionConfig(
            element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=scheme,
            interval=int(interval), correct=False,
        )
        t_prot = time_callable(
            lambda cfg=config: solve(pmat, b, method=method, protection=cfg,
                                     eps=eps, max_iters=iters),
            repeats=repeats,
        )
        out[int(interval)] = overhead_ratio(t_prot, t_base)
    return out
