"""The per-figure experiment registry (DESIGN.md's experiment index).

Each entry knows how to produce the figure's series from both evidence
sources — the host measurement and the platform model — and which paper
anchors apply.  ``run_experiment`` returns uniform rows the report module
formats, and the ``benchmarks/`` tree calls straight into this registry
so the same code regenerates every figure.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.harness import overhead as hov
from repro.platforms import predict as ppred
from repro.platforms.specs import PAPER_ANCHORS


@dataclasses.dataclass
class ExperimentRow:
    """One (configuration -> overhead) data point of a figure."""

    figure: str
    series: str          # e.g. platform or "host"
    key: str             # scheme name or interval
    overhead: float
    source: str          # "model" | "measured"
    paper_value: float | None = None


@dataclasses.dataclass(frozen=True)
class Experiment:
    figure: str
    title: str
    runner: Callable[..., list[ExperimentRow]]


def _anchor_lookup(region: str, scheme: str, platform: str, interval: int = 1):
    for anchor in PAPER_ANCHORS:
        if (
            anchor.region == region
            and anchor.scheme == scheme
            and anchor.platform == platform
            and (anchor.interval == interval or anchor.interval == 999)
        ):
            return anchor.value
    return None


def _figure_bars(figure, region, model_table, host_fn, host_kwargs) -> list[ExperimentRow]:
    rows = []
    for platform, by_scheme in model_table().items():
        for scheme, value in by_scheme.items():
            rows.append(
                ExperimentRow(
                    figure=figure, series=platform, key=scheme,
                    overhead=value, source="model",
                    paper_value=_anchor_lookup(region, scheme, platform),
                )
            )
    for scheme, value in host_fn(**host_kwargs).items():
        rows.append(
            ExperimentRow(
                figure=figure, series="host", key=scheme,
                overhead=value, source="measured",
            )
        )
    return rows


def run_fig4(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return _figure_bars("fig4", "elements", ppred.figure4_table,
                        hov.measure_element_overheads, {"n": n, "repeats": repeats})


def run_fig5(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return _figure_bars("fig5", "rowptr", ppred.figure5_table,
                        hov.measure_rowptr_overheads, {"n": n, "repeats": repeats})


def run_fig9(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return _figure_bars("fig9", "vector", ppred.figure9_table,
                        hov.measure_vector_overheads, {"n": n, "repeats": repeats})


def _run_interval_figure(
    figure: str, platform: str, scheme: str, n: int, repeats: int
) -> list[ExperimentRow]:
    rows = []
    for interval, value in ppred.interval_figure(platform, scheme).items():
        rows.append(
            ExperimentRow(
                figure=figure, series=platform, key=str(interval),
                overhead=value, source="model",
                paper_value=_anchor_lookup("matrix", scheme, platform, interval),
            )
        )
    # The engine's schedule on the same axes: snapshot-validated non-due
    # accesses instead of per-access range checks (ROADMAP follow-up).
    for interval, value in ppred.deferred_interval_figure(platform, scheme).items():
        rows.append(
            ExperimentRow(
                figure=figure, series=f"{platform}+eng", key=str(interval),
                overhead=value, source="model",
            )
        )
    measured = hov.measure_interval_curve(scheme, n=n, repeats=repeats)
    for interval, value in measured.items():
        rows.append(
            ExperimentRow(
                figure=figure, series="host", key=str(interval),
                overhead=value, source="measured",
            )
        )
    return rows


def run_fig6(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 6: whole-matrix SED vs interval (paper platform: Broadwell)."""
    return _run_interval_figure("fig6", "broadwell", "sed", n, repeats)


def run_fig7(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 7: whole-matrix SECDED64 vs interval (ThunderX)."""
    return _run_interval_figure("fig7", "thunderx", "secded64", n, repeats)


def run_fig8(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 8: whole-matrix CRC32C vs interval (GTX 1080 Ti)."""
    return _run_interval_figure("fig8", "gtx1080ti", "crc32c", n, repeats)


def run_t1(n: int = 192, repeats: int = 3) -> list[ExperimentRow]:
    """T1: combined full protection + the K40 hardware-ECC target."""
    rows = [
        ExperimentRow(
            figure="t1", series="k40", key="hardware-ecc",
            overhead=0.081, source="model", paper_value=0.081,
        )
    ]
    for platform in ("p100", "gtx1080ti", "broadwell"):
        rows.append(
            ExperimentRow(
                figure="t1", series=platform, key="full-secded64",
                overhead=ppred.combined_full_protection(platform),
                source="model",
                paper_value=_anchor_lookup("full", "secded64", platform),
            )
        )
        for interval in (8, 16):
            rows.append(
                ExperimentRow(
                    figure="t1", series=platform,
                    key=f"full-secded64-deferred{interval}",
                    overhead=ppred.combined_full_protection_deferred(
                        platform, interval=interval
                    ),
                    source="model",
                )
            )
    rows.append(
        ExperimentRow(
            figure="t1", series="host", key="full-secded64",
            overhead=hov.measure_full_protection(n=n, repeats=repeats, method="cg"),
            source="measured",
        )
    )
    for interval, value in hov.measure_deferred_full_protection(
        n=n, repeats=repeats, intervals=(8, 16), method="cg"
    ).items():
        rows.append(
            ExperimentRow(
                figure="t1", series="host", key=f"full-secded64-deferred{interval}",
                overhead=value, source="measured",
            )
        )
    return rows


EXPERIMENTS: dict[str, Experiment] = {
    "fig4": Experiment("fig4", "CSR element protection overhead", run_fig4),
    "fig5": Experiment("fig5", "Row pointer protection overhead", run_fig5),
    "fig6": Experiment("fig6", "Whole-matrix SED vs check interval", run_fig6),
    "fig7": Experiment("fig7", "Whole-matrix SECDED64 vs check interval", run_fig7),
    "fig8": Experiment("fig8", "Whole-matrix CRC32C vs check interval", run_fig8),
    "fig9": Experiment("fig9", "Dense vector protection overhead", run_fig9),
    "t1": Experiment("t1", "Combined full protection headline numbers", run_t1),
}


def run_experiment(figure: str, **kwargs) -> list[ExperimentRow]:
    """Run one registry entry by figure id ('fig4' ... 'fig9', 't1')."""
    return EXPERIMENTS[figure].runner(**kwargs)
