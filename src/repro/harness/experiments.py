"""The per-figure experiment registry, as thin sweep presets.

Each figure is one declarative grid — a
:class:`~repro.sweeps.spec.SweepSpec` from :mod:`repro.sweeps.presets`
whose cells are the figure's *series* (platform-model predictions, the
engine-overlay curves, the host measurement) — executed through the
same :func:`~repro.sweeps.core.run_sweep` core as the fault campaigns.
``run_experiment`` therefore inherits the sweep machinery for free:
``workers=`` fans the series out over a spawn pool, ``store=`` makes a
long figure run resumable, and ``repro sweep --preset fig7`` is the
same computation as ``run_experiment("fig7")``.

``run_experiment`` returns uniform :class:`ExperimentRow` objects the
report module formats, and the ``benchmarks/`` tree calls straight into
this registry so the same code regenerates every figure.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

from repro.sweeps.core import run_sweep
from repro.sweeps.presets import get_preset


@dataclasses.dataclass
class ExperimentRow:
    """One (configuration -> overhead) data point of a figure."""

    figure: str
    series: str          # e.g. platform or "host"
    key: str             # scheme name or interval
    overhead: float
    source: str          # "model" | "measured"
    paper_value: float | None = None


@dataclasses.dataclass(frozen=True)
class Experiment:
    figure: str
    title: str
    runner: Callable[..., list[ExperimentRow]]


def run_experiment(
    figure: str,
    *,
    workers: int = 1,
    store=None,
    seed: int = 0,
    **kwargs,
) -> list[ExperimentRow]:
    """Run one registry entry by figure id ('fig4' ... 'fig9', 't1').

    ``kwargs`` are the figure preset's overrides (``n``, ``repeats``);
    ``workers``/``store``/``seed`` pass through to
    :func:`~repro.sweeps.core.run_sweep`, so figure regeneration shares
    the campaign grids' parallelism and resume semantics.
    """
    if figure not in EXPERIMENTS:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown figure {figure!r}; choose from {sorted(EXPERIMENTS)} "
            "(campaign grids run through repro.sweeps directly)"
        )
    spec = get_preset(figure, **kwargs)
    result = run_sweep(spec, workers=workers, store=store, seed=seed)
    return [
        ExperimentRow(**row)
        for record in result.records
        for row in record["result"]["rows"]
    ]


def run_fig4(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return run_experiment("fig4", n=n, repeats=repeats)


def run_fig5(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return run_experiment("fig5", n=n, repeats=repeats)


def run_fig9(n: int = 256, repeats: int = 5) -> list[ExperimentRow]:
    return run_experiment("fig9", n=n, repeats=repeats)


def run_fig6(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 6: whole-matrix SED vs interval (paper platform: Broadwell)."""
    return run_experiment("fig6", n=n, repeats=repeats)


def run_fig7(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 7: whole-matrix SECDED64 vs interval (ThunderX)."""
    return run_experiment("fig7", n=n, repeats=repeats)


def run_fig8(n: int = 256, repeats: int = 3) -> list[ExperimentRow]:
    """Fig. 8: whole-matrix CRC32C vs interval (GTX 1080 Ti)."""
    return run_experiment("fig8", n=n, repeats=repeats)


def run_t1(n: int = 192, repeats: int = 3) -> list[ExperimentRow]:
    """T1: combined full protection + the K40 hardware-ECC target."""
    return run_experiment("t1", n=n, repeats=repeats)


EXPERIMENTS: dict[str, Experiment] = {
    "fig4": Experiment("fig4", "CSR element protection overhead", run_fig4),
    "fig5": Experiment("fig5", "Row pointer protection overhead", run_fig5),
    "fig6": Experiment("fig6", "Whole-matrix SED vs check interval", run_fig6),
    "fig7": Experiment("fig7", "Whole-matrix SECDED64 vs check interval", run_fig7),
    "fig8": Experiment("fig8", "Whole-matrix CRC32C vs check interval", run_fig8),
    "fig9": Experiment("fig9", "Dense vector protection overhead", run_fig9),
    "t1": Experiment("t1", "Combined full protection headline numbers", run_t1),
}
