"""Plain-text tables mirroring the paper's figures.

:func:`format_grid` is the one generic renderer — rows x columns of
preformatted cell text — and everything else here (and the sweep
renderers in :mod:`repro.sweeps.render`) lays its data out through it,
so every table in the repo shares alignment and missing-cell
conventions.
"""

from __future__ import annotations

from collections import defaultdict

from repro.harness.experiments import ExperimentRow


def _fmt(value: float | None) -> str:
    return "    -" if value is None else f"{100 * value:5.1f}"


def format_grid(
    rows: list,
    col_labels: list[str],
    cells: dict[tuple, str],
    *,
    title: str = "",
    corner: str = "",
    missing: str = "",
) -> str:
    """The shared table renderer: right-aligned columns, one header rule.

    ``rows`` entries are either a plain label or a ``(key, display)``
    pair (duplicate display text — e.g. repeated ``(paper)`` overlay
    lines — needs distinct keys).  ``cells`` maps ``(row_key,
    col_label)`` to preformatted text; absent pairs render as
    ``missing``.  Column widths adapt to the widest cell (never
    narrower than the column header), so callers format values, not
    layout.
    """
    keyed = [(row, row) if not isinstance(row, tuple) else row for row in rows]
    widths = {
        col: max(len(str(col)),
                 max((len(cells.get((key, col), missing)) for key, _ in keyed),
                     default=0))
        for col in col_labels
    }
    label_width = max([len(corner)] + [len(str(label)) for _, label in keyed])
    lines = []
    if title:
        lines.append(title)
    header = f"{corner:>{label_width}} | " + " ".join(
        f"{str(col):>{widths[col]}}" for col in col_labels
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key, label in keyed:
        lines.append(
            f"{str(label):>{label_width}} | "
            + " ".join(f"{cells.get((key, col), missing):>{widths[col]}}"
                       for col in col_labels)
        )
    return "\n".join(lines)


def format_table(rows: list[ExperimentRow], title: str = "") -> str:
    """Bar-figure layout: one line per series, one column per scheme."""
    by_series: dict[str, list[ExperimentRow]] = defaultdict(list)
    keys: list[str] = []
    for row in rows:
        by_series[row.series].append(row)
        if row.key not in keys:
            keys.append(row.key)
    grid_rows: list[tuple[str, str]] = []
    cells: dict[tuple[str, str], str] = {}
    for series, series_rows in by_series.items():
        values = {r.key: r for r in series_rows}
        label = f"{series:>12} {series_rows[0].source:>8}"
        grid_rows.append((series, label))
        has_paper = False
        for key in keys:
            row = values.get(key)
            cells[(series, key)] = _fmt(row.overhead if row else None) + "%"
            paper = row.paper_value if row else None
            if paper is not None:
                has_paper = True
                cells[(f"{series}/paper", key)] = _fmt(paper) + "%"
        if has_paper:
            grid_rows.append((f"{series}/paper", f"{'(paper)':>12} {'':>8}"))
    return format_grid(
        grid_rows, [f"{k:>10}" for k in keys],
        {(r, f"{k:>10}"): text for (r, k), text in cells.items()},
        title=title, corner=f"{'series':>12} {'src':>8}",
        missing=_fmt(None) + "%",
    )


def format_interval_series(rows: list[ExperimentRow], title: str = "") -> str:
    """Line-figure layout: interval on the x axis."""
    by_series: dict[str, dict[int, ExperimentRow]] = defaultdict(dict)
    for row in rows:
        by_series[row.series][int(row.key)] = row
    intervals = sorted({int(r.key) for r in rows})
    col_labels = [f"N={n:>4}" for n in intervals]
    cells = {
        (series, f"N={n:>4}"): _fmt(points[n].overhead) + "%"
        for series, points in by_series.items()
        for n in intervals
        if n in points
    }
    return format_grid(
        list(by_series), col_labels, cells,
        title=title, corner="series", missing=_fmt(None) + "%",
    )
