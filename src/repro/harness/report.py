"""Plain-text tables mirroring the paper's figures."""

from __future__ import annotations

from collections import defaultdict

from repro.harness.experiments import ExperimentRow


def _fmt(value: float | None) -> str:
    return "    -" if value is None else f"{100 * value:5.1f}"


def format_table(rows: list[ExperimentRow], title: str = "") -> str:
    """Bar-figure layout: one line per series, one column per scheme."""
    by_series: dict[str, list[ExperimentRow]] = defaultdict(list)
    keys: list[str] = []
    for row in rows:
        by_series[row.series].append(row)
        if row.key not in keys:
            keys.append(row.key)
    lines = []
    if title:
        lines.append(title)
    header = f"{'series':>12} {'src':>8} | " + " ".join(f"{k:>10}" for k in keys)
    lines.append(header)
    lines.append("-" * len(header))
    for series, series_rows in by_series.items():
        values = {r.key: r for r in series_rows}
        source = series_rows[0].source
        cells, paper_cells = [], []
        has_paper = False
        for key in keys:
            row = values.get(key)
            cells.append(_fmt(row.overhead if row else None) + "%")
            paper = row.paper_value if row else None
            has_paper |= paper is not None
            paper_cells.append(_fmt(paper) + "%")
        lines.append(f"{series:>12} {source:>8} | " + " ".join(f"{c:>10}" for c in cells))
        if has_paper:
            lines.append(f"{'(paper)':>12} {'':>8} | " + " ".join(f"{c:>10}" for c in paper_cells))
    return "\n".join(lines)


def format_interval_series(rows: list[ExperimentRow], title: str = "") -> str:
    """Line-figure layout: interval on the x axis."""
    by_series: dict[str, dict[int, ExperimentRow]] = defaultdict(dict)
    for row in rows:
        by_series[row.series][int(row.key)] = row
    intervals = sorted({int(r.key) for r in rows})
    lines = []
    if title:
        lines.append(title)
    header = f"{'series':>12} | " + " ".join(f"N={n:>4}" for n in intervals)
    lines.append(header)
    lines.append("-" * len(header))
    for series, points in by_series.items():
        cells = [
            _fmt(points[n].overhead if n in points else None) + "%"
            for n in intervals
        ]
        lines.append(f"{series:>12} | " + " ".join(f"{c:>6}" for c in cells))
    return "\n".join(lines)
