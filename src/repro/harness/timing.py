"""Minimal, deterministic-ish timing utilities.

The paper runs each configuration five times and takes the mean; we
default to the same protocol but also keep the minimum (less sensitive to
noisy shared machines) — overhead ratios use the minimum by default.
"""

from __future__ import annotations

import dataclasses
import time


@dataclasses.dataclass
class Timing:
    """Wall-clock samples of one measured callable."""

    samples: list[float]

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)


def time_callable(fn, *, repeats: int = 5, warmup: int = 1) -> Timing:
    """Time ``fn()`` ``repeats`` times after ``warmup`` unmeasured calls."""
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return Timing(samples=samples)


def overhead_ratio(protected: Timing, baseline: Timing) -> float:
    """Relative overhead: (t_protected - t_base) / t_base, via best times."""
    return protected.best / baseline.best - 1.0
