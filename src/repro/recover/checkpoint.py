"""In-memory checkpoints: solver state snapshots + pristine sources.

Two kinds of data live here, with different lifetimes:

* **matrix sources** — a decoded pristine copy of each protected matrix,
  captured right after the up-front forced verification (so it is a
  *verified-clean* copy).  The matrix never changes during a solve, so
  ``repopulate`` can rebuild storage + redundancy from it at any point.
* **solver checkpoints** — rolling snapshots of the solver's live state
  vectors (taken from their authoritative decoded values, so a buffered
  dirty window is captured correctly) plus whatever scalars the solver
  needs to resume (the iteration counter, at minimum).  Only the latest
  checkpoint is kept: rolling one slot is the textbook in-memory
  checkpointing trade-off and bounds memory at one extra copy of the
  state.

Everything is process-local and cheap — this is the ABFT story's
"no checkpoint/restart *from disk*" recovery, not a restart file.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass
class Checkpoint:
    """One rolling solver snapshot."""

    #: Decoded state-vector contents by region name (``x``, ``r``, ...).
    vectors: dict[str, np.ndarray]
    #: Solver resume scalars; always carries ``it`` (iteration counter).
    scalars: dict[str, float]


class CheckpointStore:
    """Holds one solve's recovery data (reset by ``begin_solve``)."""

    def __init__(self):
        self._matrix_sources: dict[int, object] = {}
        self._persistent_sources: dict[int, object] = {}
        self._latest: Checkpoint | None = None
        self.snapshots_taken = 0

    def begin_solve(self) -> None:
        """Drop the previous solve's snapshots and per-solve sources.

        Application-held (persistent) sources survive: they exist so
        corruption that *predates* the solve — before the toolkit could
        decode its own verified-clean copy — still has a repair path.
        """
        self._matrix_sources.clear()
        self._latest = None

    # -- pristine sources ------------------------------------------------
    def put_matrix_source(self, matrix, source, persistent: bool = False) -> None:
        """Register a verified-clean decoded source for ``matrix``.

        ``persistent=True`` marks an application-held source (e.g. a
        campaign's own pristine copy) that outlives ``begin_solve`` —
        the only way a DUE raised by the *up-front* forced check can be
        repaired, since the solve never saw clean storage to snapshot.
        """
        target = self._persistent_sources if persistent else self._matrix_sources
        target[id(matrix)] = source

    def matrix_source(self, matrix):
        """The pristine source for ``matrix``, or ``None``."""
        key = id(matrix)
        return self._matrix_sources.get(key, self._persistent_sources.get(key))

    # -- rolling solver checkpoints --------------------------------------
    def snapshot(
        self, vectors: dict[str, np.ndarray], scalars: dict, copy: bool = True
    ) -> Checkpoint:
        """Store (and return) a new latest checkpoint.

        ``copy=False`` takes ownership of the arrays instead of copying
        — for callers handing over freshly-allocated decodes (e.g.
        ``ProtectedVector.values()`` output), which would otherwise be
        copied twice per checkpoint on the solver hot path.
        """
        self._latest = Checkpoint(
            vectors={
                name: np.array(values, dtype=np.float64, copy=copy)
                for name, values in vectors.items()
            },
            scalars=dict(scalars),
        )
        self.snapshots_taken += 1
        return self._latest

    def latest(self) -> Checkpoint | None:
        """The most recent checkpoint, or ``None`` before the first."""
        return self._latest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckpointStore(sources={len(self._matrix_sources)}, "
            f"snapshots_taken={self.snapshots_taken})"
        )
