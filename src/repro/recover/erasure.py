"""Erasure coding for sharded solves: checksum shards and reconstruction.

The fault-oblivious recovery of Gleich/Grama/Zhu (arXiv:1412.7364)
augments a partitioned linear system with a few *checksum* rows so that
a lost partition can be recomputed algebraically from the survivors —
the solve carries the redundancy along instead of checkpointing.  This
module is the arithmetic core of that idea for the row-sharded layout
of :mod:`repro.dist`:

* every data shard *s* contributes its owned slice ``v_s`` (zero-padded
  to the common *stripe* length, the largest shard size);
* erasure shard *j* holds the weighted sum ``c_j = sum_s w[j][s] *
  pad(v_s)`` for each solver vector, where ``w`` is a Vandermonde
  matrix ``w[j][s] = (s+1)**j`` — row 0 is the plain (XOR-style) sum,
  and any ``k`` rows are linearly independent over distinct shards, so
  ``k`` checksums tolerate ``k`` simultaneous losses;
* because the CG recurrence updates every vector *linearly* given the
  global scalars, an erasure shard that applies the same recurrence to
  its checksums (with the encoded matrix block built by
  :func:`repro.dist.partition.encode_partition`) keeps them consistent
  with the live data shards at every round boundary — no refresh
  traffic on the happy path.

Reconstruction after losing shards ``D`` solves, per stripe position,
the small ``|D| x |D|`` system ``W_sel @ X = C - sum_alive w * pad(v)``
where ``W_sel`` are the weight columns of the dead shards — exact up to
float round-off, which is why recovered solves match the reference at
the documented multi-shard tolerance rather than bitwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def erasure_weights(n_data: int, k: int) -> np.ndarray:
    """The ``(k, n_data)`` Vandermonde combination weights.

    ``weights[j][s] = (s+1)**j``: row 0 is all ones (a plain sum), and
    any ``k`` columns form an invertible Vandermonde block, so any
    ``k``-subset of shards can be solved for from ``k`` checksums.
    """
    if n_data < 1:
        raise ConfigurationError("erasure coding needs at least one data shard")
    if k < 1:
        raise ConfigurationError("erasure coding needs at least one checksum")
    base = np.arange(1, n_data + 1, dtype=np.float64)
    return base[np.newaxis, :] ** np.arange(k, dtype=np.float64)[:, np.newaxis]


class ErasureCodec:
    """Encode per-shard vector slices into checksums and back.

    Parameters
    ----------
    sizes:
        Per-data-shard slice lengths (the partition's ``n_local``
        values).  The *stripe* — the checksum length — is their max;
        shorter slices are zero-padded on encode and truncated on
        reconstruction.
    k:
        Number of checksum rows kept (``RecoveryPolicy.erasure_shards``).
    """

    def __init__(self, sizes, k: int = 1):
        self.sizes = tuple(int(n) for n in sizes)
        if any(n < 1 for n in self.sizes):
            raise ConfigurationError("every data shard must own >= 1 row")
        self.k = int(k)
        self.n_data = len(self.sizes)
        self.stripe = max(self.sizes)
        self.weights = erasure_weights(self.n_data, self.k)

    def pad(self, shard: int, values: np.ndarray) -> np.ndarray:
        """Zero-pad one shard's slice to the stripe length (a copy)."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.sizes[shard],):
            raise ConfigurationError(
                f"shard {shard} slice has shape {values.shape}, "
                f"expected ({self.sizes[shard]},)"
            )
        out = np.zeros(self.stripe, dtype=np.float64)
        out[: values.size] = values
        return out

    def encode(self, slices, j: int) -> np.ndarray:
        """Checksum ``j`` of a full set of per-shard slices."""
        if len(slices) != self.n_data:
            raise ConfigurationError(
                f"expected {self.n_data} slices, got {len(slices)}"
            )
        out = np.zeros(self.stripe, dtype=np.float64)
        for s, values in enumerate(slices):
            out += self.weights[j, s] * self.pad(s, values)
        return out

    def encode_all(self, slices) -> list[np.ndarray]:
        """All ``k`` checksums of a full set of per-shard slices."""
        return [self.encode(slices, j) for j in range(self.k)]

    def reconstruct(
        self,
        dead: list[int],
        survivors: dict[int, np.ndarray],
        checksums: dict[int, np.ndarray],
    ) -> dict[int, np.ndarray]:
        """Recover the slices of the ``dead`` shards from the survivors.

        ``survivors`` maps each *live* data shard to its current slice;
        ``checksums`` maps each *live* checksum index ``j`` to its
        current stripe array.  Needs ``len(checksums) >= len(dead)``;
        returns ``{dead_shard: slice}`` with original (unpadded)
        lengths.  Raises :class:`ConfigurationError` when the survivors
        cannot determine the dead shards, and
        :class:`ArithmeticError` when the recovered values are not
        finite (numerically unusable — callers fall back to a restart).
        """
        dead = sorted(int(d) for d in dead)
        if not dead:
            return {}
        live_j = sorted(checksums)[: len(dead)]
        if len(live_j) < len(dead):
            raise ConfigurationError(
                f"cannot reconstruct {len(dead)} shards from "
                f"{len(checksums)} surviving checksum(s)"
            )
        expected = set(range(self.n_data)) - set(dead)
        if set(survivors) != expected:
            raise ConfigurationError(
                f"survivor slices for shards {sorted(expected)} required, "
                f"got {sorted(survivors)}"
            )
        # Residual of each kept checksum after subtracting the survivors.
        rhs = np.empty((len(live_j), self.stripe), dtype=np.float64)
        for row, j in enumerate(live_j):
            resid = np.array(checksums[j], dtype=np.float64, copy=True)
            if resid.shape != (self.stripe,):
                raise ConfigurationError(
                    f"checksum {j} has shape {resid.shape}, "
                    f"expected ({self.stripe},)"
                )
            for s, values in survivors.items():
                resid -= self.weights[j, s] * self.pad(s, values)
            rhs[row] = resid
        w_sel = self.weights[np.ix_(live_j, dead)]
        # One small |D| x |D| solve, vectorised across stripe positions.
        recovered = np.linalg.solve(w_sel, rhs)
        if not np.all(np.isfinite(recovered)):
            raise ArithmeticError(
                "erasure reconstruction produced non-finite values"
            )
        return {
            d: recovered[row, : self.sizes[d]].copy()
            for row, d in enumerate(dead)
        }
