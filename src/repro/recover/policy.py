"""What happens when a DUE surfaces: the recovery strategy and budgets.

A :class:`RecoveryPolicy` is immutable configuration, shareable and
hashable exactly like :class:`~repro.protect.config.ProtectionConfig`
(which embeds one).  The runtime state — retries consumed, checkpoints
held — lives in :class:`~repro.recover.manager.RecoveryManager`.
"""

from __future__ import annotations

import dataclasses

from repro.errors import (
    BoundsViolationError,
    ConfigurationError,
    DetectedUncorrectableError,
)

#: The integrity errors the recovery layer can intercept.  Anything else
#: (configuration mistakes, plain bugs) always propagates.
RECOVERABLE_ERRORS = (DetectedUncorrectableError, BoundsViolationError)

#: Valid ``RecoveryPolicy.strategy`` values.
RECOVERY_STRATEGIES = ("raise", "repopulate", "rollback", "erasure")


@dataclasses.dataclass(frozen=True)
class RecoveryPolicy:
    """How a solve reacts to detected-uncorrectable corruption.

    Parameters
    ----------
    strategy:
        ``"raise"`` — today's behaviour: the DUE unwinds the solve
        (default, and what ``recovery=None`` means everywhere).
        ``"repopulate"`` — rebuild the damaged container in place (the
        matrix from the pristine source captured after the up-front
        forced check; a vector from its authoritative plain cache) and
        restart the solver recurrence from the current iterate.
        ``"rollback"`` — restore the last solver checkpoint (state
        vectors + iteration counter) and resume from there; the damaged
        regions are overwritten by the restore.
        ``"erasure"`` — distributed solves only: run ``erasure_shards``
        extra checksum shards alongside the data shards and, on a shard
        death, reconstruct the lost block *and iterates* algebraically
        from the survivors (see :mod:`repro.recover.erasure`).  No
        checkpoints are taken in this mode; inside a single process the
        strategy behaves like ``"raise"`` (there is no peer to
        reconstruct from).
    max_retries:
        Solver-level recoveries allowed per solve before the original
        error is re-raised.  Engine-level transparent vector repairs
        (always content-exact) are not counted against this budget.
    checkpoint_interval:
        Iterations between rollback checkpoints.  Ignored unless
        ``strategy == "rollback"``; a checkpoint is always taken at
        iteration 0 so a rollback target exists from the first DUE on.
    erasure_shards:
        Number of checksum shards ``k`` kept by the ``"erasure"``
        strategy — up to ``k`` shards may be lost *simultaneously* and
        still be reconstructed.  Ignored by the other strategies.
    """

    strategy: str = "raise"
    max_retries: int = 3
    checkpoint_interval: int = 8
    erasure_shards: int = 1

    def __post_init__(self):
        if self.strategy not in RECOVERY_STRATEGIES:
            raise ConfigurationError(
                f"unknown recovery strategy {self.strategy!r}; "
                f"choose from {RECOVERY_STRATEGIES}"
            )
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.checkpoint_interval < 1:
            raise ConfigurationError("checkpoint_interval must be >= 1")
        if self.erasure_shards < 1:
            raise ConfigurationError("erasure_shards must be >= 1")

    @classmethod
    def coerce(cls, value: "RecoveryPolicy | str | None") -> "RecoveryPolicy | None":
        """Accept the string shorthand (``recovery="rollback"``) everywhere."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(strategy=value)
        raise ConfigurationError(
            f"recovery must be a RecoveryPolicy, a strategy name or None, "
            f"not {type(value).__name__}"
        )

    @property
    def escalates(self) -> bool:
        """True when DUEs are handled instead of re-raised."""
        return self.strategy != "raise"
