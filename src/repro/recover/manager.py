"""The recovery runtime: budget accounting and the two repair hooks.

One manager serves one engine (and therefore one solve at a time; a
:class:`~repro.protect.session.ProtectionSession` shares its manager
across solves, with the budget reset per solve by ``begin_solve``).

Two layers call in:

* the **engine** (:meth:`repair_vector`): when a scheduled vector check
  finds uncorrectable damage and the strategy is ``repopulate``, the
  vector is rebuilt from its authoritative plain cache.  This repair is
  *content-exact* — reads always come from the cache, so raw-storage
  corruption was never consumed — and therefore transparent: the solve
  continues as if the flip never happened;
* the **solver** (via ``ProtectedIteration.recover`` →
  :meth:`on_due` / :meth:`repair_matrix`): matrix corruption may have
  been consumed by SpMVs since it landed (deferred checking's explicit
  trade-off), so matrix DUEs always escalate to the solver, which
  repairs storage from the pristine source and *restarts its recurrence*
  (repopulate) or rewinds to the last checkpoint (rollback).
"""

from __future__ import annotations

import dataclasses

from repro.recover.checkpoint import CheckpointStore
from repro.recover.policy import RecoveryPolicy


@dataclasses.dataclass
class RecoveryStats:
    """Counters describing what the recovery layer actually did."""

    #: Recoverable errors escalated to the manager (any strategy).
    dues: int = 0
    #: Solver-level rollback recoveries granted.
    rollbacks: int = 0
    #: Solver-level repopulate recoveries granted.
    repopulates: int = 0
    #: Engine-level transparent vector rebuilds from the plain cache.
    vector_repairs: int = 0
    #: Matrix storage rebuilds from the pristine source.
    matrix_reencodes: int = 0
    #: Escalations refused because the per-solve budget ran out.
    retries_exhausted: int = 0

    @property
    def total_recoveries(self) -> int:
        """Every event where the layer kept a solve alive — the one
        definition of "recovered" shared by reports and campaigns."""
        return self.rollbacks + self.repopulates + self.vector_repairs

    def reset(self) -> None:
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class RecoveryManager:
    """Runtime companion of a :class:`RecoveryPolicy`."""

    def __init__(self, policy: RecoveryPolicy):
        self.policy = policy
        self.store = CheckpointStore()
        self.stats = RecoveryStats()
        self._retries_left = policy.max_retries

    @property
    def strategy(self) -> str:
        return self.policy.strategy

    def begin_solve(self) -> None:
        """Reset the per-solve budget and drop the last solve's snapshots."""
        self._retries_left = self.policy.max_retries
        self.store.begin_solve()

    # -- engine-side hook ------------------------------------------------
    def repair_vector(self, name: str, vector, in_sweep: bool = False) -> bool:
        """Transparently rebuild a vector that failed its scheduled check.

        For the ``repopulate`` strategy — and, with ``in_sweep=True``,
        for *any* escalating strategy: the mandatory end-of-step sweep
        runs outside every solver recurrence, so there is no checkpoint
        to roll back to, and the cache rebuild is the only repair that
        exists there (it is also the strictly better one: the cache is
        exactly the content the finished solves computed with, so the
        rebuild loses nothing).  Returns True when storage was rebuilt;
        the engine then re-checks before trusting it and reports success
        via :meth:`note_vector_repaired` — the repair only counts once
        it is *verified*, so failed recoveries never inflate the
        survival metrics.
        """
        if self.policy.strategy != "repopulate" and not (
            in_sweep and self.policy.escalates
        ):
            return False
        return vector.rebuild_from_cache()

    def note_vector_repaired(self) -> None:
        """Record one engine-level vector repair that passed its re-check."""
        self.stats.vector_repairs += 1

    # -- solver-side escalation ------------------------------------------
    def on_due(self, exc: BaseException) -> str:
        """Decide the action for an escalated DUE, spending one retry.

        Returns the strategy to apply (``"repopulate"`` or
        ``"rollback"``); raises ``exc`` when the strategy is ``"raise"``
        or the per-solve retry budget is exhausted.  ``"erasure"`` also
        raises: there is no in-process repair for it — a distributed
        coordinator treats the escalation as a shard loss and
        reconstructs the shard from its erasure peers instead.  Only the
        *attempt* is recorded here — the caller reports a completed
        repair via :meth:`note_recovered`, so ``total_recoveries``
        counts solves actually kept alive, not repairs that went on to
        fail.
        """
        self.stats.dues += 1
        if self.policy.strategy in ("raise", "erasure"):
            raise exc
        if self._retries_left <= 0:
            self.stats.retries_exhausted += 1
            raise exc
        self._retries_left -= 1
        return self.policy.strategy

    def note_recovered(self, action: str) -> None:
        """Record one completed (repaired-and-verified) recovery."""
        if action == "rollback":
            self.stats.rollbacks += 1
        else:
            self.stats.repopulates += 1

    def repair_matrix(self, matrix) -> bool:
        """Rebuild a matrix's storage + redundancy from its pristine source.

        Returns False when no source was registered (e.g. the corruption
        predates the solve, so no clean copy ever existed).
        """
        source = self.store.matrix_source(matrix)
        if source is None:
            return False
        matrix.reencode_from(source)
        self.stats.matrix_reencodes += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RecoveryManager(strategy={self.policy.strategy!r}, "
            f"retries_left={self._retries_left}, stats={self.stats!r})"
        )
