"""DUE recovery: checkpointed survival instead of a dead solve.

The paper's "fully protecting" claim is end-to-end: a detected
*uncorrectable* error (DUE) must not kill the run — the application
recovers and converges anyway, which it highlights as ABFT's advantage
over checkpoint/restart from disk.  Selective-reliability solvers
(Bridges et al.) and fault-oblivious erasure-coded solvers (Gleich et
al.) both show that the recovery path is where resilience actually pays
off; detection alone just converts crashes into exceptions.

This package is that recovery path, layered under the deferred
verification engine:

* :class:`RecoveryPolicy` — *what to do* on a DUE: ``"raise"`` (the
  historical behaviour, default), ``"repopulate"`` (rebuild the damaged
  container from its pristine source / authoritative cache and restart
  the recurrence in place), ``"rollback"`` (restore the last solver
  checkpoint and resume) or ``"erasure"`` (distributed solves: keep
  checksum shards and reconstruct lost shards algebraically — see
  :class:`ErasureCodec`), with a per-solve retry budget;
* :class:`CheckpointStore` — in-memory snapshots of the solver's live
  state vectors plus the pristine matrix source captured right after the
  up-front forced verification;
* :class:`RecoveryManager` — the runtime: budget accounting, the
  engine-side transparent vector repair hook and the solver-side
  escalation decision.

The engine consults the manager when a scheduled check fails; the
:class:`~repro.solvers.toolkit.ProtectedIteration` context exposes
``maybe_checkpoint``/``recover`` so every registry solver becomes
restartable mid-solve.
"""

from repro.recover.checkpoint import Checkpoint, CheckpointStore
from repro.recover.erasure import ErasureCodec, erasure_weights
from repro.recover.manager import RecoveryManager, RecoveryStats
from repro.recover.policy import (
    RECOVERABLE_ERRORS,
    RECOVERY_STRATEGIES,
    RecoveryPolicy,
)

__all__ = [
    "RECOVERABLE_ERRORS",
    "RECOVERY_STRATEGIES",
    "Checkpoint",
    "CheckpointStore",
    "ErasureCodec",
    "RecoveryManager",
    "RecoveryPolicy",
    "RecoveryStats",
    "erasure_weights",
]
