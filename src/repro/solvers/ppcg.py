"""Polynomially Preconditioned CG (TeaLeaf's tl_use_ppcg).

CG whose preconditioner is a fixed number of Chebyshev smoothing steps —
TeaLeaf's communication-avoiding option.  The polynomial application is
SPD for any inner step count, so outer CG theory holds.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import SolverResult, as_operator
from repro.solvers.chebyshev import estimate_eigenvalue_bounds


class _ChebyshevPolyPreconditioner:
    """Applies x ~= A^-1 r with `steps` Chebyshev iterations from zero."""

    def __init__(self, op, eig_min: float, eig_max: float, steps: int):
        self.op = op
        self.theta = (eig_max + eig_min) / 2.0
        self.delta = (eig_max - eig_min) / 2.0
        self.sigma = self.theta / self.delta
        self.steps = steps

    def apply(self, rhs: np.ndarray) -> np.ndarray:
        x = np.zeros_like(rhs)
        r = rhs.copy()
        rho = 1.0 / self.sigma
        d = r / self.theta
        for _ in range(self.steps):
            x += d
            r = rhs - self.op.matvec(x)
            rho_new = 1.0 / (2.0 * self.sigma - rho)
            d = rho_new * rho * d + (2.0 * rho_new / self.delta) * r
            rho = rho_new
        return x


def ppcg_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    inner_steps: int = 4,
    eig_bounds: tuple[float, float] | None = None,
) -> SolverResult:
    """PPCG: outer CG with a Chebyshev-polynomial preconditioner."""
    op = as_operator(A)
    if eig_bounds is None:
        eig_bounds = estimate_eigenvalue_bounds(op)
    eig_min, eig_max = eig_bounds
    M = _ChebyshevPolyPreconditioner(op, eig_min, eig_max, inner_steps)

    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolverResult(
        x=x, iterations=it, converged=converged, residual_norms=norms,
        info={"inner_steps": inner_steps, "eig_bounds": eig_bounds},
    )
