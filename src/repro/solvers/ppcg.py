"""Polynomially Preconditioned CG (TeaLeaf's tl_use_ppcg).

CG whose preconditioner is a fixed number of Chebyshev smoothing steps —
TeaLeaf's communication-avoiding option.  The polynomial application is
SPD for any inner step count, so outer CG theory holds.

:func:`protected_ppcg_run` is the ABFT variant: the outer iteration's
matrix and state vectors are protected and scheduled through the
:class:`~repro.protect.engine.DeferredVerificationEngine`, while the
polynomial preconditioner runs sandboxed on plain working arrays (its
input is a verified read and its output is committed through the engine,
the "opaque preconditioner" treatment) with every inner SpMV still
counted against the matrix check schedule.  :func:`protected_ppcg_solve`
remains as a deprecation shim forwarding to the solver registry.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import LinearOperator, SolverResult, as_operator
from repro.solvers.chebyshev import estimate_eigenvalue_bounds
from repro.solvers.toolkit import ProtectedIteration


class _ChebyshevPolyPreconditioner:
    """Applies x ~= A^-1 r with `steps` Chebyshev iterations from zero."""

    def __init__(self, matvec, eig_min: float, eig_max: float, steps: int):
        self.matvec = matvec
        self.theta = (eig_max + eig_min) / 2.0
        self.delta = (eig_max - eig_min) / 2.0
        self.sigma = self.theta / self.delta
        self.steps = steps

    def apply(self, rhs: np.ndarray) -> np.ndarray:
        x = np.zeros_like(rhs)
        r = rhs.copy()
        rho = 1.0 / self.sigma
        d = r / self.theta
        for _ in range(self.steps):
            x += d
            r = rhs - self.matvec(x)
            rho_new = 1.0 / (2.0 * self.sigma - rho)
            d = rho_new * rho * d + (2.0 * rho_new / self.delta) * r
            rho = rho_new
        return x


def ppcg_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    inner_steps: int = 4,
    eig_bounds: tuple[float, float] | None = None,
) -> SolverResult:
    """PPCG: outer CG with a Chebyshev-polynomial preconditioner."""
    op = as_operator(A)
    if eig_bounds is None:
        eig_bounds = estimate_eigenvalue_bounds(op)
    eig_min, eig_max = eig_bounds
    M = _ChebyshevPolyPreconditioner(op.matvec, eig_min, eig_max, inner_steps)

    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolverResult(
        x=x, iterations=it, converged=converged, residual_norms=norms,
        info={"inner_steps": inner_steps, "eig_bounds": eig_bounds},
    )


def protected_ppcg_run(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    inner_steps: int = 4,
    eig_bounds: tuple[float, float] | None = None,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
    engine: DeferredVerificationEngine | None = None,
    session=None,
) -> SolverResult:
    """Fully protected PPCG driven by the deferred-verification engine.

    The outer state vectors (x, r, p) are ABFT-protected; the Chebyshev
    polynomial is applied to plain working arrays, but each of its inner
    SpMVs goes through the engine so the matrix schedule (full check or
    range check per access) still covers the preconditioner's traffic.
    """
    # The context force-verifies the matrix before anything decodes it:
    # the eigenvalue estimate tunes the Chebyshev polynomial for the
    # whole solve, so it must not be poisoned by a correctable flip the
    # forced check would have fixed.
    ctx = ProtectedIteration(
        matrix, policy=policy, engine=engine, vector_scheme=vector_scheme,
        session=session,
    )
    if eig_bounds is None:
        # Estimate over just-verified clean views — no whole-matrix
        # to_csr() decode, the estimate only needs matvec.  Fused solves
        # defer the up-front sweep, so force it before decoding here.
        ctx.ensure_verified()
        eig_bounds = estimate_eigenvalue_bounds(
            LinearOperator(matrix.matvec_unchecked, matrix.n_rows, matrix.diagonal)
        )
    eig_min, eig_max = eig_bounds
    M = _ChebyshevPolyPreconditioner(ctx.spmv, eig_min, eig_max, inner_steps)
    x = ctx.wrap(np.zeros(ctx.n) if x0 is None else x0, "x")
    r0 = b - ctx.initial_spmv(ctx.read(x))
    z0 = M.apply(r0)
    r = ctx.wrap(r0, "r")
    p = ctx.wrap(z0, "p")
    rz = float(np.dot(r0, z0))
    norms = [float(np.linalg.norm(r0))]
    converged = norms[0] ** 2 < eps
    it = 0
    ctx.maybe_checkpoint(it)
    while True:
        try:
            while not converged and it < max_iters:
                ctx.begin_iteration()
                p_val = ctx.read(p)
                w = ctx.spmv(p_val)
                pw = float(np.dot(p_val, w))
                if pw == 0.0:
                    break
                alpha = rz / pw
                x = ctx.write(x, ctx.read(x) + alpha * p_val)
                r_val = ctx.read(r) - alpha * w
                r = ctx.write(r, r_val)
                norms.append(float(np.linalg.norm(r_val)))
                it += 1
                if norms[-1] ** 2 < eps:
                    converged = True
                    break
                z = M.apply(r_val)
                rz_new = float(np.dot(r_val, z))
                p = ctx.write(p, z + (rz_new / rz) * p_val)
                rz = rz_new
                ctx.maybe_checkpoint(it)

            x_final = ctx.value_of(x)
            ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)
            if saved is not None:
                it = int(saved["it"])
            # Restart from the authoritative iterate: true residual,
            # fresh preconditioned search direction.
            r_val = b - ctx.spmv(ctx.read(x))
            z = M.apply(r_val)
            r = ctx.write(r, r_val)
            p = ctx.write(p, z)
            rz = float(np.dot(r_val, z))
            norms.append(float(np.linalg.norm(r_val)))
            converged = norms[-1] ** 2 < eps
    return SolverResult(
        x=x_final, iterations=it, converged=converged, residual_norms=norms,
        info=ctx.info(inner_steps=inner_steps, eig_bounds=eig_bounds),
    )


def protected_ppcg_solve(matrix, b, x0=None, **kwargs) -> SolverResult:
    """Deprecated alias for the registry's protected PPCG runner.

    Use ``repro.solve(A, b, method="ppcg",
    protection=ProtectionConfig(...))`` or a ``ProtectionSession``.
    """
    warnings.warn(
        "protected_ppcg_solve() is deprecated; use repro.solve(A, b, method='ppcg', "
        "protection=ProtectionConfig(...)) or ProtectionSession.solve()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.solvers.registry import get_method

    return get_method("ppcg").protected(matrix, b, x0, **kwargs)
