"""Sparse linear solvers (paper §V).

The paper evaluates ABFT inside TeaLeaf's CG solve; TeaLeaf itself ships
CG, Jacobi, Chebyshev and PPCG, and the paper notes the techniques "could
be used with other solver methods" — so all four are provided, each with
a plain and an engine-threaded protected runner, registered under one
name in :mod:`repro.solvers.registry` and dispatched by
:func:`repro.solve`.
"""

from repro.solvers.base import SolverResult, LinearOperator, as_operator
from repro.solvers.block import (
    BlockResult,
    block_cg_solve,
    block_solve_enabled,
    protected_block_cg_run,
    solve_block,
)
from repro.solvers.cg import cg_solve, protected_cg_run, protected_cg_solve
from repro.solvers.jacobi import jacobi_solve, protected_jacobi_run
from repro.solvers.chebyshev import (
    chebyshev_solve,
    estimate_eigenvalue_bounds,
    protected_chebyshev_run,
)
from repro.solvers.ppcg import ppcg_solve, protected_ppcg_run, protected_ppcg_solve
from repro.solvers.preconditioner import JacobiPreconditioner, IdentityPreconditioner
from repro.solvers.toolkit import ProtectedIteration, resolve_schedule
from repro.solvers.registry import (
    SolverMethod,
    available_methods,
    get_method,
    register_method,
    solve,
)

__all__ = [
    "SolverResult",
    "LinearOperator",
    "as_operator",
    "BlockResult",
    "block_cg_solve",
    "block_solve_enabled",
    "protected_block_cg_run",
    "solve_block",
    "cg_solve",
    "protected_cg_run",
    "protected_cg_solve",
    "jacobi_solve",
    "protected_jacobi_run",
    "chebyshev_solve",
    "estimate_eigenvalue_bounds",
    "protected_chebyshev_run",
    "ppcg_solve",
    "protected_ppcg_run",
    "protected_ppcg_solve",
    "JacobiPreconditioner",
    "IdentityPreconditioner",
    "ProtectedIteration",
    "resolve_schedule",
    "SolverMethod",
    "available_methods",
    "get_method",
    "register_method",
    "solve",
]
