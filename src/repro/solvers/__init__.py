"""Sparse linear solvers (paper §V).

The paper evaluates ABFT inside TeaLeaf's CG solve; TeaLeaf itself ships
CG, Jacobi, Chebyshev and PPCG, and the paper notes the techniques "could
be used with other solver methods" — so all four are provided, each over
either a plain :class:`~repro.csr.matrix.CSRMatrix` or a protected
operator.
"""

from repro.solvers.base import SolverResult, LinearOperator, as_operator
from repro.solvers.cg import cg_solve, protected_cg_solve
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.chebyshev import chebyshev_solve, estimate_eigenvalue_bounds
from repro.solvers.ppcg import ppcg_solve, protected_ppcg_solve
from repro.solvers.preconditioner import JacobiPreconditioner, IdentityPreconditioner

__all__ = [
    "SolverResult",
    "LinearOperator",
    "as_operator",
    "cg_solve",
    "protected_cg_solve",
    "jacobi_solve",
    "chebyshev_solve",
    "estimate_eigenvalue_bounds",
    "ppcg_solve",
    "protected_ppcg_solve",
    "JacobiPreconditioner",
    "IdentityPreconditioner",
]
