"""Preconditioners: identity and Jacobi (TeaLeaf's tl_preconditioner_type)."""

from __future__ import annotations

import numpy as np


class IdentityPreconditioner:
    """No-op preconditioner (TeaLeaf's default)."""

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: return ``M^{-1} r``."""
        return r


class JacobiPreconditioner:
    """Diagonal scaling ``M^-1 r = r / diag(A)``.

    TeaLeaf's ``tl_preconditioner_type=jac_diag``; cheap and effective on
    the diagonally dominant conduction operator.
    """

    def __init__(self, diagonal: np.ndarray):
        diagonal = np.asarray(diagonal, dtype=np.float64)
        if np.any(diagonal == 0.0):
            raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
        self._inv = 1.0 / diagonal

    @classmethod
    def from_operator(cls, A) -> "JacobiPreconditioner":
        """Build the preconditioner from an operator's diagonal."""
        return cls(A.diagonal())

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: return ``M^{-1} r``."""
        return r * self._inv
