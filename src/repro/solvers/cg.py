"""Conjugate Gradient — the paper's solver of record (TeaLeaf's tl_use_cg).

Two drivers:

* :func:`cg_solve` — textbook (optionally preconditioned) CG over any
  :class:`~repro.solvers.base.LinearOperator`;
* :func:`protected_cg_solve` — the fully-ABFT variant: the matrix is a
  :class:`~repro.protect.matrix.ProtectedCSRMatrix` verified per the
  check policy before each SpMV, and the solver state vectors (x, r, p)
  live in :class:`~repro.protect.vector.ProtectedVector` containers.
  All protected traffic flows through a
  :class:`~repro.protect.engine.DeferredVerificationEngine`: reads are
  cached decode-free views, writes are (optionally dirty-window
  buffered) whole-codeword commits, and integrity checks run on the
  policy's amortised schedule with a mandatory end-of-step sweep.

The protected variant also keeps the CG *alpha/beta* scalars out of
protected storage, exactly as the kernels in the paper do (scalars live
in registers).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.protect.engine import DeferredVerificationEngine
from repro.protect.kernels import verify_matrix
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.preconditioner import IdentityPreconditioner


def cg_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    preconditioner=None,
) -> SolverResult:
    """Solve ``A x = b`` for SPD ``A`` by (preconditioned) CG.

    Convergence criterion matches TeaLeaf's: stop when the *squared*
    residual 2-norm drops below ``eps``.
    """
    op = as_operator(A)
    M = preconditioner or IdentityPreconditioner()
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolverResult(x=x, iterations=it, converged=converged, residual_norms=norms)


def _resolve_schedule(
    policy: CheckPolicy | None, engine: DeferredVerificationEngine | None
) -> tuple[CheckPolicy, DeferredVerificationEngine]:
    """One policy object drives everything: scheduling, stats, sweeps.

    A caller-supplied engine brings its own policy; accepting a second,
    different policy alongside it would split the counters between two
    objects, so that is rejected outright.
    """
    if engine is not None:
        if policy is not None and policy is not engine.policy:
            raise ConfigurationError(
                "pass either a policy or an engine (whose policy is used), "
                "not two different schedules"
            )
        policy = engine.policy
    else:
        if policy is None:
            policy = CheckPolicy(interval=1, correct=True)
        engine = DeferredVerificationEngine(policy)
    policy.reset()
    return policy, engine


def protected_cg_solve(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
    engine: DeferredVerificationEngine | None = None,
) -> SolverResult:
    """Fully protected CG: ABFT matrix + (optionally) ABFT state vectors.

    Parameters
    ----------
    policy:
        Per-region check schedule; defaults to a full check before every
        SpMV and a vector check every iteration.  ``interval > 1`` (and
        ``vector_interval > 1``) amortises the checks across iterations
        via the deferred-verification engine.
    vector_scheme:
        Scheme for the solver's dense vectors, or ``None`` to leave the
        vectors unprotected (the Fig. 4-8 configurations protect only the
        matrix; Fig. 9 adds the vectors).
    engine:
        Supply a pre-built :class:`DeferredVerificationEngine` (e.g. to
        share a schedule across solves); its policy then drives the
        whole solve, so ``policy`` must be left ``None`` or be the same
        object.

    Returns the result with ``info`` carrying the policy counters; the
    end-of-step sweep (mandatory when the policy defers checks or
    buffers writes) is included before returning.
    """
    policy, engine = _resolve_schedule(policy, engine)
    n = matrix.n_rows
    x_plain = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    protect_vectors = vector_scheme is not None

    def wrap(v: np.ndarray, name: str):
        if protect_vectors:
            return engine.register(ProtectedVector(v, vector_scheme), name)
        return v.copy()

    def read(v):
        return engine.read(v) if protect_vectors else v

    def write(container, v: np.ndarray):
        if protect_vectors:
            engine.write(container, v)
            return container
        return v

    engine.register(matrix, "matrix")
    verify_matrix(matrix, policy, force=policy.interval != 0)
    x = wrap(x_plain, "x")
    r0 = b - matrix.matvec_unchecked(read(x))
    r = wrap(r0, "r")
    p = wrap(r0, "p")
    rr = float(np.dot(read(r), read(r)))
    norms = [float(np.sqrt(rr))]
    converged = rr < eps
    it = 0
    while not converged and it < max_iters:
        if protect_vectors:
            engine.begin_iteration()
        p_val = read(p)
        w = engine.spmv(matrix, p_val)
        pw = float(np.dot(p_val, w))
        if pw == 0.0:
            break
        alpha = rr / pw
        x = write(x, read(x) + alpha * p_val)
        r_val = read(r) - alpha * w
        r = write(r, r_val)
        rr_new = float(np.dot(r_val, r_val))
        norms.append(float(np.sqrt(rr_new)))
        it += 1
        if rr_new < eps:
            converged = True
            break
        p = write(p, r_val + (rr_new / rr) * p_val)
        rr = rr_new

    # Mandatory end-of-step sweep when checks were deferred (§VI.A.2).
    engine.finalize()

    info = {
        "full_checks": policy.stats.full_checks,
        "bounds_checks": policy.stats.bounds_checks,
        "vector_checks": policy.stats.vector_checks,
        "cached_reads": policy.stats.cached_reads,
        "deferred_stores": policy.stats.deferred_stores,
        "dirty_flushes": policy.stats.dirty_flushes,
        "corrected": policy.stats.corrected,
        "vector_scheme": vector_scheme,
    }
    x_final = x.values() if protect_vectors else x
    if protect_vectors:
        # Release this solve's transient state so a shared engine doesn't
        # accumulate dead vectors across solves (the matrix stays).
        for vec in (x, r, p):
            engine.unregister(vec)
    return SolverResult(
        x=x_final, iterations=it, converged=converged,
        residual_norms=norms, info=info,
    )
