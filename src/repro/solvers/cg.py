"""Conjugate Gradient — the paper's solver of record (TeaLeaf's tl_use_cg).

Two drivers:

* :func:`cg_solve` — textbook (optionally preconditioned) CG over any
  :class:`~repro.solvers.base.LinearOperator`;
* :func:`protected_cg_solve` — the fully-ABFT variant: the matrix is a
  :class:`~repro.protect.matrix.ProtectedCSRMatrix` verified per the
  check policy before each SpMV, and the solver state vectors (x, r, p)
  live in :class:`~repro.protect.vector.ProtectedVector` containers —
  checked when first read each iteration, re-encoded when written
  (write-buffered whole codewords; no read-modify-write).

The protected variant also keeps the CG *alpha/beta* scalars out of
protected storage, exactly as the kernels in the paper do (scalars live
in registers).
"""

from __future__ import annotations

import numpy as np

from repro.protect.kernels import load_vector, verify_matrix
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.preconditioner import IdentityPreconditioner


def cg_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    preconditioner=None,
) -> SolverResult:
    """Solve ``A x = b`` for SPD ``A`` by (preconditioned) CG.

    Convergence criterion matches TeaLeaf's: stop when the *squared*
    residual 2-norm drops below ``eps``.
    """
    op = as_operator(A)
    M = preconditioner or IdentityPreconditioner()
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolverResult(x=x, iterations=it, converged=converged, residual_norms=norms)


def protected_cg_solve(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
) -> SolverResult:
    """Fully protected CG: ABFT matrix + (optionally) ABFT state vectors.

    Parameters
    ----------
    policy:
        Matrix check policy; defaults to a full check before every SpMV.
    vector_scheme:
        Scheme for the solver's dense vectors, or ``None`` to leave the
        vectors unprotected (the Fig. 4-8 configurations protect only the
        matrix; Fig. 9 adds the vectors).

    Returns the result with ``info`` carrying the policy counters; the
    end-of-step sweep (mandatory when the policy defers checks) is
    included before returning.
    """
    if policy is None:
        policy = CheckPolicy(interval=1, correct=True)
    policy.reset()
    n = matrix.n_rows
    x_plain = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)

    protect_vectors = vector_scheme is not None

    def wrap(v: np.ndarray):
        return ProtectedVector(v, vector_scheme) if protect_vectors else v.copy()

    def read(v):
        return load_vector(v) if protect_vectors else v

    def write(container, v: np.ndarray):
        if protect_vectors:
            container.store(v)
            return container
        return v

    verify_matrix(matrix, policy, force=policy.interval != 0)
    x = wrap(x_plain)
    r0 = b - matrix.matvec_unchecked(read(x))
    r = wrap(r0)
    p = wrap(r0)
    rr = float(np.dot(read(r), read(r)))
    norms = [float(np.sqrt(rr))]
    converged = rr < eps
    it = 0
    while not converged and it < max_iters:
        p_val = read(p)
        verify_matrix(matrix, policy)
        w = matrix.matvec_unchecked(p_val)
        pw = float(np.dot(p_val, w))
        if pw == 0.0:
            break
        alpha = rr / pw
        x = write(x, read(x) + alpha * p_val)
        r_val = read(r) - alpha * w
        r = write(r, r_val)
        rr_new = float(np.dot(r_val, r_val))
        norms.append(float(np.sqrt(rr_new)))
        it += 1
        if rr_new < eps:
            converged = True
            break
        p = write(p, r_val + (rr_new / rr) * p_val)
        rr = rr_new

    # Mandatory end-of-step sweep when checks were deferred (§VI.A.2).
    if policy.end_of_step():
        verify_matrix(matrix, policy, force=True)

    info = {
        "full_checks": policy.stats.full_checks,
        "bounds_checks": policy.stats.bounds_checks,
        "corrected": policy.stats.corrected,
        "vector_scheme": vector_scheme,
    }
    x_final = read(x) if protect_vectors else x
    return SolverResult(
        x=x_final, iterations=it, converged=converged,
        residual_norms=norms, info=info,
    )
