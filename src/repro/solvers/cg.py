"""Conjugate Gradient — the paper's solver of record (TeaLeaf's tl_use_cg).

Two drivers:

* :func:`cg_solve` — textbook (optionally preconditioned) CG over any
  :class:`~repro.solvers.base.LinearOperator`;
* :func:`protected_cg_run` — the fully-ABFT variant: the matrix is a
  :class:`~repro.protect.matrix.ProtectedCSRMatrix` verified per the
  check policy before each SpMV, and the solver state vectors (x, r, p)
  live in :class:`~repro.protect.vector.ProtectedVector` containers.
  All protected traffic flows through a
  :class:`~repro.protect.engine.DeferredVerificationEngine` via the
  shared :class:`~repro.solvers.toolkit.ProtectedIteration` context:
  reads are cached decode-free views, writes are (optionally
  dirty-window buffered) whole-codeword commits, and integrity checks
  run on the policy's amortised schedule with a mandatory end-of-step
  sweep.

The protected variant also keeps the CG *alpha/beta* scalars out of
protected storage, exactly as the kernels in the paper do (scalars live
in registers).

:func:`protected_cg_solve` survives as a deprecation shim forwarding to
the solver registry — new code goes through ``repro.solve(A, b,
method="cg", protection=...)`` or a ``ProtectionSession``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.preconditioner import IdentityPreconditioner
from repro.solvers.toolkit import ProtectedIteration


def cg_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    preconditioner=None,
) -> SolverResult:
    """Solve ``A x = b`` for SPD ``A`` by (preconditioned) CG.

    Convergence criterion matches TeaLeaf's: stop when the *squared*
    residual 2-norm drops below ``eps``.
    """
    op = as_operator(A)
    M = preconditioner or IdentityPreconditioner()
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    z = M.apply(r)
    p = z.copy()
    rz = float(np.dot(r, z))
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rz / pw
        x += alpha * p
        r -= alpha * w
        z = M.apply(r)
        rz_new = float(np.dot(r, z))
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        p = z + (rz_new / rz) * p
        rz = rz_new
    return SolverResult(x=x, iterations=it, converged=converged, residual_norms=norms)


def protected_cg_run(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
    engine: DeferredVerificationEngine | None = None,
    session=None,
) -> SolverResult:
    """Fully protected CG: ABFT matrix + (optionally) ABFT state vectors.

    Parameters
    ----------
    policy:
        Per-region check schedule; defaults to a full check before every
        SpMV and a vector check every iteration.  ``interval > 1`` (and
        ``vector_interval > 1``) amortises the checks across iterations
        via the deferred-verification engine.
    vector_scheme:
        Scheme for the solver's dense vectors, or ``None`` to leave the
        vectors unprotected (the Fig. 4-8 configurations protect only the
        matrix; Fig. 9 adds the vectors).
    engine:
        Supply a pre-built :class:`DeferredVerificationEngine` (e.g. to
        share a schedule across solves); its policy then drives the
        whole solve, so ``policy`` must be left ``None`` or be the same
        object.
    session:
        The owning :class:`~repro.protect.session.ProtectionSession`,
        when the mandatory end-of-step sweep is scheduled by the caller
        instead of this solve.

    Returns the result with ``info`` carrying the policy counters; the
    end-of-step sweep (mandatory when the policy defers checks or
    buffers writes) is included before returning unless a session owns
    the schedule.
    """
    ctx = ProtectedIteration(
        matrix, policy=policy, engine=engine, vector_scheme=vector_scheme,
        session=session,
    )
    engine = ctx.engine
    x = ctx.wrap(np.zeros(ctx.n) if x0 is None else x0, "x")
    r0 = b - ctx.initial_spmv(ctx.read(x))
    r = ctx.wrap(r0, "r")
    p = ctx.wrap(r0, "p")
    rr = float(np.dot(ctx.read(r), ctx.read(r)))
    norms = [float(np.sqrt(rr))]
    converged = rr < eps
    it = 0
    ctx.maybe_checkpoint(it)
    while True:
        try:
            while not converged and it < max_iters:
                ctx.begin_iteration()
                p_val = ctx.read(p)
                w = ctx.spmv(p_val, out=ctx.spmv_out())
                pw = float(np.dot(p_val, w))
                if pw == 0.0:
                    break
                alpha = rr / pw
                x = ctx.write(x, ctx.read(x) + alpha * p_val)
                r_val = ctx.read(r) - alpha * w
                r = ctx.write(r, r_val)
                rr_new = float(np.dot(r_val, r_val))
                norms.append(float(np.sqrt(rr_new)))
                it += 1
                if rr_new < eps:
                    converged = True
                    break
                p = ctx.write(p, r_val + (rr_new / rr) * p_val)
                rr = rr_new
                ctx.maybe_checkpoint(it)

            # Mandatory end-of-step sweep when checks were deferred
            # (§VI.A.2); a session defers it to its own end_step().
            x_final = ctx.value_of(x)
            ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)  # repairs state; raises if recovery is off
            if saved is not None:
                it = int(saved["it"])
            # Restart the recurrence from the authoritative iterate: the
            # rolled-back / repaired x defines the true residual, so any
            # recurrence drift the corruption caused is discarded.
            r_val = b - ctx.spmv(ctx.read(x))
            r = ctx.write(r, r_val)
            p = ctx.write(p, r_val)
            rr = float(np.dot(r_val, r_val))
            norms.append(float(np.sqrt(rr)))
            converged = rr < eps
    return SolverResult(
        x=x_final, iterations=it, converged=converged,
        residual_norms=norms, info=ctx.info(),
    )


def protected_cg_solve(matrix, b, x0=None, **kwargs) -> SolverResult:
    """Deprecated alias for the registry's protected CG runner.

    Use ``repro.solve(A, b, method="cg",
    protection=ProtectionConfig(...))`` or a ``ProtectionSession``; this
    shim keeps the pre-registry call sites working unchanged.
    """
    warnings.warn(
        "protected_cg_solve() is deprecated; use repro.solve(A, b, method='cg', "
        "protection=ProtectionConfig(...)) or ProtectionSession.solve()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.solvers.registry import get_method

    return get_method("cg").protected(matrix, b, x0, **kwargs)
