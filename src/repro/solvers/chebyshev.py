"""Chebyshev iteration (TeaLeaf's tl_use_chebyshev).

Requires spectral bounds of the SPD operator; TeaLeaf bootstraps them
from some CG iterations' Lanczos tridiagonal — reproduced here in
:func:`estimate_eigenvalue_bounds`.

:func:`protected_chebyshev_run` is the engine-threaded ABFT variant: the
x/d state vectors live in protected containers, every SpMV advances the
matrix check schedule, and the spectral bounds are estimated (when not
supplied) only after the up-front forced verification so a correctable
flip cannot poison the polynomial for the whole solve.
"""

from __future__ import annotations

import numpy as np

from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import LinearOperator, SolverResult, as_operator
from repro.solvers.toolkit import ProtectedIteration


def estimate_eigenvalue_bounds(A, *, iters: int = 30, seed: int = 7) -> tuple[float, float]:
    """Estimate (lambda_min, lambda_max) via the CG/Lanczos connection.

    Runs ``iters`` plain CG steps on a random RHS, assembles the Lanczos
    tridiagonal from the alpha/beta coefficients and returns its extreme
    eigenvalues (slightly widened, as TeaLeaf does, to be safe bounds).
    """
    op = as_operator(A)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(op.n)
    x = np.zeros(op.n)
    r = b.copy()
    p = r.copy()
    rr = float(np.dot(r, r))
    alphas, betas = [], []
    for _ in range(min(iters, op.n)):
        w = op.matvec(p)
        pw = float(np.dot(p, w))
        if pw <= 0.0:
            break
        alpha = rr / pw
        x += alpha * p
        r -= alpha * w
        rr_new = float(np.dot(r, r))
        beta = rr_new / rr
        alphas.append(alpha)
        betas.append(beta)
        if rr_new == 0.0:
            break
        p = r + beta * p
        rr = rr_new
    if not alphas:
        raise RuntimeError("could not take a single CG step for estimation")
    k = len(alphas)
    diag = np.empty(k)
    off = np.empty(max(k - 1, 0))
    diag[0] = 1.0 / alphas[0]
    for i in range(1, k):
        diag[i] = 1.0 / alphas[i] + betas[i - 1] / alphas[i - 1]
        off[i - 1] = np.sqrt(betas[i - 1]) / alphas[i - 1]
    tri = np.diag(diag)
    if k > 1:
        tri += np.diag(off, 1) + np.diag(off, -1)
    eigs = np.linalg.eigvalsh(tri)
    # Widen by 5% as a safety factor (TeaLeaf uses a similar fudge).
    return float(eigs[0] * 0.95), float(eigs[-1] * 1.05)


def chebyshev_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eig_min: float,
    eig_max: float,
    eps: float = 1e-15,
    max_iters: int = 10_000,
) -> SolverResult:
    """Chebyshev semi-iteration for SPD ``A`` with known spectral bounds."""
    if not 0 < eig_min < eig_max:
        raise ValueError("need 0 < eig_min < eig_max")
    op = as_operator(A)
    theta = (eig_max + eig_min) / 2.0
    delta = (eig_max - eig_min) / 2.0
    sigma = theta / delta
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    rho = 1.0 / sigma
    d = r / theta
    it = 0
    while not converged and it < max_iters:
        x += d
        r = b - op.matvec(x)
        norms.append(float(np.linalg.norm(r)))
        it += 1
        if norms[-1] ** 2 < eps:
            converged = True
            break
        rho_new = 1.0 / (2.0 * sigma - rho)
        d = rho_new * rho * d + (2.0 * rho_new / delta) * r
        rho = rho_new
    return SolverResult(
        x=x, iterations=it, converged=converged, residual_norms=norms,
        info={"eig_min": eig_min, "eig_max": eig_max},
    )


def protected_chebyshev_run(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eig_min: float | None = None,
    eig_max: float | None = None,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
    engine: DeferredVerificationEngine | None = None,
    session=None,
) -> SolverResult:
    """Fully protected Chebyshev driven by the deferred-verification engine.

    ``eig_min``/``eig_max`` may be omitted; they are then estimated from
    the decoded (just-verified) matrix, as TeaLeaf bootstraps them.
    """
    ctx = ProtectedIteration(
        matrix, policy=policy, engine=engine, vector_scheme=vector_scheme,
        session=session,
    )
    if eig_min is None or eig_max is None:
        # Estimate over just-verified clean views — no whole-matrix
        # to_csr() decode, the estimate only needs matvec.  Fused solves
        # defer the up-front sweep, so force it before decoding here.
        ctx.ensure_verified()
        eig_min, eig_max = estimate_eigenvalue_bounds(
            LinearOperator(matrix.matvec_unchecked, matrix.n_rows, matrix.diagonal)
        )
    if not 0 < eig_min < eig_max:
        raise ValueError("need 0 < eig_min < eig_max")
    theta = (eig_max + eig_min) / 2.0
    delta = (eig_max - eig_min) / 2.0
    sigma = theta / delta
    x = ctx.wrap(np.zeros(ctx.n) if x0 is None else x0, "x")
    r_val = b - ctx.initial_spmv(ctx.read(x))
    norms = [float(np.linalg.norm(r_val))]
    converged = norms[0] ** 2 < eps
    rho = 1.0 / sigma
    d = ctx.wrap(r_val / theta, "d")
    it = 0
    ctx.maybe_checkpoint(it)
    while True:
        try:
            while not converged and it < max_iters:
                ctx.begin_iteration()
                x_val = ctx.read(x) + ctx.read(d)
                x = ctx.write(x, x_val)
                r_val = b - ctx.spmv(x_val)
                norms.append(float(np.linalg.norm(r_val)))
                it += 1
                if norms[-1] ** 2 < eps:
                    converged = True
                    break
                rho_new = 1.0 / (2.0 * sigma - rho)
                d = ctx.write(
                    d, rho_new * rho * ctx.read(d) + (2.0 * rho_new / delta) * r_val
                )
                rho = rho_new
                ctx.maybe_checkpoint(it)

            x_final = ctx.value_of(x)
            ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)
            if saved is not None:
                it = int(saved["it"])
            # Restart the semi-iteration from the repaired / rolled-back
            # iterate: true residual, polynomial recurrence re-seeded.
            r_val = b - ctx.spmv(ctx.read(x))
            norms.append(float(np.linalg.norm(r_val)))
            converged = norms[-1] ** 2 < eps
            rho = 1.0 / sigma
            d = ctx.write(d, r_val / theta)
    return SolverResult(
        x=x_final, iterations=it, converged=converged, residual_norms=norms,
        info=ctx.info(eig_min=eig_min, eig_max=eig_max),
    )
