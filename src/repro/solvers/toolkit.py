"""Shared protected-iteration plumbing for engine-threaded solvers.

Every protected solver used to carry its own copy of the same three
closures — ``wrap`` (put a state vector under ECC and register it),
``read`` (decode-free cached view through the engine) and ``write``
(dirty-window buffered commit) — plus the same schedule-resolution,
finalize and counter-reporting boilerplate.  :class:`ProtectedIteration`
is that plumbing extracted once, so a protected solver body reads like
its textbook counterpart:

    ctx = ProtectedIteration(matrix, policy=..., vector_scheme=...)
    x = ctx.wrap(x0, "x")
    w = ctx.spmv(ctx.read(p))
    x = ctx.write(x, ctx.read(x) + alpha * p_val)
    ctx.finish()
    return SolverResult(x=ctx.value_of(x), ..., info=ctx.info())

When a :class:`~repro.protect.session.ProtectionSession` owns the engine,
the context registers its transient state with the session instead of
finalizing/unregistering itself, so dirty windows and check phases span
solve (and TeaLeaf time-step) boundaries until ``session.end_step()``.

The context is also where solvers become *restartable*: with an
escalating :class:`~repro.recover.policy.RecoveryPolicy` attached to the
engine, :meth:`ProtectedIteration.maybe_checkpoint` snapshots the live
state vectors on the policy's cadence and
:meth:`ProtectedIteration.recover` turns a caught DUE into either a
rollback (state restored from the checkpoint) or an in-place repopulate
(damaged containers rebuilt from pristine sources), after which the
solver restarts its recurrence from the authoritative iterate:

    while True:
        try:
            ...iterate to convergence..., ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)      # raises when recovery is off
            ...re-derive the recurrence from ctx.read(x)...
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro import backends
from repro.errors import BoundsViolationError, ConfigurationError
from repro.protect.engine import DeferredVerificationEngine
from repro.protect.kernels import verify_matrix
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedBlockVector, ProtectedVector
from repro.recover.policy import RECOVERABLE_ERRORS


def resolve_schedule(
    policy: CheckPolicy | None,
    engine: DeferredVerificationEngine | None,
    *,
    reset: bool = True,
) -> tuple[CheckPolicy, DeferredVerificationEngine]:
    """One policy object drives everything: scheduling, stats, sweeps.

    A caller-supplied engine brings its own policy; accepting a second,
    different policy alongside it would split the counters between two
    objects, so that is rejected outright.  ``reset=False`` keeps the
    schedule phase running across solves (session mode).
    """
    if engine is not None:
        if policy is not None and policy is not engine.policy:
            raise ConfigurationError(
                "pass either a policy or an engine (whose policy is used), "
                "not two different schedules"
            )
        policy = engine.policy
    else:
        if policy is None:
            policy = CheckPolicy(interval=1, correct=True)
        engine = DeferredVerificationEngine(policy)
    if reset:
        policy.reset()
    return policy, engine


class ProtectedIteration:
    """The per-solve context every engine-threaded solver shares.

    Parameters
    ----------
    matrix:
        The :class:`ProtectedCSRMatrix` being solved against; registered
        with the engine and force-verified up front (when matrix checks
        are enabled) so nothing downstream consumes unverified storage.
    policy / engine:
        The schedule, resolved exactly as the solvers always did: at most
        one of the two, engine's policy winning.
    vector_scheme:
        Scheme for the solver's dense state vectors, or ``None`` to run
        them unprotected (matrix-only configurations).
    session:
        When set, the owning :class:`ProtectionSession`: the context
        skips the per-solve finalize/unregister and hands its transient
        regions to the session for release at the next ``end_step()``.
    """

    #: The integrity errors :meth:`recover` can handle — what a solver's
    #: recovery handler should catch.
    RECOVERABLE = RECOVERABLE_ERRORS

    def __init__(
        self,
        matrix: ProtectedCSRMatrix,
        *,
        policy: CheckPolicy | None = None,
        engine: DeferredVerificationEngine | None = None,
        vector_scheme: str | None = "secded64",
        session=None,
    ):
        if session is not None:
            # Session mode defers the mandatory sweep to session.end_step(),
            # which finalizes *the session's* engine — running this solve on
            # any other engine would silently skip that sweep.
            if session.engine is None:
                raise ConfigurationError(
                    "session has protection disabled; run the plain solver "
                    "(session.solve dispatches this automatically)"
                )
            if engine is None:
                engine = session.engine
            elif engine is not session.engine:
                raise ConfigurationError(
                    "session and engine disagree; pass the session's engine "
                    "or let it be derived from the session"
                )
        self.policy, self.engine = resolve_schedule(policy, engine, reset=session is None)
        self.matrix = matrix
        self.vector_scheme = vector_scheme
        self.protect_vectors = vector_scheme is not None
        self.session = session
        self._state: list[ProtectedVector] = []
        self._named_state: list[tuple[str, ProtectedVector]] = []
        self._spmv_out: np.ndarray | None = None
        self._spmm_out: np.ndarray | None = None
        #: True when due matrix checks run fused inside the engine's SpMVs.
        #: Requires both the policy knob and a matrix/backend pair that
        #: supports the fused kernel — non-fusible schemes (sed, crc32c,
        #: secded128) keep the classic schedule, including the up-front
        #: forced sweep below.
        self.fused = self.policy.fused_verify and matrix.supports_fused_verify(
            self.engine.backend
            if self.engine.backend is not None
            else backends.get_backend()
        )
        self.recovery = self.engine.recovery
        if self.recovery is not None:
            self.recovery.begin_solve()
        self.engine.register(matrix, "matrix")
        # Snapshot the (possibly session-cumulative) counters so info()
        # can report this solve's own work; taken before the up-front
        # forced check so that check is attributed to this solve.
        self._stats_at_start = dataclasses.replace(self.policy.stats)
        self._recovery_stats_at_start = (
            dataclasses.replace(self.recovery.stats)
            if self.recovery is not None else None
        )
        # Fused solves without recovery skip the up-front forced sweep:
        # the first due engine product (access 0) verifies every codeword
        # it consumes *before* anything derived from the matrix escapes,
        # so the sweep would only re-read storage the fused kernel is
        # about to verify anyway.  With recovery attached the sweep
        # stays — the pristine to_csr() source below must be decoded
        # from verified-clean storage.
        skip_init = (
            self.policy.interval != 0 and self.fused and self.recovery is None
        )
        self._init_check_skipped = skip_init
        try:
            if not skip_init:
                verify_matrix(matrix, self.policy, force=self.policy.interval != 0)
        except RECOVERABLE_ERRORS as exc:
            # Corruption that predates the solve.  Repairable only from
            # an application-held (persistent) source — the campaign's
            # own pristine copy — since no verified-clean decode of this
            # matrix exists yet; without one, the historical raise.
            if self.recovery is None:
                raise
            action = self.recovery.on_due(exc)  # spends a retry or re-raises
            if not self.recovery.repair_matrix(matrix):
                raise
            verify_matrix(matrix, self.policy, force=True)
            self.recovery.note_recovered(action)
        if self.recovery is not None:
            # The pristine source for repopulate/rollback, decoded right
            # after the forced verification so it is a verified-clean
            # copy of the solve-invariant matrix.
            self.recovery.store.put_matrix_source(matrix, matrix.to_csr())

    @property
    def n(self) -> int:
        """Problem size (number of unknowns)."""
        return self.matrix.n_rows

    # -- state-vector plumbing ------------------------------------------
    def wrap(self, values: np.ndarray, name: str):
        """Protect a state vector (or copy it plain when vectors are off)."""
        if not self.protect_vectors:
            return np.array(values, dtype=np.float64, copy=True)
        vec = self.engine.register(
            ProtectedVector(np.asarray(values, dtype=np.float64), self.vector_scheme),
            name,
        )
        self._state.append(vec)
        self._named_state.append((name, vec))
        if self.session is not None:
            self.session.track(vec)
        return vec

    def read(self, container) -> np.ndarray:
        """Decode-free engine read (identity for plain arrays)."""
        return self.engine.read(container) if self.protect_vectors else container

    def write(self, container, values: np.ndarray):
        """Commit through the engine's write mode; returns the container."""
        if not self.protect_vectors:
            return values
        self.engine.write(container, values)
        return container

    def value_of(self, container) -> np.ndarray:
        """The container's computation-ready values (final-result read)."""
        return container.values() if self.protect_vectors else container

    # -- blocked (multi-RHS) state plumbing -----------------------------
    def wrap_block(self, values: np.ndarray, name: str):
        """Protect a ``(k, n)`` blocked iterate behind one flat codeword store.

        The blocked twin of :meth:`wrap`: all ``k`` columns of the
        iterate share one :class:`ProtectedBlockVector` — one dirty
        window, one scheduled check, one cache populate per iterate
        regardless of the block width.
        """
        if not self.protect_vectors:
            return np.array(values, dtype=np.float64, copy=True)
        vec = self.engine.register(
            ProtectedBlockVector(
                np.asarray(values, dtype=np.float64), self.vector_scheme
            ),
            name,
        )
        self._state.append(vec)
        self._named_state.append((name, vec))
        if self.session is not None:
            self.session.track(vec)
        return vec

    def read_block(self, container) -> np.ndarray:
        """Decode-free ``(k, n)``-shaped engine read of a blocked iterate."""
        if not self.protect_vectors:
            return container
        return self.engine.read(container).reshape(container.block_shape)

    def write_block(self, container, values: np.ndarray):
        """Commit a ``(k, n)`` iterate through the engine's write mode."""
        if not self.protect_vectors:
            return values
        self.engine.write(container, np.asarray(values).reshape(-1))
        return container

    def value_of_block(self, container) -> np.ndarray:
        """The blocked container's computation-ready ``(k, n)`` values."""
        return container.values2d() if self.protect_vectors else container

    # -- schedule hooks -------------------------------------------------
    def begin_iteration(self) -> None:
        """Per-iteration scheduling point: engine hooks + vector checks.

        Always reaches the engine so iteration hooks (live fault
        injection, progress callbacks) fire even in matrix-only solves;
        the engine itself skips vector scheduling when it tracks none.
        """
        self.engine.begin_iteration()

    def spmv(self, x, out: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` on the context's matrix through the engine schedule."""
        return self.engine.spmv(self.matrix, x, out=out)

    def spmv_out(self) -> np.ndarray:
        """The context's persistent SpMV result buffer.

        For products whose result is consumed within the iteration (CG's
        ``w = A p``): pass as ``out=`` so the engine's inner loop never
        allocates.  One buffer per context — don't use it for two
        overlapping products.
        """
        if self._spmv_out is None:
            self._spmv_out = np.empty(self.n, dtype=np.float64)
        return self._spmv_out

    def spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Blocked ``A @ X.T`` on the context's matrix through the engine."""
        return self.engine.spmm(self.matrix, X, out=out)

    def spmm_out(self, k: int) -> np.ndarray:
        """The context's persistent ``(k, n)`` blocked-SpMV result buffer.

        The blocked twin of :meth:`spmv_out`; reallocated only when the
        block width changes.
        """
        if self._spmm_out is None or self._spmm_out.shape[0] != k:
            self._spmm_out = np.empty((k, self.n), dtype=np.float64)
        return self._spmm_out

    def initial_spmm(self, X: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """The blocked residual-seeding product ``A @ X0``, verification-aware.

        Mirrors :meth:`initial_spmv`: fused solves route through the
        engine so the first matrix consumption is a verified due
        product; non-fused solves ride the up-front sweep and use a
        plain unchecked blocked product.
        """
        if self.fused:
            return self.engine.spmm(self.matrix, X, out=out)
        return self.matrix.matvec_multi_unchecked(X, out=out)

    def ensure_verified(self) -> None:
        """Force the up-front matrix sweep if the fused schedule skipped it.

        Fused solves defer initial verification to their first due
        engine product — sound for solvers whose first matrix
        consumption *is* an engine product, but anything decoded outside
        the engine beforehand (eigenvalue estimation over the clean
        views) must run this first so it never reads unverified storage.
        No-op when the up-front sweep already ran.
        """
        if not self._init_check_skipped:
            return
        self._init_check_skipped = False
        verify_matrix(self.matrix, self.policy, force=True)

    def initial_spmv(self, x, out: np.ndarray | None = None) -> np.ndarray:
        """The residual-seeding product ``A @ x0``, verification-aware.

        Fused solves route it through the engine so the very first
        matrix consumption is a verified (due) fused product — this is
        what lets the up-front forced sweep be skipped.  Non-fused
        solves keep the historical behaviour: the up-front sweep already
        verified storage, so the seed product is a plain
        ``matvec_unchecked`` that does not advance the check schedule.
        """
        if self.fused:
            return self.engine.spmv(self.matrix, x, out=out)
        return self.matrix.matvec_unchecked(x, out=out)

    def finish(self) -> None:
        """End-of-solve: the mandatory sweep, then release the transients.

        In session mode both are deferred to ``session.end_step()`` so
        dirty windows span the solve boundary.
        """
        if self.session is not None:
            return
        self.engine.finalize()
        for vec in self._state:
            self.engine.unregister(vec)

    # -- DUE recovery ---------------------------------------------------
    def maybe_checkpoint(self, it: int, **scalars) -> None:
        """Snapshot the live state for rollback, on the policy's cadence.

        No-op unless the engine carries a rollback recovery policy; a
        checkpoint is always taken at iteration 0 so a rollback target
        exists from the first DUE on.  Vector contents are read through
        :meth:`ProtectedVector.values`, which returns the buffered cache
        while a deferred write is pending — the checkpoint captures the
        solver's authoritative state, not a stale storage snapshot.
        """
        r = self.recovery
        if r is None or r.strategy != "rollback":
            return
        if it != 0 and it % r.policy.checkpoint_interval:
            return
        # values() allocates a fresh masked decode per vector — hand the
        # arrays to the store as-is (copy=False) rather than copying the
        # whole state a second time every checkpoint.
        vectors = {name: vec.values() for name, vec in self._named_state}
        r.store.snapshot(vectors, {"it": int(it), **scalars}, copy=False)

    def recover(self, exc: BaseException) -> dict | None:
        """Handle a caught integrity error per the recovery policy.

        Returns the checkpoint's scalar dict (``{"it": ..., ...}``) when
        state was rolled back — the solver resets its counters from it —
        or ``None`` when the damaged containers were repopulated in
        place and the solver should restart its recurrence from the
        *current* iterate.  Re-raises ``exc`` when recovery is disabled,
        the strategy is ``"raise"``, the retry budget is exhausted, or
        no repair path exists (no pristine source, no cache, no
        checkpoint).
        """
        if self.recovery is None:
            raise exc
        action = self.recovery.on_due(exc)  # spends one retry or raises
        self._repair_matrix(exc)
        if action == "rollback":
            saved = self.recovery.store.latest()
            if saved is not None and saved.vectors:
                for name, vec in self._named_state:
                    values = saved.vectors.get(name)
                    if values is not None:
                        vec.store(values)
                self.recovery.note_recovered(action)
                return dict(saved.scalars)
            # Matrix-only solve (nothing checkpointed): the repaired
            # matrix plus a recurrence restart is a full recovery, so
            # fall through to the repopulate behaviour.
        self._repair_vectors(exc)
        self.recovery.note_recovered(action)
        return None

    def _repair_matrix(self, exc: BaseException) -> None:
        """Rebuild the matrix from its pristine source if it is damaged."""
        matrix = self.matrix
        try:
            corrupted = matrix.detect_any()
            if not corrupted:
                # Codewords are fine but the error may have been a raw
                # index flip caught by the snapshot guard — revalidate.
                matrix.bounds_check()
                return
        except BoundsViolationError:
            corrupted = True
        if not self.recovery.repair_matrix(matrix):
            raise exc

    def _repair_vectors(self, exc: BaseException) -> None:
        """Repopulate damaged state vectors from cache or checkpoint."""
        saved = self.recovery.store.latest()
        for name, vec in self._named_state:
            if not vec.detect().any():
                continue
            if vec.rebuild_from_cache():
                continue
            values = saved.vectors.get(name) if saved is not None else None
            if values is None:
                raise exc
            vec.store(values)

    def info(self, **extra) -> dict:
        """The uniform counter block every protected solver reports.

        Counters are *this solve's own* (deltas against the start-of-solve
        snapshot), so a shared session engine still yields per-step
        numbers; the session-cumulative totals stay on ``session.stats``.
        Sweep work a session defers to ``end_step()`` lands after this
        report and is therefore only visible on the cumulative counters.
        """
        stats, base = self.policy.stats, self._stats_at_start
        out = {
            "full_checks": stats.full_checks - base.full_checks,
            "stripe_checks": stats.stripe_checks - base.stripe_checks,
            "bounds_checks": stats.bounds_checks - base.bounds_checks,
            "vector_checks": stats.vector_checks - base.vector_checks,
            "cached_reads": stats.cached_reads - base.cached_reads,
            "deferred_stores": stats.deferred_stores - base.deferred_stores,
            "dirty_flushes": stats.dirty_flushes - base.dirty_flushes,
            "corrected": stats.corrected - base.corrected,
            "fused_products": stats.fused_products - base.fused_products,
            "sweeps_skipped": stats.sweeps_skipped - base.sweeps_skipped,
            "vector_scheme": self.vector_scheme,
        }
        if self.recovery is not None:
            rs, rb = self.recovery.stats, self._recovery_stats_at_start
            out["recovery"] = {
                "strategy": self.recovery.strategy,
                "dues": rs.dues - rb.dues,
                "recoveries": rs.total_recoveries - rb.total_recoveries,
                "rollbacks": rs.rollbacks - rb.rollbacks,
                "repopulates": rs.repopulates - rb.repopulates,
                "vector_repairs": rs.vector_repairs - rb.vector_repairs,
                "matrix_reencodes": rs.matrix_reencodes - rb.matrix_reencodes,
            }
        out.update(extra)
        return out
