"""Solver plumbing: operator protocol and result records."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csr.matrix import CSRMatrix


class LinearOperator:
    """Minimal operator interface every solver consumes.

    Wraps anything exposing ``matvec`` (CSRMatrix, ProtectedCSRMatrix via
    the kernels, scipy operators in tests).
    """

    def __init__(self, matvec, n: int, diagonal=None):
        self._matvec = matvec
        self.n = int(n)
        self._diagonal = diagonal

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Apply the operator: return ``A @ x``."""
        return self._matvec(x)

    def diagonal(self) -> np.ndarray:
        """The operator's main diagonal (for Jacobi-style preconditioning)."""
        if self._diagonal is None:
            raise NotImplementedError("operator has no diagonal accessor")
        return self._diagonal() if callable(self._diagonal) else self._diagonal


def as_operator(obj) -> LinearOperator:
    """Coerce a matrix-like object into a :class:`LinearOperator`."""
    if isinstance(obj, LinearOperator):
        return obj
    if isinstance(obj, CSRMatrix):
        return LinearOperator(obj.matvec, obj.n_rows, obj.diagonal)
    if hasattr(obj, "matvec") and hasattr(obj, "shape"):
        diag = getattr(obj, "diagonal", None)
        return LinearOperator(obj.matvec, obj.shape[0], diag)
    raise TypeError(f"cannot interpret {type(obj).__name__} as a linear operator")


@dataclasses.dataclass
class SolverResult:
    """Outcome of one linear solve.

    Attributes
    ----------
    x:
        Final iterate.
    iterations:
        Iterations actually performed.
    converged:
        True when the residual criterion was met within the budget.
    residual_norms:
        2-norm residual history, ``residual_norms[0]`` is the initial one.
    info:
        Solver-specific extras (eigenvalue estimates, check counters, ...).
    """

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = dataclasses.field(default_factory=list)
    info: dict = dataclasses.field(default_factory=dict)

    @property
    def final_residual(self) -> float:
        """The last residual norm the solve recorded."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")
