"""Jacobi iteration (TeaLeaf's tl_use_jacobi).

Slowly convergent but embarrassingly parallel; kept as the paper's host
application offers it as an alternative solver and because its different
kernel mix (no dot products in the hot loop) exercises a different ABFT
cost profile in the ablation benchmarks.

:func:`protected_jacobi_run` is the engine-threaded ABFT variant: the
matrix schedule covers every sweep's SpMV, the x/r state vectors live in
protected containers with decode-free cached reads and dirty-window
buffered stores, and the diagonal is decoded once from the matrix's
cached clean views instead of per sweep.
"""

from __future__ import annotations

import numpy as np

from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.toolkit import ProtectedIteration


def jacobi_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    check_every: int = 10,
) -> SolverResult:
    """Solve ``A x = b`` by damped-free Jacobi sweeps.

    ``x_{k+1} = x_k + D^-1 (b - A x_k)``.  The residual norm is evaluated
    every ``check_every`` sweeps (it costs an extra SpMV-equivalent).
    """
    op = as_operator(A)
    d_inv = 1.0 / op.diagonal()
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        x += d_inv * r
        it += 1
        if it % check_every == 0 or it == max_iters:
            r = b - op.matvec(x)
            norms.append(float(np.linalg.norm(r)))
            if norms[-1] ** 2 < eps:
                converged = True
        else:
            r = b - op.matvec(x)
    return SolverResult(x=x, iterations=it, converged=converged, residual_norms=norms)


def protected_jacobi_run(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    check_every: int = 10,
    policy: CheckPolicy | None = None,
    vector_scheme: str | None = "secded64",
    engine: DeferredVerificationEngine | None = None,
    session=None,
) -> SolverResult:
    """Fully protected Jacobi driven by the deferred-verification engine.

    Mirrors :func:`jacobi_solve` step for step (same update recurrence,
    same ``check_every`` residual cadence) so iteration counts match the
    plain solver up to the mantissa-LSB noise, with the x/r state under
    ``vector_scheme`` and every SpMV counted against the matrix schedule.
    """
    ctx = ProtectedIteration(
        matrix, policy=policy, engine=engine, vector_scheme=vector_scheme,
        session=session,
    )
    # The whole solve iterates against this one decoded diagonal, so a
    # fused schedule (which defers the up-front sweep) must verify
    # storage before it is read.
    ctx.ensure_verified()
    d_inv = 1.0 / matrix.diagonal()
    x = ctx.wrap(np.zeros(ctx.n) if x0 is None else x0, "x")
    r_val = b - ctx.initial_spmv(ctx.read(x))
    r = ctx.wrap(r_val, "r")
    norms = [float(np.linalg.norm(r_val))]
    converged = norms[0] ** 2 < eps
    it = 0
    ctx.maybe_checkpoint(it)
    while True:
        try:
            while not converged and it < max_iters:
                ctx.begin_iteration()
                x_val = ctx.read(x) + d_inv * ctx.read(r)
                x = ctx.write(x, x_val)
                it += 1
                r_val = b - ctx.spmv(x_val)
                r = ctx.write(r, r_val)
                if it % check_every == 0 or it == max_iters:
                    norms.append(float(np.linalg.norm(r_val)))
                    if norms[-1] ** 2 < eps:
                        converged = True
                ctx.maybe_checkpoint(it)

            x_final = ctx.value_of(x)
            ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)
            if saved is not None:
                it = int(saved["it"])
            # Jacobi is memoryless: the true residual of the repaired /
            # rolled-back x is the whole restart.
            r_val = b - ctx.spmv(ctx.read(x))
            r = ctx.write(r, r_val)
            norms.append(float(np.linalg.norm(r_val)))
            converged = norms[-1] ** 2 < eps
    return SolverResult(
        x=x_final, iterations=it, converged=converged,
        residual_norms=norms, info=ctx.info(),
    )
