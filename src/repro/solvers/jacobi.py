"""Jacobi iteration (TeaLeaf's tl_use_jacobi).

Slowly convergent but embarrassingly parallel; kept as the paper's host
application offers it as an alternative solver and because its different
kernel mix (no dot products in the hot loop) exercises a different ABFT
cost profile in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.base import SolverResult, as_operator


def jacobi_solve(
    A,
    b: np.ndarray,
    x0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    check_every: int = 10,
) -> SolverResult:
    """Solve ``A x = b`` by damped-free Jacobi sweeps.

    ``x_{k+1} = x_k + D^-1 (b - A x_k)``.  The residual norm is evaluated
    every ``check_every`` sweeps (it costs an extra SpMV-equivalent).
    """
    op = as_operator(A)
    d_inv = 1.0 / op.diagonal()
    x = np.zeros(op.n) if x0 is None else np.array(x0, dtype=np.float64)
    r = b - op.matvec(x)
    norms = [float(np.linalg.norm(r))]
    converged = norms[0] ** 2 < eps
    it = 0
    while not converged and it < max_iters:
        x += d_inv * r
        it += 1
        if it % check_every == 0 or it == max_iters:
            r = b - op.matvec(x)
            norms.append(float(np.linalg.norm(r)))
            if norms[-1] ** 2 < eps:
                converged = True
        else:
            r = b - op.matvec(x)
    return SolverResult(x=x, iterations=it, converged=converged, residual_norms=norms)
