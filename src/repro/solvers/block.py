"""Blocked multi-RHS CG: amortize verification and dispatch across columns.

A server batch of compatible jobs — same matrix, same method, same
protection — is ``k`` independent linear systems sharing one operator.
Running them as ``k`` sequential solves pays the fixed per-iteration
costs ``k`` times: every kernel dispatch, every SECDED codeword screen,
every scheduled check.  Blocking the right-hand sides into one
``(k, n)`` iterate pays each of those once per iteration and amortizes
it across all ``k`` columns — the classic ABFT block-operation argument
(Bosilca et al., arXiv:0806.3121) applied to the paper's protected
solver stack:

* the matrix product becomes one fused blocked SpMV
  (:meth:`~repro.protect.matrix.ProtectedCSRMatrix.spmv_verified_multi`)
  that syndromes each ``(value, colidx)`` codeword chunk **once** and
  feeds its decoded element to all ``k`` gathers;
* the solver state lives in
  :class:`~repro.protect.vector.ProtectedBlockVector` stores — one
  dirty-window schedule, one cache populate, one scheduled check per
  iterate regardless of ``k``;
* the CG recurrence carries per-column ``alpha``/``beta`` scalars and a
  convergence mask, so finished columns freeze (their rows are copied
  verbatim — never scaled by a zero step, which would flip ``-0.0`` to
  ``+0.0``) while stragglers keep iterating.

Column parity, precisely: with group-1 vector schemes (``sed``,
``secded64`` — all presets) column ``j`` of a blocked solve is **bitwise
identical** to the corresponding single-RHS solve under a fresh engine,
because every per-column operation reuses the single-RHS arithmetic
exactly — contiguous-row ``np.dot`` for the scalars, elementwise
broadcast updates for the axpys, the same left-to-right row reduction
inside the blocked SpMV, and one engine access per iteration so the due
pattern matches.  Grouped vector schemes (``secded128``, ``crc32c``)
keep full protection but build codewords that straddle column
boundaries when ``n`` is not a multiple of the group — a documented
deviation (results still match; only the codeword partition differs).

``REPRO_BLOCK_SOLVE=0`` disables the blocked path everywhere
(:func:`block_solve_enabled`); callers then fall back to the sequential
per-column loop with identical per-column results.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np

from repro.backends.base import CHUNK
from repro.csr.spmv import spmm
from repro.errors import ConfigurationError
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.session import ProtectionSession
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.toolkit import ProtectedIteration


def block_solve_enabled() -> bool:
    """True unless ``REPRO_BLOCK_SOLVE=0`` disables the blocked path."""
    return os.environ.get("REPRO_BLOCK_SOLVE", "1") != "0"


@dataclasses.dataclass
class BlockResult:
    """The result of one blocked multi-RHS solve.

    ``x`` is ``(n, k)`` — column ``j`` solves against column ``j`` of
    the right-hand-side block.  ``iterations``/``converged`` are
    per-column arrays and ``residual_norms`` one history list per
    column.  :meth:`column` re-packages any column as a standalone
    :class:`~repro.solvers.base.SolverResult`.
    """

    x: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray
    residual_norms: list
    info: dict = dataclasses.field(default_factory=dict)

    @property
    def k(self) -> int:
        """The block width (number of right-hand sides)."""
        return self.x.shape[1]

    def column(self, j: int) -> SolverResult:
        """Column ``j`` as a standalone single-RHS solver result."""
        return SolverResult(
            x=np.ascontiguousarray(self.x[:, j]),
            iterations=int(self.iterations[j]),
            converged=bool(self.converged[j]),
            residual_norms=list(self.residual_norms[j]),
            info=dict(self.info),
        )


def _per_column(value, k: int, name: str) -> np.ndarray:
    """Normalize a scalar-or-length-``k`` parameter to a float64 array."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(k, float(arr))
    if arr.shape != (k,):
        raise ConfigurationError(
            f"{name} must be a scalar or a length-{k} sequence, "
            f"got shape {arr.shape}"
        )
    return arr.copy()


def _block_rhs(B: np.ndarray) -> np.ndarray:
    """Validate and transpose a public ``(n, k)`` RHS block to ``(k, n)``."""
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2 or B.shape[1] == 0:
        raise ConfigurationError(
            "blocked solves expect a 2-D (n, k) right-hand-side block "
            f"with k >= 1, got shape {B.shape}"
        )
    return np.ascontiguousarray(B.T)


def _block_x0(X0, k: int, n: int) -> np.ndarray:
    """The ``(k, n)`` initial iterate block (zeros when ``X0`` is None)."""
    if X0 is None:
        return np.zeros((k, n), dtype=np.float64)
    X0 = np.asarray(X0, dtype=np.float64)
    if X0.shape != (n, k):
        raise ConfigurationError(
            f"x0 block must have shape ({n}, {k}), got {X0.shape}"
        )
    return np.ascontiguousarray(X0.T)


def _make_block_matvec(A, k: int, n_rows: int):
    """A ``(k, n) -> (k, n_rows)`` blocked product closure for plain solves.

    CSR-backed operators run the blocked gather kernel through
    persistent scratch (row ``j`` bitwise equal to ``A.matvec(X[j])``);
    anything else falls back to ``k`` per-row matvecs — still exactly
    the single-RHS arithmetic, just without the shared gather.
    """
    values = getattr(A, "values", None)
    colidx = getattr(A, "colidx", None)
    rowptr = getattr(A, "rowptr", None)
    if (
        values is not None and colidx is not None and rowptr is not None
        and not isinstance(A, ProtectedCSRMatrix)
    ):
        if colidx.dtype != np.int64:
            colidx = colidx.astype(np.int64)
        if rowptr.dtype != np.int64:
            rowptr = rowptr.astype(np.int64)
        products = np.empty((k, values.size), dtype=np.float64)
        tile = np.empty(k * min(CHUNK, max(values.size, 1)), dtype=np.float64)
        lengths = np.empty(n_rows, dtype=np.int64)

        def matmat(X: np.ndarray, out: np.ndarray) -> np.ndarray:
            return spmm(values, colidx, rowptr, X, n_rows, out=out,
                        products=products, tile=tile, lengths=lengths)

        return matmat

    op = as_operator(A)

    def matmat(X: np.ndarray, out: np.ndarray) -> np.ndarray:
        for j in range(X.shape[0]):
            out[j] = op.matvec(X[j])
        return out

    return matmat


def block_cg_solve(
    A,
    B: np.ndarray,
    X0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
) -> BlockResult:
    """Unprotected blocked CG over a ``(n, k)`` right-hand-side block.

    Column ``j`` replicates :func:`~repro.solvers.cg.cg_solve` (identity
    preconditioner) bitwise: same residual recurrence, same
    ``norm(r)**2 < eps`` convergence test, same zero-curvature
    breakdown.  ``eps``/``max_iters`` may be scalars or length-``k``
    sequences for per-column targets.
    """
    if isinstance(A, ProtectedCSRMatrix):
        A = A.to_csr()
    Bt = _block_rhs(B)
    k, n = Bt.shape
    eps_c = _per_column(eps, k, "eps")
    mi_c = _per_column(max_iters, k, "max_iters").astype(np.int64)
    matmat = _make_block_matvec(A, k, n)

    X = _block_x0(X0, k, n)
    W = np.empty((k, n), dtype=np.float64)
    R = Bt - matmat(X, W)
    # Identity preconditioner: z is r itself, so rz == dot(r, r) and the
    # search-direction update reads p = r + beta * p, as in cg_solve.
    P = R.copy()
    rz = np.array([float(np.dot(R[j], R[j])) for j in range(k)])
    norms = [[float(np.linalg.norm(R[j]))] for j in range(k)]
    converged = np.array([norms[j][0] ** 2 < eps_c[j] for j in range(k)])
    broken = np.zeros(k, dtype=bool)
    iters = np.zeros(k, dtype=np.int64)

    while True:
        active = ~converged & ~broken & (iters < mi_c)
        if not active.any():
            break
        idx = np.flatnonzero(active)
        matmat(P, W)
        pw = np.zeros(k)
        for j in idx:
            pw[j] = float(np.dot(P[j], W[j]))
        dead = idx[pw[idx] == 0.0]
        if dead.size:
            # Zero curvature: cg_solve breaks before touching x/r, so
            # these columns freeze at their pre-iteration state.
            broken[dead] = True
            idx = idx[pw[idx] != 0.0]
        if idx.size == 0:
            continue
        alpha = rz[idx] / pw[idx]
        if idx.size == k:
            X += alpha[:, None] * P
            R -= alpha[:, None] * W
        else:
            X[idx] += alpha[:, None] * P[idx]
            R[idx] -= alpha[:, None] * W[idx]
        cont = []
        rz_new = np.zeros(k)
        for j in idx:
            rz_new[j] = float(np.dot(R[j], R[j]))
            norms[j].append(float(np.linalg.norm(R[j])))
            iters[j] += 1
            if norms[j][-1] ** 2 < eps_c[j]:
                converged[j] = True
            else:
                cont.append(int(j))
        if cont:
            cidx = np.asarray(cont)
            beta = rz_new[cidx] / rz[cidx]
            P[cidx] = R[cidx] + beta[:, None] * P[cidx]
            rz[cidx] = rz_new[cidx]

    return BlockResult(
        x=np.ascontiguousarray(X.T),
        iterations=iters,
        converged=converged,
        residual_norms=norms,
        info={"block_width": k},
    )


def protected_block_cg_run(
    matrix: ProtectedCSRMatrix,
    B: np.ndarray,
    X0: np.ndarray | None = None,
    *,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    policy=None,
    vector_scheme: str | None = "secded64",
    engine=None,
    session=None,
) -> BlockResult:
    """Fully protected blocked CG: one verification schedule for k systems.

    Column ``j`` replicates :func:`~repro.solvers.cg.protected_cg_run`
    bitwise (under a fresh engine with a group-1 vector scheme): the
    blocked iterate makes exactly one engine matrix access per iteration
    — the same due pattern as a solo solve — and a due access runs the
    fused blocked kernel, verifying every codeword once for all ``k``
    products.  Frozen (converged or broken-down) columns have their rows
    of ``x``/``r``/``p`` carried verbatim through each commit while the
    stragglers iterate.  DUE recovery mirrors the single-RHS runner:
    repair/rollback through the context, then restart the recurrence for
    *all* columns from the authoritative iterate block.
    """
    Bt = _block_rhs(B)
    k = Bt.shape[0]
    eps_c = _per_column(eps, k, "eps")
    mi_c = _per_column(max_iters, k, "max_iters").astype(np.int64)
    ctx = ProtectedIteration(
        matrix, policy=policy, engine=engine, vector_scheme=vector_scheme,
        session=session,
    )
    n = ctx.n
    X = ctx.wrap_block(_block_x0(X0, k, n), "x")
    R0 = Bt - ctx.initial_spmm(ctx.read_block(X))
    R = ctx.wrap_block(R0, "r")
    P = ctx.wrap_block(R0, "p")
    Rv = ctx.read_block(R)
    rr = np.array([float(np.dot(Rv[j], Rv[j])) for j in range(k)])
    norms = [[float(np.sqrt(rr[j]))] for j in range(k)]
    converged = rr < eps_c
    broken = np.zeros(k, dtype=bool)
    iters = np.zeros(k, dtype=np.int64)
    step = 0
    ctx.maybe_checkpoint(step, iters=[int(v) for v in iters])
    while True:
        try:
            while True:
                active = ~converged & ~broken & (iters < mi_c)
                if not active.any():
                    break
                ctx.begin_iteration()
                idx = np.flatnonzero(active)
                P_val = ctx.read_block(P)
                W = ctx.spmm(P_val, out=ctx.spmm_out(k))
                pw = np.zeros(k)
                for j in idx:
                    pw[j] = float(np.dot(P_val[j], W[j]))
                dead = idx[pw[idx] == 0.0]
                if dead.size:
                    broken[dead] = True
                    idx = idx[pw[idx] != 0.0]
                if idx.size == 0:
                    continue
                alpha = rr[idx] / pw[idx]
                Xv = ctx.read_block(X)
                Rv = ctx.read_block(R)
                if idx.size == k:
                    X_new = Xv + alpha[:, None] * P_val
                    R_new = Rv - alpha[:, None] * W
                else:
                    # Frozen columns are copied verbatim — never scaled
                    # by a zero step, which would rewrite -0.0 as +0.0.
                    X_new = np.array(Xv)
                    X_new[idx] = Xv[idx] + alpha[:, None] * P_val[idx]
                    R_new = np.array(Rv)
                    R_new[idx] = Rv[idx] - alpha[:, None] * W[idx]
                X = ctx.write_block(X, X_new)
                R = ctx.write_block(R, R_new)
                step += 1
                cont = []
                rr_new = np.zeros(k)
                for j in idx:
                    rr_new[j] = float(np.dot(R_new[j], R_new[j]))
                    norms[j].append(float(np.sqrt(rr_new[j])))
                    iters[j] += 1
                    if rr_new[j] < eps_c[j]:
                        converged[j] = True
                    else:
                        cont.append(int(j))
                if cont:
                    cidx = np.asarray(cont)
                    beta = rr_new[cidx] / rr[cidx]
                    if cidx.size == k:
                        P_new = R_new + beta[:, None] * P_val
                    else:
                        P_new = np.array(P_val)
                        P_new[cidx] = R_new[cidx] + beta[:, None] * P_val[cidx]
                    P = ctx.write_block(P, P_new)
                    rr[cidx] = rr_new[cidx]
                ctx.maybe_checkpoint(step, iters=[int(v) for v in iters])

            X_final = ctx.value_of_block(X)
            ctx.finish()
            break
        except ctx.RECOVERABLE as exc:
            saved = ctx.recover(exc)  # repairs state; raises if recovery is off
            if saved is not None:
                step = int(saved["it"])
                iters = np.asarray(saved.get("iters", iters), dtype=np.int64)
            # Restart the recurrence for every column from the
            # authoritative iterate block, exactly as the single-RHS
            # runner restarts from x.
            R_val = Bt - ctx.spmm(ctx.read_block(X))
            R = ctx.write_block(R, R_val)
            P = ctx.write_block(P, R_val)
            broken[:] = False
            for j in range(k):
                rr[j] = float(np.dot(R_val[j], R_val[j]))
                norms[j].append(float(np.sqrt(rr[j])))
            converged = rr < eps_c
    return BlockResult(
        x=np.ascontiguousarray(X_final.T),
        iterations=iters,
        converged=converged,
        residual_norms=norms,
        info=ctx.info(block_width=k),
    )


def _sequential_block(
    A, B, X0=None, *, method="cg", protection=None,
    eps=1e-15, max_iters=10_000, **kwargs,
) -> BlockResult:
    """The per-column fallback: ``k`` single-RHS solves, assembled as a block.

    Used when the blocked path is disabled (``REPRO_BLOCK_SOLVE=0``),
    the method has no blocked runner, or method-specific kwargs are in
    play.  Results are definitionally identical to solo solves.
    """
    from repro.solvers.registry import solve as _solve

    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ConfigurationError("blocked solves expect a 2-D RHS block")
    k = B.shape[1]
    eps_c = _per_column(eps, k, "eps")
    mi_c = _per_column(max_iters, k, "max_iters").astype(np.int64)
    X0 = None if X0 is None else np.asarray(X0, dtype=np.float64)
    columns = []
    for j in range(k):
        x0j = None if X0 is None else X0[:, j]
        columns.append(_solve(
            A, B[:, j], x0j, method=method, protection=protection,
            eps=float(eps_c[j]), max_iters=int(mi_c[j]), **kwargs,
        ))
    return _block_from_columns(columns)


def _block_from_columns(columns: list[SolverResult]) -> BlockResult:
    """Assemble per-column solver results into one :class:`BlockResult`."""
    return BlockResult(
        x=np.ascontiguousarray(np.stack([c.x for c in columns], axis=1)),
        iterations=np.array([c.iterations for c in columns], dtype=np.int64),
        converged=np.array([c.converged for c in columns], dtype=bool),
        residual_norms=[list(c.residual_norms) for c in columns],
        info={
            "block_width": len(columns),
            "sequential_fallback": True,
            "columns": [dict(c.info) for c in columns],
        },
    )


def solve_block(
    A,
    B: np.ndarray,
    X0: np.ndarray | None = None,
    *,
    method: str = "cg",
    protection=None,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    **kwargs,
) -> BlockResult:
    """Dispatch a multi-RHS solve: blocked CG when possible, sequential otherwise.

    The 2-D counterpart of :func:`repro.solve` (which routes here when
    ``b.ndim == 2``).  The blocked runners cover CG without
    method-specific kwargs; anything else — other methods,
    preconditioners, ``REPRO_BLOCK_SOLVE=0`` — falls back to ``k``
    sequential single-RHS solves with identical per-column results.
    """
    if isinstance(protection, ProtectionSession):
        return protection.solve(A, B, X0, method=method, eps=eps,
                                max_iters=max_iters, **kwargs)
    if method != "cg" or kwargs or not block_solve_enabled():
        return _sequential_block(A, B, X0, method=method, protection=protection,
                                 eps=eps, max_iters=max_iters, **kwargs)
    if protection is None or not protection.enabled:
        plain_A = A.to_csr() if isinstance(A, ProtectedCSRMatrix) else A
        return block_cg_solve(plain_A, B, X0, eps=eps, max_iters=max_iters)
    pmat = protection.wrap_matrix(A)
    return protected_block_cg_run(
        pmat, B, X0, eps=eps, max_iters=max_iters,
        engine=protection.engine(), vector_scheme=protection.vector_scheme,
    )
