"""The unified solver registry and the top-level ``repro.solve`` entry point.

The paper's §VIII remark — that the right long-term home for these
techniques is the solver-library level — becomes concrete here: every
solver method registers a *plain* runner and an engine-threaded
*protected* runner under one name, and :func:`solve` dispatches on
``method=`` + ``protection=`` so the caller never touches per-solver
protection plumbing:

    import repro
    res = repro.solve(A, b, method="jacobi",
                      protection=repro.ProtectionConfig.deferred(window=16))

``protection`` accepts:

* ``None`` (or a disabled config) — the plain solver;
* a :class:`~repro.protect.config.ProtectionConfig` — the matrix is
  wrapped per the config and a fresh deferred-verification engine runs
  the solve;
* a :class:`~repro.protect.session.ProtectionSession` — the session's
  long-lived engine runs the solve and keeps its dirty windows open
  across the solve boundary (the cross-time-step mode).

Runner signatures are uniform: ``plain(A, b, x0, *, eps, max_iters,
**kw)`` and ``protected(pmat, b, x0, *, eps, max_iters, policy=None,
vector_scheme=..., engine=None, session=None, **kw)``; method-specific
extras (``preconditioner``, ``inner_steps``, ``eig_min``...) pass
through ``**kw``.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.session import ProtectionSession
from repro.solvers.base import SolverResult, as_operator
from repro.solvers.cg import cg_solve, protected_cg_run
from repro.solvers.chebyshev import (
    chebyshev_solve,
    estimate_eigenvalue_bounds,
    protected_chebyshev_run,
)
from repro.solvers.jacobi import jacobi_solve, protected_jacobi_run
from repro.solvers.ppcg import ppcg_solve, protected_ppcg_run


@dataclasses.dataclass(frozen=True)
class SolverMethod:
    """One registered solver: a plain and an engine-threaded runner."""

    name: str
    plain: Callable[..., SolverResult]
    protected: Callable[..., SolverResult]
    description: str = ""


_METHODS: dict[str, SolverMethod] = {}


def register_method(
    name: str,
    plain: Callable[..., SolverResult],
    protected: Callable[..., SolverResult],
    description: str = "",
) -> SolverMethod:
    """Add (or replace) a method in the registry and return its record."""
    method = SolverMethod(name=name, plain=plain, protected=protected,
                          description=description)
    _METHODS[name] = method
    return method


def get_method(name: str) -> SolverMethod:
    """Look a method up by name, with a helpful error for typos."""
    try:
        return _METHODS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown solver method {name!r}; choose from {sorted(_METHODS)}"
        ) from None


def available_methods() -> tuple[str, ...]:
    """The registered method names, sorted."""
    return tuple(sorted(_METHODS))


def run_plain(runner: SolverMethod, A, b, x0=None, *,
              eps: float = 1e-15, max_iters: int = 10_000, **kwargs) -> SolverResult:
    """The unprotected path, shared by :func:`solve` and the session.

    A pre-wrapped protected matrix is decoded so the plain runner always
    sees CSR storage.
    """
    if isinstance(A, ProtectedCSRMatrix):
        A = A.to_csr()
    return runner.plain(A, b, x0, eps=eps, max_iters=max_iters, **kwargs)


def _plain_chebyshev(A, b, x0=None, *, eps=1e-15, max_iters=10_000,
                     eig_min=None, eig_max=None, **kwargs) -> SolverResult:
    """Chebyshev with TeaLeaf's bound bootstrap when none are supplied."""
    if eig_min is None or eig_max is None:
        eig_min, eig_max = estimate_eigenvalue_bounds(as_operator(A))
    return chebyshev_solve(A, b, x0, eig_min=eig_min, eig_max=eig_max,
                           eps=eps, max_iters=max_iters, **kwargs)


register_method("cg", cg_solve, protected_cg_run,
                "conjugate gradient (TeaLeaf tl_use_cg)")
register_method("ppcg", ppcg_solve, protected_ppcg_run,
                "polynomially preconditioned CG (tl_use_ppcg)")
register_method("jacobi", jacobi_solve, protected_jacobi_run,
                "Jacobi sweeps (tl_use_jacobi)")
register_method("chebyshev", _plain_chebyshev, protected_chebyshev_run,
                "Chebyshev semi-iteration (tl_use_chebyshev)")


def solve(
    A,
    b,
    x0=None,
    *,
    method: str = "cg",
    protection: ProtectionConfig | ProtectionSession | None = None,
    eps: float = 1e-15,
    max_iters: int = 10_000,
    distributed: int | None = None,
    **kwargs,
) -> SolverResult:
    """Solve ``A x = b`` with any registered method under any protection.

    Parameters
    ----------
    A:
        A :class:`~repro.csr.matrix.CSRMatrix` (or operator for the
        unprotected path).  A pre-wrapped
        :class:`~repro.protect.matrix.ProtectedCSRMatrix` is used as-is
        when protection is active (and decoded when it is not).
    b:
        The right-hand side.  A 2-D ``(n, k)`` block routes to the
        blocked multi-RHS path (:func:`repro.solvers.block.solve_block`),
        which amortises verification and dispatch across the ``k``
        columns and returns a
        :class:`~repro.solvers.block.BlockResult`.
    protection:
        ``None`` for the plain solver, a :class:`ProtectionConfig` for a
        one-shot protected solve, or a :class:`ProtectionSession` to run
        under a shared cross-solve engine.
    distributed:
        Shard the solve across this many worker processes via
        :func:`repro.dist.solve.distributed_solve` (CG only; any
        ``protection`` config then applies per shard and its recovery
        policy also governs shard-death respawns).  ``None``/``0`` stays
        single-process.
    kwargs:
        Method-specific extras (``preconditioner``, ``inner_steps``,
        ``eig_bounds``, ``eig_min``/``eig_max``, ``check_every``;
        ``kill_plan``/``round_timeout`` for distributed solves).
    """
    if b is not None and np.ndim(b) == 2:
        if distributed:
            raise ConfigurationError(
                "distributed solves take a single right-hand side; solve "
                "the block's columns separately or drop distributed="
            )
        from repro.solvers.block import solve_block

        return solve_block(A, b, x0, method=method, protection=protection,
                           eps=eps, max_iters=max_iters, **kwargs)
    if distributed:
        if isinstance(protection, ProtectionSession):
            raise ConfigurationError(
                "distributed solves take a ProtectionConfig (or None); a "
                "ProtectionSession's engine cannot span shard processes"
            )
        from repro.dist.solve import distributed_solve

        return distributed_solve(
            A, b, x0, n_shards=int(distributed), method=method,
            protection=protection, eps=eps, max_iters=max_iters, **kwargs,
        )
    if isinstance(protection, ProtectionSession):
        return protection.solve(A, b, x0, method=method, eps=eps,
                                max_iters=max_iters, **kwargs)
    runner = get_method(method)
    if protection is None or not protection.enabled:
        return run_plain(runner, A, b, x0, eps=eps, max_iters=max_iters, **kwargs)
    pmat = protection.wrap_matrix(A)
    return runner.protected(
        pmat, b, x0, eps=eps, max_iters=max_iters,
        engine=protection.engine(), vector_scheme=protection.vector_scheme,
        **kwargs,
    )
