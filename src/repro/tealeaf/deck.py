"""`tea.in` input decks.

TeaLeaf configures runs from a small key=value deck between ``*tea`` and
``*endtea`` markers, with ``state`` lines describing initial material
regions.  This module parses and serialises that format (the subset the
paper's experiments need) so the examples can ship runnable decks.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class State:
    """One material region: background (state 1) or a rectangle."""

    density: float
    energy: float
    geometry: str = "background"  # "background" or "rectangle"
    xmin: float = 0.0
    xmax: float = 0.0
    ymin: float = 0.0
    ymax: float = 0.0


@dataclasses.dataclass
class Deck:
    """A parsed TeaLeaf input deck."""

    x_cells: int = 64
    y_cells: int = 64
    xmin: float = 0.0
    xmax: float = 10.0
    ymin: float = 0.0
    ymax: float = 10.0
    initial_timestep: float = 0.004
    end_step: int = 5
    tl_max_iters: int = 10_000
    tl_eps: float = 1e-15
    solver: str = "cg"  # cg | jacobi | chebyshev | ppcg
    use_reciprocal_conductivity: bool = True  # TeaLeaf coefficient mode
    # Deferred-verification engine knobs (ABFT runs only); the defaults
    # are the paper's check-on-every-access mode.
    tl_check_interval: int = 1
    tl_vector_interval: int | None = None
    tl_defer_writes: bool | None = None
    tl_step_window: int = 1  # time-steps sharing one engine window
    # DUE recovery knobs (ABFT runs only): in-solve strategy + budgets,
    # plus how many times the driver may redo a step whose solve died.
    tl_recovery: str | None = None  # raise | repopulate | rollback
    tl_max_retries: int = 3
    tl_checkpoint_interval: int = 8
    tl_step_retries: int = 0
    states: list[State] = dataclasses.field(default_factory=list)

    def __post_init__(self):
        if not self.states:
            # The classic tea_bm setup: cold dense background with a hot
            # light rectangular region in the lower-left corner.
            self.states = [
                State(density=100.0, energy=0.0001),
                State(
                    density=0.1,
                    energy=25.0,
                    geometry="rectangle",
                    xmin=0.0,
                    xmax=self.xmax / 2.0,
                    ymin=0.0,
                    ymax=self.ymax / 5.0,
                ),
            ]

    @property
    def dx(self) -> float:
        return (self.xmax - self.xmin) / self.x_cells

    @property
    def dy(self) -> float:
        return (self.ymax - self.ymin) / self.y_cells

    def protection_config(
        self,
        element_scheme: str | None = "secded64",
        rowptr_scheme: str | None = "secded64",
        vector_scheme: str | None = None,
        correct: bool | None = None,
    ):
        """Map the deck's ``tl_*`` engine knobs into a ProtectionConfig.

        The schemes stay caller-chosen (decks describe the physics; the
        campaign scripts pick codes), but the deferred-verification
        schedule — ``tl_check_interval``, ``tl_vector_interval``,
        ``tl_defer_writes`` — comes from the deck, so the windowed ~5x
        mode is reachable from an ``.in`` file without Python.  When
        ``correct`` is unset it follows the paper's rule: correction on
        for check-on-every-access, detection-only once checks defer.
        ``tl_recovery`` (with ``tl_max_retries`` /
        ``tl_checkpoint_interval``) arms the DUE recovery layer the same
        way.
        """
        from repro.protect.config import ProtectionConfig
        from repro.recover import RecoveryPolicy

        if correct is None:
            vec_iv = self.tl_vector_interval
            correct = self.tl_check_interval <= 1 and (vec_iv is None or vec_iv <= 1)
        recovery = None
        if self.tl_recovery is not None:
            recovery = RecoveryPolicy(
                strategy=self.tl_recovery,
                max_retries=self.tl_max_retries,
                checkpoint_interval=self.tl_checkpoint_interval,
            )
        return ProtectionConfig(
            element_scheme=element_scheme,
            rowptr_scheme=rowptr_scheme,
            vector_scheme=vector_scheme,
            interval=self.tl_check_interval,
            vector_interval=self.tl_vector_interval,
            defer_writes=self.tl_defer_writes,
            correct=correct,
            recovery=recovery,
        )

    def to_text(self) -> str:
        """Serialise back to `tea.in` syntax."""
        lines = ["*tea"]
        for k, state in enumerate(self.states, start=1):
            parts = [f"state {k} density={state.density} energy={state.energy}"]
            if state.geometry != "background":
                parts.append(
                    f"geometry={state.geometry} xmin={state.xmin} xmax={state.xmax} "
                    f"ymin={state.ymin} ymax={state.ymax}"
                )
            lines.append(" ".join(parts))
        lines += [
            f"x_cells={self.x_cells}",
            f"y_cells={self.y_cells}",
            f"xmin={self.xmin}",
            f"xmax={self.xmax}",
            f"ymin={self.ymin}",
            f"ymax={self.ymax}",
            f"initial_timestep={self.initial_timestep}",
            f"end_step={self.end_step}",
            f"tl_max_iters={self.tl_max_iters}",
            f"tl_eps={self.tl_eps}",
            f"tl_use_{self.solver}",
        ]
        if self.tl_check_interval != 1:
            lines.append(f"tl_check_interval={self.tl_check_interval}")
        if self.tl_vector_interval is not None:
            lines.append(f"tl_vector_interval={self.tl_vector_interval}")
        if self.tl_defer_writes is not None:
            lines.append(f"tl_defer_writes={str(self.tl_defer_writes).lower()}")
        if self.tl_step_window != 1:
            lines.append(f"tl_step_window={self.tl_step_window}")
        if self.tl_recovery is not None:
            lines.append(f"tl_recovery={self.tl_recovery}")
        if self.tl_max_retries != 3:
            lines.append(f"tl_max_retries={self.tl_max_retries}")
        if self.tl_checkpoint_interval != 8:
            lines.append(f"tl_checkpoint_interval={self.tl_checkpoint_interval}")
        if self.tl_step_retries != 0:
            lines.append(f"tl_step_retries={self.tl_step_retries}")
        if not self.use_reciprocal_conductivity:
            lines.append("tl_coefficient_density")
        lines.append("*endtea")
        return "\n".join(lines) + "\n"


def parse_deck(text: str) -> Deck:
    """Parse `tea.in` syntax into a :class:`Deck`.

    Unknown keys are ignored (TeaLeaf has many knobs the paper never
    touches); state lines accept the same key=value fields TeaLeaf uses.
    """
    deck = Deck(states=[State(density=1.0, energy=1.0)])
    deck.states = []
    in_block = False
    for raw in text.splitlines():
        line = raw.split("!", 1)[0].strip()  # TeaLeaf comments start with !
        if not line:
            continue
        low = line.lower()
        if low.startswith("*tea"):
            in_block = True
            continue
        if low.startswith("*endtea"):
            break
        if not in_block:
            continue
        if low.startswith("state"):
            deck.states.append(_parse_state(line))
            continue
        if low == "tl_coefficient_density":
            deck.use_reciprocal_conductivity = False
            continue
        if low.startswith("tl_use_"):
            deck.solver = low.removeprefix("tl_use_")
            continue
        if "=" in line:
            key, value = (part.strip() for part in line.split("=", 1))
            _assign(deck, key.lower(), value)
    if not deck.states:
        deck.states = Deck().states
    return deck


def _parse_state(line: str) -> State:
    fields = {}
    for token in line.split()[2:]:  # skip "state <k>"
        if "=" in token:
            key, value = token.split("=", 1)
            fields[key.lower()] = value
    state = State(
        density=float(fields.get("density", 1.0)),
        energy=float(fields.get("energy", 1.0)),
        geometry=fields.get("geometry", "background"),
    )
    for key in ("xmin", "xmax", "ymin", "ymax"):
        if key in fields:
            setattr(state, key, float(fields[key]))
    return state


_INT_KEYS = {
    "x_cells", "y_cells", "end_step", "tl_max_iters",
    "tl_check_interval", "tl_vector_interval", "tl_step_window",
    "tl_max_retries", "tl_checkpoint_interval", "tl_step_retries",
}
_FLOAT_KEYS = {"xmin", "xmax", "ymin", "ymax", "initial_timestep", "tl_eps"}
_BOOL_KEYS = {"tl_defer_writes"}
_STR_KEYS = {"tl_recovery"}
_TRUE_WORDS = {"true", "t", "yes", "on", "1"}
_FALSE_WORDS = {"false", "f", "no", "off", "0"}


def _assign(deck: Deck, key: str, value: str) -> None:
    if key in _INT_KEYS:
        setattr(deck, key, int(float(value)))
    elif key in _FLOAT_KEYS:
        setattr(deck, key, float(value))
    elif key in _STR_KEYS:
        setattr(deck, key, value.strip().lower())
    elif key in _BOOL_KEYS:
        word = value.strip().lower()
        if word in _TRUE_WORDS:
            setattr(deck, key, True)
        elif word in _FALSE_WORDS:
            setattr(deck, key, False)
        # unrecognised boolean spellings fall through, tolerantly
    # anything else: silently ignored, mirroring TeaLeaf's tolerant parser


#: Small deck for tests and examples (seconds, not minutes).
DEFAULT_DECK = Deck(x_cells=64, y_cells=64, end_step=3, tl_eps=1e-15)

#: The paper's benchmark configuration: 2048x2048 cells, 5 time-steps.
#: (Benchmarks scale it down via the harness; kept verbatim for reference.)
BENCH_DECK = Deck(x_cells=2048, y_cells=2048, end_step=5, tl_eps=1e-15)
