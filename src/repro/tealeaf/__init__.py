"""TeaLeaf: 2-D linear heat conduction miniapp (Mantevo), the paper's host.

A faithful pure-NumPy port of the parts the paper exercises: regular-grid
implicit diffusion with a 5-point stencil, conduction coefficients from
cell densities, one sparse solve per time-step, and a `tea.in`-style
input deck.  Protected runs thread the ABFT machinery through the solve.
"""

from repro.tealeaf.deck import Deck, State, parse_deck, DEFAULT_DECK, BENCH_DECK
from repro.tealeaf.state import TeaLeafState
from repro.tealeaf.assembly import build_conductivities, build_operator
from repro.tealeaf.driver import TeaLeafDriver, StepResult, RunSummary
from repro.tealeaf.reference import (
    total_energy,
    temperature_bounds_ok,
    analytic_decay_error,
)

__all__ = [
    "Deck",
    "State",
    "parse_deck",
    "DEFAULT_DECK",
    "BENCH_DECK",
    "TeaLeafState",
    "build_conductivities",
    "build_operator",
    "TeaLeafDriver",
    "StepResult",
    "RunSummary",
    "total_energy",
    "temperature_bounds_ok",
    "analytic_decay_error",
]
