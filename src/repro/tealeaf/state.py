"""Field state: density, energy and temperature on the regular grid."""

from __future__ import annotations

import numpy as np

from repro.tealeaf.deck import Deck


class TeaLeafState:
    """Cell-centred fields of one TeaLeaf run.

    ``density`` and ``energy`` (specific internal energy) are set from
    the deck's material states; the solved variable is the temperature
    ``u = density * energy`` (TeaLeaf's convention for the linear solve).
    All fields have shape ``(ny, nx)``, C order, row ``j`` = y index —
    flattening matches the operator's row numbering ``j * nx + i``.
    """

    def __init__(self, deck: Deck):
        self.deck = deck
        ny, nx = deck.y_cells, deck.x_cells
        self.density = np.empty((ny, nx), dtype=np.float64)
        self.energy = np.empty((ny, nx), dtype=np.float64)
        self._apply_states()
        self.u = self.density * self.energy
        self.step = 0
        self.time = 0.0

    def _apply_states(self) -> None:
        deck = self.deck
        background = deck.states[0]
        self.density[:] = background.density
        self.energy[:] = background.energy
        # Cell-centre coordinates.
        xs = deck.xmin + (np.arange(deck.x_cells) + 0.5) * deck.dx
        ys = deck.ymin + (np.arange(deck.y_cells) + 0.5) * deck.dy
        X, Y = np.meshgrid(xs, ys)
        for state in deck.states[1:]:
            if state.geometry != "rectangle":
                raise ValueError(f"unsupported geometry {state.geometry!r}")
            inside = (
                (X >= state.xmin) & (X < state.xmax)
                & (Y >= state.ymin) & (Y < state.ymax)
            )
            self.density[inside] = state.density
            self.energy[inside] = state.energy

    # ------------------------------------------------------------------
    def conduction_coefficient(self) -> np.ndarray:
        """Cell conductivity: 1/rho (TeaLeaf's RECIP_CONDUCTIVITY) or rho."""
        if self.deck.use_reciprocal_conductivity:
            return 1.0 / self.density
        return self.density.copy()

    def update_from_temperature(self, u_flat: np.ndarray) -> None:
        """Commit a solved temperature field and back out the energy."""
        self.u = u_flat.reshape(self.u.shape).copy()
        self.energy = self.u / self.density

    def field_summary(self) -> dict[str, float]:
        """TeaLeaf's end-of-run summary quantities."""
        vol = self.deck.dx * self.deck.dy
        return {
            "volume": vol * self.u.size,
            "mass": float(self.density.sum() * vol),
            "ie": float((self.density * self.energy).sum() * vol),
            "temp": float(self.u.sum() * vol),
        }
