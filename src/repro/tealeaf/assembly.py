"""Operator assembly: cell conductivities -> face coefficients -> CSR.

TeaLeaf's `tea_leaf_init` computes face conductivities from the two
adjacent cells' coefficients ``w`` as ``(w_l + w_r) / (2 w_l w_r)`` — the
reciprocal of the harmonic mean — then scales by ``dt / dx^2`` inside the
5-point operator.  :func:`build_operator` reproduces that pipeline on top
of :func:`repro.csr.build.five_point_operator`.
"""

from __future__ import annotations

import numpy as np

from repro.csr.build import five_point_operator
from repro.csr.matrix import CSRMatrix
from repro.tealeaf.state import TeaLeafState


def build_conductivities(w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Face coefficient arrays (kx, ky) from cell coefficients ``w``.

    ``kx[j, i]`` couples cells ``(j, i-1)`` and ``(j, i)`` (column 0 is
    unused/boundary); ``ky[j, i]`` couples ``(j-1, i)`` and ``(j, i)``.
    """
    w = np.asarray(w, dtype=np.float64)
    kx = np.zeros_like(w)
    ky = np.zeros_like(w)
    kx[:, 1:] = (w[:, :-1] + w[:, 1:]) / (2.0 * w[:, :-1] * w[:, 1:])
    ky[1:, :] = (w[:-1, :] + w[1:, :]) / (2.0 * w[:-1, :] * w[1:, :])
    return kx, ky


def build_operator(state: TeaLeafState, dt: float) -> CSRMatrix:
    """Assemble ``(I + dt * L)`` for the current state.

    Uses an isotropic ``dt/dx^2`` scaling (TeaLeaf supports rectangular
    cells; the paper's decks are square so ``rx == ry``).
    """
    deck = state.deck
    if not np.isclose(deck.dx, deck.dy):
        raise ValueError("square cells expected (paper decks use square grids)")
    kx, ky = build_conductivities(state.conduction_coefficient())
    r = float(dt) / (deck.dx * deck.dx)
    return five_point_operator(deck.x_cells, deck.y_cells, kx, ky, r)
