"""The TeaLeaf time-step driver, plain or fully protected.

Each time-step solves ``(I + dt L) u_new = u_old`` with the deck-selected
solver.  The matrix does not change within a step — the property the
"less frequent checking" optimisation exploits — and is reassembled per
step (TeaLeaf reassembles when the conductivity field changes; for the
linear problem it is constant, but we keep the per-step assembly to match
the miniapp's structure and the paper's 5-step benchmark runs).

Protected mode owns one :class:`~repro.protect.session.ProtectionSession`
for the whole run: every step's solve — *any* deck solver, CG, PPCG,
Jacobi or Chebyshev, with or without vector protection — threads through
the session's long-lived deferred-verification engine, and the mandatory
end-of-step sweep runs every ``tl_step_window`` steps, so the engine's
dirty windows can span time-step boundaries (ROADMAP's engine-scheduled
driver windows).

Resilience is layered on two granularities:

* **in-solve** — the deck's ``tl_recovery`` knob arms the checkpointed
  recovery layer (:mod:`repro.recover`), so a DUE mid-solve rolls back
  or repopulates instead of unwinding;
* **per-step** — ``tl_step_retries > 0`` lets the driver redo a step
  whose solve still died: the operator is reassembled from field state
  (pristine by construction — ``u`` is only committed after a verified
  solve) and the session's window restarts via ``abort_step``.

With vector protection enabled, the temperature field itself lives in a
:class:`~repro.protect.vector.ProtectedVector` across the whole run and
each step's solution is committed through *row-windowed* stores
(``store(window=...)``, one grid row — a halo-exchange-sized strip — at
a time), so the windowed encode path runs at scale in the assembly/commit
loop rather than only in unit tests.

The old eager ``ProtectedOperator`` fallback and its "vector protection
is only implemented for the CG solver" restriction are gone; the
``Protection`` dataclass survives only as a deprecation shim over
:class:`~repro.protect.config.ProtectionConfig`.
"""

from __future__ import annotations

import dataclasses
import time
import warnings

from repro.protect.config import ProtectionConfig
from repro.protect.session import ProtectionSession
from repro.protect.vector import ProtectedVector
from repro.recover.policy import RECOVERABLE_ERRORS
from repro.solvers.chebyshev import estimate_eigenvalue_bounds
from repro.solvers.registry import solve
from repro.tealeaf.assembly import build_operator
from repro.tealeaf.deck import Deck
from repro.tealeaf.state import TeaLeafState


@dataclasses.dataclass
class StepResult:
    """Per-time-step record."""

    step: int
    iterations: int
    residual: float
    converged: bool
    wall_time: float
    info: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class RunSummary:
    """Whole-run record (the paper's measurement unit)."""

    steps: list[StepResult]
    field_summary: dict[str, float]
    wall_time: float

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.steps)


@dataclasses.dataclass
class Protection:
    """Deprecated ABFT configuration — use :class:`ProtectionConfig`.

    Kept so pre-registry decks and scripts run unchanged; construction
    emits a :class:`DeprecationWarning` and :meth:`to_config` maps onto
    the unified config (``check_interval`` becomes ``interval``).
    """

    element_scheme: str | None = "secded64"
    rowptr_scheme: str | None = "secded64"
    vector_scheme: str | None = None
    check_interval: int = 1
    correct: bool = True

    def __post_init__(self):
        warnings.warn(
            "tealeaf.driver.Protection is deprecated; use "
            "repro.ProtectionConfig (check_interval is now interval)",
            DeprecationWarning,
            stacklevel=3,
        )

    @property
    def protects_matrix(self) -> bool:
        return self.element_scheme is not None or self.rowptr_scheme is not None

    def to_config(self) -> ProtectionConfig:
        """The equivalent :class:`ProtectionConfig`."""
        return ProtectionConfig(
            element_scheme=self.element_scheme,
            rowptr_scheme=self.rowptr_scheme,
            vector_scheme=self.vector_scheme,
            interval=self.check_interval,
            correct=self.correct,
        )


class TeaLeafDriver:
    """Runs a deck to completion, optionally under ABFT protection.

    Parameters
    ----------
    deck:
        The parsed TeaLeaf input deck (solver choice, grid, ``tl_*``
        engine knobs).
    protection:
        A :class:`ProtectionConfig` (or legacy :class:`Protection`,
        converted on entry), or ``None`` for an unprotected run.
    """

    def __init__(self, deck: Deck, protection: ProtectionConfig | Protection | None = None):
        self.deck = deck
        self.state = TeaLeafState(deck)
        if isinstance(protection, Protection):
            protection = protection.to_config()
        self.protection = protection
        self.session: ProtectionSession | None = None
        self._u_protected: ProtectedVector | None = None
        if protection is not None and protection.enabled:
            self.session = ProtectionSession(protection)
            if protection.protects_vectors:
                # The solved field is application state that persists
                # across steps — keep it under the same ECC scheme as
                # the solver vectors, committed by row-windowed stores.
                self._u_protected = ProtectedVector(
                    self.state.u.ravel(), protection.vector_scheme
                )
        self._eig_bounds = None
        self._steps_in_window = 0
        self.step_retries = 0

    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        t0 = time.perf_counter()
        steps = [self.step() for _ in range(self.deck.end_step)]
        self.finish()
        return RunSummary(
            steps=steps,
            field_summary=self.state.field_summary(),
            wall_time=time.perf_counter() - t0,
        )

    def step(self) -> StepResult:
        t0 = time.perf_counter()
        dt = self.deck.initial_timestep
        b = self._step_rhs()
        attempts = 0
        while True:
            matrix = build_operator(self.state, dt)
            kwargs = self._method_kwargs(matrix)
            try:
                result = solve(
                    matrix, b, b,
                    method=self.deck.solver,
                    protection=self.session,
                    eps=self.deck.tl_eps,
                    max_iters=self.deck.tl_max_iters,
                    **kwargs,
                )
                break
            except RECOVERABLE_ERRORS:
                # Step-granularity recovery: the session released the
                # failed window's regions when the error unwound; the
                # field state is pristine (only committed after verified
                # solves), so reassembling the operator and redoing the
                # step is a full recovery — if the deck allows it.
                attempts += 1
                if self.session is None or attempts > self.deck.tl_step_retries:
                    raise
                self.step_retries += 1
                self.session.abort_step()
                self._steps_in_window = 0
        if self.session is not None:
            self._steps_in_window += 1
            if self._steps_in_window >= max(self.deck.tl_step_window, 1):
                self.session.end_step()
                self._steps_in_window = 0
            else:
                # Window stays open: verify-and-release this step's
                # finished regions (the per-step matrix, flushed vectors)
                # so memory and sweep cost stay flat across the window;
                # dirty vectors keep spanning the boundary.
                self.session.retire_step()
        self._commit_temperature(result.x)
        self.state.step += 1
        self.state.time += dt
        info = dict(result.info, step_retries=attempts) if attempts else result.info
        return StepResult(
            step=self.state.step,
            iterations=result.iterations,
            residual=result.final_residual,
            converged=result.converged,
            wall_time=time.perf_counter() - t0,
            info=info,
        )

    def finish(self) -> None:
        """Close any window left open by ``tl_step_window > 1``.

        The mandatory sweep must not be skipped just because the run
        length does not divide the step window (§VI.A.2's "just in case
        N does not divide" rule, lifted to time-steps).  The protected
        temperature field gets its own end-of-run check: it is the
        run's *output*, so it must leave as a verified commit too.
        """
        if self.session is not None and self._steps_in_window:
            self.session.end_step()
            self._steps_in_window = 0
        if self._u_protected is not None:
            self._u_protected.check(correct=self.protection.correct)

    # ------------------------------------------------------------------
    def _step_rhs(self):
        """This step's right-hand side: the (possibly protected) field."""
        if self._u_protected is not None:
            return self._u_protected.values()
        return self.state.u.ravel().copy()

    def _commit_temperature(self, x) -> None:
        """Commit a solved field, through row-windowed stores when protected.

        One ``store(window=...)`` per grid row — the halo-exchange-sized
        strip a distributed TeaLeaf would communicate — so only the
        codeword lanes each row touches are re-encoded and the windowed
        encode path is exercised at scale, every step.
        """
        if self._u_protected is not None:
            nx = self.deck.x_cells
            for j in range(self.deck.y_cells):
                lo = j * nx
                self._u_protected.store(x[lo:lo + nx], window=(lo, lo + nx))
            x = self._u_protected.values()
        self.state.update_from_temperature(x)

    # ------------------------------------------------------------------
    def _method_kwargs(self, matrix) -> dict:
        """Per-method extras: spectral bounds, estimated once per run."""
        if self.deck.solver == "chebyshev":
            if self._eig_bounds is None:
                self._eig_bounds = estimate_eigenvalue_bounds(matrix)
            lo, hi = self._eig_bounds
            return {"eig_min": lo, "eig_max": hi}
        if self.deck.solver == "ppcg":
            if self._eig_bounds is None:
                self._eig_bounds = estimate_eigenvalue_bounds(matrix)
            return {"eig_bounds": self._eig_bounds}
        return {}
