"""The TeaLeaf time-step driver, plain or fully protected.

Each time-step solves ``(I + dt L) u_new = u_old`` with the deck-selected
solver.  The matrix does not change within a step — the property the
"less frequent checking" optimisation exploits — and is reassembled per
step (TeaLeaf reassembles when the conductivity field changes; for the
linear problem it is constant, but we keep the per-step assembly to match
the miniapp's structure and the paper's 5-step benchmark runs).

Protected mode builds a :class:`~repro.protect.matrix.ProtectedCSRMatrix`
per step and runs :func:`~repro.solvers.cg.protected_cg_solve`; a
mandatory full-matrix sweep closes every step when checks are deferred.
"""

from __future__ import annotations

import dataclasses
import time

from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.cg import cg_solve, protected_cg_solve
from repro.solvers.chebyshev import chebyshev_solve, estimate_eigenvalue_bounds
from repro.solvers.jacobi import jacobi_solve
from repro.solvers.ppcg import ppcg_solve
from repro.tealeaf.assembly import build_operator
from repro.tealeaf.deck import Deck
from repro.tealeaf.state import TeaLeafState


@dataclasses.dataclass
class StepResult:
    """Per-time-step record."""

    step: int
    iterations: int
    residual: float
    converged: bool
    wall_time: float
    info: dict = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class RunSummary:
    """Whole-run record (the paper's measurement unit)."""

    steps: list[StepResult]
    field_summary: dict[str, float]
    wall_time: float

    @property
    def total_iterations(self) -> int:
        return sum(s.iterations for s in self.steps)


@dataclasses.dataclass
class Protection:
    """ABFT configuration for a protected TeaLeaf run.

    ``element_scheme`` / ``rowptr_scheme`` may be ``None`` to leave that
    region unprotected (used to isolate Fig. 4 vs Fig. 5 overheads);
    ``vector_scheme=None`` leaves the dense vectors unprotected.
    """

    element_scheme: str | None = "secded64"
    rowptr_scheme: str | None = "secded64"
    vector_scheme: str | None = None
    check_interval: int = 1
    correct: bool = True

    @property
    def protects_matrix(self) -> bool:
        return self.element_scheme is not None or self.rowptr_scheme is not None


class TeaLeafDriver:
    """Runs a deck to completion, optionally under ABFT protection."""

    def __init__(self, deck: Deck, protection: Protection | None = None):
        self.deck = deck
        self.state = TeaLeafState(deck)
        self.protection = protection
        self._eig_bounds = None

    # ------------------------------------------------------------------
    def run(self) -> RunSummary:
        t0 = time.perf_counter()
        steps = [self.step() for _ in range(self.deck.end_step)]
        return RunSummary(
            steps=steps,
            field_summary=self.state.field_summary(),
            wall_time=time.perf_counter() - t0,
        )

    def step(self) -> StepResult:
        t0 = time.perf_counter()
        dt = self.deck.initial_timestep
        matrix = build_operator(self.state, dt)
        b = self.state.u.ravel().copy()
        if self.protection is not None and self.protection.protects_matrix:
            result = self._protected_solve(matrix, b)
        else:
            result = self._plain_solve(matrix, b)
        self.state.update_from_temperature(result.x)
        self.state.step += 1
        self.state.time += dt
        return StepResult(
            step=self.state.step,
            iterations=result.iterations,
            residual=result.final_residual,
            converged=result.converged,
            wall_time=time.perf_counter() - t0,
            info=result.info,
        )

    # ------------------------------------------------------------------
    def _plain_solve(self, matrix, b):
        deck = self.deck
        if deck.solver == "cg":
            return cg_solve(matrix, b, b, eps=deck.tl_eps, max_iters=deck.tl_max_iters)
        if deck.solver == "jacobi":
            return jacobi_solve(matrix, b, b, eps=deck.tl_eps, max_iters=deck.tl_max_iters)
        if deck.solver == "chebyshev":
            if self._eig_bounds is None:
                self._eig_bounds = estimate_eigenvalue_bounds(matrix)
            lo, hi = self._eig_bounds
            return chebyshev_solve(
                matrix, b, b, eig_min=lo, eig_max=hi,
                eps=deck.tl_eps, max_iters=deck.tl_max_iters,
            )
        if deck.solver == "ppcg":
            if self._eig_bounds is None:
                self._eig_bounds = estimate_eigenvalue_bounds(matrix)
            return ppcg_solve(
                matrix, b, b, eps=deck.tl_eps, max_iters=deck.tl_max_iters,
                eig_bounds=self._eig_bounds,
            )
        raise ValueError(f"unknown solver {self.deck.solver!r}")

    def _protected_solve(self, matrix, b):
        prot = self.protection
        pmat = ProtectedCSRMatrix(matrix, prot.element_scheme, prot.rowptr_scheme)
        policy = CheckPolicy(interval=prot.check_interval, correct=prot.correct)
        if self.deck.solver == "cg":
            # The paper's path: protected CG with (optionally) ABFT vectors.
            return protected_cg_solve(
                pmat, b, b,
                eps=self.deck.tl_eps,
                max_iters=self.deck.tl_max_iters,
                policy=policy,
                vector_scheme=prot.vector_scheme,
            )
        # Other solvers run over a ProtectedOperator (matrix-only ABFT -
        # their vector protection is future work, as in the paper).
        if prot.vector_scheme is not None:
            raise ValueError(
                "vector protection is only implemented for the CG solver"
            )
        from repro.protect.operator import ProtectedOperator

        op = ProtectedOperator(pmat, policy)
        result = self._plain_solve(op, b)
        op.end_of_step()
        result.info.update(
            full_checks=policy.stats.full_checks,
            bounds_checks=policy.stats.bounds_checks,
            corrected=policy.stats.corrected,
        )
        return result
