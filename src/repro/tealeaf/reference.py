"""Physics oracles for TeaLeaf runs.

Three independent checks validate the miniapp end to end:

* **conservation** — with zero-flux boundaries the implicit operator has
  zero column sums, so total temperature ``sum(u)`` is invariant across
  a solve (up to solver tolerance);
* **maximum principle** — pure diffusion never over/undershoots the
  initial extrema;
* **analytic decay** — on a uniform-conductivity grid a single Fourier
  mode decays by exactly ``1 / (1 + dt * lambda_k)`` per implicit step,
  with ``lambda_k`` the discrete-Laplacian eigenvalue of the mode.
"""

from __future__ import annotations

import numpy as np

from repro.tealeaf.state import TeaLeafState


def total_energy(state: TeaLeafState) -> float:
    """Total temperature integral (the conserved quantity)."""
    return float(state.u.sum() * state.deck.dx * state.deck.dy)


def temperature_bounds_ok(u_before: np.ndarray, u_after: np.ndarray, rtol: float = 1e-9) -> bool:
    """Discrete maximum principle for the implicit step."""
    lo, hi = u_before.min(), u_before.max()
    span = hi - lo if hi > lo else 1.0
    return bool(
        u_after.min() >= lo - rtol * span and u_after.max() <= hi + rtol * span
    )


def fourier_mode(nx: int, ny: int, kx: int, ky: int) -> np.ndarray:
    """Neumann-compatible cosine mode on cell centres, shape (ny, nx)."""
    i = (np.arange(nx) + 0.5) / nx
    j = (np.arange(ny) + 0.5) / ny
    return np.cos(np.pi * ky * j)[:, None] * np.cos(np.pi * kx * i)[None, :]


def mode_eigenvalue(nx: int, ny: int, kx: int, ky: int, r: float) -> float:
    """Eigenvalue of ``r * L`` (5-point, unit conductivity, Neumann) for a mode."""
    lam_x = 2.0 * (1.0 - np.cos(np.pi * kx / nx))
    lam_y = 2.0 * (1.0 - np.cos(np.pi * ky / ny))
    return r * (lam_x + lam_y)


def analytic_decay_error(
    u0: np.ndarray, u1: np.ndarray, kx: int, ky: int, r: float
) -> float:
    """Relative error of one implicit step against the exact mode decay.

    ``u0`` must be ``mean + amplitude * mode``; returns the max relative
    deviation of ``u1`` from the analytic ``mean + amp/(1+lam) * mode``.
    """
    ny, nx = u0.shape
    mode = fourier_mode(nx, ny, kx, ky)
    mean = u0.mean()
    # Project out the amplitude (modes are L2-orthogonal on the grid).
    amp = float((u0 - mean).ravel() @ mode.ravel() / (mode.ravel() @ mode.ravel()))
    lam = mode_eigenvalue(nx, ny, kx, ky, r)
    expected = mean + amp / (1.0 + lam) * mode
    scale = np.abs(expected).max()
    return float(np.abs(u1 - expected).max() / scale)
