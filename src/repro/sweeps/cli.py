"""The sweep CLI, shared by ``repro sweep`` and ``python -m repro.sweeps``.

One command runs any preset grid, resumably::

    python -m repro.sweeps --preset resilience-matrix \
        --store matrix.jsonl --workers 4 \
        --out benchmarks/results/resilience_matrix.txt

Kill it at any point and rerun the same command: completed cells are
read back from ``--store`` and only the missing ones execute
(``--limit N`` interrupts deterministically after N cells, which is how
the CI smoke job rehearses exactly that).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.errors import ConfigurationError
from repro.sweeps.core import run_sweep
from repro.sweeps.presets import PRESETS, get_preset
from repro.sweeps.render import render_sweep, sweep_json

#: CLI flag -> preset override keyword (passed only when set).
_OVERRIDES = ("grid", "trials", "n", "repeats", "methods", "schemes",
              "rates", "recoveries", "max_iters")


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep options to any parser (top-level or subcommand)."""
    parser.add_argument("--preset", default=None,
                        help=f"grid to run: {', '.join(sorted(PRESETS))}")
    parser.add_argument("--list", action="store_true",
                        help="list the available presets and exit")
    parser.add_argument("--workers", type=int, default=1,
                        help="spawn-pool size for missing cells")
    parser.add_argument("--seed", type=int, default=0,
                        help="root seed folded into every cell identity")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="JSONL run store; rerunning resumes from it")
    parser.add_argument("--limit", type=int, default=None, metavar="N",
                        help="execute at most N missing cells (partial run)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the rendered table to this file")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the machine-readable record dump here")
    grid = parser.add_argument_group("preset overrides")
    grid.add_argument("--grid", type=int, default=None,
                      help="campaign operator cells per side")
    grid.add_argument("--trials", type=int, default=None,
                      help="trials per campaign cell")
    grid.add_argument("--n", type=int, default=None,
                      help="measurement grid size for figure presets")
    grid.add_argument("--repeats", type=int, default=None,
                      help="timing repeats for figure presets")
    grid.add_argument("--max-iters", type=int, default=None,
                      dest="max_iters", help="solver iteration cap per trial")
    grid.add_argument("--methods", nargs="+", default=None,
                      help="solver axis values (e.g. cg jacobi)")
    grid.add_argument("--schemes", nargs="+", default=None,
                      help="scheme axis values (e.g. sed secded64)")
    grid.add_argument("--rates", nargs="+", type=float, default=None,
                      help="fault-rate axis values")
    grid.add_argument("--recoveries", nargs="+", default=None,
                      help="recovery axis values (raise repopulate rollback)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.sweeps",
        description="Declarative, resumable experiment grids "
                    "(see README 'Sweeps').",
    )
    add_sweep_arguments(parser)
    return parser


def run(args) -> int:
    """Execute parsed sweep arguments (shared with ``repro sweep``)."""
    if args.list:
        for name in sorted(PRESETS):
            spec = get_preset(name)
            print(f"{name:>18}  {len(spec):>3} cells  {spec.title}")
        return 0
    if args.preset is None:
        print("error: --preset is required (or --list to see them)")
        return 2
    overrides = {key: getattr(args, key) for key in _OVERRIDES}
    try:
        spec = get_preset(args.preset, **overrides)
        result = run_sweep(spec, workers=args.workers, seed=args.seed,
                           store=args.store, limit=args.limit)
    except ConfigurationError as exc:
        print(f"error: {exc}")
        return 2
    text = render_sweep(spec, result.records)
    print(text)
    print(f"\n[{spec.name}] {result.executed} cells run, "
          f"{result.restored} restored"
          + (f" from {args.store}" if args.store else ""))
    if result.remaining:
        if args.store:
            print(f"[partial] {result.remaining} cells still missing; "
                  f"rerun the same command (--store {args.store}) to finish")
        else:
            # Without a store nothing was persisted: rerunning the same
            # truncated command would redo the same cells forever.
            print(f"[partial] {result.remaining} cells still missing and "
                  "no --store was given, so this partial run is not "
                  "resumable; rerun with --store (and without --limit) "
                  "to finish")
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"rendered table: {args.out}")
    if args.json:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(sweep_json(spec, result) + "\n")
        print(f"record dump: {args.json}")
    return 0


def main(argv=None) -> int:
    return run(build_parser().parse_args(argv))
