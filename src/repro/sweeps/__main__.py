"""``python -m repro.sweeps``: the sweep CLI entry point."""

import sys

from repro.sweeps.cli import main

if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke tests
    sys.exit(main())
