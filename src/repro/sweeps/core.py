"""``run_sweep``: plan a grid, skip what's done, execute the rest.

The orchestration step every grid shares:

1. enumerate the spec's cells and their stable keys;
2. subtract the cells a :class:`~repro.sweeps.store.RunStore` already
   holds (resume);
3. execute the missing cells on the shared spawn-pool executor,
   streaming each completed record into the store;
4. reassemble *all* records — restored and fresh — in grid order.

Because cell keys and cell seeds derive from cell identity alone, a
resumed run is indistinguishable from an uninterrupted one, and the
assembled records are bitwise-identical for any worker count.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.sweeps.executor import run_tasks
from repro.sweeps.spec import SweepSpec
from repro.sweeps.store import RunStore


@dataclasses.dataclass
class SweepResult:
    """Everything a finished (or partial) sweep run knows about itself."""

    spec: SweepSpec
    #: Cell records in grid order: ``{"key", "spec", "cell", "result"}``.
    records: list[dict]
    #: Cells executed by *this* call.
    executed: int
    #: Cells restored from the store instead of re-running.
    restored: int
    #: Cells still missing (only with ``limit``).
    remaining: int

    @property
    def complete(self) -> bool:
        return self.remaining == 0

    def results(self) -> list[dict]:
        """Just the per-cell result payloads, grid order."""
        return [record["result"] for record in self.records]


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    seed: int = 0,
    store: RunStore | str | None = None,
    limit: int | None = None,
) -> SweepResult:
    """Run one sweep grid, resuming from ``store`` when it has history.

    Parameters
    ----------
    workers:
        Spawn-pool size for the missing cells; ``<= 1`` runs in-process
        with identical results.
    seed:
        Root seed folded into every cell's identity (and therefore its
        RNG stream).  Changing it is a new experiment: no cell of a
        store written under another seed will be reused.
    store:
        A :class:`RunStore`, a path to create/resume one, or ``None``
        for a purely in-memory run.
    limit:
        Execute at most this many missing cells, then return a partial
        result — deterministic interruption, used by tests and the CI
        resume smoke job (a real kill mid-run leaves the same store
        state, minus any torn final line).
    """
    cells = spec.cells()
    if not cells:
        raise ConfigurationError(f"sweep {spec.name!r} has no cells after filtering")
    keyed = [(spec.cell_key(cell, seed), cell) for cell in cells]
    keys = [key for key, _ in keyed]
    if len(set(keys)) != len(keys):
        raise ConfigurationError(
            f"sweep {spec.name!r} contains duplicate cells"
        )

    own_store = isinstance(store, (str, bytes)) or hasattr(store, "__fspath__")
    run_store: RunStore | None = RunStore(store) if own_store else store
    try:
        done = run_store.completed if run_store is not None else set()
        pending = [(key, cell) for key, cell in keyed if key not in done]
        skipped = len(keyed) - len(pending)
        if limit is not None:
            pending = pending[: max(0, int(limit))]

        fresh: dict[str, dict] = {}

        def on_record(key: str, result: dict) -> None:
            record = {
                "key": key,
                "spec": spec.name,
                "cell": by_key[key],
                "result": result,
            }
            fresh[key] = record
            if run_store is not None:
                run_store.append(record)

        by_key = dict(pending)
        run_tasks(
            [spec.task(cell, seed) for _, cell in pending],
            workers=workers,
            on_record=on_record,
        )

        records = []
        for key, _cell in keyed:
            record = fresh.get(key)
            if record is None and run_store is not None:
                record = run_store.get(key)
            if record is not None:
                records.append(record)
        return SweepResult(
            spec=spec,
            records=records,
            executed=len(pending),
            restored=skipped,
            remaining=len(keyed) - len(records),
        )
    finally:
        if own_store and run_store is not None:
            run_store.close()
