"""The resumable run store: one JSONL record per completed sweep cell.

A sweep that dies 70 cells into a 96-cell grid should owe 26 cells, not
96.  The store makes that arithmetic trivial: every completed cell is
appended (and flushed) as one self-describing JSON line keyed by the
cell's stable identity hash, so a restarted sweep loads the file, skips
every key it finds, and runs only the missing cells — producing, cell
for cell, the records an uninterrupted run would have produced (cell
seeds derive from cell identity, never from execution order).

The file is append-only and order-insensitive.  A line torn by a crash
mid-write is skipped on load (its cell simply re-runs); a key appended
twice keeps the later record.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import ConfigurationError


class RunStore:
    """Append-only JSONL persistence for sweep cell records.

    Opening a path that already exists loads its records — that *is*
    the resume path; there is no separate mode.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._fh = None
        if self.path.exists():
            with open(self.path) as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        # A torn final line from a killed writer; the
                        # cell it described re-runs, so skipping loses
                        # nothing but the partial bytes.
                        continue
                    if isinstance(record, dict) and "key" in record:
                        self._records[record["key"]] = record

    # -- reads -----------------------------------------------------------
    @property
    def completed(self) -> set[str]:
        """Keys of every cell this store already holds."""
        return set(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    def records(self) -> list[dict]:
        """Every stored record, in insertion (file) order."""
        return list(self._records.values())

    # -- writes ----------------------------------------------------------
    def append(self, record: dict) -> None:
        """Persist one cell record immediately (write + flush)."""
        if "key" not in record:
            raise ConfigurationError("run-store records need a 'key' field")
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
            # A file killed mid-write may end in a torn, newline-less
            # line; appending straight onto it would weld the new record
            # to the torn bytes and lose *both* on the next load.  Start
            # on a fresh line instead.
            if self.path.stat().st_size:
                with open(self.path, "rb") as fh:
                    fh.seek(-1, 2)
                    if fh.read(1) != b"\n":
                        self._fh.write("\n")
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()
        self._records[record["key"]] = record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RunStore({str(self.path)!r}, cells={len(self._records)})"
