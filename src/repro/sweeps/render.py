"""Sweep output: text tables (via the shared grid renderer) and JSON.

Two record shapes cover every preset:

* **figure cells** — results carrying ``"rows"`` (ExperimentRow dicts)
  are flattened and laid out exactly like the per-figure harness tables
  (bars, or interval curves when every key is numeric);
* **campaign cells** — results carrying ``"counts"`` render as the
  resilience-matrix layout: one block per fault rate, one row per
  remaining-axis combination, one column per recovery strategy (or the
  last axis when the grid has no recovery dimension).

``sweep_json`` is the machine-readable twin: the full record list plus
grid metadata, round-trippable into any downstream analysis.
"""

from __future__ import annotations

import json

from repro.sweeps.core import SweepResult
from repro.sweeps.spec import SweepSpec


def _experiment_rows(records: list[dict]):
    from repro.harness.experiments import ExperimentRow

    rows = []
    for record in records:
        for row in record["result"]["rows"]:
            rows.append(ExperimentRow(**row))
    return rows


def _campaign_cell_text(result: dict) -> str:
    rates = result.get("rates", {})
    info = result.get("info", {})
    parts = [f"det={rates.get('detection', 0.0):.2f}",
             f"sdc={rates.get('sdc', 0.0):.2f}"]
    if "recovered" in info:
        parts.append(f"rec={info['recovered']}")
    if "aborted" in info:
        parts.append(f"ab={info['aborted']}")
    if "mean_time" in info:
        # Present only when the preset opted into timing records
        # (timing=True) — the study's headline number belongs in its
        # rendered table, not just the JSON dump.
        parts.append(f"ms={info['mean_time'] * 1e3:.1f}")
    return " ".join(parts)


def render_campaign_matrix(spec: SweepSpec, records: list[dict]) -> str:
    """The matrix layout: rate blocks x (row axes) x recovery columns."""
    from repro.harness.report import format_grid

    axis_names = [name for name in spec.axis_names()
                  if records and name in records[0]["cell"]]
    block_axis = "rate" if "rate" in axis_names else None
    remaining = [name for name in axis_names if name != block_axis]
    col_axis = "recovery" if "recovery" in remaining else (
        remaining[-1] if remaining else None
    )
    row_axes = [name for name in remaining if name != col_axis]

    def row_label(cell: dict) -> str:
        return " ".join(str(cell[name]) for name in row_axes) or spec.name

    blocks: dict = {}
    for record in records:
        block = record["cell"].get(block_axis) if block_axis else None
        blocks.setdefault(block, []).append(record)

    sections = []
    for block, block_records in blocks.items():
        row_labels, col_labels, cells = [], [], {}
        for record in block_records:
            row = row_label(record["cell"])
            col = str(record["cell"][col_axis]) if col_axis else "result"
            if row not in row_labels:
                row_labels.append(row)
            if col not in col_labels:
                col_labels.append(col)
            cells[(row, col)] = _campaign_cell_text(record["result"])
        if block_axis:
            value = f"{block:g}" if isinstance(block, (int, float)) else str(block)
            title = f"{block_axis}={value}"
        else:
            title = ""
        corner = " x ".join(row_axes) if row_axes else spec.name
        sections.append(format_grid(row_labels, col_labels, cells,
                                    title=title, corner=corner, missing="-"))
    header = [spec.title] if spec.title else []
    return "\n\n".join(header + sections)


def render_sweep(spec: SweepSpec, records: list[dict]) -> str:
    """Lay a sweep's records out as text, by record shape."""
    from repro.harness.report import format_interval_series, format_table

    if not records:
        return f"{spec.title or spec.name}\n(no completed cells)"
    result = records[0]["result"]
    if "rows" in result:
        rows = _experiment_rows(records)
        if all(row.key.lstrip("-").isdigit() for row in rows):
            return format_interval_series(rows, spec.title or spec.name)
        return format_table(rows, spec.title or spec.name)
    if "counts" in result:
        return render_campaign_matrix(spec, records)
    return json.dumps(records, indent=2)


def sweep_json(spec: SweepSpec, result: SweepResult) -> str:
    """Machine-readable sweep output: grid metadata + every cell record."""
    return json.dumps(
        {
            "spec": spec.name,
            "title": spec.title,
            "runner": spec.runner,
            "axes": {axis.name: list(axis.values) for axis in spec.axes},
            "base": spec.base,
            "complete": result.complete,
            "executed": result.executed,
            "restored": result.restored,
            "records": result.records,
        },
        indent=2,
    )
