"""The generic sweep task executor: one spawn pool for every grid.

Generalises :mod:`repro.faults.sharding`'s campaign-only pool to
arbitrary units of work.  A :class:`Task` names its runner as an
importable ``"module:function"`` reference (spawn workers re-import
modules, so callables must travel by name, not by pickle-by-value),
carries a picklable ``params`` dict, and optionally its own
:class:`numpy.random.SeedSequence` stream.

Determinism contract, shared by campaigns and sweeps alike: the task
list — including each task's seed — is planned *before* any execution,
depends only on the spec (never on the worker count), and every task is
a pure function of ``(params, seed)``.  Workers merely schedule the
same computations, so merged results are bitwise-identical for any
``workers`` value.

Execution streams: ``on_record`` fires in the parent as each task
completes (pool order, not plan order), which is what lets callers
persist finished work before a crash takes the rest.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import importlib
import multiprocessing
from collections.abc import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class Task:
    """One schedulable unit: an importable runner plus its parameters.

    ``params`` must be picklable (tasks cross a process boundary) and
    must not contain ``seed`` — the executor owns seeding so planning
    stays separate from execution.
    """

    key: str
    runner: str
    params: dict
    seed: np.random.SeedSequence | None = None

    def __post_init__(self):
        if ":" not in self.runner:
            raise ConfigurationError(
                f"runner {self.runner!r} must be a 'module:function' reference"
            )
        if "seed" in self.params:
            raise ConfigurationError(
                "'seed' belongs to the executor, not Task.params"
            )


def resolve_runner(spec: str) -> Callable:
    """``"package.module:function"`` -> the function object.

    Import happens in whichever process runs the task — the parent for
    in-process execution, the spawned worker otherwise — so runners must
    live at module scope of an importable module.
    """
    module_name, _, func_name = spec.partition(":")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError:
        raise ConfigurationError(
            f"module {module_name!r} has no runner {func_name!r}"
        ) from None


def spawn_streams(seed: int, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent child streams of one root seed.

    The shared seed machinery: each child's derivation depends only on
    ``(seed, index)``, so any consumer that plans its units first gets
    the same streams regardless of how execution is later scheduled.
    """
    return np.random.SeedSequence(seed).spawn(n)


def _execute(task: Task) -> tuple[str, dict]:
    """Pool worker: run one task, return ``(key, record)``."""
    fn = resolve_runner(task.runner)
    record = fn(**task.params, seed=task.seed)
    if not isinstance(record, dict):
        raise ConfigurationError(
            f"runner {task.runner!r} returned {type(record).__name__}; "
            "task runners must return a JSON-serialisable dict"
        )
    return task.key, record


def run_tasks(
    tasks: Sequence[Task],
    *,
    workers: int = 1,
    on_record: Callable[[str, dict], None] | None = None,
) -> list[tuple[str, dict]]:
    """Run every task, serially or on a spawn pool; stream completions.

    Parameters
    ----------
    workers:
        ``<= 1`` runs in-process (same tasks, same records — the
        determinism guarantee is exactly this equivalence); ``> 1`` fans
        out over a spawn-context :class:`~concurrent.futures.ProcessPoolExecutor`
        (spawn, not fork: BLAS thread pools and fork do not mix), capped
        at the task count.  A futures pool rather than
        ``multiprocessing.Pool`` because its workers are *non-daemonic*:
        a task is then allowed to spawn processes of its own, which is
        what lets :mod:`repro.dist` run a whole sharded solve — worker
        processes included — inside one campaign trial.
    on_record:
        Called in the parent as ``on_record(key, record)`` the moment
        each task completes, in completion order — the streaming hook
        run stores and JSONL sinks attach to.

    Returns the ``(key, record)`` pairs in completion order; callers
    needing plan order reassemble by key.
    """
    results: list[tuple[str, dict]] = []

    def _drain(pairs) -> None:
        for key, record in pairs:
            results.append((key, record))
            if on_record is not None:
                on_record(key, record)

    if not tasks:
        return results
    if workers <= 1 or len(tasks) == 1:
        _drain(map(_execute, tasks))
    else:
        ctx = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)), mp_context=ctx
        ) as pool:
            futures = [pool.submit(_execute, task) for task in tasks]
            for future in concurrent.futures.as_completed(futures):
                _drain([future.result()])
    return results
