"""Named sweep presets: every repo grid as one declarative spec.

The registry is the anti-drift device the CLI, the examples and the
benchmarks all share: ``repro sweep --preset <name>`` and
``examples/*.py`` resolve the *same* :class:`~repro.sweeps.spec.SweepSpec`
builders, so a grid tweaked in one place changes everywhere.

Builders take keyword overrides (``get_preset("resilience-matrix",
grid=10, trials=4)``), which is how the CI smoke job shrinks the full
resilience matrix to a seconds-sized grid without a second definition.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.platforms.specs import PLATFORMS
from repro.sweeps.spec import Axis, SweepSpec

_CAMPAIGN_RUNNER = "repro.sweeps.runners:campaign_cell"
_FIGURE_RUNNER = "repro.sweeps.runners:figure_cell"
_T1_RUNNER = "repro.sweeps.runners:t1_cell"


# ---------------------------------------------------------------------------
def resilience_matrix(
    *,
    grid: int = 12,
    trials: int = 6,
    methods=("cg", "ppcg", "jacobi", "chebyshev"),
    schemes=("secded64", "sed"),
    rates=(1e-7, 1e-5),
    recoveries=("raise", "repopulate", "rollback"),
    vectors: bool = True,
    interval: int = 1,
    max_iters: int = 1_500,
) -> SweepSpec:
    """The ROADMAP's full resilience matrix: solver x scheme x rate x recovery.

    Every cell is a live-Poisson time-to-solution campaign
    (:func:`repro.faults.campaign.run_poisson_campaign`) under full
    protection (matrix + vectors when ``vectors``), classified against
    the fault-free reference — detection, recovery and SDC rates for
    every registered solver under every scheme, upset rate and recovery
    strategy.
    """
    return SweepSpec(
        name="resilience-matrix",
        title="Resilience matrix: detection/recovery per solver x scheme "
              "x upset rate x recovery strategy",
        runner=_CAMPAIGN_RUNNER,
        axes=(
            Axis("method", methods),
            Axis("scheme", schemes),
            Axis("rate", rates),
            Axis("recovery", recoveries),
        ),
        base={
            "kind": "poisson", "grid": grid, "trials": trials,
            "vectors": vectors, "interval": interval, "max_iters": max_iters,
        },
    )


def guarantee_matrix(
    *,
    grid: int = 16,
    trials: int = 200,
    schemes=("sed", "secded64", "secded128", "crc32c"),
    models=("single", "double", "multi5", "burst32"),
    targets=("values", "rowptr", "vector"),
) -> SweepSpec:
    """The scheme-guarantee matrix (DCE/DUE/SDC per scheme x fault model).

    Structure-level campaigns over every protected region.  Row-pointer
    and vector cells run the single-flip model only (matching the
    paper's guarantee table; multi-bit behaviour is scheme-determined
    and already covered by the values cells) — the preset's filter
    encodes exactly that pruning.
    """
    return SweepSpec(
        name="guarantee-matrix",
        title="Guarantee matrix: outcome counts per scheme x fault model "
              "x protected region",
        runner=_CAMPAIGN_RUNNER,
        axes=(
            Axis("target", targets),
            Axis("model", models),
            Axis("scheme", schemes),
        ),
        base={"kind": "structure", "grid": grid, "trials": trials},
        filters=(
            lambda cell: cell["target"] == "values" or cell["model"] == "single",
        ),
    )


def _pair_axes(configs) -> tuple[Axis, Axis, tuple]:
    """(scheme axis, recovery axis, filter) for a sparse pair list.

    ``configs`` names the (scheme, recovery) pairs worth running; the
    returned filter prunes the dense product back down to exactly those
    — the declarative form of a sparse grid.
    """
    allowed = {tuple(pair) for pair in configs}
    schemes = tuple(dict.fromkeys(pair[0] for pair in configs))
    recoveries = tuple(dict.fromkeys(pair[1] for pair in configs))
    keep = (lambda cell: (cell["scheme"], cell["recovery"]) in allowed,)
    return Axis("scheme", schemes), Axis("recovery", recoveries), keep


def solver_recovery(
    *,
    grid: int = 16,
    trials: int = 40,
    methods=("cg", "jacobi"),
    configs=(("sed", "raise"), ("sed", "rollback"), ("secded64", "raise")),
) -> SweepSpec:
    """End-to-end: pre-corrupted matrix, protected solve, recovery on/off.

    SED shows the detect-then-recover story, SECDED the
    transparent-correct one; ``configs`` keeps only those pairs.
    """
    scheme_axis, recovery_axis, keep = _pair_axes(configs)
    return SweepSpec(
        name="solver-recovery",
        title="End-to-end solver campaigns: corrupted matrix, in-solve recovery",
        runner=_CAMPAIGN_RUNNER,
        axes=(Axis("method", methods), scheme_axis, recovery_axis),
        base={"kind": "solver", "grid": grid, "trials": trials,
              "target": "values", "model": "single"},
        filters=keep,
    )


def mtbf(
    *,
    grid: int = 16,
    trials: int = 10,
    rates=(1e-8, 1e-7, 1e-6, 1e-5),
    configs=(("secded64", "raise"), ("sed", "raise"),
             ("sed", "repopulate"), ("sed", "rollback")),
    max_iters: int = 2_000,
) -> SweepSpec:
    """The MTBF study: upset rate vs. (scheme, recovery), with wall time.

    ``timing=True`` keeps the ``mean_*`` tallies in the records (the
    study *is* about time-to-solution), so this preset trades away the
    bitwise-identical-records guarantee the resilience matrix keeps.
    """
    scheme_axis, recovery_axis, keep = _pair_axes(configs)
    return SweepSpec(
        name="mtbf",
        title="MTBF study: live Poisson upsets across four orders of magnitude",
        runner=_CAMPAIGN_RUNNER,
        axes=(scheme_axis, recovery_axis, Axis("rate", rates)),
        base={"kind": "poisson", "grid": grid, "trials": trials,
              "max_iters": max_iters, "timing": True},
        filters=keep,
    )


# ---------------------------------------------------------------------------
def _figure_bars(figure: str, *, n: int = 256, repeats: int = 5) -> SweepSpec:
    return SweepSpec(
        name=figure,
        title=f"{figure}: protection overheads",
        runner=_FIGURE_RUNNER,
        axes=(Axis("series", tuple(PLATFORMS) + ("host",)),),
        base={"figure": figure, "n": n, "repeats": repeats},
    )


def _figure_intervals(figure: str, platform: str, *,
                      n: int = 256, repeats: int = 3) -> SweepSpec:
    return SweepSpec(
        name=figure,
        title=f"{figure}: overhead vs interval",
        runner=_FIGURE_RUNNER,
        axes=(Axis("series", (platform, f"{platform}+eng", "host")),),
        base={"figure": figure, "n": n, "repeats": repeats},
    )


def fig4(**kw) -> SweepSpec:
    return _figure_bars("fig4", **kw)


def fig5(**kw) -> SweepSpec:
    return _figure_bars("fig5", **kw)


def fig9(**kw) -> SweepSpec:
    return _figure_bars("fig9", **kw)


def fig6(**kw) -> SweepSpec:
    return _figure_intervals("fig6", "broadwell", **kw)


def fig7(**kw) -> SweepSpec:
    return _figure_intervals("fig7", "thunderx", **kw)


def fig8(**kw) -> SweepSpec:
    return _figure_intervals("fig8", "gtx1080ti", **kw)


def t1(*, n: int = 192, repeats: int = 3) -> SweepSpec:
    return SweepSpec(
        name="t1",
        title="T1: combined full protection headline numbers",
        runner=_T1_RUNNER,
        axes=(Axis("series", ("k40", "p100", "gtx1080ti", "broadwell", "host")),),
        base={"n": n, "repeats": repeats},
    )


# ---------------------------------------------------------------------------
PRESETS: dict[str, Callable[..., SweepSpec]] = {
    "resilience-matrix": resilience_matrix,
    "guarantee-matrix": guarantee_matrix,
    "solver-recovery": solver_recovery,
    "mtbf": mtbf,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "t1": t1,
}


def get_preset(name: str, **overrides) -> SweepSpec:
    """Resolve a preset by name, applying keyword overrides.

    ``None``-valued overrides are dropped so CLI plumbing can pass
    unset flags straight through.
    """
    try:
        builder = PRESETS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown sweep preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
    kwargs = {key: value for key, value in overrides.items() if value is not None}
    try:
        return builder(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(
            f"preset {name!r} rejected overrides {sorted(kwargs)}: {exc}"
        ) from exc


def available_presets() -> tuple[str, ...]:
    return tuple(sorted(PRESETS))
