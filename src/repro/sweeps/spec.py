"""Declarative sweep grids: axes, filters, and stable cell identity.

The paper's artifacts are all *grids* — overhead vs. interval curves,
scheme x region bars, detection/recovery rates per scheme — and every
grid run so far grew its own nested-loop runner.  A :class:`SweepSpec`
replaces the loops with data: named axes (method, scheme, interval,
fault rate, recovery strategy, problem size, ...), fixed base
parameters shared by every cell, and optional filters that prune
combinations that make no sense.

Two properties make the grids *resumable* and *deterministic*:

* **stable cell identity** — :meth:`SweepSpec.cell_key` hashes the
  cell's complete computation description (runner, base parameters,
  axis values, sweep seed) into a short hex key.  The key depends only
  on *what* the cell computes, never on enumeration order, worker
  count, or which other cells exist, so a run store keyed by it can
  tell exactly which cells a killed sweep still owes;
* **per-cell RNG streams** — :meth:`cell_seed` derives a
  :class:`numpy.random.SeedSequence` from the cell key's hash words.
  Every cell gets a statistically independent stream that is identical
  no matter when, where, or alongside which cells it runs — the sweep
  generalisation of :func:`repro.faults.sharding.plan_shards`'s
  per-shard streams.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from collections.abc import Callable, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.sweeps.executor import Task


def canonical_json(obj) -> str:
    """Deterministic JSON for hashing: sorted keys, no whitespace.

    Raises :class:`ConfigurationError` for values JSON cannot represent
    — cell identity must be writable to the run store verbatim, so
    non-serialisable axis/base values are a spec bug, caught early.
    """
    try:
        return json.dumps(obj, sort_keys=True, separators=(",", ":"))
    except TypeError as exc:
        raise ConfigurationError(
            f"sweep parameters must be JSON-serialisable: {exc}"
        ) from exc


@dataclasses.dataclass(frozen=True)
class Axis:
    """One named dimension of a sweep grid."""

    name: str
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))
        if not self.name:
            raise ConfigurationError("axis needs a non-empty name")
        if not self.values:
            raise ConfigurationError(f"axis {self.name!r} needs at least one value")


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One declarative experiment grid.

    Parameters
    ----------
    name:
        Display name (preset name); not part of cell identity, so
        renaming a preset does not orphan its completed cells.
    runner:
        The cell runner as an importable ``"package.module:function"``
        reference.  Runners execute in spawn-pool workers, so they must
        be module-level functions taking ``(*, seed, **params)`` and
        returning a JSON-serialisable dict.
    axes:
        The grid dimensions, outermost first (the last axis varies
        fastest in :meth:`cells` order).
    base:
        Fixed parameters merged into every cell (grid size, trial
        count, ...).  Part of cell identity, so changing e.g. ``trials``
        correctly invalidates a store written at a different setting.
    filters:
        Predicates over the cell dict; a cell is kept only when every
        filter returns True.  Filters prune *combinations* (identity is
        unaffected — a filtered-in cell hashes the same in any spec).
    title:
        Human heading for rendered output.
    """

    name: str
    runner: str
    axes: tuple[Axis, ...]
    base: Mapping = dataclasses.field(default_factory=dict)
    filters: tuple[Callable[[dict], bool], ...] = ()
    title: str = ""

    def __post_init__(self):
        object.__setattr__(self, "axes", tuple(self.axes))
        object.__setattr__(self, "base", dict(self.base))
        object.__setattr__(self, "filters", tuple(self.filters))
        if ":" not in self.runner:
            raise ConfigurationError(
                f"runner {self.runner!r} must be a 'module:function' reference"
            )
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate axis names in {names}")
        clash = set(names) & set(self.base)
        if clash:
            raise ConfigurationError(
                f"base parameters {sorted(clash)} collide with axis names"
            )
        canonical_json(self.base)  # fail fast on non-serialisable specs

    # -- grid enumeration ------------------------------------------------
    def axis_names(self) -> tuple[str, ...]:
        return tuple(axis.name for axis in self.axes)

    def axis(self, name: str) -> Axis | None:
        for axis in self.axes:
            if axis.name == name:
                return axis
        return None

    def cells(self) -> list[dict]:
        """Every surviving cell, as axis-name -> value dicts, grid order."""
        names = self.axis_names()
        out = []
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            cell = dict(zip(names, combo))
            if all(f(cell) for f in self.filters):
                out.append(cell)
        return out

    def __len__(self) -> int:
        return len(self.cells())

    # -- cell identity ---------------------------------------------------
    def cell_key(self, cell: Mapping, seed: int = 0) -> str:
        """Stable 16-hex-digit identity of one cell's computation.

        Hashes runner + base + axis values + sweep seed; the spec's
        display name is deliberately excluded.  Identical cells in
        different presets share a key — they *are* the same computation,
        and a store may serve either.
        """
        payload = canonical_json(
            {"runner": self.runner, "base": self.base,
             "cell": dict(cell), "seed": int(seed)}
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def cell_seed(self, cell: Mapping, seed: int = 0) -> np.random.SeedSequence:
        """The cell's own RNG stream, derived from its identity hash.

        Hash-derived entropy (rather than ``SeedSequence.spawn`` over an
        enumeration index) keeps the stream stable under resume: adding
        an axis value, filtering cells, or completing some cells first
        never changes any other cell's faults.
        """
        key = self.cell_key(cell, seed)
        words = [int(key[i : i + 8], 16) for i in range(0, len(key), 8)]
        return np.random.SeedSequence(words)

    def cell_params(self, cell: Mapping) -> dict:
        return {**self.base, **cell}

    def task(self, cell: Mapping, seed: int = 0) -> Task:
        """The executor task computing one cell."""
        return Task(
            key=self.cell_key(cell, seed),
            runner=self.runner,
            params=self.cell_params(cell),
            seed=self.cell_seed(cell, seed),
        )

    def replace(self, **changes) -> "SweepSpec":
        return dataclasses.replace(self, **changes)
