"""Declarative, resumable experiment grids (the sweep orchestrator).

The layer every repo artifact-grid runs through (README "Sweeps"):

* :class:`~repro.sweeps.spec.SweepSpec` / :class:`~repro.sweeps.spec.Axis`
  — a grid as data: axes x filters x fixed base parameters, with stable
  per-cell identity hashes and hash-derived RNG streams;
* :class:`~repro.sweeps.store.RunStore` — one JSONL record per
  completed cell; reopening a store *is* resuming;
* :func:`~repro.sweeps.core.run_sweep` — plan, skip completed cells,
  execute the rest on the shared spawn-pool executor
  (:mod:`repro.sweeps.executor`), bitwise-identical for any worker
  count;
* :mod:`repro.sweeps.presets` — every named grid (``resilience-matrix``,
  ``guarantee-matrix``, ``mtbf``, ``fig4``..``fig9``, ``t1``);
* :mod:`repro.sweeps.render` — text tables + machine-readable JSON.

Exports resolve lazily (PEP 562) so importing :mod:`repro.sweeps` stays
cheap and spawn-pool workers importing a single runner module do not
drag the whole harness in.
"""

_EXPORTS = {
    "Axis": "repro.sweeps.spec",
    "SweepSpec": "repro.sweeps.spec",
    "Task": "repro.sweeps.executor",
    "run_tasks": "repro.sweeps.executor",
    "spawn_streams": "repro.sweeps.executor",
    "RunStore": "repro.sweeps.store",
    "SweepResult": "repro.sweeps.core",
    "run_sweep": "repro.sweeps.core",
    "PRESETS": "repro.sweeps.presets",
    "available_presets": "repro.sweeps.presets",
    "get_preset": "repro.sweeps.presets",
    "render_sweep": "repro.sweeps.render",
    "sweep_json": "repro.sweeps.render",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
