"""Sweep cell runners: one grid cell -> one JSON-serialisable record.

Every runner here is a module-level function with the executor's
``(*, seed, **params)`` calling convention, so it can execute in a
spawn-pool worker.  Parameters arrive as plain JSON scalars (scheme
names, model specs, grid sizes); the runner builds the heavy objects —
operators, fault models, recovery policies — locally and
deterministically, which is what keeps sweep cells picklable, cheap to
plan, and bitwise-reproducible from their ``(params, seed)`` pair
alone.

Three families cover the repo's artifact grids:

* :func:`campaign_cell` — fault-injection campaigns (the resilience
  matrix, the guarantee matrix, MTBF studies) via
  :mod:`repro.faults.campaign`;
* :func:`figure_cell` — one series of a paper figure (Figs. 4-9), from
  either the platform model or a host measurement;
* :func:`t1_cell` — one series of the T1 combined-protection table.
"""

from __future__ import annotations

import numpy as np

from repro.csr.build import five_point_operator
from repro.errors import ConfigurationError
from repro.faults.injector import Region
from repro.faults.models import build_model
from repro.platforms import predict as ppred
from repro.platforms.specs import find_anchor

# ---------------------------------------------------------------------------
# campaign cells


def _study_operator(grid: int, matrix_seed: int):
    """The shared campaign operator: a ``grid x grid`` five-point system.

    Every cell of a sweep rebuilds the *same* matrix (``matrix_seed`` is
    a base parameter, not an axis), so cells differ only in the axis
    under study.
    """
    rng = np.random.default_rng(matrix_seed)
    shape = (grid, grid)
    matrix = five_point_operator(
        grid, grid,
        rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3,
    )
    b = rng.standard_normal(matrix.n_rows)
    return matrix, b, rng


def _recovery_policy(strategy: str | None, max_retries: int,
                     checkpoint_interval: int):
    if strategy in (None, "raise"):
        return None
    from repro.recover import RecoveryPolicy

    return RecoveryPolicy(strategy=strategy, max_retries=max_retries,
                          checkpoint_interval=checkpoint_interval)


def _scheme(value: str | None) -> str | None:
    return None if value in (None, "none") else value


def campaign_cell(
    *,
    seed=None,
    kind: str,
    trials: int = 8,
    grid: int = 12,
    matrix_seed: int = 0,
    method: str = "cg",
    scheme: str | None = "secded64",
    rowptr_scheme: str | None = None,
    vectors: bool = False,
    target: str = "values",
    model: str = "single",
    rate: float = 1e-6,
    interval: int = 1,
    recovery: str | None = None,
    max_retries: int = 64,
    checkpoint_interval: int = 4,
    eps: float = 1e-20,
    max_iters: int = 2_000,
    timing: bool = False,
) -> dict:
    """One fault-campaign cell; the record is a campaign-result summary.

    ``kind`` selects the campaign family:

    * ``"poisson"`` — live Poisson process at ``rate`` during a full
      protected solve (the resilience-matrix cell);
    * ``"solver"`` — pre-corrupted matrix (``target``/``model``), then a
      full protected solve;
    * ``"structure"`` — scheme-level guarantee campaign against one
      protected structure: ``target`` picks CSR ``values`` / ``colidx``
      / ``rowptr`` or a dense ``vector``.

    By default the record contains only deterministic fields — wall-time
    (``mean_*``) tallies are dropped so merged cell records are
    bitwise-identical across worker counts and resumes; ``timing=True``
    keeps them for time-to-solution studies (MTBF), at the cost of that
    guarantee.
    """
    from repro.faults.campaign import (
        run_matrix_campaign,
        run_poisson_campaign,
        run_solver_campaign,
        run_vector_campaign,
    )

    matrix, b, rng = _study_operator(grid, matrix_seed)
    element_scheme = _scheme(scheme)
    rowptr = _scheme(rowptr_scheme) if rowptr_scheme is not None else element_scheme
    policy = _recovery_policy(recovery, max_retries, checkpoint_interval)

    if kind == "poisson":
        result = run_poisson_campaign(
            matrix, b, rate=rate, method=method,
            element_scheme=element_scheme, rowptr_scheme=rowptr,
            vector_scheme=element_scheme if vectors else None,
            interval=interval, recovery=policy,
            n_trials=trials, seed=seed, eps=eps, max_iters=max_iters,
        )
    elif kind == "solver":
        result = run_solver_campaign(
            matrix, b, element_scheme=element_scheme, rowptr_scheme=rowptr,
            region=Region(target), model=build_model(model), method=method,
            recovery=policy, n_trials=trials, seed=seed,
            eps=eps, max_iters=max_iters,
        )
    elif kind == "structure":
        if target == "vector":
            result = run_vector_campaign(
                rng.standard_normal(matrix.n_rows), element_scheme,
                build_model(model), n_trials=trials, seed=seed,
            )
        else:
            result = run_matrix_campaign(
                matrix, element_scheme, rowptr, Region(target),
                build_model(model), n_trials=trials, seed=seed,
            )
    else:
        raise ConfigurationError(
            f"unknown campaign cell kind {kind!r}; "
            "use poisson | solver | structure"
        )

    info = {
        key: value
        for key, value in result.info.items()
        if timing or not key.startswith("mean_")
    }
    return {
        "scheme": result.scheme,
        "region": result.region,
        "model": result.model,
        "n_trials": result.n_trials,
        "counts": {o.value: n for o, n in sorted(result.counts.items(),
                                                 key=lambda kv: kv[0].value)},
        "rates": {
            "detection": result.detection_rate,
            "sdc": result.sdc_rate,
            "silent_converged": result.silent_converged_rate,
            "residual": result.residual_detected_rate,
        },
        "info": info,
    }


# ---------------------------------------------------------------------------
# figure cells

#: Bar figures: figure -> (anchor region, model table, host measurement).
_BAR_FIGURES = {
    "fig4": ("elements", "figure4_table", "measure_element_overheads"),
    "fig5": ("rowptr", "figure5_table", "measure_rowptr_overheads"),
    "fig9": ("vector", "figure9_table", "measure_vector_overheads"),
}

#: Interval figures: figure -> (paper platform, scheme).
_INTERVAL_FIGURES = {
    "fig6": ("broadwell", "sed"),
    "fig7": ("thunderx", "secded64"),
    "fig8": ("gtx1080ti", "crc32c"),
}


def _row(figure, series, key, overhead, source, paper_value=None) -> dict:
    return {
        "figure": figure, "series": series, "key": str(key),
        "overhead": float(overhead), "source": source,
        "paper_value": paper_value,
    }


def figure_cell(*, seed=None, figure: str, series: str,
                n: int = 256, repeats: int = 3) -> dict:
    """One series of a paper figure: ``{"rows": [...]}``.

    ``series`` is a platform name (model prediction), a
    ``"<platform>+eng"`` overlay (the engine's schedule on the model's
    axes), or ``"host"`` (a timing measurement on this machine — host
    cells are *not* deterministic, and no sweep claims they are).
    ``seed`` is accepted for executor uniformity; timing cells ignore it.
    """
    from repro.harness import overhead as hov

    if figure in _BAR_FIGURES:
        region, table_name, measure_name = _BAR_FIGURES[figure]
        if series == "host":
            measured = getattr(hov, measure_name)(n=n, repeats=repeats)
            rows = [_row(figure, "host", scheme, value, "measured")
                    for scheme, value in measured.items()]
        else:
            by_scheme = getattr(ppred, table_name)()[series]
            rows = [
                _row(figure, series, scheme, value, "model",
                     find_anchor(region, scheme, series))
                for scheme, value in by_scheme.items()
            ]
        return {"rows": rows}

    if figure in _INTERVAL_FIGURES:
        platform, scheme = _INTERVAL_FIGURES[figure]
        if series == "host":
            measured = hov.measure_interval_curve(scheme, n=n, repeats=repeats)
            rows = [_row(figure, "host", interval, value, "measured")
                    for interval, value in measured.items()]
        elif series.endswith("+eng"):
            curve = ppred.deferred_interval_figure(series.removesuffix("+eng"),
                                                   scheme)
            rows = [_row(figure, series, interval, value, "model")
                    for interval, value in curve.items()]
        else:
            curve = ppred.interval_figure(series, scheme)
            rows = [
                _row(figure, series, interval, value, "model",
                     find_anchor("matrix", scheme, series, interval))
                for interval, value in curve.items()
            ]
        return {"rows": rows}

    raise ConfigurationError(f"unknown figure {figure!r}")


def t1_cell(*, seed=None, series: str, n: int = 192, repeats: int = 3) -> dict:
    """One series of the T1 combined full-protection table."""
    from repro.harness import overhead as hov

    if series == "k40":
        return {"rows": [_row("t1", "k40", "hardware-ecc", 0.081, "model",
                              paper_value=0.081)]}
    if series == "host":
        rows = [_row("t1", "host", "full-secded64",
                     hov.measure_full_protection(n=n, repeats=repeats,
                                                 method="cg"),
                     "measured")]
        deferred = hov.measure_deferred_full_protection(
            n=n, repeats=repeats, intervals=(8, 16), method="cg"
        )
        rows += [_row("t1", "host", f"full-secded64-deferred{interval}",
                      value, "measured")
                 for interval, value in deferred.items()]
        return {"rows": rows}
    rows = [_row("t1", series, "full-secded64",
                 ppred.combined_full_protection(series), "model",
                 find_anchor("full", "secded64", series))]
    rows += [
        _row("t1", series, f"full-secded64-deferred{interval}",
             ppred.combined_full_protection_deferred(series, interval=interval),
             "model")
        for interval in (8, 16)
    ]
    return {"rows": rows}
