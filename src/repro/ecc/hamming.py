"""Generic shortened *extended Hamming* (SECDED) codes over lane-packed words.

The paper uses SECDED in four physical layouts (check bits in the top byte
of a column index, in the top nibbles of two/four row-pointer entries, in
the mantissa LSBs of one/two doubles).  Rather than hand-rolling four
codecs, this module constructs a systematic SECDED code for *any* layout:

* ``codeword_positions`` — the physical bits participating in the code
  (e.g. bits 0..95 of a (value, index) pair; the zero-extension padding of
  the index is excluded);
* ``check_positions`` — the physical bits available for redundancy
  (e.g. the index's top byte).

Construction (classic systematic form):

* each of the ``m`` syndrome bits gets column ``1 << j`` of the parity
  check matrix; data bits get the remaining non-power-of-two nonzero
  ``m``-bit columns in increasing order;
* a final overall-parity bit extends the Hamming distance from 3 to 4,
  i.e. *single error correct, double error detect*;
* if the layout offers more redundancy slots than the code needs
  (``len(check_positions) > m + 1``), the surplus slots are demoted to
  ordinary (constant-zero, but fully protected) data bits — this is how
  the paper's "9 bits per 128" budget maps onto 128-bit physical
  codewords.

Decoding a received word ``r``:

======================  =========================================
overall parity of ``r``  syndrome ``s``        verdict
======================  =========================================
0                        0                     clean
1                        0                     flip in the parity bit itself
1                        ``1 << j``            flip in syndrome bit ``j``
1                        a data column         flip in that data bit → correct
1                        anything else         ≥3 flips → uncorrectable
0                        nonzero               double flip → uncorrectable
======================  =========================================

All hot paths are vectorised: a check of ``N`` codewords costs
``m + 1`` mask/popcount passes over an ``(N, L)`` uint64 array.  The
passes themselves run on the active kernel backend
(:func:`repro.backends.get_backend`) through the code's persistent
:class:`~repro.backends.base.SyndromeScratch`, cache-blocked and
``out=``-threaded so a full check allocates no temporary proportional
to the codeword count; :meth:`SECDEDCode.scan` is the clean-path screen
that answers "anything corrupted?" with zero large allocations at all.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.backends import get_backend
from repro.backends.base import SyndromeScratch
from repro.bits.packing import bits_to_lane_masks
from repro.ecc.base import CheckReport, CodewordStatus
from repro.errors import ConfigurationError

_ONE = np.uint64(1)


def _min_syndrome_bits(n_total: int) -> int:
    """Smallest m with enough distinct columns for an n_total-bit codeword.

    Needs ``2**m - 1 - m`` non-power-of-two columns for the data bits,
    where ``n_data = n_total - m - 1``; that reduces to ``2**m >= n_total``.
    """
    m = 1
    while (1 << m) < n_total:
        m += 1
    return m


class SECDEDCode:
    """A shortened extended Hamming code bound to a physical bit layout.

    Parameters
    ----------
    n_lanes:
        Number of 64-bit lanes per codeword.
    codeword_positions:
        Physical bit positions (``0 <= p < 64 * n_lanes``) covered by the
        code.  Positions outside this set (e.g. struct padding) are
        ignored entirely.
    check_positions:
        Subset of ``codeword_positions`` reserved for redundancy.  Must
        provide at least ``m + 1`` slots.
    min_syndrome_bits:
        Lower bound on ``m``; used by the 128-bit profiles to reproduce
        the paper's 9-bit budget exactly.
    name:
        Human-readable label used in reprs and error messages.
    """

    def __init__(
        self,
        n_lanes: int,
        codeword_positions: Sequence[int],
        check_positions: Sequence[int],
        *,
        min_syndrome_bits: int = 0,
        name: str = "secded",
    ):
        self.name = name
        self.n_lanes = int(n_lanes)
        positions = sorted(int(p) for p in codeword_positions)
        if len(set(positions)) != len(positions):
            raise ConfigurationError(f"{name}: duplicate codeword positions")
        check = [int(p) for p in check_positions]
        if len(set(check)) != len(check):
            raise ConfigurationError(f"{name}: duplicate check positions")
        pos_set = set(positions)
        for p in check:
            if p not in pos_set:
                raise ConfigurationError(f"{name}: check position {p} not in codeword")

        n_total = len(positions)
        m = max(_min_syndrome_bits(n_total), int(min_syndrome_bits))
        if len(check) < m + 1:
            raise ConfigurationError(
                f"{name}: layout offers {len(check)} redundancy slots but the "
                f"code needs {m + 1} for a {n_total}-bit codeword"
            )
        self.n_syndrome_bits = m
        self.syndrome_slots = check[:m]
        self.parity_slot = check[m]
        # Surplus redundancy slots become protected constant-zero data bits.
        surplus = set(check[m + 1 :])
        reserved = set(self.syndrome_slots) | {self.parity_slot}
        self.data_positions = [p for p in positions if p not in reserved]
        self.n_data_bits = len(self.data_positions)
        self.n_codeword_bits = n_total
        self.surplus_slots = sorted(surplus)

        max_data = (1 << m) - 1 - m
        if self.n_data_bits > max_data:
            raise ConfigurationError(
                f"{name}: {self.n_data_bits} data bits exceed the {max_data} "
                f"addressable by {m} syndrome bits"
            )

        # Assign non-power-of-two columns to data bits in increasing order.
        columns = []
        c = 1
        while len(columns) < self.n_data_bits:
            c += 1
            if c & (c - 1):  # not a power of two
                columns.append(c)
        self._data_columns = columns

        # Per-syndrome-bit masks over data positions, and with the check
        # bit itself included (used when checking a stored codeword).
        self._data_masks = np.zeros((m, self.n_lanes), dtype=np.uint64)
        self._full_masks = np.zeros((m, self.n_lanes), dtype=np.uint64)
        for j in range(m):
            members = [
                p for p, col in zip(self.data_positions, columns) if (col >> j) & 1
            ]
            self._data_masks[j] = bits_to_lane_masks(members, self.n_lanes)
            self._full_masks[j] = self._data_masks[j] | bits_to_lane_masks(
                [self.syndrome_slots[j]], self.n_lanes
            )
        self._all_mask = bits_to_lane_masks(positions, self.n_lanes)
        self._check_mask = bits_to_lane_masks(check, self.n_lanes)

        # Syndrome value -> physical bit position (or -1 = invalid).
        table = np.full(1 << m, -1, dtype=np.int32)
        table[0] = self.parity_slot
        for j, slot in enumerate(self.syndrome_slots):
            table[1 << j] = slot
        for p, col in zip(self.data_positions, columns):
            table[col] = p
        self._decode_table = table

        #: Persistent chunk buffers for the backend kernels.  Codes are
        #: process-wide singletons (see repro.ecc.profiles), so this is
        #: allocated once per layout and reused by every check.
        self.scratch = SyndromeScratch()

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SECDEDCode({self.name}: ({self.n_codeword_bits},{self.n_data_bits}) "
            f"+ {self.n_syndrome_bits}+1 check bits over {self.n_lanes} lanes)"
        )

    # ------------------------------------------------------------------
    def encode(self, lanes: np.ndarray) -> np.ndarray:
        """Fill the redundancy slots of each codeword, in place.

        Any previous content of the check slots (including surplus slots,
        which are forced to zero) is discarded.
        """
        lanes = self._as_lanes(lanes)
        get_backend().encode(self, lanes)
        return lanes

    def syndrome(self, lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(syndrome, overall_parity)`` arrays for stored codewords.

        Allocates the two result arrays; use :meth:`syndrome_into` (or
        the :meth:`scan` screen) on paths that must not.
        """
        lanes = self._as_lanes(lanes)
        n = lanes.shape[0]
        syn = np.empty(n, dtype=np.uint16)
        ptot = np.empty(n, dtype=np.uint8)
        get_backend().syndrome_into(self, lanes, syn, ptot)
        return syn, ptot

    def syndrome_into(self, lanes: np.ndarray, syn: np.ndarray,
                      parity: np.ndarray) -> None:
        """Fused syndrome pass into caller-owned ``uint16``/``uint8`` outputs."""
        get_backend().syndrome_into(self, self._as_lanes(lanes), syn, parity)

    def scan(self, lanes: np.ndarray) -> int:
        """Number of corrupted codewords, allocation-free.

        The screen every check runs first: an intact structure is fully
        verified without materialising per-codeword results, and only a
        nonzero answer pays for the detailed (allocating) decode.
        """
        return get_backend().scan(self, self._as_lanes(lanes))

    def detect(self, lanes: np.ndarray) -> np.ndarray:
        """Boolean "corrupted" flag per codeword (no correction attempted)."""
        syn, ptot = self.syndrome(lanes)
        return (syn != 0) | (ptot != 0)

    def detect_report(self, lanes: np.ndarray) -> CheckReport:
        """Detection-only :class:`CheckReport`: scan screen, then flags.

        The shared clean-path shape for every ``check(correct=False)``:
        an intact lane array costs one allocation-free scan and returns
        the compact all-OK report.
        """
        lanes = self._as_lanes(lanes)
        if self.scan(lanes) == 0:
            return CheckReport.all_ok(lanes.shape[0])
        return CheckReport.from_flags(self.detect(lanes))

    def check_and_correct(self, lanes: np.ndarray) -> CheckReport:
        """Check every codeword, repairing single-bit flips in place.

        Clean codeword arrays (the overwhelmingly common case) take the
        fused scan fast path and return a compact all-OK report.
        """
        lanes = self._as_lanes(lanes)
        if self.scan(lanes) == 0:
            return CheckReport.all_ok(lanes.shape[0])
        syn, ptot = self.syndrome(lanes)
        status = np.zeros(lanes.shape[0], dtype=np.uint8)

        single = ptot == 1
        if np.any(single):
            idx = np.flatnonzero(single)
            pos = self._decode_table[syn[idx]]
            valid = pos >= 0
            fix_idx = idx[valid]
            fix_pos = pos[valid]
            if fix_idx.size:
                flat = lanes.reshape(-1)
                lane_of = fix_pos >> 6
                bit_of = (fix_pos & 63).astype(np.uint64)
                flat[fix_idx * self.n_lanes + lane_of] ^= _ONE << bit_of
                status[fix_idx] = CodewordStatus.CORRECTED
            status[idx[~valid]] = CodewordStatus.UNCORRECTABLE

        double = (ptot == 0) & (syn != 0)
        status[double] = CodewordStatus.UNCORRECTABLE
        return CheckReport(status=status)

    # ------------------------------------------------------------------
    def _as_lanes(self, lanes: np.ndarray) -> np.ndarray:
        lanes = np.asarray(lanes, dtype=np.uint64)
        if lanes.ndim == 1:
            lanes = lanes.reshape(-1, self.n_lanes)
        if lanes.shape[-1] != self.n_lanes:
            raise ValueError(
                f"{self.name}: expected {self.n_lanes} lanes, got {lanes.shape[-1]}"
            )
        return lanes

