"""Scheme registry: names, budgets and guarantees in one place.

Used by the protected containers (to parameterise layouts), the harness
(to enumerate experiment axes exactly like the paper's figure legends) and
the docs.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence


@dataclasses.dataclass(frozen=True)
class SchemeInfo:
    """Static description of one ABFT protection scheme."""

    #: Canonical name used across the library and benchmark output.
    name: str
    #: Redundancy bits consumed per codeword.
    check_bits: int
    #: Vector/row-pointer elements grouped into one codeword (1 = per-element).
    group: int
    #: Guaranteed corrections per codeword.
    corrects: int
    #: Guaranteed detections per codeword (beyond corrections).
    detects: int
    #: One-line description for reports.
    summary: str


#: Protection schemes in the order the paper's figures list them.
SCHEMES: dict[str, SchemeInfo] = {
    "none": SchemeInfo("none", 0, 1, 0, 0, "no protection (baseline)"),
    "sed": SchemeInfo("sed", 1, 1, 0, 1, "parity: detect any odd number of flips"),
    "secded64": SchemeInfo(
        "secded64", 8, 2, 1, 2, "Hamming SECDED over 64-bit codewords"
    ),
    "secded128": SchemeInfo(
        "secded128", 9, 4, 1, 2, "Hamming SECDED over 128-bit codewords"
    ),
    "crc32c": SchemeInfo(
        "crc32c", 32, 8, 2, 5, "CRC32C: HD 6 within 178..5243-bit codewords"
    ),
}

#: The axis order used by Figures 4, 5 and 9.
FIGURE_ORDER: Sequence[str] = ("sed", "secded64", "secded128", "crc32c")


def scheme_info(name: str) -> SchemeInfo:
    """Look up a scheme by canonical name (raises KeyError with choices)."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}"
        ) from None
