"""Error detecting and correcting codes (paper §IV).

Three code families, all operating on lane-packed codewords:

* :mod:`repro.ecc.sed` — single-error-detect parity (HD 2);
* :mod:`repro.ecc.hamming` — shortened extended Hamming SECDED (HD 4),
  instantiated for every storage profile in :mod:`repro.ecc.profiles`;
* :mod:`repro.ecc.crc32c` — the Castagnoli CRC (HD 6 for codewords of
  178..5243 bits), with syndrome-signature correction in
  :mod:`repro.ecc.crc_correct`.
"""

from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.sed import sed_parity_lanes, sed_encode, sed_check
from repro.ecc.hamming import SECDEDCode
from repro.ecc.profiles import (
    csr_element_secded,
    rowptr_secded64,
    rowptr_secded128,
    vector_secded64,
    vector_secded128,
)
from repro.ecc.crc32c import (
    crc32c,
    crc32c_bitwise,
    crc32c_table,
    crc32c_slicing16,
    crc32c_batch,
)
from repro.ecc.crc_correct import CRCCorrector

__all__ = [
    "CheckReport",
    "CodewordStatus",
    "sed_parity_lanes",
    "sed_encode",
    "sed_check",
    "SECDEDCode",
    "csr_element_secded",
    "rowptr_secded64",
    "rowptr_secded128",
    "vector_secded64",
    "vector_secded128",
    "crc32c",
    "crc32c_bitwise",
    "crc32c_table",
    "crc32c_slicing16",
    "crc32c_batch",
    "CRCCorrector",
]
