"""Concrete SECDED layouts used by the paper (Figs. 1-3).

Each factory returns a :class:`~repro.ecc.hamming.SECDEDCode` bound to the
physical bit layout of one protected structure.  The redundancy budgets
follow the paper exactly:

* **SECDED64** — 8 check bits per 64-bit codeword;
* **SECDED128** — 9 check bits per 128-bit codeword (the remaining
  reserved slots are protected constant-zero bits);
* the CSR element code is the (96, 88) fit: 64 value bits + 24 index bits
  protected by the index's top byte.
"""

from __future__ import annotations

import functools

from repro.ecc.hamming import SECDEDCode


@functools.lru_cache(maxsize=None)
def csr_element_secded() -> SECDEDCode:
    """SECDED over one 96-bit CSR element (Fig. 1b).

    Lane 0 = the float64 value, lane 1 = the uint32 column index
    (zero-extended; padding bits 96..127 excluded).  Check bits live in
    the top byte of the index (bits 88..95), limiting matrices to
    ``2**24 - 1`` columns.
    """
    return SECDEDCode(
        n_lanes=2,
        codeword_positions=range(96),
        check_positions=range(88, 96),
        name="csr-element-secded(96,88)",
    )


@functools.lru_cache(maxsize=None)
def csr_element_pair_secded128() -> SECDEDCode:
    """SECDED128 over two consecutive CSR elements.

    Codeword = 192 bits (two 96-bit elements across four lanes:
    value0, index0, value1, index1), redundancy in the two index top
    bytes (16 slots): 9 check bits — the paper's SECDED128 budget — plus
    7 protected constant-zero bits.
    """
    positions = (
        list(range(0, 64))          # value 0
        + list(range(64, 96))       # index 0
        + list(range(128, 192))     # value 1
        + list(range(192, 224))     # index 1
    )
    return SECDEDCode(
        n_lanes=4,
        codeword_positions=positions,
        check_positions=list(range(88, 96)) + list(range(216, 224)),
        min_syndrome_bits=8,
        name="csr-element-pair-secded128",
    )


@functools.lru_cache(maxsize=None)
def coo_element_secded128() -> SECDEDCode:
    """SECDED128 over one 128-bit COO element (row, col, value).

    Lane 0 = the float64 value, lane 1 = ``row | col << 32``.  Redundancy
    in both indices' top bytes (16 slots, 9 used), limiting both matrix
    dimensions to ``2**24 - 1``.
    """
    return SECDEDCode(
        n_lanes=2,
        codeword_positions=range(128),
        check_positions=list(range(88, 96)) + list(range(120, 128)),
        min_syndrome_bits=8,
        name="coo-element-secded128",
    )


@functools.lru_cache(maxsize=None)
def csr64_element_secded() -> SECDEDCode:
    """SECDED over a 64-bit-index CSR element (value + uint64 column).

    The paper's §V.B extension note: production solvers beyond 2**32
    columns use 64-bit indices.  The 128-bit codeword needs 9 check bits,
    stored in the index's top 9 bits -> columns <= 2**55 - 1.
    """
    return SECDEDCode(
        n_lanes=2,
        codeword_positions=range(128),
        check_positions=range(119, 128),
        min_syndrome_bits=8,
        name="csr64-element-secded",
    )


@functools.lru_cache(maxsize=None)
def u64_top_secded() -> SECDEDCode:
    """SECDED over one uint64 with redundancy in its top byte.

    Used for 64-bit row pointers: values <= 2**56 - 1 leave the top byte
    free, and a 64-bit codeword needs exactly 8 check bits.
    """
    return SECDEDCode(
        n_lanes=1,
        codeword_positions=range(64),
        check_positions=range(56, 64),
        min_syndrome_bits=7,
        name="u64-top-secded",
    )


@functools.lru_cache(maxsize=None)
def rowptr_secded64() -> SECDEDCode:
    """SECDED64 over two consecutive row-pointer entries (Fig. 2b).

    Codeword = 64 bits (two uint32 entries), redundancy in the top nibble
    of each entry (bits 28..31 and 60..63), limiting the matrix to
    ``2**28 - 1`` non-zeros.  ``min_syndrome_bits=7`` pins the classic
    8-bit SECDED64 budget.
    """
    return SECDEDCode(
        n_lanes=1,
        codeword_positions=range(64),
        check_positions=[28, 29, 30, 31, 60, 61, 62, 63],
        min_syndrome_bits=7,
        name="rowptr-secded64",
    )


@functools.lru_cache(maxsize=None)
def rowptr_secded128() -> SECDEDCode:
    """SECDED128 over four consecutive row-pointer entries.

    Codeword = 128 bits (four uint32 entries), 16 reserved top-nibble
    slots of which 9 hold check bits (the paper's SECDED128 budget) and 7
    are protected constant-zero bits.
    """
    reserved = [28, 29, 30, 31, 60, 61, 62, 63, 92, 93, 94, 95, 124, 125, 126, 127]
    return SECDEDCode(
        n_lanes=2,
        codeword_positions=range(128),
        check_positions=reserved,
        min_syndrome_bits=8,
        name="rowptr-secded128",
    )


@functools.lru_cache(maxsize=None)
def vector_secded64() -> SECDEDCode:
    """SECDED64 over a single double (Fig. 3b): 8 mantissa LSBs reserved."""
    return SECDEDCode(
        n_lanes=1,
        codeword_positions=range(64),
        check_positions=range(8),
        min_syndrome_bits=7,
        name="vector-secded64",
    )


@functools.lru_cache(maxsize=None)
def vector_secded128() -> SECDEDCode:
    """SECDED128 over two doubles: 5 mantissa LSBs reserved in each.

    10 reserved slots, 9 check bits + 1 protected constant-zero bit.
    """
    return SECDEDCode(
        n_lanes=2,
        codeword_positions=range(128),
        check_positions=[0, 1, 2, 3, 4, 64, 65, 66, 67, 68],
        min_syndrome_bits=8,
        name="vector-secded128",
    )
