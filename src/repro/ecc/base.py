"""Shared result types for integrity checks."""

from __future__ import annotations

import dataclasses
import enum

import numpy as np


class CodewordStatus(enum.IntEnum):
    """Per-codeword outcome of an integrity check.

    Integer-valued so whole-array status vectors stay NumPy-friendly.
    """

    #: Codeword passed the check.
    OK = 0
    #: Error found and corrected in place (DCE).
    CORRECTED = 1
    #: Error found, not correctable (DUE).
    UNCORRECTABLE = 2


@dataclasses.dataclass
class CheckReport:
    """Aggregate result of checking an array of codewords.

    Attributes
    ----------
    status:
        ``uint8`` array of :class:`CodewordStatus` values, one per codeword.
    n_corrected / n_uncorrectable:
        Convenience counts.
    """

    status: np.ndarray

    @property
    def n_corrected(self) -> int:
        return int(np.count_nonzero(self.status == CodewordStatus.CORRECTED))

    @property
    def n_uncorrectable(self) -> int:
        return int(np.count_nonzero(self.status == CodewordStatus.UNCORRECTABLE))

    @property
    def clean(self) -> bool:
        """True when every codeword passed without intervention."""
        return bool(np.all(self.status == CodewordStatus.OK))

    @property
    def ok(self) -> bool:
        """True when the data is now trustworthy (clean or fully corrected)."""
        return self.n_uncorrectable == 0

    def uncorrectable_indices(self) -> np.ndarray:
        return np.flatnonzero(self.status == CodewordStatus.UNCORRECTABLE)

    def corrected_indices(self) -> np.ndarray:
        return np.flatnonzero(self.status == CodewordStatus.CORRECTED)

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Element-wise worst-case merge of two reports over the same codewords."""
        return CheckReport(status=np.maximum(self.status, other.status))
