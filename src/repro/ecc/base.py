"""Shared result types for integrity checks."""

from __future__ import annotations

import enum

import numpy as np


class CodewordStatus(enum.IntEnum):
    """Per-codeword outcome of an integrity check.

    Integer-valued so whole-array status vectors stay NumPy-friendly.
    """

    #: Codeword passed the check.
    OK = 0
    #: Error found and corrected in place (DCE).
    CORRECTED = 1
    #: Error found, not correctable (DUE).
    UNCORRECTABLE = 2


class CheckReport:
    """Aggregate result of checking an array of codewords.

    Two storage forms share one interface:

    * the general form carries a ``uint8`` array of
      :class:`CodewordStatus` values, one per codeword;
    * the *compact clean* form (:meth:`all_ok`) records only the
      codeword count — the scheduled-check hot path produces this when a
      fused scan finds nothing wrong, so a clean verification allocates
      nothing proportional to the structure.  Accessing :attr:`status`
      on a compact report materialises the zeros lazily.
    """

    def __init__(self, status: np.ndarray | None = None, *,
                 n_codewords: int | None = None, index_offset: int = 0):
        if status is None and n_codewords is None:
            raise ValueError("CheckReport needs a status array or a codeword count")
        self._status = status
        self._n = int(status.size if status is not None else n_codewords)
        #: Added to reported codeword indices — a windowed (stripe) check
        #: computes window-relative status but must report absolute
        #: positions (see with_offset).
        self.index_offset = int(index_offset)

    @classmethod
    def all_ok(cls, n_codewords: int) -> "CheckReport":
        """The compact every-codeword-passed report."""
        return cls(n_codewords=n_codewords)

    @classmethod
    def from_flags(cls, flags: np.ndarray) -> "CheckReport":
        """Detection-only report from per-codeword corrupted flags.

        Clean flags collapse to the compact form; corrupted codewords
        are UNCORRECTABLE (detection without correction).
        """
        if not flags.any():
            return cls.all_ok(flags.size)
        return cls(
            status=np.where(
                flags,
                np.uint8(CodewordStatus.UNCORRECTABLE),
                np.uint8(CodewordStatus.OK),
            )
        )

    @classmethod
    def concat(cls, parts: list["CheckReport"]) -> "CheckReport":
        """Concatenate segment reports, staying compact when all are."""
        if len(parts) == 1:
            return parts[0]
        if all(p._status is None for p in parts):
            return cls.all_ok(sum(p.n_codewords for p in parts))
        return cls(status=np.concatenate([p.status for p in parts]))

    @property
    def n_codewords(self) -> int:
        return self._n

    @property
    def status(self) -> np.ndarray:
        """Per-codeword status; materialised on demand for clean reports."""
        if self._status is None:
            self._status = np.zeros(self._n, dtype=np.uint8)
        return self._status

    @property
    def n_corrected(self) -> int:
        if self._status is None:
            return 0
        return int(np.count_nonzero(self._status == CodewordStatus.CORRECTED))

    @property
    def n_uncorrectable(self) -> int:
        if self._status is None:
            return 0
        return int(np.count_nonzero(self._status == CodewordStatus.UNCORRECTABLE))

    @property
    def clean(self) -> bool:
        """True when every codeword passed without intervention."""
        if self._status is None:
            return True
        return bool(np.all(self._status == CodewordStatus.OK))

    @property
    def ok(self) -> bool:
        """True when the data is now trustworthy (clean or fully corrected)."""
        return self.n_uncorrectable == 0

    def with_offset(self, offset: int) -> "CheckReport":
        """This report with indices shifted to absolute codeword positions.

        Containers apply their own corrections against window-relative
        indices *before* this wrapper, so only outward-facing reports
        (errors, campaign accounting) carry the offset.
        """
        if offset == 0:
            return self
        return CheckReport(
            status=self._status, n_codewords=self._n,
            index_offset=self.index_offset + offset,
        )

    def uncorrectable_indices(self) -> np.ndarray:
        if self._status is None:
            return np.zeros(0, dtype=np.int64)
        return np.flatnonzero(self._status == CodewordStatus.UNCORRECTABLE) + self.index_offset

    def corrected_indices(self) -> np.ndarray:
        if self._status is None:
            return np.zeros(0, dtype=np.int64)
        return np.flatnonzero(self._status == CodewordStatus.CORRECTED) + self.index_offset

    def merge(self, other: "CheckReport") -> "CheckReport":
        """Element-wise worst-case merge of two reports over the same codewords."""
        if self._status is None:
            return other
        if other._status is None:
            return self
        return CheckReport(status=np.maximum(self.status, other.status))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckReport(n={self._n}, corrected={self.n_corrected}, "
            f"uncorrectable={self.n_uncorrectable})"
        )
