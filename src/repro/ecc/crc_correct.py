"""Error *correction* with CRC32C via syndrome signatures.

The paper stresses that CRC's correction ability is usually overlooked:
for codeword lengths of 178..5243 bits CRC32C has minimum Hamming
distance 6, so one can run it as 2EC3ED (correct two flips, detect
three), 1EC4ED, or pure 5ED — the ``n + m = 5`` trade-off.

Mechanics: the raw CRC register is GF(2)-linear in the message, so

``crc(M ^ e_i) ^ crc(M) = sig(i)``

where ``sig(i)`` depends only on the flipped bit's distance from the end
of the message.  The checker computes ``diff = crc(data) ^ stored_crc``;
an error in data bit ``i`` contributes ``sig(i)`` to ``diff``, an error in
stored checksum bit ``j`` contributes ``1 << j``.  With HD >= 4 all
single-bit signatures are distinct; with HD = 6 all XOR-pairs are distinct
too, enabling exact 2-bit correction by meet-in-the-middle.

Signatures are built in one backward pass: if ``Z`` is the one-zero-byte
update ``Z(c) = T[c & 0xFF] ^ (c >> 8)``, then
``sig(byte k, bit b) = Z(sig(byte k+1, bit b))`` with the last byte seeded
from the table.  Cost: ``8 * n_bytes`` table lookups, cached per length.
"""

from __future__ import annotations

import functools

import numpy as np

from repro.ecc.crc32c import TABLE

#: Codeword-length window (in bits, data + 32 CRC bits) for which CRC32C
#: has minimum Hamming distance 6 (Koopman 2002).
HD6_MIN_BITS = 178
HD6_MAX_BITS = 5243


def _bit_signatures(n_bytes: int) -> np.ndarray:
    """(n_bytes, 8) uint32 signatures for each (byte, bit-within-byte)."""
    sigs = np.empty((n_bytes, 8), dtype=np.uint32)
    seed = TABLE[(np.uint32(1) << np.arange(8, dtype=np.uint32)) & np.uint32(0xFF)]
    # Seeding: a single byte e as the *last* byte simply XORs e into the
    # register low bits and shifts it through once -> table[e].
    sigs[n_bytes - 1] = seed
    mask = np.uint32(0xFF)
    eight = np.uint32(8)
    for k in range(n_bytes - 2, -1, -1):
        prev = sigs[k + 1]
        sigs[k] = TABLE[prev & mask] ^ (prev >> eight)
    return sigs


class CRCCorrector:
    """Locate 1- or 2-bit errors in a (data || crc32c) codeword.

    Parameters
    ----------
    n_data_bytes:
        Length of the data part.  Bit indices reported by the locate
        methods are ``byte * 8 + bit`` for data bits (LSB-first within a
        byte, matching the reflected CRC convention) and
        ``n_data_bytes * 8 + j`` for bit ``j`` of the stored checksum.
    """

    def __init__(self, n_data_bytes: int):
        if n_data_bytes < 1:
            raise ValueError("n_data_bytes must be >= 1")
        self.n_data_bytes = n_data_bytes
        self.n_data_bits = n_data_bytes * 8
        self.n_total_bits = self.n_data_bits + 32

        sigs = _bit_signatures(n_data_bytes).reshape(-1)
        checksum_sigs = np.uint32(1) << np.arange(32, dtype=np.uint32)
        self._signatures = np.concatenate([sigs, checksum_sigs])
        self._index_of = {int(s): i for i, s in enumerate(self._signatures)}
        if len(self._index_of) != self.n_total_bits:
            # Signature collision would break single-bit correction; it
            # cannot happen while HD >= 3 holds for this length.
            raise ValueError(
                f"CRC32C signature collision at {n_data_bytes} data bytes"
            )

    @property
    def hd6(self) -> bool:
        """True when this codeword length sits in the HD = 6 window."""
        return HD6_MIN_BITS <= self.n_total_bits <= HD6_MAX_BITS

    def signature(self, bit_index: int) -> int:
        """The diff signature a flip of ``bit_index`` produces."""
        return int(self._signatures[bit_index])

    def locate_single(self, diff: int) -> int | None:
        """Bit index of a single-bit error explaining ``diff``, else None."""
        if diff == 0:
            return None
        return self._index_of.get(int(diff) & 0xFFFFFFFF)

    def locate_double(self, diff: int) -> tuple[int, int] | None:
        """Bit pair of a 2-bit error explaining ``diff`` (meet-in-the-middle).

        Returns the lowest-index pair, or None.  Only meaningful when
        :attr:`hd6` holds (otherwise a 2-bit syndrome may alias a
        different pair).
        """
        diff = int(diff) & 0xFFFFFFFF
        if diff == 0:
            return None
        for i in range(self.n_total_bits):
            partner = self._index_of.get(diff ^ int(self._signatures[i]))
            if partner is not None and partner > i:
                return (i, partner)
        return None

    def locate(self, diff: int, max_errors: int = 2):
        """Try 1-bit then (optionally) 2-bit localisation.

        Returns a tuple of bit indices, or None when ``diff`` is not
        explained by ``<= max_errors`` flips (detected-uncorrectable).
        """
        single = self.locate_single(diff)
        if single is not None:
            return (single,)
        if max_errors >= 2:
            pair = self.locate_double(diff)
            if pair is not None:
                return pair
        return None


@functools.lru_cache(maxsize=256)
def corrector_for(n_data_bytes: int) -> CRCCorrector:
    """Cached per-length corrector (CSR rows come in few distinct lengths)."""
    return CRCCorrector(n_data_bytes)


#: The nECmED operating points the paper derives from HD = 6 (n + m = 5):
#: correct up to n flips, detect up to m more.  "5ED" runs CRC as a pure
#: detector; "2EC3ED" exploits the full correction budget.
CRC_MODES: dict[str, int] = {"5ED": 0, "1EC4ED": 1, "2EC3ED": 2}


def max_errors_for_mode(mode: str, hd6: bool) -> int:
    """Correctable-flip budget for an operating mode at a codeword length.

    Outside the HD-6 window the guarantee degrades to classic CRC
    behaviour, so correction is capped at a single bit there.
    """
    try:
        budget = CRC_MODES[mode]
    except KeyError:
        raise ValueError(
            f"unknown CRC mode {mode!r}; choose from {sorted(CRC_MODES)}"
        ) from None
    return min(budget, 2 if hd6 else 1)
