"""Single Error Detection — one parity bit per codeword (paper §IV).

SED gives a minimum Hamming distance of 2: every odd number of bit flips
is detected, every even number is missed, nothing is correctable.  It is
by far the cheapest scheme (one popcount per codeword) which is why the
paper finds it attractive on almost every platform.

The functions here are layout-agnostic: the caller supplies lane-packed
codewords where the designated parity *slot* has been zeroed (encode) or
left as stored (check).  Placement of the parity bit — top bit of a column
index, LSB of a mantissa — is owned by the containers in
:mod:`repro.protect`.
"""

from __future__ import annotations

import numpy as np

from repro.bits.popcount import parity_lanes


def sed_parity_lanes(lanes: np.ndarray) -> np.ndarray:
    """Parity of each lane-packed codeword; shape ``lanes.shape[:-1]``, uint8."""
    return parity_lanes(lanes)


def sed_encode(lanes: np.ndarray, parity_lane: int, parity_bit: int) -> np.ndarray:
    """Set the parity bit so each codeword has even total parity.

    ``lanes`` is modified in place (the parity slot is overwritten, any
    previous content there is discarded) and returned.
    """
    bit = np.uint64(1) << np.uint64(parity_bit)
    lanes[..., parity_lane] &= ~bit
    p = parity_lanes(lanes).astype(np.uint64)
    lanes[..., parity_lane] |= p << np.uint64(parity_bit)
    return lanes


def sed_check(lanes: np.ndarray) -> np.ndarray:
    """Return a boolean "corrupted" flag per codeword.

    A clean SED codeword (data + embedded parity bit) always has even
    parity, so a nonzero total parity means an odd number of flips
    happened somewhere in the codeword.
    """
    return parity_lanes(lanes).astype(bool)
