"""CRC32C (Castagnoli) — reference, table, Slicing-by-16 and batched kernels.

The paper picks CRC32C because (a) its generator has an ``(x + 1)`` factor
so all odd-weight errors and burst errors up to 32 bits are detected,
(b) codewords of 178..5243 bits enjoy a minimum Hamming distance of 6
(Koopman), and (c) Intel/ARMv8 CPUs accelerate it in hardware.  Without
the instruction the paper falls back to Slicing-by-16 — we implement that
algorithm, plus a row-parallel NumPy kernel (`crc32c_batch`) standing in
for the hardware-parallel GPU/SIMD paths: it processes one byte *column*
of many codewords per step, so checking a whole sparse matrix costs
``bytes_per_row`` vector operations instead of ``n_rows * bytes_per_row``
scalar ones.

Convention: reflected algorithm, polynomial ``0x1EDC6F41`` (reflected form
``0x82F63B78``), init ``0xFFFFFFFF``, final XOR ``0xFFFFFFFF`` — identical
to the SSE4.2 ``crc32`` instruction and RFC 3720.
"""

from __future__ import annotations

import numpy as np

#: Reflected CRC32C polynomial.
POLY_REFLECTED = np.uint32(0x82F63B78)
_INIT = np.uint32(0xFFFFFFFF)
_XOROUT = np.uint32(0xFFFFFFFF)


def _build_table() -> np.ndarray:
    """The classic 256-entry byte table for the reflected algorithm."""
    table = np.empty(256, dtype=np.uint32)
    for byte in range(256):
        crc = np.uint32(byte)
        for _ in range(8):
            if crc & np.uint32(1):
                crc = np.uint32((int(crc) >> 1) ^ int(POLY_REFLECTED))
            else:
                crc = np.uint32(int(crc) >> 1)
        table[byte] = crc
    return table


def _build_slicing_tables(n: int = 16) -> np.ndarray:
    """Slicing tables T[k]: CRC contribution of a byte ``k`` positions early."""
    tables = np.empty((n, 256), dtype=np.uint32)
    tables[0] = TABLE
    for k in range(1, n):
        prev = tables[k - 1]
        tables[k] = TABLE[prev & np.uint32(0xFF)] ^ (prev >> np.uint32(8))
    return tables


TABLE = _build_table()
SLICING_TABLES = _build_slicing_tables(16)


def _as_bytes(data) -> bytes:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return bytes(data)
    arr = np.asarray(data)
    return arr.tobytes()


def crc32c_bitwise(data, crc: int = 0) -> int:
    """Bit-at-a-time reference implementation (slow; used to validate)."""
    crc = (crc ^ int(_INIT)) & 0xFFFFFFFF
    poly = int(POLY_REFLECTED)
    for byte in _as_bytes(data):
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ poly if crc & 1 else crc >> 1
    return (crc ^ int(_XOROUT)) & 0xFFFFFFFF


def crc32c_table(data, crc: int = 0) -> int:
    """Byte-at-a-time table-driven implementation."""
    crc = (crc ^ int(_INIT)) & 0xFFFFFFFF
    table = TABLE
    for byte in _as_bytes(data):
        crc = int(table[(crc ^ byte) & 0xFF]) ^ (crc >> 8)
    return (crc ^ int(_XOROUT)) & 0xFFFFFFFF


def crc32c_slicing16(data, crc: int = 0) -> int:
    """Slicing-by-16: sixteen independent table lookups per 16-byte block.

    This is the software algorithm the paper uses when the hardware
    instruction is unavailable.
    """
    buf = _as_bytes(data)
    crc = (crc ^ int(_INIT)) & 0xFFFFFFFF
    t = SLICING_TABLES
    i, n = 0, len(buf)
    while n - i >= 16:
        x = crc ^ int.from_bytes(buf[i : i + 4], "little")
        crc = 0
        for k in range(4):
            crc ^= int(t[15 - k][(x >> (8 * k)) & 0xFF])
        for k in range(12):
            crc ^= int(t[11 - k][buf[i + 4 + k]])
        i += 16
    table = TABLE
    while i < n:
        crc = int(table[(crc ^ buf[i]) & 0xFF]) ^ (crc >> 8)
        i += 1
    return (crc ^ int(_XOROUT)) & 0xFFFFFFFF


def crc32c(data, crc: int = 0) -> int:
    """Default scalar entry point (Slicing-by-16)."""
    return crc32c_slicing16(data, crc)


def crc32c_batch(byte_matrix: np.ndarray) -> np.ndarray:
    """CRC32C of every *row* of an ``(N, B)`` uint8 matrix, vectorised.

    All rows must have equal length; callers with ragged rows (CSR rows of
    different nnz) group rows by length first.  One table gather per byte
    column updates all ``N`` CRCs simultaneously.
    """
    byte_matrix = np.ascontiguousarray(byte_matrix, dtype=np.uint8)
    if byte_matrix.ndim != 2:
        raise ValueError("crc32c_batch expects an (N, B) uint8 matrix")
    n = byte_matrix.shape[0]
    crc = np.full(n, _INIT, dtype=np.uint32)
    table = TABLE
    mask = np.uint32(0xFF)
    eight = np.uint32(8)
    for col in range(byte_matrix.shape[1]):
        crc = table[(crc ^ byte_matrix[:, col]) & mask] ^ (crc >> eight)
    return crc ^ _XOROUT


def crc32c_zero_operator(crc: np.ndarray | int, n_zero_bytes: int):
    """Advance CRC state(s) over ``n_zero_bytes`` zero bytes.

    The raw (pre-xorout) CRC register is linear, so appending zero bytes
    is a fixed linear map; this helper applies it step-wise and is used by
    the correction machinery to build single-bit syndrome signatures.
    Operates on raw register values (no init/xorout handling).
    """
    scalar = np.isscalar(crc)
    state = np.atleast_1d(np.asarray(crc, dtype=np.uint32))
    table = TABLE
    mask = np.uint32(0xFF)
    eight = np.uint32(8)
    for _ in range(n_zero_bytes):
        state = table[state & mask] ^ (state >> eight)
    return int(state[0]) if scalar else state
