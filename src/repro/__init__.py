"""repro — ABFT techniques for fully protecting sparse matrix solvers.

Reproduction of Pawelczak, McIntosh-Smith, Price & Martineau,
IEEE CLUSTER 2017 (DOI 10.1109/CLUSTER.2017.49).

The one protection API (see README's "One API" section):

* :class:`repro.ProtectionConfig` — what is protected, and when it is
  verified (presets: ``off()``, ``paper_default()``, ``deferred()``);
* :func:`repro.solve` — any registered method (``cg`` / ``ppcg`` /
  ``jacobi`` / ``chebyshev``) under any protection;
* :class:`repro.ProtectionSession` — one deferred-verification engine
  shared across many solves/time-steps;
* :class:`repro.RecoveryPolicy` — what happens when a DUE surfaces:
  ``raise`` (historical), ``repopulate`` or ``rollback`` with retry
  budgets, so a detected-uncorrectable error no longer kills the solve;
  distributed solves add ``erasure`` — checksum shards that reconstruct
  a lost shard algebraically, no checkpoints.

Public surface (see README.md for a guided tour):

* :mod:`repro.protect` — the protected containers and kernels;
* :mod:`repro.solvers` — the solver registry and per-method runners;
* :mod:`repro.tealeaf` — the TeaLeaf heat-conduction miniapp;
* :mod:`repro.faults` — fault models, injection, campaigns;
* :mod:`repro.platforms` — the calibrated cross-platform cost model;
* :mod:`repro.harness` — per-figure experiment runners;
* :mod:`repro.sweeps` — declarative, resumable experiment grids;
* :mod:`repro.serve` — the batched, journalled solve server
  (protection-as-a-service; ``python -m repro.serve``);
* :mod:`repro.dist` — row-sharded distributed CG with per-shard
  protection domains and shard-death recovery
  (``repro.solve(..., distributed=n)``; ``python -m repro.dist``).

docs/architecture.md walks the lifecycle of a protected solve through
these modules; docs/serving.md covers the serving layer;
docs/distributed.md covers the distributed solver.
"""

from repro.protect.config import ProtectionConfig
from repro.protect.session import ProtectionSession
from repro.recover import RecoveryPolicy
from repro.solvers.registry import available_methods, solve

__version__ = "1.4.0"

__all__ = [
    "__version__",
    "ProtectionConfig",
    "ProtectionSession",
    "RecoveryPolicy",
    "available_methods",
    "solve",
]
