"""repro — ABFT techniques for fully protecting sparse matrix solvers.

Reproduction of Pawelczak, McIntosh-Smith, Price & Martineau,
IEEE CLUSTER 2017 (DOI 10.1109/CLUSTER.2017.49).

Public surface (see README.md for a guided tour):

* :mod:`repro.protect` — the protected containers and kernels;
* :mod:`repro.solvers` — CG (plain/protected), Jacobi, Chebyshev, PPCG;
* :mod:`repro.tealeaf` — the TeaLeaf heat-conduction miniapp;
* :mod:`repro.faults` — fault models, injection, campaigns;
* :mod:`repro.platforms` — the calibrated cross-platform cost model;
* :mod:`repro.harness` — per-figure experiment runners.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
