"""Command-line interface: ``python -m repro <command>``.

Commands mirror the example scripts so every reproduction artefact is a
single shell command away:

* ``tealeaf [deck.in] [--protect]`` — run the miniapp;
* ``overheads [--figure figN] [--grid N]`` — regenerate Figs. 4/5/9;
* ``intervals [--figure figN] [--grid N]`` — regenerate Figs. 6/7/8;
* ``sweep --preset NAME`` — any declarative experiment grid, resumable
  (``--preset resilience-matrix`` renders the full solver x scheme x
  rate x recovery matrix);
* ``campaign [--trials T]`` — the guarantee-matrix sweep preset;
* ``serve [--port P] [--journal J]`` — the batched solve server
  (protection-as-a-service; see docs/serving.md);
* ``dist [--shards N] [--kill-iter K]`` — one row-sharded solve with
  shard-death recovery, verified against the single-process reference
  (see docs/distributed.md);
* ``anchors`` — the paper's quoted numbers vs the platform model.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_tealeaf(args) -> int:
    from repro.tealeaf import Deck, TeaLeafDriver, parse_deck

    if args.deck:
        deck = parse_deck(open(args.deck).read())
        # Explicit CLI sizes override the deck (handy for smoke runs).
        if args.grid is not None:
            deck.x_cells = deck.y_cells = args.grid
        if args.steps is not None:
            deck.end_step = args.steps
    else:
        deck = Deck(
            x_cells=args.grid or 96, y_cells=args.grid or 96,
            end_step=args.steps if args.steps is not None else 3,
        )
    protection = None
    if args.protect:
        # The deck's tl_check_interval / tl_vector_interval /
        # tl_defer_writes knobs drive the engine schedule; --interval
        # overrides the deck when given.
        if args.interval is not None:
            deck.tl_check_interval = args.interval
        protection = deck.protection_config(
            element_scheme=args.scheme, rowptr_scheme=args.scheme,
            vector_scheme=args.scheme,
        )
    driver = TeaLeafDriver(deck, protection)
    summary = driver.run()
    for s in summary.steps:
        print(f"step {s.step}: {s.iterations} iters, residual {s.residual:.3e}, "
              f"{s.wall_time:.3f}s")
    fs = summary.field_summary
    print(f"field summary: temp={fs['temp']:.9e} ie={fs['ie']:.6e} "
          f"mass={fs['mass']:.6e}")
    return 0


def _cmd_overheads(args) -> int:
    from repro.harness.experiments import run_experiment
    from repro.harness.report import format_table

    for figure in args.figures or ("fig4", "fig5", "fig9"):
        rows = run_experiment(figure, n=args.grid, repeats=args.repeats)
        print(format_table(rows, f"{figure}: protection overheads"))
        print()
    return 0


def _cmd_intervals(args) -> int:
    from repro.harness.experiments import run_experiment
    from repro.harness.report import format_interval_series

    for figure in args.figures or ("fig6", "fig7", "fig8"):
        rows = run_experiment(figure, n=args.grid, repeats=args.repeats)
        print(format_interval_series(rows, f"{figure}: overhead vs interval"))
        print()
    return 0


def _cmd_campaign(args) -> int:
    from repro.sweeps.core import run_sweep
    from repro.sweeps.presets import get_preset
    from repro.sweeps.render import render_sweep

    spec = get_preset(
        "guarantee-matrix", trials=args.trials,
        models=("single", "double"), targets=("values",),
    )
    result = run_sweep(spec, workers=args.workers, seed=args.seed)
    print(render_sweep(spec, result.records))
    print("\n(python -m repro.faults.campaign has the full campaign CLI; "
          "repro sweep runs every grid.)")
    return 0


def _cmd_sweep(args) -> int:
    from repro.sweeps.cli import run

    return run(args)


def _cmd_serve(args) -> int:
    from repro.serve.__main__ import run

    return run(args)


def _cmd_dist(args) -> int:
    from repro.dist.__main__ import run

    return run(args)


def _cmd_anchors(args) -> int:
    from repro.platforms import PAPER_ANCHORS, predict_overhead

    print(f"{'platform':>10} {'region':>8} {'scheme':>9} {'N':>4} "
          f"{'paper':>7} {'model':>7}  source")
    for anchor in PAPER_ANCHORS:
        if anchor.region == "hw_ecc":
            print(f"{anchor.platform:>10} {'hw_ecc':>8} {'':>9} {'':>4} "
                  f"{anchor.value:7.3f} {anchor.value:7.3f}  {anchor.source}")
            continue
        interval = anchor.interval if anchor.interval != 999 else 128
        pred = predict_overhead(anchor.platform, anchor.region,
                                anchor.scheme, interval)
        print(f"{anchor.platform:>10} {anchor.region:>8} {anchor.scheme:>9} "
              f"{interval:>4} {anchor.value:7.3f} {pred:7.3f}  {anchor.source}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="ABFT sparse-solver reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tealeaf", help="run the TeaLeaf miniapp")
    p.add_argument("deck", nargs="?", help="tea.in deck file")
    p.add_argument("--grid", type=int, default=None,
                   help="cells per side (overrides the deck; default 96 without one)")
    p.add_argument("--steps", type=int, default=None,
                   help="time-steps (overrides the deck; default 3 without one)")
    p.add_argument("--protect", action="store_true")
    p.add_argument("--scheme", default="secded64")
    p.add_argument("--interval", type=int, default=None,
                   help="check interval (overrides the deck's tl_check_interval)")
    p.set_defaults(func=_cmd_tealeaf)

    p = sub.add_parser("overheads", help="Figs. 4/5/9 tables")
    p.add_argument("--figures", nargs="*", choices=["fig4", "fig5", "fig9"])
    p.add_argument("--grid", type=int, default=192)
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(func=_cmd_overheads)

    p = sub.add_parser("intervals", help="Figs. 6/7/8 curves")
    p.add_argument("--figures", nargs="*", choices=["fig6", "fig7", "fig8"])
    p.add_argument("--grid", type=int, default=192)
    p.add_argument("--repeats", type=int, default=3)
    p.set_defaults(func=_cmd_intervals)

    p = sub.add_parser("campaign", help="fault-injection campaigns")
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=1,
                   help="fan the guarantee-matrix sweep cells out over a "
                        "process pool (python -m repro.faults.campaign "
                        "shards trials *within* one campaign)")
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "sweep", help="declarative, resumable experiment grids",
        description="Run any sweep preset (see README 'Sweeps'); "
                    "--store makes the grid resumable.",
    )
    from repro.sweeps.cli import add_sweep_arguments

    add_sweep_arguments(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve", help="batched, journalled solve server",
        description="Serve solve jobs over TCP with warm protected "
                    "sessions and an encoded-matrix cache "
                    "(see docs/serving.md).",
    )
    from repro.serve.__main__ import add_serve_arguments

    add_serve_arguments(p)
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "dist", help="row-sharded solve with shard-death recovery",
        description="Run one distributed CG solve across worker shards, "
                    "optionally killing one mid-solve, and verify the "
                    "result against the single-process reference "
                    "(see docs/distributed.md).",
    )
    from repro.dist.__main__ import add_dist_arguments

    add_dist_arguments(p)
    p.set_defaults(func=_cmd_dist)

    p = sub.add_parser("anchors", help="paper numbers vs platform model")
    p.set_defaults(func=_cmd_anchors)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; exit quietly like
        # well-behaved Unix tools do.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
