"""Error taxonomy for the ABFT framework.

The paper classifies memory faults by how the protection system reacts:

* **DCE** — detectable *correctable* error: the scheme locates the flipped
  bit(s) and restores the original word.
* **DUE** — detectable *uncorrectable* error: the scheme knows corruption
  happened but cannot localise it; the application must recover by other
  means (e.g. checkpoint/restart, or — for the CG solve — restarting the
  iteration, which the paper highlights as an ABFT advantage).
* **SDC** — silent data corruption: the flip pattern exceeded the code's
  detection capability and went unnoticed (or triggered a miscorrection).

This module defines the exception types and outcome enumeration shared by
the ECC codecs, the protected containers and the fault-injection campaign
machinery.
"""

from __future__ import annotations

import enum


class ABFTError(Exception):
    """Base class for every error raised by the :mod:`repro` framework."""


class ConfigurationError(ABFTError, ValueError):
    """A protection scheme was configured with invalid parameters.

    Raised e.g. when a matrix exceeds the column/nnz limits imposed by
    re-purposing index bits (SED: ``2**31 - 1`` columns, SECDED/CRC32C:
    ``2**24 - 1`` columns), when a CRC32C row codeword would not have
    the four elements needed to store the 32 redundancy bits, or when
    the solver registry is asked for an unknown method/scheme.  Also a
    :class:`ValueError`: bad-configuration call sites predating the
    unified API catch that.
    """


class DetectedUncorrectableError(ABFTError):
    """A DUE: corruption detected but not correctable by the scheme.

    Attributes
    ----------
    region:
        Which protected structure reported the error (e.g. ``"csr_elements"``).
    indices:
        Codeword indices (within the region) that failed the check.
    """

    def __init__(self, region: str, indices=None, message: str | None = None):
        self.region = region
        self.indices = indices
        if message is None:
            message = f"uncorrectable corruption detected in region {region!r}"
            if indices is not None:
                message += f" at codeword indices {indices}"
        super().__init__(message)


class ShardDeathError(ABFTError):
    """A whole worker shard of a distributed solve died mid-computation.

    The fault model the bit-flip injector cannot express: process loss
    takes out a shard's matrix block, its state-vector slices and its
    protection domain in one event.  Raised by the
    :mod:`repro.dist` coordinator when a shard stops responding and the
    recovery policy is ``"raise"`` (or the respawn budget is exhausted);
    with an escalating policy the coordinator respawns the shard and
    re-encodes its block from the pristine partition instead.

    Attributes
    ----------
    shards:
        Indices of the shards that were lost.
    iteration:
        The distributed iteration during which the loss was detected.
    """

    def __init__(self, shards, iteration: int | None = None,
                 message: str | None = None):
        self.shards = tuple(shards)
        self.iteration = iteration
        if message is None:
            message = f"worker shard(s) {list(self.shards)} died"
            if iteration is not None:
                message += f" at distributed iteration {iteration}"
        super().__init__(message)


class BoundsViolationError(ABFTError):
    """An index range check failed.

    During iterations where the full integrity check is skipped
    (the "less frequent checking" optimisation, paper §VI.A.2) the kernels
    still validate that row-pointer values stay below ``nnz`` and column
    indices stay below ``n_cols`` so a flipped index bit can never cause
    an out-of-bounds access.
    """

    def __init__(self, region: str, message: str | None = None):
        self.region = region
        super().__init__(message or f"index bounds violation in region {region!r}")


class Outcome(enum.Enum):
    """Classification of one fault-injection experiment."""

    #: No error present / injected pattern was a no-op.
    CLEAN = "clean"
    #: Detected and corrected in place (DCE).
    CORRECTED = "corrected"
    #: Detected, not correctable (DUE).
    DETECTED = "detected"
    #: The check passed but the data differs from the original (SDC).
    SILENT = "silent"
    #: The scheme "corrected" to a *wrong* word (miscorrection → SDC).
    MISCORRECTED = "miscorrected"
    #: Range check caught the corruption before an OOB access (DUE-like).
    BOUNDS = "bounds"
    #: The checks missed it but the solver failed to converge — the
    #: residual exposed the corruption at the application level.  Not an
    #: SDC (nothing wrong was *trusted*), but not a scheme detection
    #: either; campaigns report it separately from SILENT.
    RESIDUAL = "residual"

    @property
    def is_sdc(self) -> bool:
        """True when the outcome leaves corrupted data undetected."""
        return self in (Outcome.SILENT, Outcome.MISCORRECTED)

    @property
    def is_detected(self) -> bool:
        """True when the application learned that corruption happened."""
        return self in (
            Outcome.CORRECTED, Outcome.DETECTED, Outcome.BOUNDS, Outcome.RESIDUAL
        )
