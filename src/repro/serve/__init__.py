"""repro.serve — protection-as-a-service: the batched async solve server.

The serving layer turns the library into a system: a trusted asyncio
control plane (`SolveService` / `SolveServer`) multiplexes untrusted
solve jobs over warm :class:`~repro.protect.session.ProtectionSession`
pools with a content-hash-keyed encoded-matrix cache (encode once, serve
thousands of solves), batches same-matrix RHS solves into single
protected sweeps, journals every job for kill-anywhere restart
(reopen == resume, exactly the sweeps' `RunStore` contract), and streams
progress/recovery events to clients over newline-delimited JSON.

Entry points:

* ``python -m repro.serve`` / ``repro serve`` — run a server;
* :mod:`repro.serve.client` — ``submit`` / ``stream`` / ``result`` and
  the :class:`~repro.serve.client.ServeClient` convenience wrapper;
* :class:`SolveService` — the embeddable asyncio core (no sockets), used
  directly by the benchmarks and tests.

See docs/serving.md for deployment, batching rules, the event stream
format and the journal's recovery semantics.
"""

from repro.serve.cache import MatrixCache, SessionPool
from repro.serve.jobs import JobValidationError, batch_key, job_key, normalise_job
from repro.serve.journal import JobJournal
from repro.serve.server import SolveServer, run_server
from repro.serve.service import ServeConfig, ServiceOverloadedError, SolveService

__all__ = [
    "JobJournal",
    "JobValidationError",
    "MatrixCache",
    "ServeConfig",
    "ServiceOverloadedError",
    "SessionPool",
    "SolveServer",
    "SolveService",
    "batch_key",
    "job_key",
    "normalise_job",
    "run_server",
]
