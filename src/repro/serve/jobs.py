"""Job model for the solve service: validation, canonical identity, batching keys.

A job is a plain JSON-friendly dict — it crosses sockets, journals and
process boundaries — describing one linear solve: *which system* (a
matrix handle or a TeaLeaf deck), *how* to solve it (method, tolerances)
and *under what protection* (a :class:`~repro.protect.config.ProtectionConfig`
spec).  This module gives jobs three things the service needs:

* **validation** (:func:`validate_job`) — client-submitted jobs are
  untrusted input (Elliott/Hoemmen/Mueller, arXiv:1404.5552): shapes,
  finiteness and resource bounds are checked *before* any work is
  committed, so a malformed job is rejected at submit, not discovered
  mid-pool;
* **identity** (:func:`job_key`) — the sha256 of the canonical job JSON,
  mirroring the sweeps' cell-identity hashing: resubmitting the same job
  is a cache hit, and a journal keyed this way resumes without duplicate
  solves;
* **batching** (:func:`batch_key`) — jobs sharing a matrix and a
  protection config land in one batch, which one warm
  :class:`~repro.protect.session.ProtectionSession` serves with a single
  encoded matrix and a single mandatory end-of-batch sweep.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from repro.errors import ConfigurationError
from repro.protect.config import ProtectionConfig

#: Protection presets a job may name instead of spelling out fields.
PROTECTION_PRESETS = ("off", "paper_default", "deferred", "matrix_only", "resilient")

#: Hard server-side resource bounds (see docs/serving.md, "Untrusted jobs").
MAX_ROWS = 1_000_000
MAX_SOLVE_ITERS = 200_000


class JobValidationError(ConfigurationError):
    """A submitted job failed its pre-admission bound checks."""


# ---------------------------------------------------------------------------
# protection specs
# ---------------------------------------------------------------------------
def protection_from_spec(spec) -> ProtectionConfig | None:
    """Resolve a job's ``protection`` field into a :class:`ProtectionConfig`.

    Accepts ``None`` (unprotected), a preset name from
    :data:`PROTECTION_PRESETS`, or a dict of config fields — optionally
    ``{"preset": name, **preset_kwargs}`` — with ``recovery`` given as a
    strategy string or a ``RecoveryPolicy`` field dict.
    """
    if spec is None or spec == "off":
        return None
    if isinstance(spec, str):
        if spec not in PROTECTION_PRESETS:
            raise JobValidationError(
                f"unknown protection preset {spec!r}; choose from {PROTECTION_PRESETS}"
            )
        return getattr(ProtectionConfig, spec)()
    if isinstance(spec, dict):
        spec = dict(spec)
        preset = spec.pop("preset", None)
        recovery = spec.pop("recovery", None)
        if isinstance(recovery, dict):
            from repro.recover import RecoveryPolicy

            recovery = RecoveryPolicy(**recovery)
        if preset is not None:
            if preset not in PROTECTION_PRESETS:
                raise JobValidationError(
                    f"unknown protection preset {preset!r}; "
                    f"choose from {PROTECTION_PRESETS}"
                )
            config = getattr(ProtectionConfig, preset)(**spec)
        else:
            config = ProtectionConfig(**spec)
        if recovery is not None:
            config = config.replace(recovery=recovery)
        return config
    raise JobValidationError(
        f"protection must be None, a preset name or a dict, not {type(spec).__name__}"
    )


def protection_canonical(spec) -> str:
    """One canonical JSON string per *resolved* protection config.

    Spelling variants (``"deferred"`` vs ``{"preset": "deferred"}`` vs
    the explicit field dict) canonicalise to the same string, so they
    batch together.
    """
    config = protection_from_spec(spec)
    if config is None:
        return "null"
    payload = dataclasses.asdict(config)
    if config.recovery is not None:
        payload["recovery"] = dataclasses.asdict(config.recovery)
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------------------
# matrix handles
# ---------------------------------------------------------------------------
def build_matrix(matrix_spec: dict):
    """Materialise a matrix handle into a :class:`~repro.csr.matrix.CSRMatrix`.

    Three handle kinds cover the service's sources:

    * ``{"kind": "csr", "values": [...], "colidx": [...], "rowptr": [...],
      "shape": [m, n]}`` — explicit CSR payload;
    * ``{"kind": "five-point", "grid": n, "seed": s, "dt": 0.3}`` — the
      campaign's conductivity-seeded 5-point operator (server-side
      assembly: the client ships ~3 ints, not O(nnz) floats);
    * ``{"kind": "deck", "text": "*tea..."}`` — a TeaLeaf input deck;
      the system is the deck's first implicit conduction step.
    """
    kind = matrix_spec.get("kind")
    if kind == "csr":
        from repro.csr.matrix import CSRMatrix

        return CSRMatrix(
            np.asarray(matrix_spec["values"], dtype=np.float64),
            np.asarray(matrix_spec["colidx"], dtype=np.uint32),
            np.asarray(matrix_spec["rowptr"], dtype=np.uint32),
            tuple(matrix_spec["shape"]),
        )
    if kind == "five-point":
        from repro.csr.build import five_point_operator

        grid = int(matrix_spec.get("grid", 32))
        rng = np.random.default_rng(int(matrix_spec.get("seed", 0)))
        shape = (grid, grid)
        return five_point_operator(
            grid, grid,
            rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape),
            float(matrix_spec.get("dt", 0.3)),
        )
    if kind == "deck":
        from repro.tealeaf.assembly import build_operator
        from repro.tealeaf.deck import parse_deck
        from repro.tealeaf.state import TeaLeafState

        deck = parse_deck(matrix_spec["text"])
        state = TeaLeafState(deck)
        return build_operator(state, deck.initial_timestep)
    raise JobValidationError(
        f"unknown matrix kind {kind!r}; choose from 'csr', 'five-point', 'deck'"
    )


def deck_rhs(matrix_spec: dict) -> np.ndarray:
    """The natural RHS of a deck handle: the initial temperature field."""
    from repro.tealeaf.deck import parse_deck
    from repro.tealeaf.state import TeaLeafState

    deck = parse_deck(matrix_spec["text"])
    return TeaLeafState(deck).u.ravel().copy()


def build_rhs(job: dict, n_rows: int) -> np.ndarray:
    """Materialise a job's ``b`` field against a matrix with ``n_rows`` rows.

    ``b`` may be an explicit list, ``{"seed": s}`` for a standard-normal
    draw (cheap wire format for load generators), or ``"deck"`` to use
    the deck handle's initial field.
    """
    b = job.get("b")
    if isinstance(b, dict) and "seed" in b:
        return np.random.default_rng(int(b["seed"])).standard_normal(n_rows)
    if b == "deck":
        rhs = deck_rhs(job["matrix"])
        if rhs.size != n_rows:
            raise JobValidationError("deck RHS size does not match the operator")
        return rhs
    arr = np.asarray(b, dtype=np.float64)
    if arr.shape != (n_rows,):
        raise JobValidationError(
            f"rhs has shape {arr.shape}, expected ({n_rows},)"
        )
    return arr


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def matrix_key(matrix_spec: dict) -> str:
    """Content hash of a matrix handle (the encoded-matrix cache key)."""
    return hashlib.sha256(_canonical(matrix_spec).encode()).hexdigest()


# ---------------------------------------------------------------------------
# job canonical form
# ---------------------------------------------------------------------------
#: Fields a job may carry; anything else is rejected at validation.
JOB_FIELDS = frozenset({
    "job_id", "matrix", "b", "x0", "method", "eps", "max_iters",
    "protection", "inject", "return_x", "tag",
})


def normalise_job(job: dict) -> dict:
    """Fill defaults and return the canonical (JSON-stable) job dict."""
    validate_job(job)
    out = {
        "matrix": job["matrix"],
        "b": job.get("b", "deck" if job["matrix"].get("kind") == "deck" else None),
        "method": job.get("method", "cg"),
        "eps": float(job.get("eps", 1e-12)),
        "max_iters": int(job.get("max_iters", 10_000)),
        "protection": job.get("protection"),
        "return_x": bool(job.get("return_x", False)),
    }
    for optional in ("x0", "inject", "tag"):
        if job.get(optional) is not None:
            out[optional] = job[optional]
    if out["b"] is None:
        raise JobValidationError("job needs an explicit 'b' (or a deck matrix)")
    if "job_id" in job and job["job_id"] is not None:
        out["job_id"] = str(job["job_id"])
    else:
        out["job_id"] = "job-" + job_key(out)[:12]
    return out


def job_key(job: dict) -> str:
    """The job's content identity: sha256 of its canonical JSON.

    ``job_id`` is excluded — it *derives* from this hash when the client
    does not supply one — so identical work always hashes identically.
    """
    payload = {k: v for k, v in job.items() if k != "job_id"}
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def batch_key(job: dict) -> str:
    """Group key: jobs in one batch share a matrix and a protection config.

    Fault-injection jobs mutate their matrix and therefore never share
    one — each gets a private group (keyed by its own identity).
    """
    if job.get("inject") is not None:
        return "inject-" + job_key(job)
    return hashlib.sha256(
        (matrix_key(job["matrix"]) + "|" + job["method"] + "|"
         + protection_canonical(job.get("protection"))).encode()
    ).hexdigest()


def validate_job(job: dict) -> None:
    """Bound-check an untrusted job before admission (raises on violation).

    The service treats submissions as selective-reliability inputs: the
    control plane is trusted, the payload is not.  Checks are structural
    and cheap — field allow-list, finite numerics, resource ceilings —
    and run before the job touches the journal, the cache or a worker.
    """
    if not isinstance(job, dict):
        raise JobValidationError("job must be a JSON object")
    unknown = set(job) - JOB_FIELDS
    if unknown:
        raise JobValidationError(f"unknown job field(s): {sorted(unknown)}")
    matrix = job.get("matrix")
    if not isinstance(matrix, dict) or "kind" not in matrix:
        raise JobValidationError("job needs a 'matrix' handle with a 'kind'")
    if matrix["kind"] == "csr":
        rows = len(matrix.get("rowptr", [])) - 1
        if rows < 1 or rows > MAX_ROWS:
            raise JobValidationError(f"csr matrix must have 1..{MAX_ROWS} rows")
        values = np.asarray(matrix.get("values", []), dtype=np.float64)
        if values.size and not np.all(np.isfinite(values)):
            raise JobValidationError("csr values must be finite")
    elif matrix["kind"] == "five-point":
        grid = int(matrix.get("grid", 32))
        if grid < 2 or grid * grid > MAX_ROWS:
            raise JobValidationError(f"five-point grid must satisfy 2 <= n^2 <= {MAX_ROWS}")
    elif matrix["kind"] == "deck":
        if not isinstance(matrix.get("text"), str):
            raise JobValidationError("deck matrix handle needs a 'text' field")
    else:
        raise JobValidationError(f"unknown matrix kind {matrix['kind']!r}")
    eps = float(job.get("eps", 1e-12))
    if not (eps > 0.0 and np.isfinite(eps)):
        raise JobValidationError("eps must be a positive finite float")
    max_iters = int(job.get("max_iters", 10_000))
    if not (1 <= max_iters <= MAX_SOLVE_ITERS):
        raise JobValidationError(f"max_iters must be 1..{MAX_SOLVE_ITERS}")
    b = job.get("b")
    if isinstance(b, (list, tuple)):
        arr = np.asarray(b, dtype=np.float64)
        if arr.size and not np.all(np.isfinite(arr)):
            raise JobValidationError("rhs must be finite")
    inject = job.get("inject")
    if inject is not None:
        if not isinstance(inject, dict) or "rate" not in inject:
            raise JobValidationError("inject spec needs at least a 'rate'")
        if not (0.0 < float(inject["rate"]) < 1.0):
            raise JobValidationError("inject rate must be in (0, 1)")
    # Resolving the protection spec validates it (bad schemes, negative
    # intervals, unknown presets) via ProtectionConfig's own checks.
    protection_from_spec(job.get("protection"))
