"""Batch solve runner: what the service's executor actually executes.

One :func:`run_batch` call is one batch — jobs sharing a matrix handle
and a protection config — served by this process's warm state:

* a module-global :class:`~repro.serve.cache.MatrixCache` and
  :class:`~repro.serve.cache.SessionPool`, so the encoded matrix and the
  deferred-verification session persist *across* batches for the life of
  the process (in-process execution shares one cache; each spawn-pool
  worker warms its own);
* each job is one :meth:`ProtectionSession.solve` against the shared
  encoded matrix, and the whole batch closes with a single
  ``session.end_step()`` — the paper's mandatory sweep, paid once per
  batch instead of once per solve;
* compatible CG jobs in a batch (same matrix, same protection, no
  injection, not distributed-routed) are grouped into **one blocked
  multi-RHS solve** (:mod:`repro.solvers.block`): the matrix is
  verified once per iteration for the whole group instead of once per
  job, while each job's record and event stream stay exactly what a
  solo solve would have produced.

The runner is addressed as ``"repro.serve.workers:run_batch"`` — the
importable-reference form :mod:`repro.sweeps.executor` requires — and
returns a JSON-serialisable record (per-job results + cache/session
stats) streamed back to the service via ``on_record``.

A vector DUE under an escalating recovery policy is repaired inside the
solve (the engine's transparent rebuild); the runner diffs the session's
:class:`~repro.recover.manager.RecoveryStats` around each job and turns
any delta into ``recovered`` events for the job's stream.  A DUE that
*aborts* a solve (the ``raise`` strategy) fails only that job: the
session released its regions when the error unwound, so the runner drops
the session, invalidates the possibly-corrupt encoded matrix, and later
jobs in the batch re-encode from the pristine raw build.
"""

from __future__ import annotations

import dataclasses
import os
import time
from pathlib import Path

import numpy as np

from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.serve.cache import MatrixCache, SessionPool
from repro.serve.jobs import build_rhs, protection_from_spec

#: Per-process warm state (one instance per serving/worker process).
CACHE = MatrixCache()
SESSIONS = SessionPool()

#: Environment hook mirroring the sweeps' ``SWEEP_PROBE_DIR``: when set,
#: every executed solve drops a marker file, so resume tests can assert
#: "no duplicate solves" as a filesystem fact rather than a log claim.
PROBE_ENV = "SERVE_PROBE_DIR"

_INTEGRITY_ERRORS = (DetectedUncorrectableError, BoundsViolationError)


def _probe(job_id: str) -> None:
    probe_dir = os.environ.get(PROBE_ENV)
    if probe_dir:
        with open(Path(probe_dir) / f"solved-{job_id}.ran", "a") as fh:
            fh.write("ran\n")


def _recovery_delta(session, before: dict | None) -> dict:
    if session is None or session.recovery is None:
        return {}
    after = dataclasses.asdict(session.recovery.stats)
    if before is None:
        return after
    return {k: after[k] - before.get(k, 0) for k in after if after[k] != before.get(k, 0)}


def _recovery_snapshot(session) -> dict | None:
    if session is None or session.recovery is None:
        return None
    return dataclasses.asdict(session.recovery.stats)


def _result_record(job: dict, result, duration_s: float, session,
                   before: dict | None) -> dict:
    """Shape one job's result record (shared by solo and blocked paths)."""
    record = {
        "job_id": job["job_id"],
        "status": "done",
        "method": job["method"],
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "residual": float(result.final_residual),
        "x_norm": float(np.linalg.norm(result.x)),
        "duration_ms": duration_s * 1e3,
        "events": [],
    }
    delta = _recovery_delta(session, before)
    recovered = delta.get("rollbacks", 0) + delta.get("repopulates", 0) \
        + delta.get("vector_repairs", 0)
    if recovered or delta.get("dues"):
        record["recovered"] = int(recovered)
        record["events"].append({"event": "recovered", **delta})
    if job.get("return_x"):
        record["x"] = [float(v) for v in result.x]
    return record


def _solve_blocked(group: list[dict], session, matrix_arg, config) -> list[dict]:
    """Serve a group of compatible jobs as one blocked multi-RHS solve.

    The group shares the batch's matrix and protection by construction;
    the right-hand sides stack into one ``(n, k)`` block and per-job
    ``eps``/``max_iters`` ride the blocked runner's per-column targets,
    so every job gets exactly the answer its solo solve would produce
    while the matrix verification and kernel dispatch are paid once per
    iteration for the whole group.  Integrity errors propagate to the
    caller, which retries the group job-by-job so failure attribution
    stays per-job.
    """
    import repro

    n = matrix_arg.n_rows
    k = len(group)
    B = np.stack([build_rhs(job, n) for job in group], axis=1)
    X0 = None
    if any(job.get("x0") is not None for job in group):
        X0 = np.zeros((n, k), dtype=np.float64)
        for col, job in enumerate(group):
            if job.get("x0") is not None:
                X0[:, col] = np.asarray(job["x0"], dtype=np.float64)
    eps = [job["eps"] for job in group]
    max_iters = [job["max_iters"] for job in group]
    t0 = time.perf_counter()
    before = _recovery_snapshot(session)
    if session is not None:
        result = session.solve(matrix_arg, B, X0, method="cg",
                               eps=eps, max_iters=max_iters)
    else:
        result = repro.solve(matrix_arg, B, X0, method="cg", protection=config,
                             eps=eps, max_iters=max_iters)
    duration = time.perf_counter() - t0
    records = []
    for col, job in enumerate(group):
        _probe(job["job_id"])
        record = _result_record(job, result.column(col), duration, session,
                                before)
        record["blocked_k"] = k
        records.append(record)
    # The recovery delta describes the whole block; report it once (on
    # the first job's stream) instead of k times.
    for record in records[1:]:
        record.pop("recovered", None)
        record["events"] = [e for e in record["events"]
                            if e.get("event") != "recovered"]
    return records


def _blockable(job: dict, dist_shards: int, dist_threshold: int) -> bool:
    """Whether a job may join a blocked multi-RHS group.

    Blocked groups cover the warm-session CG path only: injection jobs
    run on private matrices, distributed-routed jobs leave the process,
    and non-CG methods have no blocked runner.
    """
    if job["method"] != "cg" or job.get("inject") is not None:
        return False
    return not _routes_distributed(job, dist_shards, dist_threshold)


def _solve_one(job: dict, session, matrix_arg, config) -> dict:
    """Run one job's solve and shape its result record."""
    import repro

    b = build_rhs(job, matrix_arg.n_rows)
    x0 = np.asarray(job["x0"], dtype=np.float64) if job.get("x0") is not None else None
    t0 = time.perf_counter()
    before = _recovery_snapshot(session)
    if session is not None:
        result = session.solve(
            matrix_arg, b, x0, method=job["method"],
            eps=job["eps"], max_iters=job["max_iters"],
        )
    else:
        result = repro.solve(
            matrix_arg, b, x0, method=job["method"], protection=config,
            eps=job["eps"], max_iters=job["max_iters"],
        )
    duration = time.perf_counter() - t0
    _probe(job["job_id"])
    return _result_record(job, result, duration, session, before)


def _solve_distributed(job: dict, config, n_shards: int) -> dict:
    """Serve one above-threshold job on the row-sharded solver.

    The distributed path takes the *raw* matrix (each shard re-encodes
    its own block under its own protection domain), so the shared
    encoded cache and warm sessions are bypassed — which is the point:
    this is the large-problem path :mod:`repro.serve` previously punted
    on.  The job record matches :func:`_solve_one`'s shape plus a
    ``distributed`` event carrying the shard/recovery counters.
    """
    from repro.dist.solve import distributed_solve

    raw = CACHE.raw(job["matrix"])
    b = build_rhs(job, raw.n_rows)
    x0 = np.asarray(job["x0"], dtype=np.float64) if job.get("x0") is not None else None
    t0 = time.perf_counter()
    result = distributed_solve(
        raw, b, x0, n_shards=n_shards, method=job["method"],
        protection=config if config is not None and config.enabled else None,
        eps=job["eps"], max_iters=job["max_iters"],
    )
    duration = time.perf_counter() - t0
    _probe(job["job_id"])
    stats = result.info["distributed"]
    record = {
        "job_id": job["job_id"],
        "status": "done",
        "method": job["method"],
        "converged": bool(result.converged),
        "iterations": int(result.iterations),
        "residual": float(result.final_residual),
        "x_norm": float(np.linalg.norm(result.x)),
        "duration_ms": duration * 1e3,
        "events": [{"event": "distributed", **stats}],
    }
    if stats["respawns"]:
        record["recovered"] = int(stats["respawns"])
    if job.get("return_x"):
        record["x"] = [float(v) for v in result.x]
    return record


def _routes_distributed(job: dict, dist_shards: int, dist_threshold: int) -> bool:
    """Whether a job goes to the sharded solver: opted in, CG, and large.

    Injection jobs keep their private-matrix path, and non-CG methods
    stay single-process (the distributed driver is CG-only) — routing
    never changes what a below-threshold or unroutable job would do.
    """
    if dist_shards < 2 or job.get("inject") is not None:
        return False
    if job["method"] != "cg":
        return False
    return CACHE.raw(job["matrix"]).n_rows >= dist_threshold


def _solve_injected(job: dict, config) -> dict:
    """Fault-injection jobs: a live Poisson process over a *private* matrix.

    Injection mutates matrix storage, so these jobs never touch the
    shared cache — :func:`faulty_solve` encodes its own copy from the
    raw build and reports what the recovery layer did about the upsets.
    """
    from repro.faults.process import PoissonProcess, faulty_solve
    from repro.protect.config import ProtectionConfig

    inject = job["inject"]
    cfg = config if config is not None else ProtectionConfig.paper_default()
    raw = CACHE.raw(job["matrix"])
    b = build_rhs(job, raw.n_rows)
    process = PoissonProcess(
        float(inject["rate"]),
        rng=np.random.default_rng(int(inject.get("seed", 0))),
    )
    t0 = time.perf_counter()
    report = faulty_solve(
        raw, b, process, method=job["method"], config=cfg,
        eps=job["eps"], max_iters=job["max_iters"],
    )
    duration = time.perf_counter() - t0
    _probe(job["job_id"])
    result = report.result
    record = {
        "job_id": job["job_id"],
        "status": "done" if result is not None else "failed",
        "method": job["method"],
        "converged": bool(result.converged) if result is not None else False,
        "iterations": int(result.iterations) if result is not None else 0,
        "residual": float(result.final_residual) if result is not None else float("nan"),
        "x_norm": float(np.linalg.norm(result.x)) if result is not None else 0.0,
        "duration_ms": duration * 1e3,
        "injected": int(report.injected),
        "dues": int(report.detected_uncorrectable),
        "recovered": int(report.recovered),
        "events": [],
    }
    if report.injected:
        record["events"].append({
            "event": "injected", "upsets": int(report.injected),
            "iterations": list(report.injection_iterations),
        })
    if report.recovered:
        record["events"].append({
            "event": "recovered", "recoveries": int(report.recovered),
            "strategy": report.recovery,
        })
    if result is not None and job.get("return_x"):
        record["x"] = [float(v) for v in result.x]
    return record


def run_batch(*, jobs: list[dict], protection=None, throttle: float = 0.0,
              dist_shards: int = 0, dist_threshold: int = 4096,
              block_solve: bool = True, seed=None) -> dict:
    """Serve one batch of same-matrix jobs; the executor's task runner.

    Parameters
    ----------
    jobs:
        Canonical job dicts (see :func:`repro.serve.jobs.normalise_job`),
        all sharing one matrix handle and one protection spec — the
        batcher's grouping invariant.
    protection:
        The shared protection spec (``None`` / preset name / field dict).
    throttle:
        Artificial seconds of sleep per solve; load-shaping knob for
        demos and kill-mid-stream tests, never set in production.
        Throttled batches never block-group: the knob's contract is a
        paced, per-job cadence.
    dist_shards / dist_threshold:
        When ``dist_shards >= 2``, CG jobs on matrices of at least
        ``dist_threshold`` rows run on the row-sharded distributed
        solver instead of the warm single-process session (see
        :func:`_routes_distributed`); everything else is untouched.
    block_solve:
        When true (the default, and ``REPRO_BLOCK_SOLVE`` is not ``0``),
        two or more compatible jobs (see :func:`_blockable`) are served
        as one blocked multi-RHS solve — verification and dispatch paid
        once per iteration for the whole group, per-job records and
        event streams unchanged.  An integrity error inside a blocked
        group falls back to job-by-job solves so failures attribute to
        the job that hit them.
    seed:
        Executor-owned seeding slot (unused: job randomness is explicit
        in each job's spec, so batches are reproducible by content).
    """
    from repro.solvers.block import block_solve_enabled

    del seed
    records_by_id: dict[str, dict] = {}
    config = protection_from_spec(protection)
    matrix_spec = jobs[0]["matrix"]
    session = None
    blocked_jobs = 0

    def _acquire():
        """(Re-)acquire the warm session and matrix handle lazily.

        A DUE in an earlier job dropped the session and the encoded
        matrix, so this re-warms from the pristine raw build.
        """
        if config is not None and config.enabled:
            warm = SESSIONS.get(matrix_spec, protection)
            pmat = CACHE.encoded(matrix_spec, protection)
            return warm, (pmat if pmat is not None else CACHE.raw(matrix_spec))
        return None, CACHE.raw(matrix_spec)

    group: list[dict] = []
    rest: list[dict] = jobs
    if block_solve and block_solve_enabled() and throttle <= 0.0:
        group = [j for j in jobs
                 if _blockable(j, dist_shards, dist_threshold)]
        if len(group) >= 2:
            rest = [j for j in jobs if j not in group]
        else:
            group = []
    if group:
        try:
            session, matrix_arg = _acquire()
            for record in _solve_blocked(group, session, matrix_arg, config):
                records_by_id[record["job_id"]] = record
            blocked_jobs = len(group)
        except _INTEGRITY_ERRORS:
            # Can't attribute a block-wide DUE to one job: drop the warm
            # state and retry the group job-by-job below.
            SESSIONS.drop(matrix_spec, protection)
            CACHE.invalidate(matrix_spec, protection)
            session = None
            rest = jobs
        except Exception:
            rest = jobs

    for job in rest:
        if throttle > 0.0:
            time.sleep(throttle)
        try:
            if job.get("inject") is not None:
                records_by_id[job["job_id"]] = _solve_injected(job, config)
                continue
            if _routes_distributed(job, dist_shards, dist_threshold):
                records_by_id[job["job_id"]] = _solve_distributed(
                    job, config, dist_shards)
                continue
            session, matrix_arg = _acquire()
            records_by_id[job["job_id"]] = _solve_one(
                job, session, matrix_arg, config)
        except _INTEGRITY_ERRORS as exc:
            SESSIONS.drop(matrix_spec, protection)
            CACHE.invalidate(matrix_spec, protection)
            session = None
            records_by_id[job["job_id"]] = {
                "job_id": job["job_id"], "status": "failed",
                "method": job["method"], "converged": False,
                "error": f"{type(exc).__name__}: {exc}",
                "events": [{"event": "due", "error": type(exc).__name__}],
            }
        except Exception as exc:  # malformed-but-admitted jobs fail alone
            records_by_id[job["job_id"]] = {
                "job_id": job["job_id"], "status": "failed",
                "method": job["method"], "converged": False,
                "error": f"{type(exc).__name__}: {exc}",
                "events": [],
            }
    if session is not None:
        # One mandatory sweep closes the whole batch's deferral window.
        session.end_step()
    return {
        "jobs": [records_by_id[job["job_id"]] for job in jobs],
        "batch_size": len(jobs),
        "blocked_jobs": blocked_jobs,
        "worker_pid": os.getpid(),
        "cache": dict(CACHE.stats),
        "sessions": dict(SESSIONS.stats),
    }
