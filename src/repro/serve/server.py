"""The wire layer: newline-delimited JSON over TCP, one op per line.

The protocol is deliberately minimal — stdlib sockets on both ends, one
JSON object per line, so any language (or ``nc``) can drive it:

* ``{"op": "submit", "job": {...}}`` →
  ``{"ok": true, "job_id": "...", "cached": bool}`` (or
  ``{"ok": false, "error": "..."}`` for an invalid job, with
  ``"overloaded": true`` added when the admission quota rejected it —
  the retryable case);
* ``{"op": "stream", "job_id": "..."}`` → one JSON line per event,
  replayed from the start and followed live; the stream ends after the
  terminal ``done``/``failed`` event;
* ``{"op": "result", "job_id": "..."}`` → blocks until terminal, then
  the full result record;
* ``{"op": "status"}`` → the service's point-in-time summary;
* ``{"op": "shutdown"}`` → acknowledges, then stops the server loop.

See docs/serving.md for the event stream format and journal semantics.
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.jobs import JobValidationError
from repro.serve.service import ServeConfig, ServiceOverloadedError, SolveService


class SolveServer:
    """Binds a :class:`SolveService` to a TCP endpoint."""

    def __init__(self, service: SolveService | None = None,
                 host: str = "127.0.0.1", port: int = 0, **service_overrides):
        self.service = service if service is not None else SolveService(**service_overrides)
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    async def start(self) -> tuple[str, int]:
        """Start the service and the listener; returns the bound address."""
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` op (or cancellation) arrives."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and the service (journal flushes on close)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    # -- connection handling --------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except json.JSONDecodeError:
                    await self._send(writer, {"ok": False, "error": "bad JSON"})
                    continue
                done = await self._dispatch(request, writer)
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict, writer) -> bool:
        op = request.get("op")
        if op == "submit":
            try:
                response = await self.service.submit(request.get("job") or {})
                await self._send(writer, {"ok": True, **response})
            except ServiceOverloadedError as exc:
                await self._send(writer, {"ok": False, "overloaded": True,
                                          "error": str(exc)})
            except JobValidationError as exc:
                await self._send(writer, {"ok": False, "error": str(exc)})
        elif op == "stream":
            job_id = request.get("job_id", "")
            if job_id not in self.service._events and \
                    job_id not in self.service._inflight and \
                    job_id not in self.service._results:
                await self._send(writer, {"ok": False,
                                          "error": f"unknown job {job_id!r}"})
                return False
            async for event in self.service.events(job_id,
                                                   int(request.get("from_seq", 0))):
                await self._send(writer, event)
        elif op == "result":
            try:
                record = await self.service.result(request.get("job_id", ""))
                await self._send(writer, {"ok": True, "result": record})
            except KeyError as exc:
                await self._send(writer, {"ok": False, "error": str(exc)})
        elif op == "status":
            await self._send(writer, {"ok": True, **self.service.status()})
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "stopping": True})
            self._shutdown.set()
            return True
        else:
            await self._send(writer, {"ok": False, "error": f"unknown op {op!r}"})
        return False

    @staticmethod
    async def _send(writer, payload: dict) -> None:
        writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()


async def run_server(host: str = "127.0.0.1", port: int = 8642,
                     config: ServeConfig | None = None, *,
                     announce=print) -> None:
    """Entry point behind ``python -m repro.serve``: serve until shutdown."""
    server = SolveServer(SolveService(config), host=host, port=port)
    host, port = await server.start()
    announce(f"repro.serve listening on {host}:{port}", flush=True)
    if server.service.journal is not None:
        pending = server.service.stats["adopted"]
        announce(f"journal {server.service.journal.path}: "
                 f"re-adopted {pending} in-flight job(s)", flush=True)
    await server.serve_forever()
