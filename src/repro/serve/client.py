"""Synchronous client for the solve service: submit jobs, stream events.

Stdlib sockets only, so the client imports nothing heavier than the job
helpers.  The three module-level functions mirror the wire ops; the
:class:`ServeClient` object adds connection reuse and the
:meth:`~ServeClient.solve_many` convenience (submit a batch, stream all
to completion, return the result records in submit order).
"""

from __future__ import annotations

import json
import socket

from repro.errors import ConfigurationError

DEFAULT_PORT = 8642


class ServeClientError(ConfigurationError):
    """The server rejected a request (validation failure, unknown job…)."""


class ServeClient:
    """One service endpoint; every op opens a short-lived connection.

    Per-op connections keep the client trivially thread-safe (each
    benchmark client thread owns nothing shared) and match the server's
    stream semantics: a ``stream`` op owns its connection until the
    job's terminal event closes it.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    def _roundtrip(self, request: dict) -> dict:
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall(json.dumps(request).encode() + b"\n")
            line = conn.makefile("rb").readline()
        if not line:
            raise ServeClientError("connection closed before a response arrived")
        return json.loads(line)

    # -- ops -------------------------------------------------------------
    def submit(self, job: dict) -> dict:
        """Submit one job; returns ``{"job_id", "cached"}`` or raises."""
        response = self._roundtrip({"op": "submit", "job": job})
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "submit failed"))
        return response

    def stream(self, job_id: str, from_seq: int = 0):
        """Yield the job's events (replay + follow) until the terminal one."""
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall(json.dumps(
                {"op": "stream", "job_id": job_id, "from_seq": from_seq}
            ).encode() + b"\n")
            for line in conn.makefile("rb"):
                event = json.loads(line)
                if event.get("ok") is False:
                    raise ServeClientError(event.get("error", "stream failed"))
                yield event
                if event.get("event") in ("done", "failed"):
                    return

    def result(self, job_id: str) -> dict:
        """Block until the job is terminal; return its result record."""
        response = self._roundtrip({"op": "result", "job_id": job_id})
        if not response.get("ok"):
            raise ServeClientError(response.get("error", "result failed"))
        return response["result"]

    def status(self) -> dict:
        """The server's point-in-time status summary."""
        return self._roundtrip({"op": "status"})

    def shutdown(self) -> dict:
        """Ask the server to stop (acknowledged before it exits)."""
        return self._roundtrip({"op": "shutdown"})

    # -- conveniences ----------------------------------------------------
    def solve_many(self, jobs: list[dict]) -> list[dict]:
        """Submit ``jobs``, wait for all, return records in submit order.

        The submits are pipelined over one connection — every request
        line is written before the first response is read — so the whole
        batch reaches the server inside one coalescing window and is
        eligible for a single blocked multi-RHS solve, instead of each
        submit paying a connection round-trip that spreads the jobs over
        many windows.  Results are then fetched over the same connection
        in submit order (``result`` blocks until each job is terminal).
        """
        if not jobs:
            return []
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as conn:
            conn.sendall(b"".join(
                json.dumps({"op": "submit", "job": job}).encode() + b"\n"
                for job in jobs
            ))
            stream = conn.makefile("rb")
            ids = []
            for _ in jobs:
                response = self._read_line(stream)
                if not response.get("ok"):
                    raise ServeClientError(response.get("error", "submit failed"))
                ids.append(response["job_id"])
            results = []
            for job_id in ids:
                conn.sendall(json.dumps(
                    {"op": "result", "job_id": job_id}
                ).encode() + b"\n")
                response = self._read_line(stream)
                if not response.get("ok"):
                    raise ServeClientError(response.get("error", "result failed"))
                results.append(response["result"])
        return results

    @staticmethod
    def _read_line(stream) -> dict:
        """Read one JSON response line, failing loudly on a closed pipe."""
        line = stream.readline()
        if not line:
            raise ServeClientError("connection closed before a response arrived")
        return json.loads(line)


def submit(job: dict, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> dict:
    """One-shot :meth:`ServeClient.submit`."""
    return ServeClient(host, port).submit(job)


def stream(job_id: str, host: str = "127.0.0.1", port: int = DEFAULT_PORT):
    """One-shot :meth:`ServeClient.stream` (a generator of events)."""
    return ServeClient(host, port).stream(job_id)


def result(job_id: str, host: str = "127.0.0.1", port: int = DEFAULT_PORT) -> dict:
    """One-shot :meth:`ServeClient.result`."""
    return ServeClient(host, port).result(job_id)
