"""Encoded-matrix cache and warm session pool: encode once, serve thousands.

PR 3 made encoded matrices genuinely reusable objects — persistent lane
buffers, cached clean views, a validated index snapshot — so the single
most expensive step of a protected solve (ECC-encoding the CSR regions)
is worth paying exactly once per matrix content.  The service keys both
caches by the matrix handle's content hash:

* :class:`MatrixCache` holds raw CSR builds and their encoded
  (``ProtectedCSRMatrix``) forms, counting encodes vs hits — the
  "encode once" claim is asserted, not assumed (tests pin the counter);
* :class:`SessionPool` holds warm :class:`~repro.protect.session.ProtectionSession`
  objects keyed by (matrix, protection config), so consecutive batches
  against the same system reuse one deferred-verification engine and
  its schedule instead of rebuilding them per solve.

Both are bounded FIFO caches (oldest entry evicted), sized for a serving
process that sees a rotating working set of systems.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.protect.session import ProtectionSession
from repro.serve.jobs import build_matrix, matrix_key, protection_canonical, protection_from_spec


class MatrixCache:
    """Content-hash keyed cache of raw and encoded matrices.

    ``max_entries`` bounds each of the two maps independently; eviction
    is insertion-ordered (FIFO), which for a solve service approximates
    LRU well enough — hot matrices are re-inserted on re-encode only,
    and an evicted entry costs one re-encode, never correctness.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = int(max_entries)
        self._raw: OrderedDict[str, object] = OrderedDict()
        self._encoded: OrderedDict[tuple[str, str], object] = OrderedDict()
        self.stats = {"builds": 0, "encodes": 0, "hits": 0, "invalidations": 0}

    def _trim(self, table: OrderedDict) -> None:
        while len(table) > self.max_entries:
            table.popitem(last=False)

    def raw(self, matrix_spec: dict):
        """The materialised CSR matrix for a handle (built once)."""
        key = matrix_key(matrix_spec)
        if key not in self._raw:
            self._raw[key] = build_matrix(matrix_spec)
            self.stats["builds"] += 1
            self._trim(self._raw)
        return self._raw[key]

    def encoded(self, matrix_spec: dict, protection_spec):
        """The ECC-encoded matrix for (handle, protection), encoded once.

        Returns ``None`` when the protection spec carries no matrix
        redundancy (nothing to encode — the plain path).
        """
        config = protection_from_spec(protection_spec)
        if config is None or not config.protects_matrix:
            return None
        key = (matrix_key(matrix_spec), protection_canonical(protection_spec))
        if key in self._encoded:
            self.stats["hits"] += 1
            return self._encoded[key]
        self._encoded[key] = config.wrap_matrix(self.raw(matrix_spec))
        self.stats["encodes"] += 1
        self._trim(self._encoded)
        return self._encoded[key]

    def invalidate(self, matrix_spec: dict, protection_spec) -> None:
        """Drop an encoded matrix whose integrity is no longer trusted.

        Called after a solve aborts on a DUE under a non-escalating
        policy: the encoded storage may retain the detected corruption,
        so the next batch re-encodes from the (pristine) raw build.
        """
        key = (matrix_key(matrix_spec), protection_canonical(protection_spec))
        if self._encoded.pop(key, None) is not None:
            self.stats["invalidations"] += 1


class SessionPool:
    """Warm :class:`ProtectionSession` objects keyed by (matrix, config).

    A session is the unit that amortises verification *across* solves:
    reusing one per (matrix, protection) pair means batch k+1 inherits
    batch k's engine schedule instead of restarting the check phase.
    Unprotected specs get no session (``get`` returns ``None``).
    """

    def __init__(self, max_entries: int = 16):
        self.max_entries = int(max_entries)
        self._sessions: OrderedDict[tuple[str, str], ProtectionSession] = OrderedDict()
        self.stats = {"created": 0, "reused": 0}

    def get(self, matrix_spec: dict, protection_spec) -> ProtectionSession | None:
        """The warm session for this (matrix, protection) pair, minting on miss."""
        config = protection_from_spec(protection_spec)
        if config is None or not config.enabled:
            return None
        key = (matrix_key(matrix_spec), protection_canonical(protection_spec))
        if key in self._sessions:
            self.stats["reused"] += 1
            self._sessions.move_to_end(key)
            return self._sessions[key]
        session = ProtectionSession(config)
        self._sessions[key] = session
        self.stats["created"] += 1
        while len(self._sessions) > self.max_entries:
            stale_key, stale = self._sessions.popitem(last=False)
            stale.end_step()  # owed mandatory sweep before retirement
        return session

    def drop(self, matrix_spec: dict, protection_spec) -> None:
        """Forget a session whose window died with an integrity error."""
        config = protection_from_spec(protection_spec)
        if config is None:
            return
        key = (matrix_key(matrix_spec), protection_canonical(protection_spec))
        self._sessions.pop(key, None)
