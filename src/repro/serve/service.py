"""The asyncio solve service: admission, batching, dispatch, event streams.

`SolveService` is the trusted control plane of the protection-as-a-service
split: it validates untrusted jobs at admission, journals them, groups
them into same-matrix batches, and dispatches each batch to the sweep
executor (:func:`repro.sweeps.executor.run_tasks`) — in-process for the
warm-cache single-node mode (``workers<=1``), or over a spawn pool for
CPU fan-out.  Everything observable about a job flows through its event
stream: ``accepted``/``adopted`` → ``started`` → worker events
(``recovered``, ``injected``, ``due``) → ``done``/``failed``.

Durability is the job journal's reopen-is-resume contract
(:mod:`repro.serve.journal`): a killed server restarted on the same
journal re-adopts every admitted-but-unfinished job and serves completed
ones from their committed records — no duplicate solves.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time

from repro.serve import workers as serve_workers
from repro.serve.jobs import batch_key, job_key, normalise_job
from repro.serve.journal import JobJournal
from repro.sweeps.executor import Task, run_tasks

#: Event names that end a job's stream.
TERMINAL_EVENTS = ("done", "failed")


class ServiceOverloadedError(RuntimeError):
    """Admission refused: the pending queue is at ``max_pending``.

    Deliberately *not* a :class:`~repro.serve.jobs.JobValidationError` —
    the job itself is fine, the server is busy.  The rejection is
    journalled non-terminally, so resubmitting the identical job once
    the queue drains admits it normally (no cache poisoning).
    """


@dataclasses.dataclass
class ServeConfig:
    """Tunables of one serving process.

    Parameters
    ----------
    journal:
        Path of the append-only job journal (``None`` disables
        durability: jobs live only in memory).
    workers:
        Executor width per dispatch: ``<= 1`` solves in-process and
        shares one warm matrix/session cache; ``> 1`` fans batches out
        over a spawn pool (each worker warms its own cache).
    batch_window:
        Seconds the batcher waits after the first queued job for more
        same-matrix work to coalesce before dispatching.
    max_batch:
        Upper bound on jobs per dispatched batch.
    throttle:
        Artificial per-solve delay (seconds) forwarded to the batch
        runner; load-shaping for demos and kill/restart tests.
    dist_shards:
        ``>= 2`` routes large CG jobs to the row-sharded distributed
        solver (:mod:`repro.dist`) with this many worker shards;
        ``0``/``1`` (default) keeps every job single-process.
    dist_threshold:
        Row count at which a job counts as "large" for ``dist_shards``
        routing.  Below it nothing changes — same solver, same warm
        caches, and the job identity hash never depends on either knob.
    max_pending:
        Admission quota: a new job arriving while this many are already
        queued for batching is rejected with
        :class:`ServiceOverloadedError` instead of growing the queue
        without bound.  ``0`` (default) disables the quota.  Cache hits
        and joins of identical in-flight jobs are never rejected — they
        add no queue pressure.
    block_solve:
        Serve compatible CG jobs of a batch as one blocked multi-RHS
        solve (default on; see :func:`repro.serve.workers.run_batch`).
        Per-job results are unchanged — this is purely a
        verification/dispatch amortisation — so the job identity hash
        never depends on it.  ``REPRO_BLOCK_SOLVE=0`` overrides it off
        process-wide.
    """

    journal: str | None = None
    workers: int = 1
    batch_window: float = 0.01
    max_batch: int = 32
    throttle: float = 0.0
    dist_shards: int = 0
    dist_threshold: int = 4096
    max_pending: int = 0
    block_solve: bool = True


class SolveService:
    """Accepts solve jobs, batches them over warm sessions, streams events."""

    def __init__(self, config: ServeConfig | None = None, **overrides):
        base = config if config is not None else ServeConfig()
        if overrides:
            base = dataclasses.replace(base, **overrides)
        self.config = base
        self.journal = JobJournal(base.journal) if base.journal else None
        self._queue: list[dict] = []
        self._inflight: set[str] = set()
        self._events: dict[str, list[dict]] = {}
        self._results: dict[str, dict] = {}
        self._wakeup: asyncio.Event | None = None
        self._batcher: asyncio.Task | None = None
        self._running = False
        self.started_at = None
        self.stats = {"submitted": 0, "cached_hits": 0, "adopted": 0,
                      "batches": 0, "solved": 0, "failed": 0, "rejected": 0,
                      "blocked_jobs": 0}
        self._worker_stats: dict[str, dict] = {}

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Arm the batcher and re-adopt the journal's unfinished jobs."""
        self._wakeup = asyncio.Event()
        self._running = True
        self.started_at = time.time()
        if self.journal is not None:
            # Completed jobs are served straight from their committed
            # records (with a replayable accepted→done event stream);
            # admitted-but-unfinished ones are re-adopted into the queue.
            for record in self.journal.store.records():
                if record.get("status") in ("done", "failed") and "result" in record:
                    job_id = record["key"]
                    self._results[job_id] = record["result"]
                    self._publish(job_id, {"event": "accepted", "cached": True})
                    self._finalise_events(job_id, record["result"])
            for spec in self.journal.pending():
                self._admit(spec, event="adopted")
                self.stats["adopted"] += 1
        self._batcher = asyncio.create_task(self._batch_loop())

    async def stop(self) -> None:
        """Stop dispatching; queued jobs stay journalled for the next life."""
        self._running = False
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        if self.journal is not None:
            self.journal.close()

    # -- submission ------------------------------------------------------
    async def submit(self, spec: dict) -> dict:
        """Admit one job; returns ``{"job_id", "cached"}``.

        Validation happens inside :func:`normalise_job` (raising
        :class:`~repro.serve.jobs.JobValidationError` on bad input).
        A job whose identity already has a committed result — in memory
        or in the journal — is served from that record without solving
        again; an identical in-flight job is joined, not duplicated.
        A genuinely *new* job arriving with ``max_pending`` jobs already
        queued raises :class:`ServiceOverloadedError`.
        """
        try:
            job = normalise_job(spec)
        except Exception:
            self.stats["rejected"] += 1
            raise
        job_id = job["job_id"]
        cached = self._results.get(job_id)
        if cached is None and self.journal is not None:
            cached = self.journal.result(job_id)
            if cached is not None:
                # Surface the journal's record through the in-memory
                # maps so streams replay a complete accepted→done story.
                self._results[job_id] = cached
                self._publish(job_id, {"event": "accepted", "cached": True})
                self._finalise_events(job_id, cached)
        if cached is not None:
            self.stats["cached_hits"] += 1
            return {"job_id": job_id, "cached": True}
        if job_id in self._inflight:
            return {"job_id": job_id, "cached": False}
        if (self.config.max_pending > 0
                and len(self._queue) >= self.config.max_pending):
            self.stats["rejected"] += 1
            if self.journal is not None:
                self.journal.record_rejected(job_id)
            raise ServiceOverloadedError(
                f"job {job_id} rejected: {len(self._queue)} jobs pending "
                f"(max_pending={self.config.max_pending}); retry later"
            )
        self.stats["submitted"] += 1
        if self.journal is not None:
            self.journal.record_submitted(job)
        self._admit(job, event="accepted")
        return {"job_id": job_id, "cached": False}

    def _admit(self, job: dict, *, event: str) -> None:
        job_id = job["job_id"]
        if job_id in self._inflight or job_id in self._results:
            return
        self._inflight.add(job_id)
        self._queue.append(job)
        self._publish(job_id, {"event": event, "method": job["method"],
                               "batch_key": batch_key(job)[:12]})
        self._notify()

    # -- events ----------------------------------------------------------
    def _publish(self, job_id: str, event: dict) -> None:
        stream = self._events.setdefault(job_id, [])
        event = dict(event, job_id=job_id, seq=len(stream), ts=time.time())
        stream.append(event)
        self._notify()

    def _notify(self) -> None:
        if self._wakeup is not None:
            wakeup, self._wakeup = self._wakeup, asyncio.Event()
            wakeup.set()

    async def events(self, job_id: str, from_seq: int = 0):
        """Async-iterate a job's events, replay then follow until terminal."""
        index = from_seq
        while True:
            waiter = self._wakeup
            stream = self._events.get(job_id, [])
            if index < len(stream):
                event = stream[index]
                index += 1
                yield event
                if event["event"] in TERMINAL_EVENTS:
                    return
                continue
            if waiter is None:
                return
            await waiter.wait()

    async def result(self, job_id: str) -> dict:
        """Block until ``job_id`` is terminal; return its result record."""
        while True:
            waiter = self._wakeup
            record = self._results.get(job_id)
            if record is not None:
                return record
            if job_id not in self._inflight and job_id not in self._events:
                raise KeyError(f"unknown job {job_id!r}")
            if waiter is None:
                raise RuntimeError("service is not started")
            await waiter.wait()

    def status(self) -> dict:
        """A point-in-time summary of queue, caches and journal."""
        return {
            "running": self._running,
            "queued": len(self._queue),
            "inflight": len(self._inflight),
            "completed": len(self._results),
            "stats": dict(self.stats),
            "cache": dict(serve_workers.CACHE.stats),
            "sessions": dict(serve_workers.SESSIONS.stats),
            "workers": {pid: dict(stats)
                        for pid, stats in self._worker_stats.items()},
            "journal": self.journal.summary() if self.journal else None,
            "config": dataclasses.asdict(self.config),
        }

    # -- batching --------------------------------------------------------
    async def _batch_loop(self) -> None:
        while self._running:
            if not self._queue:
                waiter = self._wakeup
                await waiter.wait()
                continue
            if self.config.batch_window > 0:
                # Let same-matrix work coalesce before grouping.
                await asyncio.sleep(self.config.batch_window)
            taken, self._queue = self._queue, []
            groups: dict[str, list[dict]] = {}
            for job in taken:
                groups.setdefault(batch_key(job), []).append(job)
            tasks = []
            for key, jobs in groups.items():
                for chunk_at in range(0, len(jobs), self.config.max_batch):
                    chunk = jobs[chunk_at:chunk_at + self.config.max_batch]
                    tasks.append(Task(
                        key=f"{key}:{chunk_at}",
                        runner="repro.serve.workers:run_batch",
                        params={
                            "jobs": chunk,
                            "protection": chunk[0].get("protection"),
                            "throttle": self.config.throttle,
                            "dist_shards": self.config.dist_shards,
                            "dist_threshold": self.config.dist_threshold,
                            "block_solve": self.config.block_solve,
                        },
                    ))
                    for job in chunk:
                        self._publish(job["job_id"], {
                            "event": "started", "batch_size": len(chunk),
                        })
            loop = asyncio.get_running_loop()

            def _on_record(key: str, record: dict) -> None:
                loop.call_soon_threadsafe(self._ingest, record)

            self.stats["batches"] += len(tasks)
            await asyncio.to_thread(
                run_tasks, tasks, workers=self.config.workers,
                on_record=_on_record,
            )

    def _ingest(self, batch_record: dict) -> None:
        """Commit one finished batch: journal, results, event streams."""
        self.stats["blocked_jobs"] += int(batch_record.get("blocked_jobs", 0))
        pid = batch_record.get("worker_pid")
        if pid is not None:
            # Per-worker warm-state accounting: with a spawn pool each
            # worker pays for (and keeps) its own encoded-matrix cache,
            # so status() can show the per-process memory/warmth split.
            entry = self._worker_stats.setdefault(
                str(pid), {"batches": 0, "blocked_jobs": 0})
            entry["batches"] += 1
            entry["blocked_jobs"] += int(batch_record.get("blocked_jobs", 0))
            entry["cache"] = dict(batch_record.get("cache", {}))
            entry["sessions"] = dict(batch_record.get("sessions", {}))
        for record in batch_record.get("jobs", []):
            job_id = record["job_id"]
            self._inflight.discard(job_id)
            self._results[job_id] = record
            if self.journal is not None:
                self.journal.record_result(job_id, record)
            for event in record.get("events", []):
                self._publish(job_id, event)
            self.stats["solved" if record["status"] == "done" else "failed"] += 1
            self._finalise_events(job_id, record)

    def _finalise_events(self, job_id: str, record: dict) -> None:
        summary = {
            k: record[k]
            for k in ("converged", "iterations", "residual", "duration_ms",
                      "recovered", "error", "x_norm")
            if k in record
        }
        self._publish(job_id, {"event": record.get("status", "done"), **summary})


def job_identity(spec: dict) -> str:
    """Convenience: the canonical identity a spec would be admitted under."""
    return job_key(normalise_job(spec))
