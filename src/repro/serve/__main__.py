"""``python -m repro.serve``: run a solve server from the command line."""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.serve.service import ServeConfig


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the server flags (shared with ``repro serve``)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one, printed on start)")
    parser.add_argument("--journal", default=None,
                        help="job journal JSONL path; reopening it resumes "
                             "in-flight jobs (omit for a memory-only server)")
    parser.add_argument("--workers", type=int, default=1,
                        help="executor width per batch dispatch (<=1 solves "
                             "in-process and shares one warm cache)")
    parser.add_argument("--batch-window", type=float, default=0.01,
                        help="seconds to coalesce same-matrix jobs per batch")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--throttle", type=float, default=0.0,
                        help="artificial seconds per solve (demo/test load shaping)")
    parser.add_argument("--dist-shards", type=int, default=0,
                        help="route large CG jobs to the row-sharded solver "
                             "with this many worker shards (0 disables)")
    parser.add_argument("--dist-threshold", type=int, default=4096,
                        help="row count at which a job counts as large for "
                             "--dist-shards routing")
    parser.add_argument("--max-pending", type=int, default=0,
                        help="admission quota: reject new jobs while this "
                             "many are queued (0 = unlimited)")
    parser.add_argument("--no-block-solve", action="store_true",
                        help="serve every job as its own solve instead of "
                             "grouping compatible CG jobs into blocked "
                             "multi-RHS solves")


def run(args) -> int:
    """Serve until a shutdown op or Ctrl-C."""
    from repro.serve.server import run_server

    config = ServeConfig(
        journal=args.journal, workers=args.workers,
        batch_window=args.batch_window, max_batch=args.max_batch,
        throttle=args.throttle,
        dist_shards=args.dist_shards, dist_threshold=args.dist_threshold,
        max_pending=args.max_pending,
        block_solve=not args.no_block_solve,
    )
    try:
        asyncio.run(run_server(args.host, args.port, config))
    except KeyboardInterrupt:
        pass
    return 0


def main(argv=None) -> int:
    """Parse arguments and run the server."""
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="Batched, journalled, protection-aware solve server",
    )
    add_serve_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
