"""The job journal: RunStore semantics applied to in-flight solve jobs.

Exactly the sweeps' durability contract, transplanted: every state
transition is one appended-and-flushed JSON line keyed by ``job_id``,
the file is append-only and order-insensitive, a torn final line is
skipped on load, and **reopening the file is the resume path** — there
is no separate recovery mode.

Two record shapes flow through the store's last-record-per-key map:

* ``{"key": job_id, "status": "submitted", "spec": {...}}`` — written at
  admission, carrying the full canonical job spec;
* ``{"key": job_id, "status": "done" | "failed", "result": {...}}`` —
  written at completion, *replacing* the submitted record for that key.

So after any crash the journal reads back as: terminal records for every
job whose result was committed, submitted records for every job that was
admitted but never finished.  :meth:`JobJournal.pending` returns the
latter — the jobs a restarted server re-adopts — and because terminal
records survive, re-adoption can never duplicate a completed solve.
"""

from __future__ import annotations

from repro.sweeps.store import RunStore

#: Job states with a committed result; everything else is re-adoptable.
TERMINAL = ("done", "failed")


class JobJournal:
    """Append-only JSONL job ledger with reopen-is-resume semantics."""

    def __init__(self, path):
        self.store = RunStore(path)

    @property
    def path(self):
        """Where the ledger lives on disk."""
        return self.store.path

    # -- writes ----------------------------------------------------------
    def record_submitted(self, job: dict) -> None:
        """Persist an admitted job (its spec travels with the record)."""
        self.store.append(
            {"key": job["job_id"], "status": "submitted", "spec": job}
        )

    def record_rejected(self, job_id: str) -> None:
        """Persist an admission rejection (queue at its quota).

        ``rejected`` is deliberately non-terminal *and* non-submitted:
        it is never served as a cached result and never re-adopted on
        restart, so a later resubmit of the same job — once the queue
        has drained — is admitted from scratch and its records supersede
        this one.
        """
        self.store.append({"key": job_id, "status": "rejected"})

    def record_result(self, job_id: str, record: dict) -> None:
        """Persist a terminal result, superseding the submitted record."""
        status = record.get("status", "done")
        if status not in TERMINAL:
            status = "done"
        self.store.append({"key": job_id, "status": status, "result": record})

    def close(self) -> None:
        """Flush and release the underlying file handle."""
        self.store.close()

    # -- reads -----------------------------------------------------------
    def result(self, job_id: str) -> dict | None:
        """The committed result for ``job_id``, or ``None`` if not terminal."""
        record = self.store.get(job_id)
        if record is not None and record.get("status") in TERMINAL:
            return record["result"]
        return None

    def pending(self) -> list[dict]:
        """Specs of every admitted-but-unfinished job, in journal order.

        This is the restarted server's work list: jobs whose submitted
        record was never superseded by a terminal one.
        """
        return [
            record["spec"]
            for record in self.store.records()
            if record.get("status") == "submitted" and "spec" in record
        ]

    def summary(self) -> dict:
        """Counts by status (``submitted`` means in-flight at last write)."""
        counts: dict[str, int] = {}
        for record in self.store.records():
            status = record.get("status", "?")
            counts[status] = counts.get(status, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JobJournal({str(self.path)!r}, jobs={len(self)})"
