"""Lane packing: uniform (N, L)-uint64 codeword views.

Every protected structure in the paper is some mix of 64-bit doubles and
32-bit integers.  The ECC engine wants one representation, so we pack each
codeword into ``L`` little-endian 64-bit *lanes*:

* physical bit ``b`` of a codeword lives in lane ``b // 64``, bit ``b % 64``;
* a 32-bit integer occupying "entry slot" ``e`` of a codeword contributes
  bits ``64*(e//2) + 32*(e%2) + [0..31]``.

Packing never loses information and the inverse functions restore the
original arrays exactly, which the round-trip property tests exercise.
"""

from __future__ import annotations

import sys
from collections.abc import Iterable

import numpy as np

from repro.bits.float_bits import f64_to_u64, u64_to_f64

_U32 = np.uint64(0xFFFFFFFF)


def pack_csr_element_lanes(
    values: np.ndarray, colidx: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Pack CSR ``(value, column index)`` pairs into (N, 2) uint64 lanes.

    Lane 0 holds the 64 value bits, lane 1 the zero-extended 32-bit column
    index (codeword bits 64..95; bits 96..127 of lane 1 are padding and are
    *excluded* from the code's position set).  ``out`` refills a persistent
    lane buffer in place instead of allocating a fresh one.
    """
    values = np.asarray(values, dtype=np.float64)
    colidx = np.asarray(colidx, dtype=np.uint32)
    if values.shape != colidx.shape:
        raise ValueError("values and colidx must have identical shapes")
    lanes = np.empty(values.shape + (2,), dtype=np.uint64) if out is None else out
    np.copyto(lanes[..., 0], f64_to_u64(values))
    np.copyto(lanes[..., 1], colidx, casting="same_kind")
    return lanes


def unpack_csr_element_lanes(lanes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`pack_csr_element_lanes`."""
    lanes = np.asarray(lanes, dtype=np.uint64)
    values = u64_to_f64(np.ascontiguousarray(lanes[..., 0]))
    colidx = (lanes[..., 1] & _U32).astype(np.uint32)
    return values, colidx


def pack_u32_lanes(
    entries: np.ndarray, group: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Pack groups of ``group`` consecutive uint32 entries into codeword lanes.

    ``entries`` has length ``N * group``; the result has shape
    ``(N, ceil(group/2))``.  Entry ``e`` of a group occupies bits
    ``32*(e%2)..32*(e%2)+31`` of lane ``e//2``.  ``out`` refills a
    persistent lane buffer in place.

    Little-endian trick: a pair of consecutive uint32 entries *is* the
    byte layout of one uint64 lane, so the pack is a single reinterpret
    copy rather than ``group`` shift/or passes.
    """
    entries = np.asarray(entries, dtype=np.uint32)
    if group < 1:
        raise ValueError("group must be >= 1")
    if entries.size % group:
        raise ValueError(f"entry count {entries.size} not divisible by group {group}")
    n = entries.size // group
    n_lanes = (group + 1) // 2
    lanes = np.empty((n, n_lanes), dtype=np.uint64) if out is None else out
    if group % 2 == 0 and sys.byteorder == "little":
        # On little-endian hosts two consecutive uint32 entries already
        # have the lane's byte layout, so the pack is one reinterpret
        # copy; big-endian hosts take the endian-neutral shift loop.
        src = np.ascontiguousarray(entries).view(np.uint64).reshape(n, n_lanes)
        np.copyto(lanes, src)
        return lanes
    lanes[:] = 0
    grouped = entries.reshape(n, group)
    for e in range(group):
        lane = e // 2
        shift = np.uint64(32 * (e % 2))
        lanes[:, lane] |= grouped[:, e].astype(np.uint64) << shift
    return lanes


def unpack_u32_lanes(lanes: np.ndarray, group: int) -> np.ndarray:
    """Inverse of :func:`pack_u32_lanes`; returns a flat uint32 array."""
    lanes = np.asarray(lanes, dtype=np.uint64)
    n = lanes.shape[0]
    out = np.empty((n, group), dtype=np.uint32)
    for e in range(group):
        lane = e // 2
        shift = np.uint64(32 * (e % 2))
        out[:, e] = ((lanes[:, lane] >> shift) & _U32).astype(np.uint32)
    return out.reshape(-1)


def pack_f64_lanes(values: np.ndarray, group: int) -> np.ndarray:
    """Pack groups of ``group`` consecutive doubles into (N, group) lanes."""
    values = np.asarray(values, dtype=np.float64)
    if group < 1:
        raise ValueError("group must be >= 1")
    if values.size % group:
        raise ValueError(f"value count {values.size} not divisible by group {group}")
    return f64_to_u64(values).reshape(-1, group).copy()


def bits_to_lane_masks(positions: Iterable[int], n_lanes: int) -> np.ndarray:
    """Turn a set of physical bit positions into per-lane uint64 masks."""
    masks = np.zeros(n_lanes, dtype=np.uint64)
    for pos in positions:
        lane, bit = divmod(int(pos), 64)
        if not 0 <= lane < n_lanes:
            raise ValueError(f"bit position {pos} outside {n_lanes} lanes")
        masks[lane] |= np.uint64(1) << np.uint64(bit)
    return masks
