"""Bit-level views of IEEE-754 float64 values.

The dense-vector protection schemes (paper §VI.B, Fig. 3) store redundancy
in the *least-significant mantissa bits* of each double.  Two invariants
drive this module:

* reinterpreting ``float64 <-> uint64`` must never copy unless asked —
  the kernels operate on views so encode/check passes stay bandwidth-bound
  just like the paper's C kernels;
* every arithmetic use of a protected value must first mask the
  redundancy bits to zero ("our framework masks all these bits to 0
  whenever a floating point value is used for computation").
"""

from __future__ import annotations

import numpy as np

#: Number of explicit mantissa (fraction) bits in IEEE-754 binary64.
MANTISSA_BITS = 52


def f64_to_u64(values: np.ndarray) -> np.ndarray:
    """Reinterpret a float64 array as uint64 without copying.

    Parameters
    ----------
    values:
        A contiguous ``float64`` array.

    Returns
    -------
    numpy.ndarray
        A ``uint64`` view over the same memory.
    """
    values = np.ascontiguousarray(values, dtype=np.float64)
    return values.view(np.uint64)


def u64_to_f64(words: np.ndarray) -> np.ndarray:
    """Reinterpret a uint64 array as float64 without copying."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    return words.view(np.float64)


def mask_mantissa_lsbs(values: np.ndarray, n_bits: int, out: np.ndarray | None = None) -> np.ndarray:
    """Return ``values`` with the ``n_bits`` least-significant mantissa bits zeroed.

    This is the compute-time mask the paper applies so the embedded
    redundancy does not bias the arithmetic.  ``n_bits == 0`` returns the
    input unchanged (no copy).

    The relative masking error is below ``2**-(52 - n_bits)`` for *normal*
    numbers (thanks to the implicit leading mantissa bit); subnormals can
    lose relatively more — physical fields in TeaLeaf-like solvers never
    live in the subnormal range, but library users storing values below
    ``~2.2e-308`` should be aware.
    """
    if n_bits == 0:
        return values
    if not 0 < n_bits <= MANTISSA_BITS:
        raise ValueError(f"n_bits must be in [0, {MANTISSA_BITS}], got {n_bits}")
    mask = np.uint64(~np.uint64((1 << n_bits) - 1))
    words = f64_to_u64(values)
    if out is None:
        return u64_to_f64(words & mask)
    out_words = f64_to_u64(out)
    np.bitwise_and(words, mask, out=out_words)
    return out


def extract_mantissa_lsbs(values: np.ndarray, n_bits: int) -> np.ndarray:
    """Read the ``n_bits`` least-significant mantissa bits of each double.

    Returns a ``uint64`` array of the raw redundancy payloads.
    """
    if not 0 < n_bits <= MANTISSA_BITS:
        raise ValueError(f"n_bits must be in (0, {MANTISSA_BITS}], got {n_bits}")
    mask = np.uint64((1 << n_bits) - 1)
    return f64_to_u64(values) & mask


def insert_mantissa_lsbs(values: np.ndarray, payload: np.ndarray, n_bits: int) -> np.ndarray:
    """Write ``payload`` into the ``n_bits`` LSBs of each double, in place.

    ``values`` is modified through its uint64 view and also returned for
    chaining.  ``payload`` entries wider than ``n_bits`` raise.
    """
    if not 0 < n_bits <= MANTISSA_BITS:
        raise ValueError(f"n_bits must be in (0, {MANTISSA_BITS}], got {n_bits}")
    payload = np.asarray(payload, dtype=np.uint64)
    limit = np.uint64(1 << n_bits)
    if payload.size and np.any(payload >= limit):
        raise ValueError(f"payload does not fit in {n_bits} bits")
    mask = np.uint64(~np.uint64((1 << n_bits) - 1))
    words = f64_to_u64(values)
    np.bitwise_and(words, mask, out=words)
    np.bitwise_or(words, payload, out=words)
    return values
