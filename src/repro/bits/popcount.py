"""Vectorised population count and parity.

Parity is *the* primitive of every scheme here: SED is one parity, SECDED
is nine parities with different masks, CRC32C reduces to table lookups but
its correction path still folds parities of syndrome signatures.

NumPy >= 2.0 ships :func:`numpy.bitwise_count` which lowers to the POPCNT
instruction; a portable SWAR fallback is kept for older NumPy and as a
cross-check in tests.
"""

from __future__ import annotations

import numpy as np

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)
_SH56 = np.uint64(56)


def _popcount64_swar(words: np.ndarray) -> np.ndarray:
    """Branch-free SWAR popcount over uint64 (fallback path)."""
    x = words.astype(np.uint64, copy=True)
    x -= (x >> np.uint64(1)) & _M1
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    return ((x * _H01) >> _SH56).astype(np.uint8)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element number of set bits of a uint64 array."""
    words = np.asarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    return _popcount64_swar(words)


def parity64(words: np.ndarray) -> np.ndarray:
    """Per-element parity (popcount mod 2) of a uint64 array, as uint8."""
    return (popcount64(words) & np.uint8(1)).astype(np.uint8)


def parity_lanes(lanes: np.ndarray) -> np.ndarray:
    """Parity across the last axis of a lane-packed codeword array.

    ``lanes`` has shape ``(..., L)`` of uint64; the result has shape
    ``(...)`` and value ``parity(XOR of all lanes)`` — i.e. the parity of
    the whole multi-word codeword.
    """
    lanes = np.asarray(lanes, dtype=np.uint64)
    folded = fold_parity(lanes)
    return parity64(folded)


def fold_parity(lanes: np.ndarray) -> np.ndarray:
    """XOR-fold the last axis of a uint64 array into a single word.

    Parity is XOR-linear, so ``parity(concat(words)) == parity(xor(words))``;
    folding first keeps the popcount count independent of lane count.
    """
    lanes = np.asarray(lanes, dtype=np.uint64)
    if lanes.ndim == 0:
        return lanes
    return np.bitwise_xor.reduce(lanes, axis=-1)
