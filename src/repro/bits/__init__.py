"""Low-level bit manipulation substrate.

Everything in the ABFT framework ultimately reduces to XORs, popcounts and
masked bit moves over ``uint32``/``uint64`` NumPy arrays.  This package
keeps those primitives in one place so the ECC codecs stay readable.
"""

from repro.bits.float_bits import (
    f64_to_u64,
    u64_to_f64,
    mask_mantissa_lsbs,
    extract_mantissa_lsbs,
    insert_mantissa_lsbs,
    MANTISSA_BITS,
)
from repro.bits.popcount import popcount64, parity64, parity_lanes, fold_parity
from repro.bits.packing import (
    pack_csr_element_lanes,
    unpack_csr_element_lanes,
    pack_u32_lanes,
    unpack_u32_lanes,
    pack_f64_lanes,
    bits_to_lane_masks,
)

__all__ = [
    "f64_to_u64",
    "u64_to_f64",
    "mask_mantissa_lsbs",
    "extract_mantissa_lsbs",
    "insert_mantissa_lsbs",
    "MANTISSA_BITS",
    "popcount64",
    "parity64",
    "parity_lanes",
    "fold_parity",
    "pack_csr_element_lanes",
    "unpack_csr_element_lanes",
    "pack_u32_lanes",
    "unpack_u32_lanes",
    "pack_f64_lanes",
    "bits_to_lane_masks",
]
