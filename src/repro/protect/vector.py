"""Protected dense float64 vectors (paper §VI.B, Fig. 3).

Doubles have no spare bits, so redundancy is hidden in the
least-significant mantissa bits and **masked to zero whenever a value is
used for computation** — the paper's framework rule that bounds the
injected noise (relative error < 2^-44 for 8 reserved bits).

Scheme layouts:

========  =====  ==================  =============================
scheme    group  reserved LSBs/elem  codeword
========  =====  ==================  =============================
sed        1     1                   one double, parity in bit 0
secded64   1     8                   one double, 8 check bits
secded128  2     5                   two doubles, 9 check bits (+1 zero)
crc32c     4     8                   four doubles, CRC32C split 8/8/8/8
========  =====  ==================  =============================

A tail of ``len(v) % group`` elements falls back to per-element SED
(parity in bit 0) so coverage has no holes; this is a documented
deviation — the paper never states how non-multiple lengths are handled.

Writes are whole-codeword ``store`` operations: the solver computes on
plain working arrays and commits complete codewords, which is exactly the
paper's read/write-buffering strategy for avoiding read-modify-writes.
``store`` additionally supports *dirty windows*: a windowed store
re-encodes only the codeword lanes the window touches, and a deferred
store buffers the new values in the plain cache and re-encodes the
accumulated dirty window in one batch at :meth:`flush` — the
deferred-verification engine's write-buffering mode.  Reads between
scheduled checks come from :meth:`view`, a cached plain-``float64`` view
that costs nothing once populated.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.bits.popcount import parity64
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import vector_secded64, vector_secded128
from repro.errors import ConfigurationError, DetectedUncorrectableError
from repro.protect.base import GROUPS, VECTOR_SCHEMES

_ONE = np.uint64(1)


class ProtectedVector:
    """A float64 vector with embedded software ECC.

    Parameters
    ----------
    values:
        Initial contents.  Copied; the reserved mantissa LSBs of the copy
        are overwritten with redundancy.
    scheme:
        One of ``"sed"``, ``"secded64"``, ``"secded128"``, ``"crc32c"``.
    """

    def __init__(self, values: np.ndarray, scheme: str = "secded64",
                 crc_mode: str = "2EC3ED"):
        if scheme not in VECTOR_SCHEMES:
            raise ConfigurationError(
                f"unknown vector scheme {scheme!r}; choose from {sorted(VECTOR_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)  # validate eagerly
        self.reserved_bits = VECTOR_SCHEMES[scheme]
        self.group = GROUPS["vector"][scheme]
        self.raw = np.array(values, dtype=np.float64, copy=True)
        if self.raw.ndim != 1:
            raise ConfigurationError("ProtectedVector expects a 1-D array")
        self._n_grouped = (self.raw.size // self.group) * self.group
        self._cache: np.ndarray | None = None
        self._cache_ro: np.ndarray | None = None
        self._dirty: tuple[int, int] | None = None
        self._encode_all()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.raw.size

    @property
    def n_codewords(self) -> int:
        """Grouped codewords plus per-element SED tail codewords."""
        return self._n_grouped // self.group + (self.raw.size - self._n_grouped)

    @property
    def tail_size(self) -> int:
        """Number of entries in the final, partial codeword group."""
        return self.raw.size - self._n_grouped

    @property
    def dirty_window(self) -> tuple[int, int] | None:
        """Element range ``[lo, hi)`` buffered but not yet re-encoded."""
        return self._dirty

    # -- read path ------------------------------------------------------
    def values(self, out: np.ndarray | None = None) -> np.ndarray:
        """Computation-ready copy: reserved LSBs masked to zero.

        While a deferred write is buffered (``dirty_window`` is set) the
        cache is the authoritative content, so its values are returned
        verbatim (they have not been rounded into codewords yet).
        """
        if out is None:
            out = np.empty_like(self.raw)
        if self._dirty is not None:
            np.copyto(out, self._cache)
            return out
        words = f64_to_u64(self.raw)
        out_words = f64_to_u64(out)
        np.bitwise_and(words, self._data_mask_word(), out=out_words)
        if self.tail_size:
            tail = f64_to_u64(self.raw[self._n_grouped :])
            out_words[self._n_grouped :] = tail & ~_ONE
        return out

    def view(self) -> np.ndarray:
        """Read-only cached plain view — the decode-free read path.

        The cache is verified once when populated (see
        :meth:`_ensure_cache`) and kept in sync by
        :meth:`store`/:meth:`flush`; between those points it is *not*
        re-verified (the deferred-verification engine schedules the
        checks).  Corrections applied by :meth:`check` invalidate it via
        :meth:`invalidate_cache`.
        """
        self._ensure_cache()
        return self._cache_ro

    def invalidate_cache(self) -> None:
        """Drop the cached plain view (e.g. after an in-place correction)."""
        if self._dirty is not None:
            raise RuntimeError("cannot invalidate the cache with a dirty window pending")
        self._cache = None
        self._cache_ro = None

    # -- write path ------------------------------------------------------
    def store(
        self,
        new_values: np.ndarray,
        window: tuple[int, int] | None = None,
        defer: bool = False,
    ) -> None:
        """Overwrite values and re-encode (no read-modify-write).

        Parameters
        ----------
        window:
            ``(lo, hi)`` element range to overwrite.  ``new_values`` may
            be the window slice (length ``hi - lo``) or a full-length
            vector from which the slice is taken.  Only the codeword
            lanes covering the window are re-encoded; ``None`` keeps the
            whole-vector encode as the fallback.
        defer:
            Buffer the write in the plain cache and merely widen the
            dirty window; the actual re-encode happens at :meth:`flush`.
        """
        new_values = np.asarray(new_values, dtype=np.float64)
        if window is None:
            lo, hi = 0, self.raw.size
            if new_values.shape != self.raw.shape:
                raise ValueError("store() requires a same-length vector")
        else:
            lo, hi = int(window[0]), int(window[1])
            if not (0 <= lo <= hi <= self.raw.size):
                raise ValueError(f"window {window!r} out of range for size {self.raw.size}")
            if new_values.size == self.raw.size:
                new_values = new_values[lo:hi]
            elif new_values.size != hi - lo:
                raise ValueError("store() window slice has the wrong length")
        if defer:
            self._ensure_cache(trusted=window is None)
            self._cache[lo:hi] = new_values
            self._mark_dirty(lo, hi)
            return
        if self._dirty is not None:
            self.flush()
        if window is None:
            np.copyto(self.raw, new_values)
            self._encode_all()
        else:
            self._guard_partial_lanes(lo, hi)
            self.raw[lo:hi] = new_values
            lo, hi = self._encode_window(lo, hi)
        if self._cache is not None:
            self._refresh_cache_slice(lo, hi)

    def flush(self) -> tuple[int, int] | None:
        """Commit the buffered dirty window: re-encode only those lanes.

        Returns the lane-aligned element range that was re-encoded, or
        ``None`` when nothing was dirty.  Raw storage inside the window
        is overwritten from the cache (any bit flip that landed there
        held dead data); storage outside stays untouched, so flips there
        remain detectable by the next check.
        """
        if self._dirty is None:
            return None
        lo, hi = self._align_window(*self._dirty)
        self._dirty = None
        self.raw[lo:hi] = self._cache[lo:hi]
        self._encode_window(lo, hi)
        self._refresh_cache_slice(lo, hi)
        return (lo, hi)

    def rebuild_from_cache(self) -> bool:
        """Re-encode raw storage from the authoritative plain cache.

        The recovery path for raw-storage corruption: reads are served
        from the cache (populated under verification and refreshed by
        every committed store), so a flip that lands in stored bits is
        never consumed by compute — rewriting storage from the cache
        restores exactly the content the solver has been working with,
        including any still-buffered dirty window.  Returns False when
        no cache exists (nothing authoritative to rebuild from).
        """
        if self._cache is None:
            return False
        self._dirty = None
        np.copyto(self.raw, self._cache)
        self._encode_all()
        self._refresh_cache_slice(0, self.raw.size)
        return True

    # -- integrity -------------------------------------------------------
    def detect(self) -> np.ndarray:
        """Boolean corrupted-flag per codeword, without correction.

        A pending dirty window is flushed first so the verdict describes
        the vector's logical content, not a stale snapshot.
        """
        self.flush()
        return self._detect_raw()

    def check(self, correct: bool = True) -> CheckReport:
        """Full integrity check; single-bit errors repaired when possible.

        In-place corrections invalidate the cached plain view so the next
        :meth:`view` observes the repaired values.
        """
        self.flush()
        report = self._check_impl(correct)
        if self._cache is not None and report.n_corrected:
            self._cache = None
            self._cache_ro = None
        return report

    def _check_impl(self, correct: bool) -> CheckReport:
        if not correct:
            if self._scan_raw() == 0:
                return CheckReport.all_ok(self.n_codewords)
            return CheckReport.from_flags(self._detect_raw())
        main = self._check_main()
        if not self.tail_size:
            return main
        tail_flags = parity64(f64_to_u64(self.raw[self._n_grouped :]))
        if main._status is None and not tail_flags.any():
            return CheckReport.all_ok(self.n_codewords)
        tail_status = np.where(
            tail_flags.astype(bool),
            np.uint8(CodewordStatus.UNCORRECTABLE),
            np.uint8(CodewordStatus.OK),
        )
        return CheckReport(status=np.concatenate([main.status, tail_status]))

    def _scan_raw(self) -> int:
        """Corrupted-codeword count over raw storage, allocation-free.

        The SECDED schemes run the backend's fused scan over the in-place
        lane view; SED/CRC fall back to the flag pass (their vectors are
        not the allocation-sensitive hot path).
        """
        if self.scheme == "secded64":
            bad = vector_secded64().scan(self._grouped_lanes()) if self._n_grouped else 0
        elif self.scheme == "secded128":
            bad = vector_secded128().scan(self._grouped_lanes()) if self._n_grouped else 0
        else:
            return int(np.count_nonzero(self._detect_raw()))
        if self.tail_size:
            bad += int(np.count_nonzero(parity64(f64_to_u64(self.raw[self._n_grouped :]))))
        return bad

    # ------------------------------------------------------------------
    def _data_mask_word(self) -> np.uint64:
        return np.uint64(~np.uint64((1 << self.reserved_bits) - 1))

    def _grouped_lanes(self) -> np.ndarray:
        """In-place uint64 lane view over the grouped prefix."""
        words = f64_to_u64(self.raw)
        return words[: self._n_grouped].reshape(-1, self.group)

    def _ensure_cache(self, trusted: bool = False) -> None:
        """Populate the plain cache from storage, verifying lineage first.

        Once populated, the cache is served decode-free and committed
        back to storage by :meth:`flush`, so corrupted stored data must
        never seed it silently — detection here is what stops a flip
        from being laundered into a fresh valid codeword by a later
        deferred partial-window commit.  ``trusted=True`` skips the
        verification when the caller is about to overwrite the entire
        cache anyway.
        """
        if self._cache is not None:
            return
        if not trusted and self._scan_raw():
            flags = self._detect_raw()
            raise DetectedUncorrectableError(
                "vector", np.flatnonzero(flags)[:8].tolist()
            )
        self._cache = self.values()
        self._cache_ro = self._cache.view()
        self._cache_ro.flags.writeable = False

    def _detect_raw(self) -> np.ndarray:
        """Per-codeword corrupted flags over raw storage (no flush)."""
        main = self._detect_main()
        if not self.tail_size:
            return main
        tail = parity64(f64_to_u64(self.raw[self._n_grouped :])).astype(bool)
        return np.concatenate([main, tail])

    def _guard_partial_lanes(self, lo: int, hi: int) -> None:
        """Refuse to re-bless unverified lane-mates of a partial write.

        A windowed store re-encodes whole codeword lanes; elements of a
        boundary lane the window does not overwrite contribute their
        current stored bits to the fresh checkword, which would convert
        a flip already sitting there into a valid codeword.  Those lanes
        are detect-checked first; corruption anywhere in them raises
        (conservatively — even a flip in the part being overwritten).
        """
        if self.group == 1:
            return  # single-element lanes are always fully overwritten
        alo, ahi = self._align_window(lo, hi)
        boundaries = []
        if alo < lo:
            boundaries.append(alo)
        if hi < self._n_grouped and ahi > hi:
            last = ahi - self.group
            if last not in boundaries:
                boundaries.append(last)
        bad = []
        words = f64_to_u64(self.raw)
        for start in boundaries:
            lane = words[start : start + self.group].reshape(1, self.group)
            if self._detect_lanes(lane):
                bad.append(start // self.group)
        if bad:
            raise DetectedUncorrectableError("vector", bad)

    def _detect_lanes(self, lanes: np.ndarray) -> bool:
        if self.scheme == "sed":
            return bool(parity64(lanes[:, 0]).any())
        if self.scheme == "secded64":
            return bool(vector_secded64().detect(lanes).any())
        if self.scheme == "secded128":
            return bool(vector_secded128().detect(lanes).any())
        return bool((self._crc_diff(lanes) != 0).any())

    def _mark_dirty(self, lo: int, hi: int) -> None:
        if self._dirty is None:
            self._dirty = (lo, hi)
        else:
            self._dirty = (min(self._dirty[0], lo), max(self._dirty[1], hi))

    def _align_window(self, lo: int, hi: int) -> tuple[int, int]:
        """Expand an element range to codeword-lane boundaries.

        Tail elements are 1-wide SED codewords, so only the grouped
        prefix needs alignment.
        """
        g = self.group
        if lo < self._n_grouped:
            lo = (lo // g) * g
        if hi <= self._n_grouped:
            hi = -(-hi // g) * g
        return lo, hi

    def _encode_window(self, lo: int, hi: int) -> tuple[int, int]:
        """Re-encode the codeword lanes covering elements ``[lo, hi)``."""
        lo, hi = self._align_window(lo, hi)
        ghi = min(hi, self._n_grouped)
        if lo < ghi:
            words = f64_to_u64(self.raw)
            self._encode_lanes(words[lo:ghi].reshape(-1, self.group))
        tlo = max(lo, self._n_grouped)
        if tlo < hi:
            tail = f64_to_u64(self.raw[tlo:hi])
            np.bitwise_and(tail, ~_ONE, out=tail)
            tail |= parity64(tail).astype(np.uint64)
        return lo, hi

    def _encode_all(self) -> None:
        if self.raw.size:
            self._encode_window(0, self.raw.size)

    def _encode_lanes(self, lanes: np.ndarray) -> None:
        if self.scheme == "sed":
            np.bitwise_and(lanes, ~_ONE, out=lanes)
            p = parity64(lanes[:, 0]).astype(np.uint64)
            lanes[:, 0] |= p
        elif self.scheme == "secded64":
            vector_secded64().encode(lanes)
        elif self.scheme == "secded128":
            vector_secded128().encode(lanes)
        else:  # crc32c
            self._encode_crc(lanes)

    def _refresh_cache_slice(self, lo: int, hi: int) -> None:
        """Mirror the masked decode of ``raw[lo:hi]`` into the cache."""
        if self._cache is None:
            return
        words = f64_to_u64(self.raw)
        cache_words = f64_to_u64(self._cache)
        ghi = min(hi, self._n_grouped)
        if lo < ghi:
            cache_words[lo:ghi] = words[lo:ghi] & self._data_mask_word()
        tlo = max(lo, self._n_grouped)
        if tlo < hi:
            cache_words[tlo:hi] = words[tlo:hi] & ~_ONE

    # -- scheme internals --------------------------------------------------
    def _detect_main(self) -> np.ndarray:
        if not self._n_grouped:
            return np.zeros(0, dtype=bool)
        lanes = self._grouped_lanes()
        if self.scheme == "sed":
            return parity64(lanes[:, 0]).astype(bool)
        if self.scheme == "secded64":
            return vector_secded64().detect(lanes)
        if self.scheme == "secded128":
            return vector_secded128().detect(lanes)
        return self._crc_diff(lanes) != 0

    def _check_main(self) -> CheckReport:
        lanes = self._grouped_lanes() if self._n_grouped else np.zeros((0, 1), np.uint64)
        if self.scheme == "sed":
            flags = parity64(lanes[:, 0]) if self._n_grouped else np.zeros(0, np.uint8)
            status = np.where(
                flags.astype(bool),
                np.uint8(CodewordStatus.UNCORRECTABLE),
                np.uint8(CodewordStatus.OK),
            )
            return CheckReport(status=status)
        if self.scheme == "secded64":
            return vector_secded64().check_and_correct(lanes)
        if self.scheme == "secded128":
            return vector_secded128().check_and_correct(lanes)
        return self._check_crc(lanes)

    # CRC32C over groups of four doubles: the stream is the 32 bytes of
    # the group with byte 0 (the 8 reserved LSBs) of each double zeroed;
    # CRC byte j is stored in byte 0 of double j.
    def _group_bytes(self, lanes: np.ndarray) -> np.ndarray:
        raw = np.ascontiguousarray(lanes).view(np.uint8).reshape(-1, 8 * self.group)
        stream = raw.copy()
        stream[:, 0::8] = 0
        return stream

    def _stored_crc(self, lanes: np.ndarray) -> np.ndarray:
        raw = np.ascontiguousarray(lanes).view(np.uint8).reshape(-1, 8 * self.group)
        stored = np.zeros(raw.shape[0], dtype=np.uint32)
        for j in range(4):
            stored |= raw[:, 8 * j].astype(np.uint32) << np.uint32(8 * j)
        return stored

    def _encode_crc(self, lanes: np.ndarray) -> None:
        crc = crc32c_batch(self._group_bytes(lanes))
        byte_mask = ~np.uint64(0xFF)
        for j in range(4):
            chunk = ((crc >> np.uint32(8 * j)) & np.uint32(0xFF)).astype(np.uint64)
            lanes[:, j] = (lanes[:, j] & byte_mask) | chunk

    def _crc_diff(self, lanes: np.ndarray) -> np.ndarray:
        return crc32c_batch(self._group_bytes(lanes)) ^ self._stored_crc(lanes)

    def _check_crc(self, lanes: np.ndarray) -> CheckReport:
        diff = self._crc_diff(lanes)
        status = np.zeros(lanes.shape[0], dtype=np.uint8)
        bad = np.flatnonzero(diff)
        if bad.size:
            corrector = corrector_for(8 * self.group)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            if max_errors == 0:  # 5ED: detection-only operating point
                status[bad] = CodewordStatus.UNCORRECTABLE
                return CheckReport(status=status)
            for g in bad:
                located = corrector.locate(int(diff[g]), max_errors=max_errors)
                # Stream bits 0..7 of each double are always zero, so a
                # located "flip" there cannot exist in memory: reject the
                # whole localisation before touching anything.
                if located is None or any(
                    bit < corrector.n_data_bits and (bit % 64) < 8 for bit in located
                ):
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    if bit < corrector.n_data_bits:
                        elem, b = divmod(bit, 64)
                        lanes[g, elem] ^= _ONE << np.uint64(b)
                    else:
                        j = bit - corrector.n_data_bits
                        lanes[g, j // 8] ^= _ONE << np.uint64(j % 8)
                status[g] = CodewordStatus.CORRECTED
        return CheckReport(status=status)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtectedVector(n={self.raw.size}, scheme={self.scheme!r})"


class ProtectedBlockVector(ProtectedVector):
    """A column-blocked ``(k, n)`` solver iterate behind one flat codeword store.

    Blocked multi-RHS solves carry ``k`` systems' worth of each CG
    iterate.  Protecting them as one flat vector of ``k * n`` elements
    keeps every ProtectedVector mechanism — the single dirty-window
    schedule, the verified plain cache, the engine's read/write
    accounting — shared across all ``k`` columns, which is exactly the
    amortization the blocked path exists for (one flush, one check, one
    cache populate per iterate instead of ``k``).

    The block rows are the systems (C-contiguous ``(k, n)``), so row
    ``j``'s elements are a contiguous slab of the flat store.  With
    group-1 schemes (``sed``, ``secded64``) every element is its own
    codeword and each row's protected content is bit-identical to a
    standalone :class:`ProtectedVector` over that row.  Grouped schemes
    (``secded128``, ``crc32c``) build codewords that straddle row
    boundaries when ``n`` is not a multiple of the group — still fully
    protected, but the codeword partition differs from ``k`` standalone
    vectors (a documented deviation; detection/correction strength is
    unchanged).
    """

    def __init__(self, values: np.ndarray, scheme: str = "secded64",
                 crc_mode: str = "2EC3ED"):
        block = np.ascontiguousarray(values, dtype=np.float64)
        if block.ndim != 2:
            raise ConfigurationError("ProtectedBlockVector expects a 2-D array")
        self.block_shape = block.shape
        super().__init__(block.reshape(-1), scheme, crc_mode)

    def values2d(self, out: np.ndarray | None = None) -> np.ndarray:
        """Computation-ready ``(k, n)`` copy (reserved LSBs masked)."""
        flat = None if out is None else out.reshape(-1)
        return self.values(out=flat).reshape(self.block_shape)

    def view2d(self) -> np.ndarray:
        """The cached read-only plain view, shaped ``(k, n)``."""
        return self.view().reshape(self.block_shape)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedBlockVector(shape={self.block_shape}, "
            f"scheme={self.scheme!r})"
        )
