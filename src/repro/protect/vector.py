"""Protected dense float64 vectors (paper §VI.B, Fig. 3).

Doubles have no spare bits, so redundancy is hidden in the
least-significant mantissa bits and **masked to zero whenever a value is
used for computation** — the paper's framework rule that bounds the
injected noise (relative error < 2^-44 for 8 reserved bits).

Scheme layouts:

========  =====  ==================  =============================
scheme    group  reserved LSBs/elem  codeword
========  =====  ==================  =============================
sed        1     1                   one double, parity in bit 0
secded64   1     8                   one double, 8 check bits
secded128  2     5                   two doubles, 9 check bits (+1 zero)
crc32c     4     8                   four doubles, CRC32C split 8/8/8/8
========  =====  ==================  =============================

A tail of ``len(v) % group`` elements falls back to per-element SED
(parity in bit 0) so coverage has no holes; this is a documented
deviation — the paper never states how non-multiple lengths are handled.

Writes are whole-array ``store`` operations: the solver computes on plain
working arrays and commits complete codewords, which is exactly the
paper's read/write-buffering strategy for avoiding read-modify-writes.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.bits.popcount import parity64
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import vector_secded64, vector_secded128
from repro.errors import ConfigurationError
from repro.protect.base import GROUPS, VECTOR_SCHEMES

_ONE = np.uint64(1)


class ProtectedVector:
    """A float64 vector with embedded software ECC.

    Parameters
    ----------
    values:
        Initial contents.  Copied; the reserved mantissa LSBs of the copy
        are overwritten with redundancy.
    scheme:
        One of ``"sed"``, ``"secded64"``, ``"secded128"``, ``"crc32c"``.
    """

    def __init__(self, values: np.ndarray, scheme: str = "secded64",
                 crc_mode: str = "2EC3ED"):
        if scheme not in VECTOR_SCHEMES:
            raise ConfigurationError(
                f"unknown vector scheme {scheme!r}; choose from {sorted(VECTOR_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)  # validate eagerly
        self.reserved_bits = VECTOR_SCHEMES[scheme]
        self.group = GROUPS["vector"][scheme]
        self.raw = np.array(values, dtype=np.float64, copy=True)
        if self.raw.ndim != 1:
            raise ConfigurationError("ProtectedVector expects a 1-D array")
        self._n_grouped = (self.raw.size // self.group) * self.group
        self._encode_all()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.raw.size

    @property
    def n_codewords(self) -> int:
        """Grouped codewords plus per-element SED tail codewords."""
        return self._n_grouped // self.group + (self.raw.size - self._n_grouped)

    @property
    def tail_size(self) -> int:
        return self.raw.size - self._n_grouped

    # -- read path ------------------------------------------------------
    def values(self, out: np.ndarray | None = None) -> np.ndarray:
        """Computation-ready copy: reserved LSBs masked to zero."""
        if out is None:
            out = np.empty_like(self.raw)
        words = f64_to_u64(self.raw)
        out_words = f64_to_u64(out)
        np.bitwise_and(words, self._data_mask_word(), out=out_words)
        if self.tail_size:
            tail = f64_to_u64(self.raw[self._n_grouped :])
            out_words[self._n_grouped :] = tail & ~_ONE
        return out

    # -- write path ------------------------------------------------------
    def store(self, new_values: np.ndarray) -> None:
        """Overwrite the whole vector and re-encode (no read-modify-write)."""
        new_values = np.asarray(new_values, dtype=np.float64)
        if new_values.shape != self.raw.shape:
            raise ValueError("store() requires a same-length vector")
        np.copyto(self.raw, new_values)
        self._encode_all()

    # -- integrity -------------------------------------------------------
    def detect(self) -> np.ndarray:
        """Boolean corrupted-flag per codeword, without correction."""
        main = self._detect_main()
        if not self.tail_size:
            return main
        tail = parity64(f64_to_u64(self.raw[self._n_grouped :])).astype(bool)
        return np.concatenate([main, tail])

    def check(self, correct: bool = True) -> CheckReport:
        """Full integrity check; single-bit errors repaired when possible."""
        if not correct:
            flags = self.detect()
            status = np.where(
                flags, np.uint8(CodewordStatus.UNCORRECTABLE), np.uint8(CodewordStatus.OK)
            )
            return CheckReport(status=status)
        main = self._check_main()
        if not self.tail_size:
            return main
        tail_flags = parity64(f64_to_u64(self.raw[self._n_grouped :]))
        tail_status = np.where(
            tail_flags.astype(bool),
            np.uint8(CodewordStatus.UNCORRECTABLE),
            np.uint8(CodewordStatus.OK),
        )
        return CheckReport(status=np.concatenate([main.status, tail_status]))

    # ------------------------------------------------------------------
    def _data_mask_word(self) -> np.uint64:
        return np.uint64(~np.uint64((1 << self.reserved_bits) - 1))

    def _grouped_lanes(self) -> np.ndarray:
        """In-place uint64 lane view over the grouped prefix."""
        words = f64_to_u64(self.raw)
        return words[: self._n_grouped].reshape(-1, self.group)

    def _encode_all(self) -> None:
        if self._n_grouped:
            lanes = self._grouped_lanes()
            if self.scheme == "sed":
                np.bitwise_and(lanes, ~_ONE, out=lanes)
                p = parity64(lanes[:, 0]).astype(np.uint64)
                lanes[:, 0] |= p
            elif self.scheme == "secded64":
                vector_secded64().encode(lanes)
            elif self.scheme == "secded128":
                vector_secded128().encode(lanes)
            else:  # crc32c
                self._encode_crc(lanes)
        if self.tail_size:
            tail = f64_to_u64(self.raw[self._n_grouped :])
            np.bitwise_and(tail, ~_ONE, out=tail)
            tail |= parity64(tail).astype(np.uint64)

    # -- scheme internals --------------------------------------------------
    def _detect_main(self) -> np.ndarray:
        if not self._n_grouped:
            return np.zeros(0, dtype=bool)
        lanes = self._grouped_lanes()
        if self.scheme == "sed":
            return parity64(lanes[:, 0]).astype(bool)
        if self.scheme == "secded64":
            return vector_secded64().detect(lanes)
        if self.scheme == "secded128":
            return vector_secded128().detect(lanes)
        return self._crc_diff(lanes) != 0

    def _check_main(self) -> CheckReport:
        lanes = self._grouped_lanes() if self._n_grouped else np.zeros((0, 1), np.uint64)
        if self.scheme == "sed":
            flags = parity64(lanes[:, 0]) if self._n_grouped else np.zeros(0, np.uint8)
            status = np.where(
                flags.astype(bool),
                np.uint8(CodewordStatus.UNCORRECTABLE),
                np.uint8(CodewordStatus.OK),
            )
            return CheckReport(status=status)
        if self.scheme == "secded64":
            return vector_secded64().check_and_correct(lanes)
        if self.scheme == "secded128":
            return vector_secded128().check_and_correct(lanes)
        return self._check_crc(lanes)

    # CRC32C over groups of four doubles: the stream is the 32 bytes of
    # the group with byte 0 (the 8 reserved LSBs) of each double zeroed;
    # CRC byte j is stored in byte 0 of double j.
    def _group_bytes(self, lanes: np.ndarray) -> np.ndarray:
        raw = np.ascontiguousarray(lanes).view(np.uint8).reshape(-1, 8 * self.group)
        stream = raw.copy()
        stream[:, 0::8] = 0
        return stream

    def _stored_crc(self, lanes: np.ndarray) -> np.ndarray:
        raw = np.ascontiguousarray(lanes).view(np.uint8).reshape(-1, 8 * self.group)
        stored = np.zeros(raw.shape[0], dtype=np.uint32)
        for j in range(4):
            stored |= raw[:, 8 * j].astype(np.uint32) << np.uint32(8 * j)
        return stored

    def _encode_crc(self, lanes: np.ndarray) -> None:
        crc = crc32c_batch(self._group_bytes(lanes))
        byte_mask = ~np.uint64(0xFF)
        for j in range(4):
            chunk = ((crc >> np.uint32(8 * j)) & np.uint32(0xFF)).astype(np.uint64)
            lanes[:, j] = (lanes[:, j] & byte_mask) | chunk

    def _crc_diff(self, lanes: np.ndarray) -> np.ndarray:
        return crc32c_batch(self._group_bytes(lanes)) ^ self._stored_crc(lanes)

    def _check_crc(self, lanes: np.ndarray) -> CheckReport:
        diff = self._crc_diff(lanes)
        status = np.zeros(lanes.shape[0], dtype=np.uint8)
        bad = np.flatnonzero(diff)
        if bad.size:
            corrector = corrector_for(8 * self.group)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            if max_errors == 0:  # 5ED: detection-only operating point
                status[bad] = CodewordStatus.UNCORRECTABLE
                return CheckReport(status=status)
            for g in bad:
                located = corrector.locate(int(diff[g]), max_errors=max_errors)
                # Stream bits 0..7 of each double are always zero, so a
                # located "flip" there cannot exist in memory: reject the
                # whole localisation before touching anything.
                if located is None or any(
                    bit < corrector.n_data_bits and (bit % 64) < 8 for bit in located
                ):
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    if bit < corrector.n_data_bits:
                        elem, b = divmod(bit, 64)
                        lanes[g, elem] ^= _ONE << np.uint64(b)
                    else:
                        j = bit - corrector.n_data_bits
                        lanes[g, j // 8] ^= _ONE << np.uint64(j % 8)
                status[g] = CodewordStatus.CORRECTED
        return CheckReport(status=status)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtectedVector(n={self.raw.size}, scheme={self.scheme!r})"
