"""`ProtectionSession`: one engine, many solves, cross-step dirty windows.

The deferred-verification engine amortises integrity work *within* one
solve; a session amortises it *across* solves.  TeaLeaf-style drivers
solve one linear system per time-step, and rebuilding the engine per step
forfeits the schedule's memory: every step restarts the check phase and
pays a mandatory sweep even when the window has barely opened.  A session
instead owns a single :class:`~repro.protect.engine.DeferredVerificationEngine`
for its whole lifetime:

* :meth:`solve` wraps the matrix per the config, runs the registry's
  engine-threaded solver, and — crucially — *skips* the per-solve
  ``finalize``: dirty windows and check phases carry over into the next
  solve, so a window opened near the end of time-step *k* keeps
  accumulating through time-step *k+1*;
* :meth:`end_step` is the paper's mandatory end-of-time-step sweep
  (§VI.A.2): every dirty window is flushed, every region read since its
  last check is re-verified, the regions wrapped since the previous sweep
  are released, and the schedule phase restarts.

Callers decide the sweep cadence — after every step for the paper's
semantics, or every N steps for engine-scheduled driver windows that span
time-steps (the TeaLeaf driver's ``tl_step_window`` deck knob).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.protect.config import ProtectionConfig
from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import PolicyStats
from repro.protect.vector import ProtectedVector


class ProtectionSession:
    """Owns one engine across many solves; sweeps on :meth:`end_step`.

    Parameters
    ----------
    config:
        The :class:`ProtectionConfig` driving every solve in the session.
        Defaults to :meth:`ProtectionConfig.paper_default`.
    """

    def __init__(self, config: ProtectionConfig | None = None):
        self.config = config if config is not None else ProtectionConfig.paper_default()
        self.engine: DeferredVerificationEngine | None = (
            self.config.engine() if self.config.enabled else None
        )
        self._transient: list = []
        self.steps_completed = 0

    # -- introspection --------------------------------------------------
    @property
    def policy(self):
        """The session-wide scheduler (``None`` when protection is off)."""
        return self.engine.policy if self.engine is not None else None

    @property
    def stats(self) -> PolicyStats | None:
        """Cumulative policy counters across every solve so far."""
        return self.engine.policy.stats if self.engine is not None else None

    @property
    def recovery(self):
        """The session's :class:`~repro.recover.manager.RecoveryManager`.

        ``None`` when protection is off or the config's recovery policy
        is absent / ``"raise"``.  Shared by every solve in the session;
        the retry budget resets per solve, the stats accumulate.
        """
        return self.engine.recovery if self.engine is not None else None

    def pending_windows(self) -> int:
        """Dirty windows currently open across the session's regions.

        Non-zero between :meth:`solve` and :meth:`end_step` is exactly the
        cross-step deferral in action: buffered writes from a finished
        solve that have not been re-encoded yet.
        """
        return sum(
            1
            for region in self._transient
            if isinstance(region, ProtectedVector) and region.dirty_window is not None
        )

    # -- region lifecycle -----------------------------------------------
    def track(self, region) -> None:
        """Mark a region for release at the next :meth:`end_step` (once)."""
        if all(existing is not region for existing in self._transient):
            self._transient.append(region)

    def wrap_matrix(self, matrix) -> ProtectedCSRMatrix:
        """Encode a matrix per the config and track it for the next sweep.

        Pre-wrapped matrices are used as-is but still tracked: the solve
        registers them with the long-lived engine, so without release at
        ``end_step`` a session looping over fresh matrices would sweep
        (and keep) every dead one forever.  A caller reusing one matrix
        across steps loses nothing — the next solve re-registers it.
        """
        if isinstance(matrix, ProtectedCSRMatrix):
            self.track(matrix)
            return matrix
        pmat = self.config.wrap_matrix(matrix)
        self.track(pmat)
        return pmat

    # -- the unified solve ----------------------------------------------
    def solve(self, A, b: np.ndarray, x0: np.ndarray | None = None, *,
              method: str = "cg", eps: float = 1e-15, max_iters: int = 10_000,
              **kwargs):
        """Run one engine-threaded solve under the session's schedule.

        ``A`` may be a plain :class:`~repro.csr.matrix.CSRMatrix` (wrapped
        per the config) or an already-protected matrix.  The solve's
        mandatory sweep is deferred to :meth:`end_step`, so the engine's
        dirty windows survive the solve boundary.

        A solve aborted by an integrity error aborts the whole deferral
        window: *every* tracked region is released before re-raising,
        because once corruption is detected anywhere in the window the
        results produced since the last sweep are unverified and must be
        recomputed from pristine data.  Keeping any of them registered
        would poison every later sweep; releasing them lets the paper's
        recovery story (re-encode, retry, no checkpoint restart)
        continue on this session.
        """
        from repro.solvers.registry import get_method, run_plain

        if b is not None and np.ndim(b) == 2:
            return self._solve_block(A, b, x0, method=method, eps=eps,
                                     max_iters=max_iters, **kwargs)
        runner = get_method(method)
        if self.engine is None:
            return run_plain(runner, A, b, x0, eps=eps, max_iters=max_iters, **kwargs)
        try:
            pmat = self.wrap_matrix(A)
            return runner.protected(
                pmat, b, x0, eps=eps, max_iters=max_iters,
                engine=self.engine, vector_scheme=self.config.vector_scheme,
                session=self, **kwargs,
            )
        except (DetectedUncorrectableError, BoundsViolationError):
            self._release_all()
            raise

    def _solve_block(self, A, B, X0=None, *, method="cg", eps=1e-15,
                     max_iters=10_000, **kwargs):
        """Route a 2-D RHS block through the session's engine.

        Mirrors :meth:`solve`: the blocked CG runner shares the session
        engine (sweep deferred to :meth:`end_step`), anything the blocked
        runner cannot take falls back to sequential per-column solves
        under this same session, and an aborting integrity error releases
        the whole deferral window before re-raising.
        """
        from repro.solvers.block import (
            _sequential_block,
            block_cg_solve,
            block_solve_enabled,
            protected_block_cg_run,
        )

        if method != "cg" or kwargs or not block_solve_enabled():
            return _sequential_block(A, B, X0, method=method, protection=self,
                                     eps=eps, max_iters=max_iters, **kwargs)
        if self.engine is None:
            plain_A = A.to_csr() if isinstance(A, ProtectedCSRMatrix) else A
            return block_cg_solve(plain_A, B, X0, eps=eps, max_iters=max_iters)
        try:
            pmat = self.wrap_matrix(A)
            return protected_block_cg_run(
                pmat, B, X0, eps=eps, max_iters=max_iters,
                engine=self.engine, vector_scheme=self.config.vector_scheme,
                session=self,
            )
        except (DetectedUncorrectableError, BoundsViolationError):
            self._release_all()
            raise

    def retire_step(self) -> None:
        """Verify-and-release the window's finished regions early.

        With sweeps deferred across steps (driver step windows), per-step
        regions would otherwise pile up until the window sweep: memory
        and sweep cost grow with the window length, and a late flip in
        long-dead storage could abort the run spuriously.  Retiring runs
        each finished region's full check *now* (the same detection
        guarantee, delivered earlier) and unregisters it; vectors with
        open dirty windows keep spanning the boundary until the sweep.
        """
        if self.engine is None:
            return
        kept, retired = [], []
        for region in self._transient:
            if isinstance(region, ProtectedVector) and region.dirty_window is not None:
                kept.append(region)
            else:
                retired.append(region)
        self._transient = kept
        try:
            for region in retired:
                if isinstance(region, ProtectedCSRMatrix):
                    if self.engine.policy.interval != 0:
                        self.engine.verify_matrix(region)
                else:
                    self.engine.verify_vector(region)
        except (DetectedUncorrectableError, BoundsViolationError):
            self._release_all()
            raise
        finally:
            for region in retired:
                self.engine.unregister(region)

    def abort_step(self) -> None:
        """Reset the schedule after a failed solve, without counting a step.

        :meth:`solve` already released every tracked region when the
        integrity error unwound, so there is nothing left to sweep; what
        remains is restarting the check phase so a caller that recovers
        at *step* granularity (rebuild inputs from pristine state, redo
        the step — the TeaLeaf driver's mode) re-enters a clean window
        instead of inheriting the failed one's counters mid-phase.
        """
        if self.engine is None:
            return
        self._release_all()
        self.engine.policy.reset()

    def end_step(self) -> None:
        """The mandatory sweep: flush, verify, release, restart the phase.

        The tracked regions are released even when the sweep detects
        uncorrectable damage — a DUE here ends the window either way,
        and keeping the dead regions registered would make every later
        sweep re-raise from storage nothing reads any more.
        """
        if self.engine is None:
            self.steps_completed += 1
            return
        try:
            self.engine.finalize()
        finally:
            self._release_all()
            self.engine.policy.reset()
        self.steps_completed += 1

    def _release_all(self) -> None:
        for region in self._transient:
            self.engine.unregister(region)
        self._transient.clear()

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "ProtectionSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # An in-flight integrity error already aborted the step (and
        # solve() released the failed regions); anything else — clean
        # exit or an unrelated exception — still owes the completed
        # solves their mandatory sweep, so earlier results the caller
        # keeps were verified per §VI.A.2.  A DUE raised here propagates
        # with the original exception chained.
        if exc_type is not None and issubclass(
            exc_type, (DetectedUncorrectableError, BoundsViolationError)
        ):
            return
        self.end_step()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectionSession(config={self.config!r}, "
            f"steps_completed={self.steps_completed}, "
            f"pending_windows={self.pending_windows()})"
        )
