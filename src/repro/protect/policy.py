"""Less-frequent correctness checking (paper §VI.A.2).

The sparse matrix does not change during a CG solve, so an error detected
at iteration *k* was necessarily present since it appeared — checking
every *N* accesses instead of every access trades detection latency for
runtime.  Between full checks a cheap *range check* still guards every
index so a flipped bit can never fault the process, and one mandatory
full sweep runs at the end of each time-step so no error escapes.

The paper notes the trade-off: deferred checks forfeit correction (the
corruption may have been consumed up to N-1 times already), so interval
checking "should only be used with Error Detecting Codes" — the policy
therefore exposes ``correct`` so callers can run EDC-style.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class PolicyStats:
    """Counters for overhead accounting (reported by the benchmarks)."""

    full_checks: int = 0
    bounds_checks: int = 0
    corrected: int = 0
    uncorrectable: int = 0

    def reset(self) -> None:
        self.full_checks = 0
        self.bounds_checks = 0
        self.corrected = 0
        self.uncorrectable = 0


class CheckPolicy:
    """Decides, per matrix access, between a full check and a range check.

    Parameters
    ----------
    interval:
        ``1`` checks on every access (the paper's default mode);
        ``N > 1`` checks on every N-th access with range checks between;
        ``0`` disables integrity checks entirely (baseline).
    correct:
        Attempt in-place correction during full checks.  The paper
        recommends ``False`` (detection-only) whenever ``interval > 1``.
    """

    def __init__(self, interval: int = 1, correct: bool = True):
        if interval < 0:
            raise ValueError("interval must be >= 0")
        self.interval = int(interval)
        self.correct = bool(correct)
        self._access = 0
        self.stats = PolicyStats()

    def should_check(self) -> bool:
        """Advance the access counter; True when a full check is due."""
        if self.interval == 0:
            return False
        due = (self._access % self.interval) == 0
        self._access += 1
        return due

    def end_of_step(self) -> bool:
        """True when a mandatory end-of-time-step sweep is required.

        Needed whenever intermediate accesses may have skipped checks
        (interval > 1) — "just in case N does not divide the number of
        iterations performed".
        """
        return self.interval > 1

    def reset(self) -> None:
        """Restart the access phase (e.g. at the beginning of a time-step)."""
        self._access = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CheckPolicy(interval={self.interval}, correct={self.correct})"
