"""Less-frequent correctness checking (paper §VI.A.2), per region.

The sparse matrix does not change during a CG solve, so an error detected
at iteration *k* was necessarily present since it appeared — checking
every *N* accesses instead of every access trades detection latency for
runtime.  Between full checks a cheap *range check* still guards every
index so a flipped bit can never fault the process, and one mandatory
full sweep runs at the end of each time-step so no error escapes.

The policy is a *per-region scheduler*: the matrix regions follow
``interval`` (counted per matrix access, as in the paper's Figs. 6-8)
while the dense solver vectors follow ``vector_interval`` (counted per
solver iteration).  When ``vector_interval > 1`` the engine additionally
defers re-encoding of written vectors (dirty-window write buffering, see
:mod:`repro.protect.engine`), controlled by ``defer_writes``.

The paper notes the trade-off: deferred checks forfeit correction (the
corruption may have been consumed up to N-1 times already), so interval
checking "should only be used with Error Detecting Codes" — the policy
therefore exposes ``correct`` so callers can run EDC-style.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class PolicyStats:
    """Counters for overhead accounting (reported by the benchmarks)."""

    full_checks: int = 0
    stripe_checks: int = 0
    bounds_checks: int = 0
    vector_checks: int = 0
    cached_reads: int = 0
    deferred_stores: int = 0
    dirty_flushes: int = 0
    corrected: int = 0
    uncorrectable: int = 0
    #: Products whose due check ran fused inside the SpMV itself.
    fused_products: int = 0
    #: End-of-step matrix sweeps skipped because fused coverage was current.
    sweeps_skipped: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, 0)


class CheckPolicy:
    """Decides, per region access, between a full check and a range check.

    Parameters
    ----------
    interval:
        Matrix schedule.  ``1`` checks on every access (the paper's
        default mode); ``N > 1`` checks on every N-th access with range
        checks between; ``0`` disables matrix integrity checks entirely
        (baseline).
    correct:
        Attempt in-place correction during full checks.  The paper
        recommends ``False`` (detection-only) whenever checks are
        deferred (``interval > 1``).
    vector_interval:
        Dense-vector schedule, counted per solver iteration.  Defaults to
        ``interval`` (or ``1`` when the matrix checks are disabled), so a
        single knob defers the whole solve uniformly.
    defer_writes:
        Buffer vector writes in the plain cache and re-encode dirty
        codeword windows only at scheduled checks.  Defaults to ``True``
        exactly when ``vector_interval > 1``.
    stripes:
        Striped matrix verification: each due matrix check verifies one
        of ``stripes`` round-robin codeword slices instead of the whole
        matrix, so full coverage takes ``interval * stripes`` accesses —
        a strict generalisation of the paper's interval model
        (``stripes=1`` is exactly §VI.A.2).  The end-of-step sweep is
        always a full check regardless.
    fused_verify:
        Run due matrix checks *inside* the SpMV (verify-in-SpMV): the
        backend screens each codeword on the gather traffic the product
        already pays for, instead of a separate sweep pass before the
        multiply.  Detection guarantees are unchanged — every due access
        still verifies the same codewords — but the engine additionally
        tracks *consumption coverage*: when the last access of a step
        verified everything it consumed and nothing was consumed
        unverified afterwards, the end-of-step sweep skips the matrix
        regions (they are recorded in ``stats.sweeps_skipped``).
        Engine-level; the eager kernel path ignores it.
    """

    def __init__(
        self,
        interval: int = 1,
        correct: bool = True,
        vector_interval: int | None = None,
        defer_writes: bool | None = None,
        stripes: int = 1,
        fused_verify: bool = False,
    ):
        if interval < 0:
            raise ValueError("interval must be >= 0")
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.interval = int(interval)
        self.stripes = int(stripes)
        self.correct = bool(correct)
        if vector_interval is None:
            vector_interval = self.interval if self.interval >= 1 else 1
        if vector_interval < 0:
            raise ValueError("vector_interval must be >= 0")
        self.vector_interval = int(vector_interval)
        if defer_writes is None:
            defer_writes = self.vector_interval > 1
        self.defer_writes = bool(defer_writes)
        self.fused_verify = bool(fused_verify)
        self._access = 0
        self._vector_access = 0
        self._stripe_pos = 0
        self.stats = PolicyStats()

    def should_check(self) -> bool:
        """Advance the matrix access counter; True when a full check is due."""
        if self.interval == 0:
            return False
        due = (self._access % self.interval) == 0
        self._access += 1
        return due

    def next_stripe(self) -> int:
        """Advance the round-robin stripe cursor for single-matrix callers.

        The eager kernel path (:func:`repro.protect.kernels.verify_matrix`)
        checks one matrix per policy, so the rotation can live here; the
        engine keeps per-matrix cursors of its own.
        """
        k = self._stripe_pos
        self._stripe_pos = (k + 1) % self.stripes
        return k

    def vector_check_due(self) -> bool:
        """Advance the vector iteration counter; True when a check is due."""
        if self.vector_interval == 0:
            return False
        due = (self._vector_access % self.vector_interval) == 0
        self._vector_access += 1
        return due

    def end_of_step(self) -> bool:
        """True when a mandatory end-of-time-step sweep is required.

        Needed whenever intermediate accesses may have skipped checks or
        deferred re-encoding — "just in case N does not divide the number
        of iterations performed".
        """
        return (
            self.interval > 1
            or self.vector_interval > 1
            or self.defer_writes
            or self.stripes > 1
        )

    def reset(self) -> None:
        """Restart the access phase (e.g. at the beginning of a time-step)."""
        self._access = 0
        self._vector_access = 0
        self._stripe_pos = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CheckPolicy(interval={self.interval}, correct={self.correct}, "
            f"vector_interval={self.vector_interval}, "
            f"defer_writes={self.defer_writes}, stripes={self.stripes}, "
            f"fused_verify={self.fused_verify})"
        )
