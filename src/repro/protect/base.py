"""Shared scheme tables and size-limit arithmetic for protected containers.

Each scheme's *limits* come straight from the paper (§VI.A): redundancy is
stolen from index bits, so protecting data constrains how large the matrix
may grow.  The containers enforce these limits at encode time.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

#: CSR element schemes (Fig. 1) and the column-index bits they reserve.
ELEMENT_SCHEMES: dict[str, int] = {
    "sed": 1,        # top bit of the column index
    "secded64": 8,   # top byte
    "secded128": 8,  # top byte (codeword spans two elements)
    "crc32c": 8,     # top byte (checksum spread over the row's first four)
}

#: Row-pointer schemes (Fig. 2) and the bits reserved per 32-bit entry.
ROWPTR_SCHEMES: dict[str, int] = {
    "sed": 1,        # top bit
    "secded64": 4,   # top nibble, codeword = 2 entries
    "secded128": 4,  # top nibble, codeword = 4 entries
    "crc32c": 4,     # top nibble, codeword = 8 entries
}

#: Dense-vector schemes (Fig. 3) and the mantissa LSBs reserved per double.
VECTOR_SCHEMES: dict[str, int] = {
    "sed": 1,
    "secded64": 8,
    "secded128": 5,  # codeword = 2 doubles
    "crc32c": 8,     # codeword = 4 doubles
}

#: Elements grouped into one codeword, per structure kind and scheme.
GROUPS: dict[str, dict[str, int]] = {
    "element": {"sed": 1, "secded64": 1, "secded128": 2, "crc32c": 0},  # 0 = per row
    "rowptr": {"sed": 1, "secded64": 2, "secded128": 4, "crc32c": 8},
    "vector": {"sed": 1, "secded64": 1, "secded128": 2, "crc32c": 4},
}


def _check_scheme(scheme: str, table: dict[str, int], kind: str) -> None:
    if scheme not in table:
        raise ConfigurationError(
            f"unknown {kind} scheme {scheme!r}; choose from {sorted(table)}"
        )


def column_limit(scheme: str) -> int:
    """Largest usable column count for a CSR-element scheme.

    SED leaves 31 index bits (``2**31 - 1`` columns); the byte-stealing
    schemes leave 24 (``2**24 - 1`` columns) — paper §VI.A.
    """
    _check_scheme(scheme, ELEMENT_SCHEMES, "element")
    return (1 << (32 - ELEMENT_SCHEMES[scheme])) - 1


def rowptr_value_limit(scheme: str) -> int:
    """Largest representable row-pointer value (i.e. nnz bound), §VI.A.1."""
    _check_scheme(scheme, ROWPTR_SCHEMES, "rowptr")
    return (1 << (32 - ROWPTR_SCHEMES[scheme])) - 1


def require_fits(array: np.ndarray, limit: int, what: str) -> None:
    """Raise :class:`ConfigurationError` when values exceed a scheme limit."""
    if array.size and int(array.max()) > limit:
        raise ConfigurationError(
            f"{what} value {int(array.max())} exceeds the scheme limit {limit}"
        )


def resolve_codeword_window(
    window: tuple[int, int] | None, n_codewords: int
) -> tuple[int, int]:
    """Clamp-check a codeword-range ``(lo, hi)`` window for stripe checks.

    ``None`` means the whole region; anything outside ``[0, n_codewords]``
    raises ``ValueError``.  Shared by every windowed container check so
    window semantics cannot diverge between regions.
    """
    if window is None:
        return 0, n_codewords
    lo, hi = int(window[0]), int(window[1])
    if not 0 <= lo <= hi <= n_codewords:
        raise ValueError(
            f"window {window!r} out of range for {n_codewords} codewords"
        )
    return lo, hi
