"""Protection of CSR ``(value, column index)`` elements (paper §VI.A, Fig. 1).

Each CSR element is a 96-bit structure: the float64 non-zero paired with
its uint32 column index.  Redundancy lives in the *unused top bits of the
index*, so the float values keep full precision and no extra storage is
required — at the cost of a column-count limit:

========== ===================== ========================== ===========
scheme      codeword              redundancy placement       max columns
========== ===================== ========================== ===========
sed         one element (96 b)    index bit 31               2**31 - 1
secded64    one element (96 b)    index bits 24..31          2**24 - 1
secded128   two elements (192 b)  both index top bytes       2**24 - 1
crc32c      one matrix row        top bytes of the row's     2**24 - 1
                                  first four indices
========== ===================== ========================== ===========

The CRC32C stream layout per row of ``L`` elements is block-wise: the
``8L`` value bytes, then the ``4L`` index bytes with the four checksum
bytes masked out.  Top bytes of elements 4..L-1 are carried *raw* in the
stream so flips there are still covered (they are zero for any in-limit
matrix).  Rows are processed grouped by length, one batched CRC per
group, which is the NumPy stand-in for the paper's SIMD/GPU parallel CRC.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.bits.packing import pack_csr_element_lanes, unpack_csr_element_lanes
from repro.bits.popcount import parity64
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import csr_element_pair_secded128, csr_element_secded
from repro.errors import ConfigurationError
from repro.protect.base import (
    ELEMENT_SCHEMES,
    column_limit,
    require_fits,
    resolve_codeword_window,
)

_ONE = np.uint64(1)
_LOW24 = np.uint32(0x00FFFFFF)
_LOW31 = np.uint32(0x7FFFFFFF)


class ProtectedCSRElements:
    """The protected ``(values, colidx)`` pair of a CSR matrix.

    Owns (aliases) the two arrays; ``colidx`` carries embedded redundancy
    after construction and must be read through :meth:`colidx_clean`.
    ``values`` is never altered by encoding (only by corrections).
    """

    def __init__(
        self,
        values: np.ndarray,
        colidx: np.ndarray,
        rowptr: np.ndarray,
        n_cols: int,
        scheme: str = "secded64",
        crc_mode: str = "2EC3ED",
    ):
        if scheme not in ELEMENT_SCHEMES:
            raise ConfigurationError(
                f"unknown element scheme {scheme!r}; choose from {sorted(ELEMENT_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)  # validate eagerly
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint32)
        self.rowptr = np.ascontiguousarray(rowptr, dtype=np.uint32)
        self.n_cols = int(n_cols)
        limit = column_limit(scheme)
        if self.n_cols > limit:
            raise ConfigurationError(
                f"{scheme}: matrix has {self.n_cols} columns, limit is {limit}"
            )
        require_fits(self.colidx, limit, "column index")
        if scheme == "crc32c":
            lengths = self.rowptr.astype(np.int64)
            lengths = lengths[1:] - lengths[:-1]
            if lengths.size and int(lengths.min()) < 4:
                raise ConfigurationError(
                    "crc32c row protection needs >= 4 non-zeros per row "
                    f"(found a row with {int(lengths.min())})"
                )
            self._length_groups = _group_rows_by_length(lengths)
        self.nnz = self.values.size
        # Persistent lane buffers (see _lanes_synced/_pair_lanes): the
        # uint64 codeword views every check runs over, allocated once and
        # refilled in place so no check materialises an (nnz, L) array.
        self._lane_buf: np.ndarray | None = None
        self._pair_buf: np.ndarray | None = None
        self.encode()

    # ------------------------------------------------------------------
    @property
    def n_codewords(self) -> int:
        """Number of ECC codewords covering this container."""
        if self.scheme == "crc32c":
            return self.rowptr.size - 1
        if self.scheme == "secded128":
            return (self.nnz + 1) // 2
        return self.nnz


    @property
    def index_mask(self) -> np.uint32:
        """Mask selecting the *data* bits of a stored column index."""
        return _LOW31 if self.scheme == "sed" else _LOW24

    def fused_code(self):
        """The per-element SECDED code when this container is fusible.

        Verify-in-SpMV needs a codeword that is exactly one
        ``(value, colidx)`` pair — the product consumes elements, so
        only then can each codeword be screened on the element's own
        gather traffic.  That is the secded64 layout; schemes whose
        codeword spans two elements (secded128) or a whole row (crc32c,
        and sed's parity-only codeword has no syndrome kernel) return
        ``None`` and take the verify-then-multiply fallback.
        """
        if self.scheme == "secded64":
            return csr_element_secded()
        return None

    def colidx_clean(self, out: np.ndarray | None = None) -> np.ndarray:
        """Column indices with redundancy stripped (safe to gather with)."""
        if out is None:
            return self.colidx & self.index_mask
        np.bitwise_and(self.colidx, self.index_mask, out=out)
        return out

    def colidx_clean64(self, out: np.ndarray) -> np.ndarray:
        """Cleaned indices widened into a caller-owned int64 array.

        Fills the persistent pre-converted gather index the decode-free
        SpMV path consumes, with no intermediate uint32 temporaries.
        """
        np.copyto(out, self.colidx, casting="same_kind")
        np.bitwise_and(out, np.int64(self.index_mask), out=out)
        return out

    # ------------------------------------------------------------------
    def _lanes_synced(self, lo: int = 0, hi: int | None = None) -> np.ndarray:
        """The persistent ``(nnz, 2)`` uint64 lane view, refreshed in place.

        Only elements ``[lo, hi)`` are re-synced from live storage, so a
        stripe check touches exactly its stripe.  The buffer itself is
        allocated once and reused by every encode/detect/check.
        """
        if self._lane_buf is None:
            self._lane_buf = np.empty((self.nnz, 2), dtype=np.uint64)
        hi = self.nnz if hi is None else hi
        pack_csr_element_lanes(
            self.values[lo:hi], self.colidx[lo:hi], out=self._lane_buf[lo:hi]
        )
        return self._lane_buf[lo:hi]

    def encode(self) -> None:
        """(Re)compute all redundancy from current values/indices."""
        if self.scheme == "sed":
            data = self.colidx & _LOW31
            p = (
                parity64(f64_to_u64(self.values))
                ^ (np.bitwise_count(data) & np.uint8(1))
            ).astype(np.uint32)
            self.colidx[:] = data | (p << np.uint32(31))
        elif self.scheme == "secded64":
            lanes = self._lanes_synced()
            csr_element_secded().encode(lanes)
            np.copyto(self.colidx, lanes[:, 1], casting="same_kind")
        elif self.scheme == "secded128":
            lanes = self._pair_lanes()
            csr_element_pair_secded128().encode(lanes)
            self._store_pair_lanes(lanes)
            tail = self._tail_lanes()
            if tail is not None:
                csr_element_secded().encode(tail)
                _, self.colidx[-1:] = unpack_csr_element_lanes(tail)
        else:
            self._encode_crc()

    def detect(self) -> np.ndarray:
        """Boolean corrupted-flag per codeword (detection only)."""
        if self.scheme == "sed":
            p = parity64(f64_to_u64(self.values)) ^ (
                np.bitwise_count(self.colidx) & np.uint8(1)
            )
            return p.astype(bool)
        if self.scheme == "secded64":
            return csr_element_secded().detect(self._lanes_synced())
        if self.scheme == "secded128":
            flags = csr_element_pair_secded128().detect(self._pair_lanes())
            tail = self._tail_lanes()
            if tail is not None:
                flags = np.concatenate([flags, csr_element_secded().detect(tail)])
            return flags
        diffs = self._crc_diff_all()
        flags = np.zeros(self.rowptr.size - 1, dtype=bool)
        for rows, _, diff in diffs:
            flags[rows] = diff != 0
        return flags

    def check(
        self, correct: bool = True, window: tuple[int, int] | None = None
    ) -> CheckReport:
        """Integrity check; corrects in place when possible.

        ``window`` restricts the check to the codeword range ``[lo, hi)``
        (the engine's round-robin stripes); the report then covers only
        those codewords.  Clean data returns a compact all-OK report
        without materialising per-codeword status.
        """
        lo, hi = resolve_codeword_window(window, self.n_codewords)
        if hi <= lo:
            return CheckReport.all_ok(0)
        if self.scheme == "sed":
            return self._check_sed(lo, hi)
        if self.scheme == "secded64":
            return self._check_secded64(correct, lo, hi)
        if self.scheme == "secded128":
            return self._check_secded128(correct, lo, hi)
        return self._check_crc(correct, lo, hi)

    # -- sed / secded64 internals -------------------------------------------
    def _check_sed(self, lo: int, hi: int) -> CheckReport:
        p = parity64(f64_to_u64(self.values[lo:hi])) ^ (
            np.bitwise_count(self.colidx[lo:hi]) & np.uint8(1)
        )
        return CheckReport.from_flags(p.astype(bool))

    def _check_secded64(self, correct: bool, lo: int, hi: int) -> CheckReport:
        lanes = self._lanes_synced(lo, hi)
        code = csr_element_secded()
        if not correct:
            return code.detect_report(lanes)
        report = code.check_and_correct(lanes)
        self._write_back_elements(lanes, report.corrected_indices(), offset=lo)
        return report

    # -- secded128 internals ------------------------------------------------
    def _pair_lanes(self, lo: int = 0, hi: int | None = None) -> np.ndarray:
        """Persistent pair-codeword lanes for pairs ``[lo, hi)``."""
        n_pairs = self.nnz // 2
        hi = n_pairs if hi is None else hi
        if self._pair_buf is None:
            self._pair_buf = np.empty((n_pairs, 4), dtype=np.uint64)
        lanes = self._pair_buf[lo:hi]
        vwords = f64_to_u64(self.values)
        np.copyto(lanes[:, 0], vwords[2 * lo : 2 * hi : 2])
        np.copyto(lanes[:, 1], self.colidx[2 * lo : 2 * hi : 2], casting="same_kind")
        np.copyto(lanes[:, 2], vwords[2 * lo + 1 : 2 * hi : 2])
        np.copyto(lanes[:, 3], self.colidx[2 * lo + 1 : 2 * hi : 2], casting="same_kind")
        return lanes

    def _tail_lanes(self) -> np.ndarray | None:
        """The odd-element SED-style tail codeword, or None for even nnz."""
        if self.nnz % 2 == 0:
            return None
        return pack_csr_element_lanes(self.values[-1:], self.colidx[-1:])

    def _store_pair_lanes(
        self, lanes: np.ndarray, only: np.ndarray | None = None, offset: int = 0
    ) -> None:
        """Write pair lanes back to storage (all, or the ``only`` rows)."""
        if only is not None and only.size == 0:
            return
        vwords = f64_to_u64(self.values)
        if only is None:
            n_pairs = lanes.shape[0]
            base = 2 * offset
            vwords[base : base + 2 * n_pairs : 2] = lanes[:, 0]
            self.colidx[base : base + 2 * n_pairs : 2] = (
                lanes[:, 1] & np.uint64(0xFFFFFFFF)
            ).astype(np.uint32)
            vwords[base + 1 : base + 2 * n_pairs : 2] = lanes[:, 2]
            self.colidx[base + 1 : base + 2 * n_pairs : 2] = (
                lanes[:, 3] & np.uint64(0xFFFFFFFF)
            ).astype(np.uint32)
            return
        even = (only + offset) * 2
        vwords[even] = lanes[only, 0]
        self.colidx[even] = (lanes[only, 1] & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        vwords[even + 1] = lanes[only, 2]
        self.colidx[even + 1] = (lanes[only, 3] & np.uint64(0xFFFFFFFF)).astype(np.uint32)

    def _check_secded128(self, correct: bool, lo: int, hi: int) -> CheckReport:
        n_pairs = self.nnz // 2
        phi = min(hi, n_pairs)
        parts: list[CheckReport] = []
        if lo < phi:
            lanes = self._pair_lanes(lo, phi)
            code = csr_element_pair_secded128()
            if correct:
                report = code.check_and_correct(lanes)
                self._store_pair_lanes(lanes, only=report.corrected_indices(), offset=lo)
            else:
                report = code.detect_report(lanes)
            parts.append(report)
        if hi > n_pairs:
            tail = self._tail_lanes()
            code = csr_element_secded()
            if correct:
                tail_report = code.check_and_correct(tail)
                if tail_report.n_corrected:
                    v, y = unpack_csr_element_lanes(tail)
                    self.values[-1:] = v
                    self.colidx[-1:] = y
            else:
                tail_report = code.detect_report(tail)
            parts.append(tail_report)
        return CheckReport.concat(parts)

    def _write_back_elements(
        self, lanes: np.ndarray, idx: np.ndarray, offset: int = 0
    ) -> None:
        if idx.size == 0:
            return
        v, y = unpack_csr_element_lanes(lanes[idx])
        self.values[offset + idx] = v
        self.colidx[offset + idx] = y

    # -- crc32c internals -----------------------------------------------------
    def _row_streams(self, rows: np.ndarray, length: int):
        """(stream bytes, stored crc, element index matrix) for equal-length rows."""
        starts = self.rowptr[rows].astype(np.int64)
        elems = starts[:, None] + np.arange(length)
        vals = np.ascontiguousarray(self.values[elems])
        idxs = np.ascontiguousarray(self.colidx[elems])
        masked = idxs.copy()
        masked[:, :4] &= _LOW24
        stream = np.concatenate(
            [vals.view(np.uint8).reshape(len(rows), 8 * length),
             masked.view(np.uint8).reshape(len(rows), 4 * length)],
            axis=1,
        )
        stored = np.zeros(len(rows), dtype=np.uint32)
        for j in range(4):
            stored |= (idxs[:, j] >> np.uint32(24)) << np.uint32(8 * j)
        return stream, stored, elems

    def _encode_crc(self) -> None:
        for rows, length in self._length_groups:
            starts = self.rowptr[rows].astype(np.int64)
            elems = starts[:, None] + np.arange(length)
            # Clear the four checksum bytes, then recompute and store.
            for j in range(4):
                self.colidx[elems[:, j]] &= _LOW24
            stream, _, _ = self._row_streams(rows, length)
            crc = crc32c_batch(stream)
            for j in range(4):
                chunk = ((crc >> np.uint32(8 * j)) & np.uint32(0xFF)).astype(np.uint32)
                self.colidx[elems[:, j]] |= chunk << np.uint32(24)

    def _crc_diff_all(self, lo: int = 0, hi: int | None = None):
        hi = self.rowptr.size - 1 if hi is None else hi
        out = []
        for rows, length in self._length_groups:
            if lo > 0 or hi < self.rowptr.size - 1:
                rows = rows[(rows >= lo) & (rows < hi)]
                if not rows.size:
                    continue
            stream, stored, elems = self._row_streams(rows, length)
            diff = crc32c_batch(stream) ^ stored
            out.append((rows, length, diff))
        return out

    def _check_crc(self, correct: bool, lo: int, hi: int) -> CheckReport:
        diffs = self._crc_diff_all(lo, hi)
        if not any(diff.any() for _, _, diff in diffs):
            return CheckReport.all_ok(hi - lo)
        if not correct:
            status = np.zeros(hi - lo, dtype=np.uint8)
            for rows, _, diff in diffs:
                status[rows[diff != 0] - lo] = CodewordStatus.UNCORRECTABLE
            return CheckReport(status=status)
        status = np.zeros(hi - lo, dtype=np.uint8)
        for rows, length, diff in diffs:
            bad = np.flatnonzero(diff)
            if not bad.size:
                continue
            corrector = corrector_for(12 * length)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            if max_errors == 0:  # 5ED: detection-only operating point
                status[rows[bad] - lo] = CodewordStatus.UNCORRECTABLE
                continue
            vwords = f64_to_u64(self.values)
            for k in bad:
                row = rows[k]
                start = int(self.rowptr[row])
                located = corrector.locate(int(diff[k]), max_errors=max_errors)
                if located is None or not all(
                    self._crc_bit_possible(bit, length, corrector) for bit in located
                ):
                    status[row - lo] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    self._crc_apply_flip(bit, start, length, corrector, vwords)
                status[row - lo] = CodewordStatus.CORRECTED
        return CheckReport(status=status)

    @staticmethod
    def _crc_bit_possible(bit: int, length: int, corrector) -> bool:
        """Reject locations pointing at the masked checksum bytes in the stream."""
        if bit >= corrector.n_data_bits:
            return True  # stored-checksum bit: always physical
        b = bit - 64 * length
        if b < 0:
            return True  # value bits are physical
        elem, pos = divmod(b, 32)
        return not (elem < 4 and pos >= 24)

    def _crc_apply_flip(self, bit, start, length, corrector, vwords) -> None:
        if bit >= corrector.n_data_bits:
            j = bit - corrector.n_data_bits  # stored checksum bit j
            self.colidx[start + j // 8] ^= np.uint32(1) << np.uint32(24 + j % 8)
        elif bit < 64 * length:
            elem, pos = divmod(bit, 64)
            vwords[start + elem] ^= _ONE << np.uint64(pos)
        else:
            elem, pos = divmod(bit - 64 * length, 32)
            self.colidx[start + elem] ^= np.uint32(1) << np.uint32(pos)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedCSRElements(nnz={self.nnz}, scheme={self.scheme!r}, "
            f"codewords={self.n_codewords})"
        )


def _group_rows_by_length(lengths: np.ndarray):
    """[(row indices, length), ...] for batch processing of ragged rows."""
    groups = []
    for length in np.unique(lengths):
        rows = np.flatnonzero(lengths == length)
        groups.append((rows, int(length)))
    return groups
