"""64-bit-index CSR protection (the paper's §V.B extension note).

"In many production solvers, the matrix dimensions may be larger than
2**32 - 1, warranting the need for 64-bit integer indices; our 32-bit
integer techniques are easily extended for this scenario."  This module
is that extension:

* **elements** — ``(value float64, col uint64)`` = 128-bit codewords;
  SED in the index top bit (columns <= 2**63 - 1), SECDED in the top 9
  bits (columns <= 2**55 - 1), CRC32C per row in the top byte of each of
  the first four indices (columns <= 2**56 - 1, rows >= 4 nnz);
* **row pointer** — uint64 entries; SED per entry (top bit), SECDED per
  entry in the top byte (nnz <= 2**56 - 1), CRC32C over groups of four
  entries (one byte each).

Only the layout constants change relative to the 32-bit containers — the
same SECDED engine and CRC machinery do the work, which is exactly the
"easily extended" claim.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.bits.popcount import parity64
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import csr64_element_secded, u64_top_secded
from repro.errors import ConfigurationError

_ONE = np.uint64(1)
_LOW55 = np.uint64((1 << 55) - 1)
_LOW56 = np.uint64((1 << 56) - 1)
_LOW63 = np.uint64((1 << 63) - 1)

#: 64-bit element schemes: reserved index bits and column limits.
CSR64_ELEMENT_SCHEMES: dict[str, tuple[int, int]] = {
    "sed": (1, (1 << 63) - 1),
    "secded": (9, (1 << 55) - 1),
    "crc32c": (8, (1 << 56) - 1),
}

#: 64-bit row-pointer schemes: (group, value limit).
CSR64_ROWPTR_SCHEMES: dict[str, tuple[int, int]] = {
    "sed": (1, (1 << 63) - 1),
    "secded": (1, (1 << 56) - 1),
    "crc32c": (4, (1 << 56) - 1),
}


class ProtectedCSRElements64:
    """Protected (values, colidx64) pairs with uint64 column indices."""

    def __init__(
        self,
        values: np.ndarray,
        colidx: np.ndarray,
        rowptr: np.ndarray,
        n_cols: int,
        scheme: str = "secded",
        crc_mode: str = "2EC3ED",
    ):
        if scheme not in CSR64_ELEMENT_SCHEMES:
            raise ConfigurationError(
                f"unknown csr64 element scheme {scheme!r}; "
                f"choose from {sorted(CSR64_ELEMENT_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint64)
        self.rowptr = np.ascontiguousarray(rowptr, dtype=np.uint64)
        self.n_cols = int(n_cols)
        _, limit = CSR64_ELEMENT_SCHEMES[scheme]
        if self.n_cols > limit:
            raise ConfigurationError(
                f"{scheme}: {self.n_cols} columns exceed the limit {limit}"
            )
        if self.colidx.size and int(self.colidx.max()) > limit:
            raise ConfigurationError("column index exceeds the scheme limit")
        if scheme == "crc32c":
            lengths = self.rowptr.astype(np.int64)
            lengths = lengths[1:] - lengths[:-1]
            if lengths.size and int(lengths.min()) < 4:
                raise ConfigurationError(
                    "crc32c row protection needs >= 4 non-zeros per row"
                )
            self._length_groups = [
                (np.flatnonzero(lengths == ln), int(ln))
                for ln in np.unique(lengths)
            ]
        self.nnz = self.values.size
        # Persistent (nnz, 2) lane buffer; _lanes refreshes it in place.
        self._lane_buf: np.ndarray | None = None
        self.encode()

    # ------------------------------------------------------------------
    @property
    def index_mask(self) -> np.uint64:
        """Bit mask of the index bits that hold data rather than ECC."""
        return {"sed": _LOW63, "secded": _LOW55, "crc32c": _LOW56}[self.scheme]

    @property
    def n_codewords(self) -> int:
        """Number of ECC codewords covering this container."""
        return self.rowptr.size - 1 if self.scheme == "crc32c" else self.nnz

    def fused_code(self):
        """The per-element ECC code when one codeword spans one element.

        Mirrors the 32-bit container's contract for fused verify-in-SpMV
        kernels: a non-``None`` return means every (value, colidx) element
        is covered by exactly one codeword, so a kernel streaming elements
        for a product can compute syndromes on the same traffic.  Only the
        ``secded`` scheme qualifies here (``sed`` folds a parity bit across
        both lanes but cannot locate errors; ``crc32c`` codewords span whole
        rows).
        """
        if self.scheme == "secded":
            return csr64_element_secded()
        return None

    def colidx_clean(self) -> np.ndarray:
        """Column indices with the embedded ECC bits masked off."""
        return self.colidx & self.index_mask

    def _lanes(self) -> np.ndarray:
        """The persistent uint64 lane view, re-synced from live storage."""
        if self._lane_buf is None:
            self._lane_buf = np.empty((self.nnz, 2), dtype=np.uint64)
        np.copyto(self._lane_buf[:, 0], f64_to_u64(self.values))
        np.copyto(self._lane_buf[:, 1], self.colidx)
        return self._lane_buf

    def _store_lanes(self, lanes: np.ndarray, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        f64_to_u64(self.values)[idx] = lanes[idx, 0]
        self.colidx[idx] = lanes[idx, 1]

    # ------------------------------------------------------------------
    def encode(self) -> None:
        """(Re-)compute and embed the ECC bits over the current storage."""
        if self.scheme == "sed":
            data = self.colidx & _LOW63
            p = (
                parity64(f64_to_u64(self.values)) ^ parity64(data)
            ).astype(np.uint64)
            self.colidx[:] = data | (p << np.uint64(63))
        elif self.scheme == "secded":
            lanes = self._lanes()
            csr64_element_secded().encode(lanes)
            self.colidx[:] = lanes[:, 1]
        else:
            self._encode_crc()

    def detect(self) -> np.ndarray:
        """Per-codeword error flags from one syndrome pass; never corrects."""
        if self.scheme == "sed":
            return (
                parity64(f64_to_u64(self.values)) ^ parity64(self.colidx)
            ).astype(bool)
        if self.scheme == "secded":
            return csr64_element_secded().detect(self._lanes())
        flags = np.zeros(self.rowptr.size - 1, dtype=bool)
        for rows, length in self._length_groups:
            stream, stored, _ = self._row_streams(rows, length)
            flags[rows] = (crc32c_batch(stream) ^ stored) != 0
        return flags

    def check(self, correct: bool = True) -> CheckReport:
        """Verify every codeword, correcting where the scheme and ``correct`` allow."""
        if not correct or self.scheme == "sed":
            flags = self.detect()
            return CheckReport(
                status=np.where(
                    flags,
                    np.uint8(CodewordStatus.UNCORRECTABLE),
                    np.uint8(CodewordStatus.OK),
                )
            )
        if self.scheme == "secded":
            lanes = self._lanes()
            report = csr64_element_secded().check_and_correct(lanes)
            self._store_lanes(lanes, report.corrected_indices())
            return report
        return self._check_crc()

    # -- crc32c internals (16-byte elements: 8 value + 8 index) -----------
    def _row_streams(self, rows: np.ndarray, length: int):
        starts = self.rowptr[rows].astype(np.int64)
        elems = starts[:, None] + np.arange(length)
        vals = np.ascontiguousarray(self.values[elems])
        idxs = np.ascontiguousarray(self.colidx[elems])
        masked = idxs.copy()
        masked[:, :4] &= _LOW56
        stream = np.concatenate(
            [vals.view(np.uint8).reshape(len(rows), 8 * length),
             masked.view(np.uint8).reshape(len(rows), 8 * length)],
            axis=1,
        )
        stored = np.zeros(len(rows), dtype=np.uint32)
        for j in range(4):
            stored |= ((idxs[:, j] >> np.uint64(56)).astype(np.uint32)
                       << np.uint32(8 * j))
        return stream, stored, elems

    def _encode_crc(self) -> None:
        for rows, length in self._length_groups:
            starts = self.rowptr[rows].astype(np.int64)
            elems = starts[:, None] + np.arange(length)
            for j in range(4):
                self.colidx[elems[:, j]] &= _LOW56
            stream, _, _ = self._row_streams(rows, length)
            crc = crc32c_batch(stream)
            for j in range(4):
                chunk = ((crc >> np.uint32(8 * j)) & np.uint32(0xFF)).astype(np.uint64)
                self.colidx[elems[:, j]] |= chunk << np.uint64(56)

    def _check_crc(self) -> CheckReport:
        status = np.zeros(self.rowptr.size - 1, dtype=np.uint8)
        for rows, length in self._length_groups:
            stream, stored, _ = self._row_streams(rows, length)
            diff = crc32c_batch(stream) ^ stored
            bad = np.flatnonzero(diff)
            if not bad.size:
                continue
            corrector = corrector_for(16 * length)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            if max_errors == 0:
                status[rows[bad]] = CodewordStatus.UNCORRECTABLE
                continue
            vwords = f64_to_u64(self.values)
            for k in bad:
                row = rows[k]
                start = int(self.rowptr[row])
                located = corrector.locate(int(diff[k]), max_errors=max_errors)
                if located is None or not all(
                    self._bit_possible(bit, length, corrector) for bit in located
                ):
                    status[row] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    self._apply_flip(bit, start, length, corrector, vwords)
                status[row] = CodewordStatus.CORRECTED
        return CheckReport(status=status)

    @staticmethod
    def _bit_possible(bit: int, length: int, corrector) -> bool:
        if bit >= corrector.n_data_bits:
            return True
        b = bit - 64 * length
        if b < 0:
            return True
        elem, pos = divmod(b, 64)
        return not (elem < 4 and pos >= 56)

    def _apply_flip(self, bit, start, length, corrector, vwords) -> None:
        if bit >= corrector.n_data_bits:
            j = bit - corrector.n_data_bits
            self.colidx[start + j // 8] ^= _ONE << np.uint64(56 + j % 8)
        elif bit < 64 * length:
            elem, pos = divmod(bit, 64)
            vwords[start + elem] ^= _ONE << np.uint64(pos)
        else:
            elem, pos = divmod(bit - 64 * length, 64)
            self.colidx[start + elem] ^= _ONE << np.uint64(pos)


class ProtectedRowPointer64:
    """Protected uint64 row-pointer vector."""

    def __init__(self, rowptr: np.ndarray, scheme: str = "secded",
                 crc_mode: str = "2EC3ED"):
        if scheme not in CSR64_ROWPTR_SCHEMES:
            raise ConfigurationError(
                f"unknown csr64 rowptr scheme {scheme!r}; "
                f"choose from {sorted(CSR64_ROWPTR_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)
        self.group, limit = CSR64_ROWPTR_SCHEMES[scheme]
        self.raw = np.ascontiguousarray(rowptr, dtype=np.uint64).copy()
        if self.raw.size and int(self.raw.max()) > limit:
            raise ConfigurationError("row pointer value exceeds the scheme limit")
        self._n_grouped = (self.raw.size // self.group) * self.group
        self.encode()

    def __len__(self) -> int:
        return self.raw.size

    @property
    def tail_size(self) -> int:
        """Number of entries in the final, partial codeword group."""
        return self.raw.size - self._n_grouped

    @property
    def entry_mask(self) -> np.uint64:
        """Bit mask of the row-pointer bits that hold data rather than ECC."""
        return _LOW63 if self.scheme == "sed" else _LOW56

    def clean(self) -> np.ndarray:
        """Row-pointer entries with the embedded ECC bits masked off."""
        out = self.raw & self.entry_mask
        if self.tail_size:
            out[self._n_grouped :] = self.raw[self._n_grouped :] & _LOW63
        return out

    def encode(self) -> None:
        """(Re-)compute and embed the ECC bits over the current storage."""
        if self.scheme == "sed":
            data = self.raw & _LOW63
            self.raw[:] = data | (parity64(data).astype(np.uint64) << np.uint64(63))
            return
        if self._n_grouped:
            if self.scheme == "secded":
                lanes = self.raw[: self._n_grouped].reshape(-1, 1)
                u64_top_secded().encode(lanes)
            else:
                self._encode_crc()
        self._encode_tail()

    def _encode_tail(self) -> None:
        if not self.tail_size:
            return
        sl = slice(self._n_grouped, None)
        data = self.raw[sl] & _LOW63
        self.raw[sl] = data | (parity64(data).astype(np.uint64) << np.uint64(63))

    def detect(self) -> np.ndarray:
        """Per-codeword error flags from one syndrome pass; never corrects."""
        if self.scheme == "sed":
            return parity64(self.raw).astype(bool)
        flags = np.zeros(0, dtype=bool)
        if self._n_grouped:
            if self.scheme == "secded":
                flags = u64_top_secded().detect(
                    self.raw[: self._n_grouped].reshape(-1, 1)
                )
            else:
                flags = self._crc_diff() != 0
        if self.tail_size:
            flags = np.concatenate(
                [flags, parity64(self.raw[self._n_grouped :]).astype(bool)]
            )
        return flags

    def check(self, correct: bool = True) -> CheckReport:
        """Verify every codeword, correcting where the scheme and ``correct`` allow."""
        if not correct or self.scheme == "sed":
            flags = self.detect()
            return CheckReport(
                status=np.where(
                    flags,
                    np.uint8(CodewordStatus.UNCORRECTABLE),
                    np.uint8(CodewordStatus.OK),
                )
            )
        status = np.zeros(0, dtype=np.uint8)
        if self._n_grouped:
            if self.scheme == "secded":
                lanes = self.raw[: self._n_grouped].reshape(-1, 1)
                report = u64_top_secded().check_and_correct(lanes)
                status = report.status
            else:
                status = self._check_crc().status
        if self.tail_size:
            tail_flags = parity64(self.raw[self._n_grouped :]).astype(bool)
            status = np.concatenate(
                [status, np.where(tail_flags,
                                  np.uint8(CodewordStatus.UNCORRECTABLE),
                                  np.uint8(CodewordStatus.OK))]
            )
        return CheckReport(status=status)

    # -- crc32c over groups of four u64 entries, one byte each -------------
    def _stream(self) -> tuple[np.ndarray, np.ndarray]:
        groups = self.raw[: self._n_grouped].reshape(-1, 4)
        masked = groups & _LOW56
        stream = masked.view(np.uint8).reshape(-1, 32)
        stored = np.zeros(groups.shape[0], dtype=np.uint32)
        for e in range(4):
            stored |= ((groups[:, e] >> np.uint64(56)).astype(np.uint32)
                       << np.uint32(8 * e))
        return stream, stored

    def _crc_diff(self) -> np.ndarray:
        stream, stored = self._stream()
        return crc32c_batch(stream) ^ stored

    def _encode_crc(self) -> None:
        groups = self.raw[: self._n_grouped].reshape(-1, 4)
        groups &= _LOW56
        stream = np.ascontiguousarray(groups).view(np.uint8).reshape(-1, 32)
        crc = crc32c_batch(stream)
        for e in range(4):
            chunk = ((crc >> np.uint32(8 * e)) & np.uint32(0xFF)).astype(np.uint64)
            groups[:, e] |= chunk << np.uint64(56)

    def _check_crc(self) -> CheckReport:
        diff = self._crc_diff()
        status = np.zeros(diff.size, dtype=np.uint8)
        bad = np.flatnonzero(diff)
        if bad.size:
            corrector = corrector_for(32)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            groups = self.raw[: self._n_grouped].reshape(-1, 4)
            for g in bad:
                if max_errors == 0:
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                located = corrector.locate(int(diff[g]), max_errors=max_errors)
                if located is None or any(
                    bit < corrector.n_data_bits and (bit % 64) >= 56
                    for bit in located
                ):
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    if bit < corrector.n_data_bits:
                        e, b = divmod(bit, 64)
                    else:
                        j = bit - corrector.n_data_bits
                        e, b = j // 8, 56 + j % 8
                    groups[g, e] ^= _ONE << np.uint64(b)
                status[g] = CodewordStatus.CORRECTED
        return CheckReport(status=status)
