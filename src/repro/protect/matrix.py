"""Whole-matrix protection: CSR elements + row pointer combined.

The paper evaluates element and row-pointer schemes independently
(Figs. 4 and 5) and then notes they "can be mixed together to fully
protect the whole matrix, with the overhead being approximately equal to
the sum of the overheads of the two techniques".
:class:`ProtectedCSRMatrix` is that composition.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import CHUNK
from repro.csr.matrix import CSRMatrix
from repro.csr.spmv import reduce_rows, reduce_rows_multi, spmm, spmv
from repro.ecc.base import CheckReport
from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.protect.csr_elements import ProtectedCSRElements
from repro.protect.row_pointer import ProtectedRowPointer


class _UnprotectedElements:
    """Passthrough used when only the other region is protected."""

    scheme = None

    def __init__(self, values: np.ndarray, colidx: np.ndarray):
        self.values = values
        self.colidx = colidx
        self.nnz = values.size
        self.n_codewords = 0

    def colidx_clean(self, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return self.colidx
        np.copyto(out, self.colidx)
        return out

    def colidx_clean64(self, out: np.ndarray) -> np.ndarray:
        np.copyto(out, self.colidx, casting="same_kind")
        return out

    def detect(self) -> np.ndarray:
        return np.zeros(0, dtype=bool)

    def check(
        self, correct: bool = True, window: tuple[int, int] | None = None
    ) -> CheckReport:
        return CheckReport.all_ok(0)

    def fused_code(self):
        return None


class _UnprotectedRowPointer:
    """Passthrough row pointer (no redundancy embedded)."""

    scheme = None

    def __init__(self, rowptr: np.ndarray):
        self.raw = rowptr
        self.n_codewords = 0

    def clean(self, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return self.raw
        np.copyto(out, self.raw)
        return out

    def clean64(self, out: np.ndarray) -> np.ndarray:
        np.copyto(out, self.raw, casting="same_kind")
        return out

    def detect(self) -> np.ndarray:
        return np.zeros(0, dtype=bool)

    def check(
        self, correct: bool = True, window: tuple[int, int] | None = None
    ) -> CheckReport:
        return CheckReport.all_ok(0)

    def verify_and_clean64(
        self, out: np.ndarray, correct: bool = True
    ) -> CheckReport:
        np.copyto(out, self.raw, casting="same_kind")
        return CheckReport.all_ok(0)


class ProtectedCSRMatrix:
    """A CSR matrix whose three vectors all carry embedded ECC.

    Parameters
    ----------
    matrix:
        Source :class:`~repro.csr.matrix.CSRMatrix`; its arrays are copied
        so the original stays pristine (fault-injection campaigns rely on
        comparing against it).
    element_scheme / rowptr_scheme:
        Any of ``sed``, ``secded64``, ``secded128``, ``crc32c`` — mixed
        freely, as in the paper.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        element_scheme: str | None = "secded64",
        rowptr_scheme: str | None = "secded64",
    ):
        self.shape = matrix.shape
        if rowptr_scheme is None:
            self.rowptr_protected = _UnprotectedRowPointer(matrix.rowptr.copy())
        else:
            self.rowptr_protected = ProtectedRowPointer(matrix.rowptr, rowptr_scheme)
        if element_scheme is None:
            self.elements = _UnprotectedElements(
                matrix.values.copy(), matrix.colidx.copy()
            )
        else:
            self.elements = ProtectedCSRElements(
                matrix.values.copy(),
                matrix.colidx.copy(),
                self.rowptr_protected.clean(),  # trusted structure at build time
                matrix.shape[1],
                element_scheme,
            )
        # Persistent pre-converted SpMV index snapshot: int64 copies of
        # the cleaned colidx/rowptr, validated once when (re)populated
        # and then consumed by every SpMV without re-decoding or
        # re-converting (see clean_views).
        self._col64: np.ndarray | None = None
        self._ptr64: np.ndarray | None = None
        self._ptr_diff: np.ndarray | None = None
        self._views_valid = False
        self._diagonal: np.ndarray | None = None
        # Persistent SpMV product scratch: per-element products plus one
        # cache-block gather buffer, so every engine-mediated product
        # (fused or not) runs allocation-free after warm-up.
        self._products: np.ndarray | None = None
        self._gather: np.ndarray | None = None
        self._row_lengths: np.ndarray | None = None
        # Blocked multi-RHS scratch, keyed by the block width k so a
        # session serving one batch size reuses the same buffers.
        self._products2d: np.ndarray | None = None
        self._tile2d: np.ndarray | None = None
        self._block_k = 0

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The stored element values (raw storage, ECC bits included)."""
        return self.elements.values

    @property
    def colidx(self) -> np.ndarray:
        """Stored (redundancy-carrying) column indices."""
        return self.elements.colidx

    @property
    def rowptr(self) -> np.ndarray:
        """Stored (redundancy-carrying) row pointer."""
        return self.rowptr_protected.raw

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return self.elements.nnz

    @property
    def n_rows(self) -> int:
        """Number of matrix rows."""
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        """Number of matrix columns."""
        return self.shape[1]

    # ------------------------------------------------------------------
    def check_all(self, correct: bool = True) -> dict[str, CheckReport]:
        """Integrity-check every region; returns per-region reports.

        When a correction landed, the cached index snapshot (and the
        diagonal derived from it) is marked stale so the next SpMV
        re-populates it from the corrected stored arrays — into the same
        persistent buffers, so nothing nnz-sized is allocated.  A clean
        (or detection-only) check leaves the validated snapshot in
        place: storage did not change, so neither did its decode.
        """
        reports = {
            "csr_elements": self.elements.check(correct=correct),
            "row_pointer": self.rowptr_protected.check(correct=correct),
        }
        if any(r.n_corrected for r in reports.values()):
            self._views_valid = False
            self._diagonal = None
        return reports

    def check_stripe(
        self, stripe: int, n_stripes: int, correct: bool = True
    ) -> dict[str, CheckReport]:
        """Verify stripe ``stripe`` of ``n_stripes`` of every region.

        Each region's codeword space is cut into ``n_stripes`` equal
        round-robin slices; a scheduled check verifies one slice, so full
        coverage takes ``n_stripes`` due accesses (the engine's
        ``interval × n_stripes`` detection bound).  The index snapshot is
        only invalidated when a correction actually landed.
        """
        if not 0 <= stripe < n_stripes:
            raise ValueError(f"stripe {stripe} outside 0..{n_stripes - 1}")
        reports = {}
        for name, region in (
            ("csr_elements", self.elements),
            ("row_pointer", self.rowptr_protected),
        ):
            n = region.n_codewords
            lo = (stripe * n) // n_stripes
            hi = ((stripe + 1) * n) // n_stripes
            # Containers correct against window-relative indices; reports
            # leave here carrying absolute codeword positions.
            reports[name] = region.check(correct=correct, window=(lo, hi)).with_offset(lo)
        if any(r.n_corrected for r in reports.values()):
            self._views_valid = False
            self._diagonal = None
        return reports

    def check_or_raise(self, correct: bool = True) -> dict[str, CheckReport]:
        """Like :meth:`check_all` but raises on any uncorrectable codeword."""
        reports = self.check_all(correct=correct)
        for region, report in reports.items():
            if not report.ok:
                raise DetectedUncorrectableError(
                    region, report.uncorrectable_indices()[:8].tolist()
                )
        return reports

    def detect_any(self) -> bool:
        """Cheapest question: is anything corrupted right now?"""
        return bool(self.elements.detect().any() or self.rowptr_protected.detect().any())

    def bounds_check(self) -> None:
        """The paper's range checks for skipped-integrity iterations.

        Row-pointer values must stay below nnz and column indices below
        the column count so a flipped index can never cause an
        out-of-bounds access (§VI.A.2).  Raises
        :class:`~repro.errors.BoundsViolationError` on violation.

        Implemented as a forced refresh of the validated index snapshot,
        so this and the engine's snapshot guard enforce exactly the same
        invariants (one copy of the safety-critical check) and the
        freshly-decoded indices immediately serve the next SpMV.
        """
        self._views_valid = False
        self.clean_views()

    # ------------------------------------------------------------------
    def clean_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode-free SpMV structure: the validated ``(colidx, rowptr)`` snapshot.

        The snapshot is a pair of *persistent* pre-converted ``int64``
        buffers, refilled in place whenever a check may have corrected
        the stored arrays (or :meth:`invalidate_clean_views` ran) and
        **bounds-validated once at population** — so non-due SpMV
        accesses skip both the index decode and the per-access range
        check entirely.  Between checks the SpMV runs over the
        last-validated snapshot at plain-NumPy speed; the value array is
        always used live, so value corruption stays observable.

        Exception surface (the §VI.A.2 range-check rule, amortised): a
        stored-index flip that lands mid-window can no longer raise
        :class:`~repro.errors.BoundsViolationError` from an intermediate
        access — the snapshot it gathers through is immutable and
        already validated.  The flip is surfaced at the next scheduled
        integrity check, or here (as ``BoundsViolationError``) when the
        snapshot is next rebuilt.
        """
        if not self._views_valid:
            if self._col64 is None:
                self._col64 = np.empty(self.nnz, dtype=np.int64)
                self._ptr64 = np.empty(self.rowptr_protected.raw.size, dtype=np.int64)
                self._ptr_diff = np.empty(
                    max(self._ptr64.size - 1, 0), dtype=np.int64
                )
            self.elements.colidx_clean64(self._col64)
            self.rowptr_protected.clean64(self._ptr64)
            self._validate_snapshot()
            self._views_valid = True
        return self._col64, self._ptr64

    def _validate_snapshot(self) -> None:
        """The once-per-population range check guarding the snapshot."""
        ptr = self._ptr64
        if int(ptr.max(initial=0)) > self.nnz:
            raise BoundsViolationError("row_pointer")
        if ptr.size > 1:
            np.subtract(ptr[1:], ptr[:-1], out=self._ptr_diff)
            if int(self._ptr_diff.min()) < 0:
                raise BoundsViolationError("row_pointer")
        col = self._col64
        if col.size and int(col.max()) >= self.n_cols:
            raise BoundsViolationError("csr_elements")

    def invalidate_clean_views(self) -> None:
        """Mark the cached index snapshot stale (e.g. after re-encoding)."""
        self._views_valid = False
        self._diagonal = None

    def diagonal(self) -> np.ndarray:
        """The decoded main diagonal, cached between integrity checks.

        Built by :meth:`CSRMatrix.diagonal` over a zero-copy view of the
        cached clean indices (no whole-matrix ``to_csr`` decode) and
        invalidated alongside them whenever a check may have corrected
        the stored arrays.
        """
        if self._diagonal is None:
            colidx, rowptr = self.clean_views()
            view = CSRMatrix(
                self.elements.values, colidx, rowptr, self.shape, validate=False
            )
            self._diagonal = view.diagonal()
        return self._diagonal

    def _spmv_scratch(self) -> tuple[np.ndarray, np.ndarray]:
        """The persistent (products, gather) SpMV scratch pair."""
        if self._products is None:
            self._products = np.empty(self.nnz, dtype=np.float64)
            self._gather = np.empty(min(CHUNK, max(self.nnz, 1)), dtype=np.float64)
            self._row_lengths = np.empty(self.n_rows, dtype=np.int64)
        return self._products, self._gather

    def matvec_unchecked(
        self, x: np.ndarray, out: np.ndarray | None = None, backend=None
    ) -> np.ndarray:
        """SpMV on the validated snapshot without any integrity verification.

        ``backend`` selects the SpMV kernel (a
        :class:`~repro.backends.base.KernelBackend`); ``None`` uses the
        reference NumPy kernel.  Either way the gather/multiply runs
        through the matrix's persistent product scratch, so the inner
        loop allocates nothing once ``out`` is supplied.
        """
        colidx, rowptr = self.clean_views()
        products, gather = self._spmv_scratch()
        kernel = spmv if backend is None else backend.spmv
        return kernel(
            self.elements.values,
            colidx,
            rowptr,
            x,
            self.n_rows,
            out=out,
            products=products,
            gather=gather,
            lengths=self._row_lengths,
        )

    def _spmm_scratch(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The persistent ``(products2d, tile)`` blocked-SpMV scratch pair.

        Reallocated only when the block width ``k`` changes, so a worker
        serving a steady batch size runs allocation-free after warm-up.
        The tile is flat ``k * chunk`` — per-chunk contiguous ``(k, n)``
        views of it keep ``np.take(..., axis=1, out=)`` on NumPy's
        non-buffering path.
        """
        if self._products2d is None or self._block_k != k:
            self._products2d = np.empty((k, self.nnz), dtype=np.float64)
            self._tile2d = np.empty(
                k * min(CHUNK, max(self.nnz, 1)), dtype=np.float64
            )
            self._block_k = k
        if self._row_lengths is None:
            self._row_lengths = np.empty(self.n_rows, dtype=np.int64)
        return self._products2d, self._tile2d

    def matvec_multi_unchecked(
        self, X: np.ndarray, out: np.ndarray | None = None, backend=None
    ) -> np.ndarray:
        """Blocked SpMV on the validated snapshot, no integrity verification.

        ``X`` is ``(k, n_cols)`` — one right-hand side per row.  Row
        ``j`` of the result is bitwise identical to
        :meth:`matvec_unchecked` on ``X[j]`` (same gather arithmetic,
        same left-to-right row reduction).
        """
        colidx, rowptr = self.clean_views()
        products, tile = self._spmm_scratch(X.shape[0])
        kernel = spmm if backend is None else backend.spmm
        return kernel(
            self.elements.values,
            colidx,
            rowptr,
            X,
            self.n_rows,
            out=out,
            products=products,
            tile=tile,
            lengths=self._row_lengths,
        )

    def supports_fused_verify(self, backend) -> bool:
        """True when :meth:`spmv_verified` has a genuine single-pass path.

        Requires a backend implementing ``fused_gather_verify`` and an
        element scheme whose codeword is one ``(value, colidx)`` pair
        (secded64).  Other schemes still accept :meth:`spmv_verified` —
        they verify then multiply through the same persistent buffers —
        but there is nothing to fuse at the codeword level.
        """
        return (
            self.elements.fused_code() is not None
            and backend is not None
            and getattr(backend, "supports_fused_verify", False)
        )

    def supports_fused_verify_multi(self, backend) -> bool:
        """True when :meth:`spmv_verified_multi` has a single-pass path.

        Same scheme requirement as :meth:`supports_fused_verify` plus a
        backend implementing ``fused_gather_verify_multi``.  Without it,
        blocked products still verify — check-then-multiply over the
        whole block, two passes instead of one.
        """
        return (
            self.elements.fused_code() is not None
            and backend is not None
            and getattr(backend, "supports_fused_verify_multi", False)
        )

    def spmv_verified_multi(
        self,
        X: np.ndarray,
        out: np.ndarray | None = None,
        correct: bool = True,
        backend=None,
    ) -> tuple[np.ndarray | None, dict[str, CheckReport]]:
        """Blocked verify-in-SpMV: one codeword screen amortized over k products.

        The multi-RHS twin of :meth:`spmv_verified`: ``X`` is
        ``(k, n_cols)`` and the result ``(k, n_rows)``.  Each
        cache-blocked ``(value, colidx)`` codeword chunk is syndromed
        **once**, then gathered and multiplied against all ``k``
        right-hand sides — the verification cost of a single-RHS fused
        product buys ``k`` verified products.  Row ``j`` of the result
        is bitwise identical to :meth:`spmv_verified` on ``X[j]`` (same
        screen decisions, same gather arithmetic, same row reduction).
        Dirty windows detour through the same scalar correction path;
        uncorrectable codewords yield ``y is None`` with the failure in
        the report.
        """
        if not self.supports_fused_verify_multi(backend):
            rp_report = self.rowptr_protected.check(correct=correct)
            reports = {"row_pointer": rp_report}
            if not rp_report.ok:
                return None, reports
            if rp_report.n_corrected:
                self._views_valid = False
                self._diagonal = None
            el_report = self.elements.check(correct=correct)
            reports["csr_elements"] = el_report
            if el_report.n_corrected:
                self._views_valid = False
                self._diagonal = None
            if not el_report.ok:
                return None, reports
            return self.matvec_multi_unchecked(X, out=out, backend=backend), reports

        el = self.elements
        X = np.ascontiguousarray(X, dtype=np.float64)
        k = X.shape[0]
        products, tile = self._spmm_scratch(k)
        if self._col64 is None:
            self._col64 = np.empty(self.nnz, dtype=np.int64)
            self._ptr64 = np.empty(self.rowptr_protected.raw.size, dtype=np.int64)
            self._ptr_diff = np.empty(max(self._ptr64.size - 1, 0), dtype=np.int64)
        rp_report = self.rowptr_protected.verify_and_clean64(
            self._ptr64, correct=correct
        )
        reports = {"row_pointer": rp_report}
        if not rp_report.ok:
            self._views_valid = False
            self._diagonal = None
            return None, reports
        if rp_report.n_corrected:
            self._diagonal = None
        ptr = self._ptr64
        if int(ptr.max(initial=0)) > self.nnz:
            raise BoundsViolationError("row_pointer")
        if ptr.size > 1:
            np.subtract(ptr[1:], ptr[:-1], out=self._ptr_diff)
            if int(self._ptr_diff.min()) < 0:
                raise BoundsViolationError("row_pointer")

        bad = backend.fused_gather_verify_multi(
            el.fused_code(), el.values, el.colidx, X,
            el.index_mask, self.n_cols, self._col64, products, tile,
        )
        reports["csr_elements"] = self._fused_cold_path_multi(bad, X, correct)
        if not reports["csr_elements"].ok:
            self._views_valid = False
            self._diagonal = None
            return None, reports
        # Every index was decoded from verified storage and bounds-checked
        # chunk by chunk: the snapshot this pass filled is the validated one.
        self._views_valid = True
        if out is None:
            out = np.empty((k, self.n_rows), dtype=np.float64)
        return reduce_rows_multi(
            products[:, : self.nnz], ptr, out, lengths=self._row_lengths
        ), reports

    def spmv_verified(
        self,
        x: np.ndarray,
        out: np.ndarray | None = None,
        correct: bool = True,
        backend=None,
    ) -> tuple[np.ndarray | None, dict[str, CheckReport]]:
        """Verify-in-SpMV: check every codeword on the product's own traffic.

        Returns ``(y, reports)`` where ``reports`` maps region name to
        its :class:`~repro.ecc.base.CheckReport`, exactly like
        :meth:`check_all` — but the element verification happened *inside*
        the matrix-vector product: per cache-blocked chunk the backend
        computes syndromes over the ``(value, index)`` lanes it is about
        to consume, decodes the clean indices, gathers and multiplies in
        the same pass.  Chunks that screen dirty detour through the
        container's correcting cold path and are re-gathered; an
        uncorrectable codeword yields ``y is None`` with the failure in
        the report (callers raise, mirroring ``check_or_raise``).

        On success the validated index snapshot is refreshed as a side
        effect (the fused pass decoded and bounds-checked every index),
        so follow-up non-due products reuse it with zero extra work.

        Falls back to verify-then-multiply over the same persistent
        buffers when :meth:`supports_fused_verify` is false for this
        backend/scheme combination — same results, same reports, two
        passes instead of one.
        """
        if not self.supports_fused_verify(backend):
            rp_report = self.rowptr_protected.check(correct=correct)
            reports = {"row_pointer": rp_report}
            if not rp_report.ok:
                return None, reports
            if rp_report.n_corrected:
                self._views_valid = False
                self._diagonal = None
            el_report = self.elements.check(correct=correct)
            reports["csr_elements"] = el_report
            if el_report.n_corrected:
                self._views_valid = False
                self._diagonal = None
            if not el_report.ok:
                return None, reports
            return self.matvec_unchecked(x, out=out, backend=backend), reports

        el = self.elements
        products, _ = self._spmv_scratch()
        if self._col64 is None:
            self._col64 = np.empty(self.nnz, dtype=np.int64)
            self._ptr64 = np.empty(self.rowptr_protected.raw.size, dtype=np.int64)
            self._ptr_diff = np.empty(max(self._ptr64.size - 1, 0), dtype=np.int64)
        rp_report = self.rowptr_protected.verify_and_clean64(
            self._ptr64, correct=correct
        )
        reports = {"row_pointer": rp_report}
        if not rp_report.ok:
            self._views_valid = False
            self._diagonal = None
            return None, reports
        if rp_report.n_corrected:
            self._diagonal = None
        ptr = self._ptr64
        if int(ptr.max(initial=0)) > self.nnz:
            raise BoundsViolationError("row_pointer")
        if ptr.size > 1:
            np.subtract(ptr[1:], ptr[:-1], out=self._ptr_diff)
            if int(self._ptr_diff.min()) < 0:
                raise BoundsViolationError("row_pointer")

        bad = backend.fused_gather_verify(
            el.fused_code(), el.values, el.colidx, x,
            el.index_mask, self.n_cols, self._col64, products,
        )
        reports["csr_elements"] = self._fused_cold_path(bad, x, correct)
        if not reports["csr_elements"].ok:
            self._views_valid = False
            self._diagonal = None
            return None, reports
        # Every index was decoded from verified storage and bounds-checked
        # chunk by chunk: the snapshot this pass filled is the validated one.
        self._views_valid = True
        if out is None:
            out = np.empty(self.n_rows, dtype=np.float64)
        return reduce_rows(
            products[: self.nnz], ptr, out, lengths=self._row_lengths
        ), reports

    def _fused_cold_path(
        self, bad: list[tuple[int, int]], x: np.ndarray, correct: bool
    ) -> CheckReport:
        """Re-check, correct and re-gather the windows a fused pass flagged.

        The fused kernel skips dirty (or out-of-range) chunks wholesale;
        here each flagged ``[lo, hi)`` window goes through the
        container's scalar correction path, and — when it comes back
        trustworthy — its slice of the decoded-index/product buffers is
        refilled from the corrected storage.  Returns the whole-container
        element report (compact all-OK when nothing was flagged).
        """
        el = self.elements
        if not bad:
            return CheckReport.all_ok(el.n_codewords)
        self._diagonal = None
        parts: list[CheckReport] = []
        pos = 0
        imask = np.int64(el.index_mask)
        for lo, hi in bad:
            if lo > pos:
                parts.append(CheckReport.all_ok(lo - pos))
            window_report = el.check(correct=correct, window=(lo, hi))
            parts.append(window_report)
            pos = hi
            if not (correct and window_report.ok):
                continue
            col = self._col64[lo:hi]
            np.copyto(col, el.colidx[lo:hi], casting="same_kind")
            np.bitwise_and(col, imask, out=col)
            if col.size and (int(col.max()) >= self.n_cols or int(col.min()) < 0):
                # Corruption aliased to a clean-looking codeword with an
                # out-of-range index: surface it as the range-check DUE.
                raise BoundsViolationError("csr_elements")
            np.multiply(el.values[lo:hi], x[col], out=self._products[lo:hi])
        if pos < el.n_codewords:
            parts.append(CheckReport.all_ok(el.n_codewords - pos))
        return CheckReport.concat(parts)

    def _fused_cold_path_multi(
        self, bad: list[tuple[int, int]], X: np.ndarray, correct: bool
    ) -> CheckReport:
        """The blocked twin of :meth:`_fused_cold_path`.

        Same window re-check and correction; the repaired slices of the
        product block are refilled for all ``k`` right-hand sides with
        one broadcast multiply per window.
        """
        el = self.elements
        if not bad:
            return CheckReport.all_ok(el.n_codewords)
        self._diagonal = None
        parts: list[CheckReport] = []
        pos = 0
        imask = np.int64(el.index_mask)
        for lo, hi in bad:
            if lo > pos:
                parts.append(CheckReport.all_ok(lo - pos))
            window_report = el.check(correct=correct, window=(lo, hi))
            parts.append(window_report)
            pos = hi
            if not (correct and window_report.ok):
                continue
            col = self._col64[lo:hi]
            np.copyto(col, el.colidx[lo:hi], casting="same_kind")
            np.bitwise_and(col, imask, out=col)
            if col.size and (int(col.max()) >= self.n_cols or int(col.min()) < 0):
                # Corruption aliased to a clean-looking codeword with an
                # out-of-range index: surface it as the range-check DUE.
                raise BoundsViolationError("csr_elements")
            np.multiply(
                el.values[lo:hi], X[:, col], out=self._products2d[:, lo:hi]
            )
        if pos < el.n_codewords:
            parts.append(CheckReport.all_ok(el.n_codewords - pos))
        return CheckReport.concat(parts)

    def reencode_from(self, source: CSRMatrix) -> None:
        """Rebuild stored data *and* redundancy from a pristine source.

        The ABFT recovery primitive: after a DUE the application owns a
        clean copy of the (solve-invariant) matrix and can restore the
        protected storage from it without any checkpoint/restart —
        values and indices are overwritten, the schemes' check bits are
        re-derived, and the cached index snapshot is invalidated so the
        next SpMV re-validates against the repaired storage.
        """
        np.copyto(self.values, source.values)
        np.copyto(self.colidx, source.colidx)
        if hasattr(self.elements, "encode"):
            self.elements.encode()
        rp = self.rowptr_protected
        np.copyto(rp.raw, source.rowptr)
        if hasattr(rp, "encode"):
            rp.encode()
        self.invalidate_clean_views()

    def to_csr(self) -> CSRMatrix:
        """Decode to a plain CSR matrix (cleaned indices, same values)."""
        return CSRMatrix(
            self.elements.values.copy(),
            self.elements.colidx_clean(),
            self.rowptr_protected.clean(),
            self.shape,
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"elements={self.elements.scheme!r}, rowptr={self.rowptr_protected.scheme!r})"
        )
