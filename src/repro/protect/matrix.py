"""Whole-matrix protection: CSR elements + row pointer combined.

The paper evaluates element and row-pointer schemes independently
(Figs. 4 and 5) and then notes they "can be mixed together to fully
protect the whole matrix, with the overhead being approximately equal to
the sum of the overheads of the two techniques".
:class:`ProtectedCSRMatrix` is that composition.
"""

from __future__ import annotations

import numpy as np

from repro.csr.matrix import CSRMatrix
from repro.csr.spmv import spmv
from repro.ecc.base import CheckReport
from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.protect.csr_elements import ProtectedCSRElements
from repro.protect.row_pointer import ProtectedRowPointer


class _UnprotectedElements:
    """Passthrough used when only the other region is protected."""

    scheme = None

    def __init__(self, values: np.ndarray, colidx: np.ndarray):
        self.values = values
        self.colidx = colidx
        self.nnz = values.size
        self.n_codewords = 0

    def colidx_clean(self, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return self.colidx
        np.copyto(out, self.colidx)
        return out

    def detect(self) -> np.ndarray:
        return np.zeros(0, dtype=bool)

    def check(self, correct: bool = True) -> CheckReport:
        return CheckReport(status=np.zeros(0, dtype=np.uint8))


class _UnprotectedRowPointer:
    """Passthrough row pointer (no redundancy embedded)."""

    scheme = None

    def __init__(self, rowptr: np.ndarray):
        self.raw = rowptr
        self.n_codewords = 0

    def clean(self, out: np.ndarray | None = None) -> np.ndarray:
        if out is None:
            return self.raw
        np.copyto(out, self.raw)
        return out

    def detect(self) -> np.ndarray:
        return np.zeros(0, dtype=bool)

    def check(self, correct: bool = True) -> CheckReport:
        return CheckReport(status=np.zeros(0, dtype=np.uint8))


class ProtectedCSRMatrix:
    """A CSR matrix whose three vectors all carry embedded ECC.

    Parameters
    ----------
    matrix:
        Source :class:`~repro.csr.matrix.CSRMatrix`; its arrays are copied
        so the original stays pristine (fault-injection campaigns rely on
        comparing against it).
    element_scheme / rowptr_scheme:
        Any of ``sed``, ``secded64``, ``secded128``, ``crc32c`` — mixed
        freely, as in the paper.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        element_scheme: str | None = "secded64",
        rowptr_scheme: str | None = "secded64",
    ):
        self.shape = matrix.shape
        if rowptr_scheme is None:
            self.rowptr_protected = _UnprotectedRowPointer(matrix.rowptr.copy())
        else:
            self.rowptr_protected = ProtectedRowPointer(matrix.rowptr, rowptr_scheme)
        if element_scheme is None:
            self.elements = _UnprotectedElements(
                matrix.values.copy(), matrix.colidx.copy()
            )
        else:
            self.elements = ProtectedCSRElements(
                matrix.values.copy(),
                matrix.colidx.copy(),
                self.rowptr_protected.clean(),  # trusted structure at build time
                matrix.shape[1],
                element_scheme,
            )
        self._clean_views: tuple[np.ndarray, np.ndarray] | None = None
        self._diagonal: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self.elements.values

    @property
    def colidx(self) -> np.ndarray:
        """Stored (redundancy-carrying) column indices."""
        return self.elements.colidx

    @property
    def rowptr(self) -> np.ndarray:
        """Stored (redundancy-carrying) row pointer."""
        return self.rowptr_protected.raw

    @property
    def nnz(self) -> int:
        return self.elements.nnz

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    # ------------------------------------------------------------------
    def check_all(self, correct: bool = True) -> dict[str, CheckReport]:
        """Integrity-check every region; returns per-region reports.

        The cached clean index views (and the diagonal derived from them)
        are dropped so the next SpMV decodes from the (possibly just
        corrected) stored arrays.
        """
        self._clean_views = None
        self._diagonal = None
        return {
            "csr_elements": self.elements.check(correct=correct),
            "row_pointer": self.rowptr_protected.check(correct=correct),
        }

    def check_or_raise(self, correct: bool = True) -> dict[str, CheckReport]:
        """Like :meth:`check_all` but raises on any uncorrectable codeword."""
        reports = self.check_all(correct=correct)
        for region, report in reports.items():
            if not report.ok:
                raise DetectedUncorrectableError(
                    region, report.uncorrectable_indices()[:8].tolist()
                )
        return reports

    def detect_any(self) -> bool:
        """Cheapest question: is anything corrupted right now?"""
        return bool(self.elements.detect().any() or self.rowptr_protected.detect().any())

    def bounds_check(self) -> None:
        """The paper's range checks for skipped-integrity iterations.

        Row-pointer values must stay below nnz and column indices below
        the column count so a flipped index can never cause an
        out-of-bounds access (§VI.A.2).  Raises
        :class:`~repro.errors.BoundsViolationError` on violation.
        """
        ptr = self.rowptr_protected.clean()
        if int(ptr.max(initial=0)) > self.nnz:
            raise BoundsViolationError("row_pointer")
        if np.any(np.diff(ptr.astype(np.int64)) < 0):
            raise BoundsViolationError("row_pointer")
        col = self.elements.colidx_clean()
        if col.size and int(col.max()) >= self.n_cols:
            raise BoundsViolationError("csr_elements")

    # ------------------------------------------------------------------
    def clean_views(self) -> tuple[np.ndarray, np.ndarray]:
        """Decode-free SpMV structure: cached ``(colidx, rowptr)`` cleaned views.

        Rebuilt lazily after every :meth:`check_all` (which may have
        corrected the stored arrays) and on :meth:`invalidate_clean_views`.
        Between checks the SpMV therefore runs over the last-verified
        index snapshot at plain-NumPy speed; the value array is always
        used live, so value corruption stays observable.
        """
        if self._clean_views is None:
            self._clean_views = (
                self.elements.colidx_clean(),
                self.rowptr_protected.clean(),
            )
        return self._clean_views

    def invalidate_clean_views(self) -> None:
        """Drop the cached cleaned index views (e.g. after re-encoding)."""
        self._clean_views = None
        self._diagonal = None

    def diagonal(self) -> np.ndarray:
        """The decoded main diagonal, cached between integrity checks.

        Built by :meth:`CSRMatrix.diagonal` over a zero-copy view of the
        cached clean indices (no whole-matrix ``to_csr`` decode) and
        invalidated alongside them whenever a check may have corrected
        the stored arrays.
        """
        if self._diagonal is None:
            colidx, rowptr = self.clean_views()
            view = CSRMatrix(
                self.elements.values, colidx, rowptr, self.shape, validate=False
            )
            self._diagonal = view.diagonal()
        return self._diagonal

    def matvec_unchecked(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """SpMV on cleaned views without any integrity verification."""
        colidx, rowptr = self.clean_views()
        return spmv(
            self.elements.values,
            colidx,
            rowptr,
            x,
            self.n_rows,
            out=out,
        )

    def to_csr(self) -> CSRMatrix:
        """Decode to a plain CSR matrix (cleaned indices, same values)."""
        return CSRMatrix(
            self.elements.values.copy(),
            self.elements.colidx_clean(),
            self.rowptr_protected.clean(),
            self.shape,
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedCSRMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"elements={self.elements.scheme!r}, rowptr={self.rowptr_protected.scheme!r})"
        )
