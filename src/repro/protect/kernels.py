"""Solver kernels over protected data structures.

TeaLeaf spends >98 % of its runtime in three kernels — the sparse
matrix-vector product, dot products and vector updates — so these are the
only places integrity checks are paid for.  The functions here wire the
check policy into each kernel:

* :func:`protected_spmv` — full check or range check on the matrix
  (per the policy), then a plain SpMV over the cleaned views;
* :func:`protected_dot` / :func:`protected_axpy` — check-on-read,
  mask, compute, re-encode on write (write buffering: whole codewords are
  committed at once, so no read-modify-write is ever needed).

Every kernel accepts an optional
:class:`~repro.protect.engine.DeferredVerificationEngine`; with one, the
per-access check/re-encode is replaced by the engine's amortised
schedule — reads come from cached plain views, writes buffer into dirty
windows, and verification happens at the engine's scheduled points (from
which :class:`~repro.errors.DetectedUncorrectableError` still
propagates).

All kernels raise :class:`~repro.errors.DetectedUncorrectableError` when
a check finds damage it cannot repair — the application layer (e.g. the
CG driver) decides whether to restart, recompute or abort, which the
paper highlights as an ABFT advantage over hardware ECC.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectedUncorrectableError
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector


def full_matrix_check(
    matrix: ProtectedCSRMatrix,
    policy: CheckPolicy,
    name: str | None = None,
    stripe: tuple[int, int] | None = None,
) -> None:
    """Matrix region check, accounted against the policy.

    The one place that runs ``check_all`` (or, for a scheduled striped
    verification, ``check_stripe``), folds the reports into the policy
    counters and raises on uncorrectable damage — shared by the
    per-access :func:`verify_matrix` path and the engine's scheduled
    checks (which pass the registered region ``name`` for the error).
    """
    if stripe is None:
        reports = matrix.check_all(correct=policy.correct)
        policy.stats.full_checks += 1
    else:
        reports = matrix.check_stripe(stripe[0], stripe[1], correct=policy.correct)
        policy.stats.stripe_checks += 1
    for region, report in reports.items():
        policy.stats.corrected += report.n_corrected
        policy.stats.uncorrectable += report.n_uncorrectable
        if not report.ok:
            region_name = f"{name}:{region}" if name else region
            raise DetectedUncorrectableError(
                region_name, report.uncorrectable_indices()[:8].tolist()
            )


def fused_matrix_spmv(
    matrix: ProtectedCSRMatrix,
    x: np.ndarray,
    policy: CheckPolicy,
    name: str | None = None,
    out: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """A due SpMV whose matrix check runs fused inside the product.

    The verify-in-SpMV counterpart of :func:`full_matrix_check` followed
    by ``matvec_unchecked``: every codeword of every region is verified
    on the gather traffic the product pays for anyway
    (:meth:`~repro.protect.matrix.ProtectedCSRMatrix.spmv_verified`),
    with identical accounting — the access counts as a full check plus a
    ``fused_products`` tick — and the same raise-on-uncorrectable
    contract.
    """
    y, reports = matrix.spmv_verified(
        x, out=out, correct=policy.correct, backend=backend
    )
    policy.stats.full_checks += 1
    policy.stats.fused_products += 1
    for region, report in reports.items():
        policy.stats.corrected += report.n_corrected
        policy.stats.uncorrectable += report.n_uncorrectable
        if not report.ok:
            region_name = f"{name}:{region}" if name else region
            raise DetectedUncorrectableError(
                region_name, report.uncorrectable_indices()[:8].tolist()
            )
    return y


def fused_matrix_spmm(
    matrix: ProtectedCSRMatrix,
    X: np.ndarray,
    policy: CheckPolicy,
    name: str | None = None,
    out: np.ndarray | None = None,
    backend=None,
) -> np.ndarray:
    """A due blocked SpMV whose matrix check runs fused inside the product.

    The multi-RHS twin of :func:`fused_matrix_spmv`: every codeword is
    verified once and its decoded element feeds all ``k`` products
    (:meth:`~repro.protect.matrix.ProtectedCSRMatrix.spmv_verified_multi`).
    Accounting and the raise-on-uncorrectable contract are identical —
    one full check plus one ``fused_products`` tick per blocked product,
    matching a single-RHS due access.
    """
    y, reports = matrix.spmv_verified_multi(
        X, out=out, correct=policy.correct, backend=backend
    )
    policy.stats.full_checks += 1
    policy.stats.fused_products += 1
    for region, report in reports.items():
        policy.stats.corrected += report.n_corrected
        policy.stats.uncorrectable += report.n_uncorrectable
        if not report.ok:
            region_name = f"{name}:{region}" if name else region
            raise DetectedUncorrectableError(
                region_name, report.uncorrectable_indices()[:8].tolist()
            )
    return y


def verify_matrix(
    matrix: ProtectedCSRMatrix, policy: CheckPolicy | None, *, force: bool = False
) -> None:
    """Run the policy-selected matrix verification (full, stripe or range check).

    ``policy.stripes > 1`` rotates scheduled checks through codeword
    stripes exactly as the engine does (``force=True`` — the mandatory
    end-of-step sweep — is always a full check).
    """
    if policy is None:
        policy = CheckPolicy(interval=1, correct=True)
    if force:
        full_matrix_check(matrix, policy)
    elif policy.should_check():
        # Containers without stripe support (e.g. the COO wrapper) take
        # the full check on every due access — strictly more coverage.
        if policy.stripes > 1 and hasattr(matrix, "check_stripe"):
            full_matrix_check(
                matrix, policy, stripe=(policy.next_stripe(), policy.stripes)
            )
        else:
            full_matrix_check(matrix, policy)
    elif policy.interval:
        matrix.bounds_check()
        policy.stats.bounds_checks += 1


def protected_spmv(
    matrix: ProtectedCSRMatrix,
    x: np.ndarray | ProtectedVector,
    policy: CheckPolicy | None = None,
    out: np.ndarray | None = None,
    engine=None,
) -> np.ndarray:
    """``A @ x`` with policy-driven matrix verification.

    ``x`` may be a plain array (already masked/trusted) or a
    :class:`ProtectedVector`, which is checked and masked first.  With an
    ``engine`` the verification follows its amortised schedule instead.
    """
    if engine is not None:
        return engine.spmv(matrix, x, out=out)
    verify_matrix(matrix, policy)
    if isinstance(x, ProtectedVector):
        x = load_vector(x)
    return matrix.matvec_unchecked(x, out=out)


def load_vector(vector: ProtectedVector, *, correct: bool = True) -> np.ndarray:
    """Check a protected vector and return masked, compute-ready values."""
    report = vector.check(correct=correct)
    if not report.ok:
        raise DetectedUncorrectableError(
            "vector", report.uncorrectable_indices()[:8].tolist()
        )
    return vector.values()


def protected_dot(
    a: ProtectedVector, b: ProtectedVector | np.ndarray, engine=None
) -> float:
    """Dot product: check-on-read, or fused decode-free reads via engine."""
    if engine is not None:
        av = engine.read(a) if isinstance(a, ProtectedVector) else np.asarray(a)
        bv = engine.read(b) if isinstance(b, ProtectedVector) else np.asarray(b)
        return float(np.dot(av, bv))
    av = load_vector(a)
    bv = load_vector(b) if isinstance(b, ProtectedVector) else np.asarray(b)
    return float(np.dot(av, bv))


def protected_axpy(
    alpha: float, x: ProtectedVector | np.ndarray, y: ProtectedVector, engine=None
) -> None:
    """``y <- alpha * x + y`` committed as whole re-encoded codewords.

    With an ``engine`` the commit is a buffered dirty-window write.
    """
    if engine is not None:
        xv = engine.read(x) if isinstance(x, ProtectedVector) else np.asarray(x)
        engine.write(y, alpha * xv + engine.read(y))
        return
    xv = load_vector(x) if isinstance(x, ProtectedVector) else np.asarray(x)
    yv = load_vector(y)
    y.store(alpha * xv + yv)
