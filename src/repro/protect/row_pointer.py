"""Protection of the CSR row-pointer vector (paper §VI.A.1, Fig. 2).

The paper's novel piece: prior ABFT work left the row pointer (*x* vector)
exposed.  Each 32-bit entry is at most ``nnz``, so its top bits are free:

========== ====== ================== ========================
scheme      group  bits/entry stolen  max representable value
========== ====== ================== ========================
sed          1     1 (bit 31)         2**31 - 1
secded64     2     4 (bits 28..31)    2**28 - 1
secded128    4     4                  2**28 - 1
crc32c       8     4                  2**28 - 1
========== ====== ================== ========================

Multi-entry codewords amortise the redundancy ("our new scheme allows us
to split the redundancy bits between 2, 4 and 8 elements").  A tail of
``len % group`` entries falls back to per-entry SED in bit 31 — the top
nibble of a tail entry is zero and covered by that parity.

The CRC32C stream is the group's 32 bytes with every top nibble zeroed;
checksum nibble ``e`` (crc bits ``4e..4e+3``) is stored in entry ``e``'s
top nibble.
"""

from __future__ import annotations

import numpy as np

from repro.bits.packing import pack_u32_lanes, unpack_u32_lanes
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import rowptr_secded64, rowptr_secded128
from repro.errors import ConfigurationError
from repro.protect.base import (
    GROUPS,
    ROWPTR_SCHEMES,
    require_fits,
    resolve_codeword_window,
    rowptr_value_limit,
)

_LOW28 = np.uint32(0x0FFFFFFF)
_LOW31 = np.uint32(0x7FFFFFFF)


class ProtectedRowPointer:
    """The protected row-pointer (*x*) vector of a CSR matrix."""

    def __init__(self, rowptr: np.ndarray, scheme: str = "secded64",
                 crc_mode: str = "2EC3ED"):
        if scheme not in ROWPTR_SCHEMES:
            raise ConfigurationError(
                f"unknown rowptr scheme {scheme!r}; choose from {sorted(ROWPTR_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)  # validate eagerly
        self.group = GROUPS["rowptr"][scheme]
        self.raw = np.ascontiguousarray(rowptr, dtype=np.uint32).copy()
        require_fits(self.raw, rowptr_value_limit(scheme), "row pointer")
        self._n_grouped = (self.raw.size // self.group) * self.group
        # Persistent lane buffer for the grouped codewords; refilled in
        # place by _lanes_synced so checks allocate nothing sizeable.
        self._lane_buf: np.ndarray | None = None
        self.encode()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.raw.size

    @property
    def tail_size(self) -> int:
        """Number of entries in the final, partial codeword group."""
        return self.raw.size - self._n_grouped

    @property
    def n_codewords(self) -> int:
        """Number of ECC codewords covering this container."""
        return self._n_grouped // self.group + self.tail_size

    @property
    def entry_mask(self) -> np.uint32:
        """Bit mask of the row-pointer bits that hold data rather than ECC."""
        return _LOW31 if self.scheme == "sed" else _LOW28

    def clean(self, out: np.ndarray | None = None) -> np.ndarray:
        """Row-pointer values with redundancy stripped."""
        if out is None:
            out = np.empty_like(self.raw)
        np.bitwise_and(self.raw, self.entry_mask, out=out)
        if self.tail_size:
            out[self._n_grouped :] = self.raw[self._n_grouped :] & _LOW31
        return out

    def clean64(self, out: np.ndarray) -> np.ndarray:
        """Redundancy-stripped values widened into a caller-owned int64 array.

        The decode-free SpMV path keeps a persistent pre-converted index
        snapshot; this fills it without intermediate uint32 temporaries.
        """
        np.copyto(out, self.raw, casting="same_kind")
        np.bitwise_and(out, np.int64(self.entry_mask), out=out)
        if self.tail_size:
            tail = out[self._n_grouped :]
            np.copyto(tail, self.raw[self._n_grouped :], casting="same_kind")
            np.bitwise_and(tail, np.int64(_LOW31), out=tail)
        return out

    def verify_and_clean64(
        self, out: np.ndarray, correct: bool = True
    ) -> CheckReport:
        """Check the whole container, then decode into ``out`` if trustworthy.

        The fused SpMV's row-pointer step: the row pointer is tiny next
        to the element lanes (``group`` entries per codeword), so
        "fusing" it means one sweep check immediately followed by the
        widened decode the product consumes — skipping the decode when
        the check found uncorrectable damage.  Returns the check report;
        ``out`` is only valid when ``report.ok``.
        """
        report = self.check(correct=correct)
        if report.ok:
            self.clean64(out)
        return report

    # ------------------------------------------------------------------
    def _lanes_synced(self, glo: int = 0, ghi: int | None = None) -> np.ndarray:
        """Persistent grouped-codeword lanes for groups ``[glo, ghi)``."""
        n_groups = self._n_grouped // self.group
        ghi = n_groups if ghi is None else ghi
        if self._lane_buf is None:
            n_lanes = (self.group + 1) // 2
            self._lane_buf = np.empty((n_groups, n_lanes), dtype=np.uint64)
        pack_u32_lanes(
            self.raw[glo * self.group : ghi * self.group],
            self.group,
            out=self._lane_buf[glo:ghi],
        )
        return self._lane_buf[glo:ghi]
    def encode(self) -> None:
        """(Re-)compute and embed the ECC bits over the current storage."""
        if self.scheme == "sed":
            data = self.raw & _LOW31
            p = (np.bitwise_count(data) & np.uint8(1)).astype(np.uint32)
            self.raw[:] = data | (p << np.uint32(31))
            return
        if self._n_grouped:
            body = self.raw[: self._n_grouped]
            lanes = self._lanes_synced()
            if self.scheme == "secded64":
                rowptr_secded64().encode(lanes)
            elif self.scheme == "secded128":
                rowptr_secded128().encode(lanes)
            else:
                self._encode_crc(lanes)
            body[:] = unpack_u32_lanes(lanes, self.group)
        self._encode_tail()

    def _encode_tail(self) -> None:
        if not self.tail_size:
            return
        tail = self.raw[self._n_grouped :]
        data = tail & _LOW31
        p = (np.bitwise_count(data) & np.uint8(1)).astype(np.uint32)
        tail[:] = data | (p << np.uint32(31))

    # ------------------------------------------------------------------
    def detect(self) -> np.ndarray:
        """Per-codeword error flags from one syndrome pass; never corrects."""
        if self.scheme == "sed":
            return (np.bitwise_count(self.raw) & np.uint8(1)).astype(bool)
        flags = np.zeros(0, dtype=bool)
        if self._n_grouped:
            lanes = self._lanes_synced()
            if self.scheme == "secded64":
                flags = rowptr_secded64().detect(lanes)
            elif self.scheme == "secded128":
                flags = rowptr_secded128().detect(lanes)
            else:
                flags = self._crc_diff(lanes) != 0
        if self.tail_size:
            tail_flags = (
                np.bitwise_count(self.raw[self._n_grouped :]) & np.uint8(1)
            ).astype(bool)
            flags = np.concatenate([flags, tail_flags])
        return flags

    def _code(self):
        return rowptr_secded64() if self.scheme == "secded64" else rowptr_secded128()

    def check(
        self, correct: bool = True, window: tuple[int, int] | None = None
    ) -> CheckReport:
        """Integrity check, optionally over the codeword range ``window``.

        As for the CSR elements, clean codewords come back as a compact
        all-OK report so the scheduled hot path allocates nothing
        proportional to the matrix.
        """
        lo, hi = resolve_codeword_window(window, self.n_codewords)
        if hi <= lo:
            return CheckReport.all_ok(0)
        if self.scheme == "sed":
            return self._check_sed_entries(self.raw[lo:hi])
        n_groups = self._n_grouped // self.group
        parts: list[CheckReport] = []
        glo, ghi = lo, min(hi, n_groups)
        if glo < ghi:
            lanes = self._lanes_synced(glo, ghi)
            if self.scheme == "crc32c":
                report = self._check_crc(lanes) if correct else self._detect_crc(lanes)
            elif correct:
                report = self._code().check_and_correct(lanes)
            else:
                report = self._code().detect_report(lanes)
            if report.n_corrected:
                body = self.raw[glo * self.group : ghi * self.group]
                body[:] = unpack_u32_lanes(lanes, self.group)
            parts.append(report)
        if hi > n_groups:
            tlo = self._n_grouped + (max(lo, n_groups) - n_groups)
            thi = self._n_grouped + (hi - n_groups)
            parts.append(self._check_sed_entries(self.raw[tlo:thi]))
        return CheckReport.concat(parts)

    @staticmethod
    def _check_sed_entries(entries: np.ndarray) -> CheckReport:
        """Per-entry SED parity verdicts (whole-vector SED and tails)."""
        flags = (np.bitwise_count(entries) & np.uint8(1)).astype(bool)
        return CheckReport.from_flags(flags)

    def _detect_crc(self, lanes: np.ndarray) -> CheckReport:
        return CheckReport.from_flags(self._crc_diff(lanes) != 0)

    # -- crc32c internals ---------------------------------------------------
    @staticmethod
    def _lanes_to_u32(lanes: np.ndarray) -> np.ndarray:
        """(N, 8) uint32 view of the group entries."""
        return (
            np.ascontiguousarray(lanes)
            .view(np.uint32)
            .reshape(lanes.shape[0], 8)
        )

    def _crc_stream(self, lanes: np.ndarray) -> np.ndarray:
        entries = self._lanes_to_u32(lanes)
        masked = entries & _LOW28
        return masked.view(np.uint8).reshape(lanes.shape[0], 32)

    def _stored_crc(self, lanes: np.ndarray) -> np.ndarray:
        entries = self._lanes_to_u32(lanes)
        stored = np.zeros(lanes.shape[0], dtype=np.uint32)
        for e in range(8):
            nibble = entries[:, e] >> np.uint32(28)
            stored |= nibble << np.uint32(4 * e)
        return stored

    def _crc_diff(self, lanes: np.ndarray) -> np.ndarray:
        return crc32c_batch(self._crc_stream(lanes)) ^ self._stored_crc(lanes)

    def _encode_crc(self, lanes: np.ndarray) -> None:
        crc = crc32c_batch(self._crc_stream(lanes))
        entries = self._lanes_to_u32(lanes)
        for e in range(8):
            nibble = (crc >> np.uint32(4 * e)) & np.uint32(0xF)
            entries[:, e] = (entries[:, e] & _LOW28) | (nibble << np.uint32(28))
        # entries is a view over `lanes`, so the update is already in place.

    def _check_crc(self, lanes: np.ndarray) -> CheckReport:
        diff = self._crc_diff(lanes)
        status = np.zeros(lanes.shape[0], dtype=np.uint8)
        bad = np.flatnonzero(diff)
        if bad.size:
            corrector = corrector_for(32)
            entries = self._lanes_to_u32(lanes)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            if max_errors == 0:  # 5ED: detection-only operating point
                status[bad] = CodewordStatus.UNCORRECTABLE
                return CheckReport(status=status)
            for g in bad:
                located = corrector.locate(int(diff[g]), max_errors=max_errors)
                if located is None or any(
                    bit < corrector.n_data_bits and (bit % 32) >= 28 for bit in located
                ):
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    if bit < corrector.n_data_bits:
                        e, b = divmod(bit, 32)
                    else:
                        j = bit - corrector.n_data_bits
                        e, b = j // 4, 28 + j % 4
                    entries[g, e] ^= np.uint32(1) << np.uint32(b)
                status[g] = CodewordStatus.CORRECTED
        return CheckReport(status=status)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProtectedRowPointer(n={self.raw.size}, scheme={self.scheme!r})"
