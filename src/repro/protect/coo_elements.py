"""Protection of COO elements (the prior-work format, [13]).

A COO element is 128 bits — ``(value float64, row uint32, col uint32)``
— with *two* spare top-bit regions.  Three schemes:

========== ====================== ============================ ============
scheme      codeword               redundancy placement         dim limit
========== ====================== ============================ ============
sed         one element (128 b)    row-index bit 31             2**31 - 1 rows
secded128   one element (128 b)    9 of both indices' top bytes 2**24 - 1 both
crc32c      two elements (256 b)   all four top bytes           2**24 - 1 both
========== ====================== ============================ ============

(SECDED64 does not apply: a 128-bit codeword needs 9 check bits and COO
has no 96-bit framing; the per-element SECDED128 is the natural fit —
this matches prior work treating COO elements as single codewords.)

CRC32C stream layout per pair: 16 value bytes, then the four masked
index words (row0, col0, row1, col1); checksum byte ``j`` lives in the
top byte of the ``j``-th index word of the pair.  An odd trailing
element falls back to SED.
"""

from __future__ import annotations

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.bits.popcount import parity64
from repro.ecc.base import CheckReport, CodewordStatus
from repro.ecc.crc32c import crc32c_batch
from repro.ecc.crc_correct import corrector_for, max_errors_for_mode
from repro.ecc.profiles import coo_element_secded128
from repro.errors import ConfigurationError

_ONE = np.uint64(1)
_LOW24 = np.uint32(0x00FFFFFF)
_LOW31 = np.uint32(0x7FFFFFFF)

#: COO schemes and the index bits they reserve (row, col).
COO_SCHEMES: dict[str, tuple[int, int]] = {
    "sed": (1, 0),
    "secded128": (8, 8),
    "crc32c": (8, 8),
}


class ProtectedCOOElements:
    """Protected ``(values, rowidx, colidx)`` triplets of a COO matrix."""

    def __init__(
        self,
        values: np.ndarray,
        rowidx: np.ndarray,
        colidx: np.ndarray,
        shape: tuple[int, int],
        scheme: str = "secded128",
        crc_mode: str = "2EC3ED",
    ):
        if scheme not in COO_SCHEMES:
            raise ConfigurationError(
                f"unknown COO scheme {scheme!r}; choose from {sorted(COO_SCHEMES)}"
            )
        self.scheme = scheme
        self.crc_mode = crc_mode
        max_errors_for_mode(crc_mode, True)  # validate eagerly
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.rowidx = np.ascontiguousarray(rowidx, dtype=np.uint32)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint32)
        self.shape = (int(shape[0]), int(shape[1]))
        row_bits, col_bits = COO_SCHEMES[scheme]
        row_limit = (1 << (32 - row_bits)) - 1
        col_limit = (1 << (32 - col_bits)) - 1 if col_bits else 2**32 - 1
        if self.shape[0] > row_limit or self.shape[1] > col_limit:
            raise ConfigurationError(
                f"{scheme}: shape {self.shape} exceeds limits "
                f"({row_limit}, {col_limit})"
            )
        self.nnz = self.values.size
        self._n_paired = (self.nnz // 2) * 2 if scheme == "crc32c" else self.nnz
        self.encode()

    # ------------------------------------------------------------------
    @property
    def row_mask(self) -> np.uint32:
        """Bit mask of the row-index bits that hold data rather than ECC."""
        return _LOW31 if self.scheme == "sed" else _LOW24

    @property
    def col_mask(self) -> np.uint32:
        """Bit mask of the column-index bits that hold data rather than ECC."""
        return np.uint32(0xFFFFFFFF) if self.scheme == "sed" else _LOW24

    @property
    def n_codewords(self) -> int:
        """Number of ECC codewords covering this container."""
        if self.scheme == "crc32c":
            return self._n_paired // 2 + (self.nnz - self._n_paired)
        return self.nnz

    def rowidx_clean(self) -> np.ndarray:
        """Row indices with the embedded ECC bits masked off."""
        return self.rowidx & self.row_mask

    def colidx_clean(self) -> np.ndarray:
        """Column indices with the embedded ECC bits masked off."""
        return self.colidx & self.col_mask

    # ------------------------------------------------------------------
    def _element_lanes(self, sl: slice = slice(None)) -> np.ndarray:
        lanes = np.empty((len(self.values[sl]), 2), dtype=np.uint64)
        lanes[:, 0] = f64_to_u64(self.values)[sl]
        lanes[:, 1] = self.rowidx[sl].astype(np.uint64) | (
            self.colidx[sl].astype(np.uint64) << np.uint64(32)
        )
        return lanes

    def _store_lanes(self, lanes: np.ndarray, idx: np.ndarray) -> None:
        if idx.size == 0:
            return
        f64_to_u64(self.values)[idx] = lanes[idx, 0]
        self.rowidx[idx] = (lanes[idx, 1] & np.uint64(0xFFFFFFFF)).astype(np.uint32)
        self.colidx[idx] = (lanes[idx, 1] >> np.uint64(32)).astype(np.uint32)

    def encode(self) -> None:
        """(Re-)compute and embed the ECC bits over the current storage."""
        if self.scheme == "sed":
            data = self.rowidx & _LOW31
            p = (
                parity64(f64_to_u64(self.values))
                ^ (np.bitwise_count(data) & np.uint8(1))
                ^ (np.bitwise_count(self.colidx) & np.uint8(1))
            ).astype(np.uint32)
            self.rowidx[:] = data | (p << np.uint32(31))
        elif self.scheme == "secded128":
            lanes = self._element_lanes()
            coo_element_secded128().encode(lanes)
            self._store_lanes(lanes, np.arange(self.nnz))
        else:
            self._encode_crc()

    def detect(self) -> np.ndarray:
        """Per-codeword error flags from one syndrome pass; never corrects."""
        if self.scheme == "sed":
            p = (
                parity64(f64_to_u64(self.values))
                ^ (np.bitwise_count(self.rowidx) & np.uint8(1))
                ^ (np.bitwise_count(self.colidx) & np.uint8(1))
            )
            return p.astype(bool)
        if self.scheme == "secded128":
            return coo_element_secded128().detect(self._element_lanes())
        flags = self._crc_diff() != 0
        if self.nnz != self._n_paired:
            tail = self._tail_parity().astype(bool)
            flags = np.concatenate([flags, tail])
        return flags

    def check(self, correct: bool = True) -> CheckReport:
        """Verify every codeword, correcting where the scheme and ``correct`` allow."""
        if not correct or self.scheme == "sed":
            flags = self.detect()
            return CheckReport(
                status=np.where(
                    flags,
                    np.uint8(CodewordStatus.UNCORRECTABLE),
                    np.uint8(CodewordStatus.OK),
                )
            )
        if self.scheme == "secded128":
            lanes = self._element_lanes()
            report = coo_element_secded128().check_and_correct(lanes)
            self._store_lanes(lanes, report.corrected_indices())
            return report
        return self._check_crc()

    # -- crc32c internals ---------------------------------------------------
    # Stream per pair: value0 bytes, value1 bytes, then masked
    # (row0, col0, row1, col1); checksum byte j stored in the top byte of
    # the j-th index word.
    def _pair_index_words(self) -> np.ndarray:
        n_pairs = self._n_paired // 2
        words = np.empty((n_pairs, 4), dtype=np.uint32)
        words[:, 0] = self.rowidx[0 : self._n_paired : 2]
        words[:, 1] = self.colidx[0 : self._n_paired : 2]
        words[:, 2] = self.rowidx[1 : self._n_paired : 2]
        words[:, 3] = self.colidx[1 : self._n_paired : 2]
        return words

    def _store_pair_index_words(self, words: np.ndarray) -> None:
        self.rowidx[0 : self._n_paired : 2] = words[:, 0]
        self.colidx[0 : self._n_paired : 2] = words[:, 1]
        self.rowidx[1 : self._n_paired : 2] = words[:, 2]
        self.colidx[1 : self._n_paired : 2] = words[:, 3]

    def _pair_stream(self) -> tuple[np.ndarray, np.ndarray]:
        n_pairs = self._n_paired // 2
        vals = (
            f64_to_u64(self.values)[: self._n_paired]
            .reshape(n_pairs, 2)
            .view(np.uint8)
            .reshape(n_pairs, 16)
        )
        words = self._pair_index_words()
        masked = (words & _LOW24).view(np.uint8).reshape(n_pairs, 16)
        stream = np.concatenate([vals, masked], axis=1)
        stored = np.zeros(n_pairs, dtype=np.uint32)
        for j in range(4):
            stored |= (words[:, j] >> np.uint32(24)) << np.uint32(8 * j)
        return stream, stored

    def _encode_crc(self) -> None:
        if self._n_paired:
            stream, _ = self._pair_stream()
            crc = crc32c_batch(stream)
            words = self._pair_index_words() & _LOW24
            for j in range(4):
                chunk = ((crc >> np.uint32(8 * j)) & np.uint32(0xFF)).astype(np.uint32)
                words[:, j] |= chunk << np.uint32(24)
            self._store_pair_index_words(words)
        self._encode_tail()

    def _encode_tail(self) -> None:
        if self.nnz == self._n_paired:
            return
        sl = slice(self._n_paired, None)
        data = self.rowidx[sl] & _LOW31
        p = (
            parity64(f64_to_u64(self.values)[sl])
            ^ (np.bitwise_count(data) & np.uint8(1))
            ^ (np.bitwise_count(self.colidx[sl]) & np.uint8(1))
        ).astype(np.uint32)
        self.rowidx[sl] = data | (p << np.uint32(31))

    def _tail_parity(self) -> np.ndarray:
        sl = slice(self._n_paired, None)
        return (
            parity64(f64_to_u64(self.values)[sl])
            ^ (np.bitwise_count(self.rowidx[sl]) & np.uint8(1))
            ^ (np.bitwise_count(self.colidx[sl]) & np.uint8(1))
        )

    def _crc_diff(self) -> np.ndarray:
        if not self._n_paired:
            return np.zeros(0, dtype=np.uint32)
        stream, stored = self._pair_stream()
        return crc32c_batch(stream) ^ stored

    def _check_crc(self) -> CheckReport:
        diff = self._crc_diff()
        status = np.zeros(self.n_codewords, dtype=np.uint8)
        bad = np.flatnonzero(diff)
        if bad.size:
            corrector = corrector_for(32)
            max_errors = max_errors_for_mode(self.crc_mode, corrector.hd6)
            vwords = f64_to_u64(self.values)
            words = self._pair_index_words()
            changed = False
            for g in bad:
                if max_errors == 0:
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                located = corrector.locate(int(diff[g]), max_errors=max_errors)
                # Bits 24..31 of a masked index word are zero in the stream.
                if located is None or any(
                    128 <= bit < corrector.n_data_bits and (bit % 32) >= 24
                    for bit in located
                ):
                    status[g] = CodewordStatus.UNCORRECTABLE
                    continue
                for bit in located:
                    if bit >= corrector.n_data_bits:
                        j = bit - corrector.n_data_bits
                        words[g, j // 8] ^= np.uint32(1) << np.uint32(24 + j % 8)
                        changed = True
                    elif bit < 128:
                        elem, b = divmod(bit, 64)
                        vwords[2 * g + elem] ^= _ONE << np.uint64(b)
                    else:
                        word, b = divmod(bit - 128, 32)
                        words[g, word] ^= np.uint32(1) << np.uint32(b)
                        changed = True
                status[g] = CodewordStatus.CORRECTED
            if changed:
                self._store_pair_index_words(words)
        if self.nnz != self._n_paired:
            tail_bad = self._tail_parity().astype(bool)
            n_pairs = self._n_paired // 2
            status[n_pairs:][tail_bad] = CodewordStatus.UNCORRECTABLE
        return CheckReport(status=status)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedCOOElements(nnz={self.nnz}, scheme={self.scheme!r}, "
            f"codewords={self.n_codewords})"
        )


class ProtectedCOOMatrix:
    """A COO matrix with fully protected triplets.

    API mirrors :class:`~repro.protect.matrix.ProtectedCSRMatrix` so the
    protected kernels and campaigns can treat both formats uniformly.
    """

    def __init__(self, matrix, scheme: str = "secded128", crc_mode: str = "2EC3ED"):
        self.shape = matrix.shape
        self.elements = ProtectedCOOElements(
            matrix.values.copy(),
            matrix.rowidx.copy(),
            matrix.colidx.copy(),
            matrix.shape,
            scheme,
            crc_mode,
        )

    @property
    def values(self) -> np.ndarray:
        """The stored element values (raw storage, ECC bits included)."""
        return self.elements.values

    @property
    def rowidx(self) -> np.ndarray:
        """The stored row indices (raw storage, ECC bits included)."""
        return self.elements.rowidx

    @property
    def colidx(self) -> np.ndarray:
        """The stored column indices (raw storage, ECC bits included)."""
        return self.elements.colidx

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return self.elements.nnz

    def check_all(self, correct: bool = True) -> dict[str, CheckReport]:
        """Run a full check over every protected region; reports keyed by region."""
        return {"coo_elements": self.elements.check(correct=correct)}

    def detect_any(self) -> bool:
        """True when any codeword currently carries a detectable upset."""
        return bool(self.elements.detect().any())

    def bounds_check(self) -> None:
        """Raise :class:`BoundsViolationError` when a clean index exceeds the shape."""
        from repro.errors import BoundsViolationError

        rows = self.elements.rowidx_clean()
        cols = self.elements.colidx_clean()
        if rows.size and int(rows.max()) >= self.shape[0]:
            raise BoundsViolationError("coo_elements")
        if cols.size and int(cols.max()) >= self.shape[1]:
            raise BoundsViolationError("coo_elements")

    def matvec_unchecked(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """SpMV over the clean views with no integrity checks (caller schedules them)."""
        if out is None:
            out = np.zeros(self.shape[0], dtype=np.float64)
        else:
            out[:] = 0.0
        np.add.at(
            out,
            self.elements.rowidx_clean().astype(np.int64),
            self.elements.values * x[self.elements.colidx_clean().astype(np.int64)],
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ProtectedCOOMatrix(shape={self.shape}, nnz={self.nnz}, "
            f"scheme={self.elements.scheme!r})"
        )
