"""ProtectedOperator: any solver, protected.

The paper notes its techniques "could be used with other solver methods"
and that the right long-term home is the solver-library level (PETSc /
Trilinos, §VIII).  This adapter is that idea in miniature: it exposes a
protected matrix as a plain :class:`~repro.solvers.base.LinearOperator`
whose every ``matvec`` runs the policy-selected verification — so
Jacobi, Chebyshev, PPCG, scipy's solvers, anything operator-based,
becomes ABFT-protected without touching its code.
"""

from __future__ import annotations

import numpy as np

from repro.protect.kernels import verify_matrix
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import LinearOperator


class ProtectedOperator(LinearOperator):
    """A policy-checked matvec view over a protected matrix.

    Parameters
    ----------
    matrix:
        The protected matrix (CSR or COO wrapper — anything with
        ``matvec_unchecked``, ``check_all`` and ``bounds_check``).
    policy:
        Check policy; defaults to a full check before every SpMV.
    """

    def __init__(self, matrix, policy: CheckPolicy | None = None):
        self.matrix = matrix
        self.policy = policy or CheckPolicy(interval=1, correct=True)
        n = matrix.shape[0]
        diagonal = None
        if isinstance(matrix, ProtectedCSRMatrix):
            # The matrix caches the decoded diagonal (and invalidates it
            # when a check corrects storage), so Jacobi-preconditioned
            # setups no longer pay a full to_csr() decode per call.
            diagonal = matrix.diagonal
        super().__init__(self._checked_matvec, n, diagonal)

    def _checked_matvec(self, x: np.ndarray) -> np.ndarray:
        verify_matrix(self.matrix, self.policy)
        return self.matrix.matvec_unchecked(x)

    def end_of_step(self) -> None:
        """Run the mandatory end-of-step sweep when checks were deferred."""
        if self.policy.end_of_step():
            verify_matrix(self.matrix, self.policy, force=True)

    @property
    def shape(self) -> tuple[int, int]:
        """The operator's ``(n_rows, n_cols)``."""
        return self.matrix.shape

    def to_scipy(self):
        """A :class:`scipy.sparse.linalg.LinearOperator` view.

        Lets scipy's iterative solvers (`cg`, `gmres`, ...) run over
        ABFT-protected storage — the paper's "implement at the library
        level" future-work direction.
        """
        from scipy.sparse.linalg import LinearOperator as SciPyOperator

        return SciPyOperator(
            shape=self.shape, matvec=self._checked_matvec, dtype=np.float64
        )
