"""Protected containers and kernels (paper §VI).

The public surface of the paper's contribution:

* :class:`~repro.protect.vector.ProtectedVector` — dense float64 vectors
  with redundancy in mantissa LSBs (Fig. 3);
* :class:`~repro.protect.csr_elements.ProtectedCSRElements` — the
  ``(value, column index)`` pairs with redundancy in index top bits
  (Fig. 1);
* :class:`~repro.protect.row_pointer.ProtectedRowPointer` — the row
  pointer with redundancy in its top bits (Fig. 2);
* :class:`~repro.protect.matrix.ProtectedCSRMatrix` — the full matrix;
* :class:`~repro.protect.policy.CheckPolicy` — less-frequent checking,
  per region;
* :class:`~repro.protect.engine.DeferredVerificationEngine` — dirty
  windows, cached decode-free reads and amortised check scheduling;
* :class:`~repro.protect.config.ProtectionConfig` — the single source of
  truth for what is protected and when it is verified;
* :class:`~repro.protect.session.ProtectionSession` — one engine across
  many solves, with cross-time-step dirty windows;
* :mod:`repro.protect.kernels` — SpMV / dot / axpy over protected data.
"""

from repro.protect.base import (
    ELEMENT_SCHEMES,
    ROWPTR_SCHEMES,
    VECTOR_SCHEMES,
    column_limit,
    rowptr_value_limit,
)
from repro.protect.vector import ProtectedBlockVector, ProtectedVector
from repro.protect.csr_elements import ProtectedCSRElements
from repro.protect.row_pointer import ProtectedRowPointer
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy, PolicyStats
from repro.protect.engine import DeferredVerificationEngine
from repro.protect.config import ProtectionConfig
from repro.protect.session import ProtectionSession
from repro.protect.kernels import protected_spmv, protected_dot, protected_axpy
from repro.protect.coo_elements import ProtectedCOOElements, ProtectedCOOMatrix
from repro.protect.csr64 import ProtectedCSRElements64, ProtectedRowPointer64
from repro.protect.operator import ProtectedOperator

__all__ = [
    "ProtectedOperator",
    "ProtectedCOOElements",
    "ProtectedCOOMatrix",
    "ProtectedCSRElements64",
    "ProtectedRowPointer64",
    "ELEMENT_SCHEMES",
    "ROWPTR_SCHEMES",
    "VECTOR_SCHEMES",
    "column_limit",
    "rowptr_value_limit",
    "ProtectedVector",
    "ProtectedBlockVector",
    "ProtectedCSRElements",
    "ProtectedRowPointer",
    "ProtectedCSRMatrix",
    "CheckPolicy",
    "PolicyStats",
    "DeferredVerificationEngine",
    "ProtectionConfig",
    "ProtectionSession",
    "protected_spmv",
    "protected_dot",
    "protected_axpy",
]
