"""Deferred-verification engine: dirty windows + amortised integrity checks.

The check-on-every-read / re-encode-on-every-write discipline of the
original kernels makes full protection ~45x slower than the unprotected
solve.  Hoemmen-style selective reliability and the paper's own
check-interval model (§VI.A.2) both amortise that cost: integrity is
verified once per *window* of iterations instead of once per access,
with cheap range checks in between and one mandatory sweep at the end.

The engine owns that schedule for a solve:

* **decode-free reads** — :meth:`read` returns the region's cached plain
  ``float64`` view (:meth:`ProtectedVector.view`), so dots and axpys run
  at NumPy speed between checks;
* **dirty-window writes** — :meth:`write` buffers stores in the cache
  and re-encodes only the accumulated dirty codeword window at the next
  scheduled check (``CheckPolicy.defer_writes``);
* **amortised verification** — :meth:`begin_iteration` and :meth:`spmv`
  consult the per-region :class:`~repro.protect.policy.CheckPolicy`
  schedule and verify only regions actually read since their last check;
* **mandatory sweep** — :meth:`finalize` flushes every dirty window and
  re-verifies everything whenever checks were deferred, so a bit flip
  injected mid-window is detected (or corrected) no later than the next
  scheduled check or the end-of-step sweep.

Detection guarantees, precisely: a flip in protected storage that lands
*outside* a dirty window is detected at the next scheduled check of that
region; a flip *inside* a dirty window hits dead storage (the buffered
cache is authoritative and overwrites it at flush) and is therefore
harmless.  Flips in the plain cache itself model compute-side upsets,
which embedded-ECC schemes never claimed to cover.
"""

from __future__ import annotations

import numpy as np

from repro import backends
from repro.errors import ConfigurationError, DetectedUncorrectableError
from repro.protect.kernels import (
    full_matrix_check,
    fused_matrix_spmm,
    fused_matrix_spmv,
)
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector


class DeferredVerificationEngine:
    """Schedules integrity work for one protected solve.

    Regions (protected vectors and matrices) are registered up front or
    lazily on first use; reads and writes then flow through the engine,
    which batches verification per the policy's intervals.

    ``backend`` pins a kernel backend (see :mod:`repro.backends`) for
    this engine's SpMVs and verification passes; ``None`` follows the
    process default (``REPRO_BACKEND`` or ``numpy_fused``).

    ``recovery`` attaches a :class:`~repro.recover.manager.RecoveryManager`:
    a vector check that finds uncorrectable damage first offers the
    manager a transparent repair (rebuild from the authoritative plain
    cache — sound because reads never consume raw storage) before
    raising; matrix damage always escalates, because deferred checking
    means SpMVs may already have consumed it and only the solver can
    restart its recurrence.
    """

    def __init__(self, policy: CheckPolicy | None = None,
                 backend: str | None = None, recovery=None):
        self.policy = policy or CheckPolicy(interval=1, correct=True)
        self.backend = None if backend is None else backends.get_backend(backend)
        self.recovery = recovery
        self._vectors: dict[int, tuple[str, ProtectedVector]] = {}
        self._matrices: dict[int, tuple[str, ProtectedCSRMatrix]] = {}
        self._read_since_check: set[int] = set()
        self._stripe_cursor: dict[int, int] = {}
        self._iteration_hooks: list = []
        # Consumption-coverage accounting for fused verification: the
        # matrices whose *last* SpMV verified every codeword it consumed
        # (a due fused product), with nothing consumed unverified since.
        # Only those may skip the end-of-step sweep — a non-due access
        # consumes values live and immediately clears the claim.
        self._fused_cover: set[int] = set()

    @property
    def stats(self):
        """The engine's accumulated check/verification statistics."""
        return self.policy.stats

    # -- registration ---------------------------------------------------
    def register(self, region, name: str | None = None):
        """Track a :class:`ProtectedVector` or :class:`ProtectedCSRMatrix`."""
        if isinstance(region, ProtectedVector):
            self._vectors[id(region)] = (name or f"vector{len(self._vectors)}", region)
        elif isinstance(region, ProtectedCSRMatrix):
            self._matrices[id(region)] = (name or f"matrix{len(self._matrices)}", region)
        else:
            raise ConfigurationError(
                f"cannot register {type(region).__name__}; expected a protected region"
            )
        return region

    def unregister(self, region) -> None:
        """Stop tracking a region.

        Solvers sharing one engine across solves release their transient
        state vectors here so finalize sweeps and memory don't grow with
        every solve; unknown regions are ignored.
        """
        key = id(region)
        self._vectors.pop(key, None)
        self._matrices.pop(key, None)
        self._read_since_check.discard(key)
        self._stripe_cursor.pop(key, None)
        self._fused_cover.discard(key)

    def registered_vectors(self) -> dict[str, ProtectedVector]:
        """Name → vector mapping of the currently tracked dense regions.

        The live-injection harness (:mod:`repro.faults.process`) uses
        this to aim upsets at whatever state the current solve actually
        keeps in protected storage.
        """
        return {name: vector for name, vector in self._vectors.values()}

    def add_iteration_hook(self, hook) -> None:
        """Run ``hook()`` at every iteration boundary, before any checks.

        Iteration boundaries (:meth:`begin_iteration`) are where real
        upsets strike relative to the check schedule, so the fault
        process injects here; anything else that must observe the solve
        at iteration granularity (progress callbacks, adaptive policies)
        can attach the same way.
        """
        self._iteration_hooks.append(hook)

    # -- data path ------------------------------------------------------
    def read(self, vector: ProtectedVector) -> np.ndarray:
        """Decode-free read: the cached plain view, marked as consumed."""
        key = id(vector)
        if key not in self._vectors:
            self.register(vector)
        self._read_since_check.add(key)
        self.policy.stats.cached_reads += 1
        return vector.view()

    def write(
        self,
        vector: ProtectedVector,
        values: np.ndarray,
        window: tuple[int, int] | None = None,
    ) -> None:
        """Store through the policy's write mode (deferred or eager)."""
        if id(vector) not in self._vectors:
            self.register(vector)
        if self.policy.defer_writes:
            vector.store(values, window=window, defer=True)
            self.policy.stats.deferred_stores += 1
        else:
            vector.store(values, window=window)

    def spmv(
        self,
        matrix: ProtectedCSRMatrix,
        x: np.ndarray | ProtectedVector,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``A @ x`` with schedule-driven matrix verification.

        Follows the paper's per-access model, amortised: every SpMV
        advances the matrix counter; a due access verifies the matrix
        (one round-robin stripe when ``policy.stripes > 1``, the whole
        matrix otherwise).  Non-due accesses gather through the
        bounds-validated snapshot the clean views maintain, so they pay
        no per-access index decode or range check at all — the paper's
        range-check guarantee (no out-of-bounds access, ever) holds
        because the snapshot was validated when it was populated.
        ``stats.bounds_checks`` counts these snapshot-guarded accesses.

        With ``policy.fused_verify``, a due access on a matrix whose
        scheme and backend support it instead runs the verify-in-SpMV
        kernel: the backend screens every codeword on the
        product's own gather traffic (no separate sweep pass, and no
        striping — full coverage costs nothing extra on this path) and
        the matrix earns *consumption coverage* toward skipping the
        end-of-step sweep; any non-due access clears that coverage,
        because it consumes stored values unverified.
        """
        key = id(matrix)
        if key not in self._matrices:
            self.register(matrix)
        if isinstance(x, ProtectedVector):
            x = self.read(x)
        self._read_since_check.add(key)
        # Resolve at call time so REPRO_BACKEND / active() apply to the
        # SpMV exactly as they do to the verification kernels.
        backend = self.backend if self.backend is not None else backends.get_backend()
        if self.policy.should_check():
            if self.policy.fused_verify and matrix.supports_fused_verify(backend):
                name = self._matrices.get(key, ("matrix", None))[0]
                self._read_since_check.discard(key)
                self._stripe_cursor.pop(key, None)
                with backends.active(self.backend):
                    y = fused_matrix_spmv(
                        matrix, x, self.policy, name=name, out=out, backend=backend
                    )
                self._fused_cover.add(key)
                return y
            with backends.active(self.backend):
                if self.policy.stripes > 1:
                    self._verify_stripe(matrix)
                else:
                    self.verify_matrix(matrix)
        elif self.policy.interval:
            matrix.clean_views()  # populate + validate if stale; no-op otherwise
            self.policy.stats.bounds_checks += 1
            self._fused_cover.discard(key)
        return matrix.matvec_unchecked(x, out=out, backend=backend)

    def spmm(
        self,
        matrix: ProtectedCSRMatrix,
        X: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Blocked ``A @ X.T`` with schedule-driven matrix verification.

        The multi-RHS twin of :meth:`spmv` with identical scheduling:
        one blocked product advances the matrix counter exactly once
        (a blocked solve's due pattern matches a single-RHS solve's),
        a due access runs the fused blocked kernel — every codeword
        screened once, feeding all ``k`` gathers — and earns the same
        consumption coverage toward skipping the end-of-step sweep.
        ``X`` is a plain ``(k, n)`` array (blocked iterates read their
        protected block stores through :meth:`read` first).
        """
        key = id(matrix)
        if key not in self._matrices:
            self.register(matrix)
        self._read_since_check.add(key)
        backend = self.backend if self.backend is not None else backends.get_backend()
        if self.policy.should_check():
            if self.policy.fused_verify and matrix.supports_fused_verify_multi(backend):
                name = self._matrices.get(key, ("matrix", None))[0]
                self._read_since_check.discard(key)
                self._stripe_cursor.pop(key, None)
                with backends.active(self.backend):
                    y = fused_matrix_spmm(
                        matrix, X, self.policy, name=name, out=out, backend=backend
                    )
                self._fused_cover.add(key)
                return y
            with backends.active(self.backend):
                if self.policy.stripes > 1:
                    self._verify_stripe(matrix)
                else:
                    self.verify_matrix(matrix)
        elif self.policy.interval:
            matrix.clean_views()  # populate + validate if stale; no-op otherwise
            self.policy.stats.bounds_checks += 1
            self._fused_cover.discard(key)
        return matrix.matvec_multi_unchecked(X, out=out, backend=backend)

    # -- scheduled verification ----------------------------------------
    def begin_iteration(self) -> bool:
        """Per-iteration scheduling point for the dense vectors.

        Returns True when a vector check round ran this iteration.
        """
        for hook in self._iteration_hooks:
            hook()
        if not self._vectors or not self.policy.vector_check_due():
            return False
        with backends.active(self.backend):
            self._check_vectors(only_read=True)
        return True

    def finalize(self) -> None:
        """Flush every dirty window; run the mandatory sweep if deferred.

        Called once at the end of the solve (§VI.A.2's end-of-time-step
        sweep).  Registered vectors are always flushed and re-verified so
        the returned solution is a checked commit; the matrices join the
        sweep whenever any checks were deferred.

        Vector checks here run *in-sweep* for the recovery layer: a DUE
        at this boundary has no solver recurrence left to escalate to,
        so any escalating strategy repairs the vector from its
        authoritative cache instead of aborting the window (see
        :meth:`~repro.recover.manager.RecoveryManager.repair_vector`).

        Under fused verification the sweep shrinks to the matrices *not*
        covered by a fused product: a matrix whose last access was a due
        fused SpMV had every consumed codeword verified in that very
        pass, so a flip landing afterwards was never consumed and cannot
        have tainted the returned solution — re-sweeping it buys nothing
        (counted in ``stats.sweeps_skipped``).  Any matrix with a
        non-due access since its last fused product lost that coverage
        and is swept as usual.
        """
        sweep = self.policy.end_of_step()
        with backends.active(self.backend):
            self._check_vectors(only_read=False, in_sweep=True)
            if not sweep:
                return
            for key, (_, matrix) in self._matrices.items():
                if key in self._fused_cover:
                    self.policy.stats.sweeps_skipped += 1
                    self._read_since_check.discard(key)
                    continue
                self.verify_matrix(matrix)

    def verify_matrix(self, matrix: ProtectedCSRMatrix) -> None:
        """Full matrix check now, raising on uncorrectable damage."""
        name = self._matrices.get(id(matrix), ("matrix", None))[0]
        self._read_since_check.discard(id(matrix))
        self._stripe_cursor.pop(id(matrix), None)  # full check restarts rotation
        with backends.active(self.backend):
            full_matrix_check(matrix, self.policy, name=name)

    def _verify_stripe(self, matrix: ProtectedCSRMatrix) -> None:
        """Scheduled striped verification: one round-robin slice per due access."""
        name = self._matrices.get(id(matrix), ("matrix", None))[0]
        key = id(matrix)
        k = self._stripe_cursor.get(key, 0)
        n = self.policy.stripes
        full_matrix_check(matrix, self.policy, name=name, stripe=(k, n))
        self._stripe_cursor[key] = (k + 1) % n

    def verify_vector(self, vector: ProtectedVector) -> None:
        """Flush and fully check one vector now, raising on damage.

        The out-of-schedule twin of the per-round vector checks — used
        when a region retires from the schedule early (e.g. a session
        releasing a finished solve's state mid-window) so its last
        verification is never skipped.
        """
        name = self._vectors.get(id(vector), ("vector", None))[0]
        with backends.active(self.backend):
            self._flush_vector(vector)
            self._check_vector(name, vector)

    def _check_vectors(self, only_read: bool, in_sweep: bool = False) -> None:
        for key, (name, vector) in self._vectors.items():
            self._flush_vector(vector)
            if only_read and key not in self._read_since_check:
                continue
            self._check_vector(name, vector, in_sweep=in_sweep)

    def _flush_vector(self, vector: ProtectedVector) -> None:
        if vector.dirty_window is not None:
            vector.flush()
            self.policy.stats.dirty_flushes += 1

    def _check_vector(self, name: str, vector: ProtectedVector,
                      in_sweep: bool = False) -> None:
        report = vector.check(correct=self.policy.correct)
        self.policy.stats.vector_checks += 1
        self.policy.stats.corrected += report.n_corrected
        self.policy.stats.uncorrectable += report.n_uncorrectable
        self._read_since_check.discard(id(vector))
        if report.ok:
            return
        # Recovery hook: raw-storage corruption is never consumed (reads
        # come from the cache), so a cache rebuild is content-exact and
        # the solve continues as if the flip never happened.  The repair
        # is only trusted after it passes a fresh check.
        if self.recovery is not None and self.recovery.repair_vector(
            name, vector, in_sweep=in_sweep
        ):
            report = vector.check(correct=self.policy.correct)
            self.policy.stats.vector_checks += 1
            if report.ok:
                self.recovery.note_vector_repaired()
                return
        raise DetectedUncorrectableError(
            name, report.uncorrectable_indices()[:8].tolist()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeferredVerificationEngine(vectors={len(self._vectors)}, "
            f"matrices={len(self._matrices)}, policy={self.policy!r})"
        )
