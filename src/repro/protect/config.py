"""`ProtectionConfig`: the single source of truth for ABFT configuration.

The paper argues the right home for these techniques is the solver-library
level (§VIII); selective-reliability work (Bridges et al.) shows the win
comes from a *uniform* reliability interface over many solver methods.
Before this module existed the configuration surface was scattered across
``CheckPolicy`` kwargs, per-solver keyword arguments, the TeaLeaf
``Protection`` dataclass and raw scheme strings — five incompatible ways
to say the same thing.  ``ProtectionConfig`` replaces them all:

* **what** is protected — ``element_scheme`` / ``rowptr_scheme`` for the
  matrix regions, ``vector_scheme`` for the dense solver state;
* **when** it is verified — ``interval`` (per matrix access),
  ``vector_interval`` (per solver iteration), ``defer_writes``
  (dirty-window write buffering) and ``correct``, exactly the
  :class:`~repro.protect.policy.CheckPolicy` schedule knobs.

The config is frozen (hashable, safely shareable); ``.policy()`` and
``.engine()`` mint fresh scheduler objects from it, and the preset
constructors name the paper's operating points.
"""

from __future__ import annotations

import dataclasses
import os

from repro.errors import ConfigurationError
from repro.protect.base import ELEMENT_SCHEMES, ROWPTR_SCHEMES, VECTOR_SCHEMES
from repro.protect.engine import DeferredVerificationEngine
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.recover.manager import RecoveryManager
from repro.recover.policy import RecoveryPolicy


def _check_scheme(scheme: str | None, table: dict[str, int], kind: str) -> None:
    if scheme is not None and scheme not in table:
        raise ConfigurationError(
            f"unknown {kind} scheme {scheme!r}; choose from {sorted(table)} or None"
        )


@dataclasses.dataclass(frozen=True)
class ProtectionConfig:
    """One immutable description of a full ABFT setup.

    Parameters
    ----------
    element_scheme / rowptr_scheme:
        ECC scheme for the CSR element pairs / row pointer, or ``None``
        to leave that region unprotected (the Fig. 4 vs Fig. 5 ablation).
    vector_scheme:
        Scheme for the dense solver state vectors, or ``None`` for the
        matrix-only configurations (Figs. 4-8; Fig. 9 adds the vectors).
    interval:
        Matrix full-check period, counted per SpMV access.  ``1`` checks
        every access (the paper's default), ``N > 1`` amortises via the
        deferred-verification engine, ``0`` disables matrix checks.
    vector_interval:
        Dense-vector check period per solver iteration; ``None`` follows
        ``interval``.
    defer_writes:
        Buffer vector stores in dirty windows until the next scheduled
        check; ``None`` means "exactly when ``vector_interval > 1``".
    correct:
        Attempt in-place correction at checks.  The paper recommends
        detection-only whenever checks are deferred.
    stripes:
        Striped matrix verification: each due matrix check covers one of
        ``stripes`` round-robin codeword slices, giving full coverage
        every ``interval * stripes`` accesses.  ``1`` (default) is the
        paper's whole-matrix interval check.
    fused_verify:
        Verify-in-SpMV: run due matrix checks *inside* the engine's
        matrix-vector products, screening each codeword on the gather
        traffic the product already pays for instead of a separate sweep
        pass (and letting the end-of-step sweep skip matrices whose last
        product verified everything it consumed).  ``None`` (default)
        resolves to on unless the ``REPRO_FUSED_VERIFY=0`` environment
        ablation disables it; schemes/backends without a fused kernel
        fall back to verify-then-multiply with identical results and
        accounting.
    backend:
        Kernel backend name (see :mod:`repro.backends`): ``None`` defers
        to ``REPRO_BACKEND`` / the ``numpy_fused`` default; ``"numba"``
        selects the jitted kernels where numba is installed (and falls
        back cleanly where it is not).
    recovery:
        What happens when a DUE surfaces mid-solve: ``None`` (or the
        ``"raise"`` strategy) re-raises as always; a
        :class:`~repro.recover.policy.RecoveryPolicy` — or its string
        shorthand ``"repopulate"`` / ``"rollback"`` — routes the error
        through the checkpointed recovery layer so the solve survives
        (see :mod:`repro.recover`).
    """

    element_scheme: str | None = "secded64"
    rowptr_scheme: str | None = "secded64"
    vector_scheme: str | None = None
    interval: int = 1
    vector_interval: int | None = None
    defer_writes: bool | None = None
    correct: bool = True
    stripes: int = 1
    fused_verify: bool | None = None
    backend: str | None = None
    recovery: RecoveryPolicy | str | None = None

    def __post_init__(self):
        _check_scheme(self.element_scheme, ELEMENT_SCHEMES, "element")
        _check_scheme(self.rowptr_scheme, ROWPTR_SCHEMES, "rowptr")
        _check_scheme(self.vector_scheme, VECTOR_SCHEMES, "vector")
        if self.interval < 0:
            raise ConfigurationError("interval must be >= 0")
        if self.vector_interval is not None and self.vector_interval < 0:
            raise ConfigurationError("vector_interval must be >= 0")
        if self.stripes < 1:
            raise ConfigurationError("stripes must be >= 1")
        # Normalise the string shorthand so configs stay hashable and
        # comparisons ("rollback" vs RecoveryPolicy("rollback")) agree.
        object.__setattr__(self, "recovery", RecoveryPolicy.coerce(self.recovery))

    # -- presets --------------------------------------------------------
    @classmethod
    def off(cls) -> "ProtectionConfig":
        """No protection at all: the unprotected baseline."""
        return cls(element_scheme=None, rowptr_scheme=None, vector_scheme=None,
                   interval=0)

    @classmethod
    def paper_default(cls, scheme: str = "secded64") -> "ProtectionConfig":
        """The paper's headline mode: full protection, check on every access."""
        return cls(element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=scheme,
                   interval=1, correct=True)

    @classmethod
    def deferred(cls, window: int = 16, scheme: str = "secded64",
                 stripes: int = 1) -> "ProtectionConfig":
        """Full protection through the deferred-verification engine.

        ``window`` is the check interval (matrix accesses and solver
        iterations share it); correction is off, as the paper recommends
        for interval checking ("should only be used with Error Detecting
        Codes").  ``stripes > 1`` further splits each due matrix check
        into round-robin slices (full coverage every
        ``window * stripes`` accesses).
        """
        if window < 1:
            raise ConfigurationError("deferred() needs a window >= 1")
        return cls(element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=scheme,
                   interval=int(window), correct=False, stripes=int(stripes))

    @classmethod
    def matrix_only(cls, scheme: str = "secded64", interval: int = 1,
                    correct: bool = True) -> "ProtectionConfig":
        """Figs. 4-8 configuration: matrix regions only, plain vectors."""
        return cls(element_scheme=scheme, rowptr_scheme=scheme, vector_scheme=None,
                   interval=interval, correct=correct)

    @classmethod
    def resilient(cls, window: int = 16, scheme: str = "secded64",
                  strategy: str = "rollback", max_retries: int = 3,
                  checkpoint_interval: int = 8) -> "ProtectionConfig":
        """Full deferred protection that *survives* DUEs instead of dying.

        :meth:`deferred` plus a recovery policy: uncorrectable detections
        route through the checkpointed recovery layer (``strategy`` is
        ``"rollback"`` or ``"repopulate"``) and the solve converges
        anyway, which is the paper's end-to-end "fully protecting"
        claim.
        """
        return cls.deferred(window=window, scheme=scheme).replace(
            recovery=RecoveryPolicy(
                strategy=strategy, max_retries=max_retries,
                checkpoint_interval=checkpoint_interval,
            )
        )

    # -- derived views --------------------------------------------------
    @property
    def protects_matrix(self) -> bool:
        """True when any matrix region (elements or row pointer) carries ECC."""
        return self.element_scheme is not None or self.rowptr_scheme is not None

    @property
    def protects_vectors(self) -> bool:
        """True when solver state vectors carry ECC."""
        return self.vector_scheme is not None

    @property
    def enabled(self) -> bool:
        """True when any region carries redundancy."""
        return self.protects_matrix or self.protects_vectors

    def replace(self, **changes) -> "ProtectionConfig":
        """A copy with the given fields changed (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    # -- factories ------------------------------------------------------
    def resolved_fused_verify(self) -> bool:
        """The effective fused-verify setting (``None`` → env-gated default).

        ``fused_verify=None`` means "on, unless the
        ``REPRO_FUSED_VERIFY=0`` ablation says otherwise"; explicit
        ``True``/``False`` always win over the environment.
        """
        if self.fused_verify is not None:
            return self.fused_verify
        return os.environ.get("REPRO_FUSED_VERIFY", "1") != "0"

    def policy(self) -> CheckPolicy:
        """A fresh :class:`CheckPolicy` carrying this config's schedule."""
        return CheckPolicy(
            interval=self.interval,
            correct=self.correct,
            vector_interval=self.vector_interval,
            defer_writes=self.defer_writes,
            stripes=self.stripes,
            fused_verify=self.resolved_fused_verify(),
        )

    def engine(self) -> DeferredVerificationEngine:
        """A fresh engine scheduled by :meth:`policy` on this config's backend.

        When the config carries an escalating recovery policy the engine
        gets its own :class:`~repro.recover.manager.RecoveryManager`;
        the ``"raise"`` strategy (and ``None``) keep the historical
        DUE-unwinds-the-solve surface with zero extra machinery.
        """
        manager = None
        if self.recovery is not None and self.recovery.escalates:
            manager = RecoveryManager(self.recovery)
        return DeferredVerificationEngine(
            self.policy(), backend=self.backend, recovery=manager
        )

    def wrap_matrix(self, matrix) -> ProtectedCSRMatrix:
        """Encode a CSR matrix per this config (idempotent on wrapped input).

        An already-:class:`ProtectedCSRMatrix` argument is returned
        unchanged — campaigns inject into a pre-wrapped matrix and then
        hand it to the registry, which must not re-encode (and thereby
        bless) the injected corruption.
        """
        if isinstance(matrix, ProtectedCSRMatrix):
            return matrix
        return ProtectedCSRMatrix(matrix, self.element_scheme, self.rowptr_scheme)
