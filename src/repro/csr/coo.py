"""COO (coordinate) sparse format.

The ABFT line of work this paper extends ([13], McIntosh-Smith et al.)
protected matrices in *both* COO and CSR; COO is included so the library
covers the full prior-work surface.  A COO element is a 128-bit struct —
``(row uint32, col uint32, value float64)`` — which leaves *two* spare
top-bit regions for redundancy (see
:class:`repro.protect.coo_elements.ProtectedCOOElements`).
"""

from __future__ import annotations

import numpy as np


class COOMatrix:
    """An unprotected COO matrix over float64/uint32 storage."""

    __slots__ = ("rowidx", "colidx", "values", "shape")

    def __init__(self, rowidx, colidx, values, shape, *, validate: bool = True):
        self.rowidx = np.ascontiguousarray(rowidx, dtype=np.uint32)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint32)
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if validate:
            self._validate()

    def _validate(self) -> None:
        if not (self.rowidx.shape == self.colidx.shape == self.values.shape):
            raise ValueError("COO component arrays must have identical shapes")
        m, n = self.shape
        if self.rowidx.size:
            if int(self.rowidx.max()) >= m:
                raise ValueError("row index out of range")
            if int(self.colidx.max()) >= n:
                raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``A @ x`` by scatter-accumulate (duplicates sum, like scipy)."""
        if out is None:
            out = np.zeros(self.shape[0], dtype=np.float64)
        else:
            out[:] = 0.0
        np.add.at(
            out,
            self.rowidx.astype(np.int64),
            self.values * x[self.colidx.astype(np.int64)],
        )
        return out

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        np.add.at(
            dense,
            (self.rowidx.astype(np.int64), self.colidx.astype(np.int64)),
            self.values,
        )
        return dense

    def to_csr(self):
        """Convert to :class:`~repro.csr.matrix.CSRMatrix`."""
        from repro.csr.build import csr_from_coo

        return csr_from_coo(
            self.rowidx.astype(np.int64),
            self.colidx.astype(np.int64),
            self.values,
            self.shape,
        )

    @classmethod
    def from_csr(cls, csr) -> "COOMatrix":
        ptr = csr.rowptr.astype(np.int64)
        rowidx = np.repeat(
            np.arange(csr.n_rows, dtype=np.uint32), np.diff(ptr).astype(np.int64)
        )
        return cls(rowidx, csr.colidx.copy(), csr.values.copy(), csr.shape)

    def copy(self) -> "COOMatrix":
        return COOMatrix(
            self.rowidx.copy(), self.colidx.copy(), self.values.copy(),
            self.shape, validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"COOMatrix(shape={self.shape}, nnz={self.nnz})"
