"""Structural validation of CSR vectors.

These checks are about *construction-time* correctness; the cheap runtime
range checks that guard skipped-integrity iterations live in
:mod:`repro.protect.policy` (they must stay branch-light, as the paper
measures their fixed cost).
"""

from __future__ import annotations

import numpy as np


def validate_structure(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    shape: tuple[int, int],
) -> None:
    """Raise ``ValueError`` on any structural inconsistency."""
    m, n = shape
    if m < 0 or n < 0:
        raise ValueError(f"negative shape {shape}")
    if n >= 2**32 or m >= 2**32:
        raise ValueError("matrix dimensions must fit 32-bit indices")
    if values.shape != colidx.shape:
        raise ValueError(
            f"values ({values.shape}) and colidx ({colidx.shape}) lengths differ"
        )
    if rowptr.shape != (m + 1,):
        raise ValueError(f"rowptr must have length {m + 1}, got {rowptr.shape}")
    ptr = rowptr.astype(np.int64)
    if ptr[0] != 0:
        raise ValueError("rowptr[0] must be 0")
    if ptr[-1] != values.size:
        raise ValueError(f"rowptr[-1]={ptr[-1]} does not equal nnz={values.size}")
    if np.any(np.diff(ptr) < 0):
        raise ValueError("rowptr must be non-decreasing")
    if colidx.size and int(colidx.max()) >= n:
        raise ValueError(
            f"column index {int(colidx.max())} out of range for {n} columns"
        )
