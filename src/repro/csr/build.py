"""CSR constructors: COO/dense conversion and the 5-point stencil operator.

:func:`five_point_operator` assembles exactly the operator TeaLeaf's CG
solve works on — ``(I + dt * L)`` for the implicit heat equation on a
regular 2-D grid — and, crucially for the ABFT schemes, stores **five
entries in every row**: boundary rows keep their out-of-domain neighbour
slots as explicit zero coefficients (with an in-range column index), just
like TeaLeaf's fixed 5-band storage.  The paper relies on this when the
CRC32C row scheme demands at least four elements per row.
"""

from __future__ import annotations

import numpy as np

from repro.csr.matrix import CSRMatrix


def csr_from_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    shape: tuple[int, int],
) -> CSRMatrix:
    """Build CSR from COO triplets (duplicates kept, entries row-sorted)."""
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    vals = np.asarray(vals, dtype=np.float64)
    if not (rows.size == cols.size == vals.size):
        raise ValueError("COO triplet arrays must have equal length")
    m, n = shape
    if rows.size and (rows.min() < 0 or rows.max() >= m):
        raise ValueError("row index out of range")
    if cols.size and (cols.min() < 0 or cols.max() >= n):
        raise ValueError("column index out of range")
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    rowptr = np.zeros(m + 1, dtype=np.uint32)
    counts = np.bincount(rows, minlength=m)
    rowptr[1:] = np.cumsum(counts)
    return CSRMatrix(vals, cols.astype(np.uint32), rowptr, shape)


def csr_from_dense(dense: np.ndarray, *, keep_zeros: bool = False) -> CSRMatrix:
    """Build CSR from a dense 2-D array, dropping zeros unless asked not to."""
    dense = np.asarray(dense, dtype=np.float64)
    if dense.ndim != 2:
        raise ValueError("expected a 2-D array")
    if keep_zeros:
        rows, cols = np.indices(dense.shape)
        rows, cols = rows.ravel(), cols.ravel()
    else:
        rows, cols = np.nonzero(dense)
    return csr_from_coo(rows, cols, dense[rows, cols], dense.shape)


def csr_from_scipy(mat) -> CSRMatrix:
    """Convert any scipy sparse matrix (test interop)."""
    csr = mat.tocsr()
    csr.sort_indices()
    return CSRMatrix(
        csr.data.astype(np.float64),
        csr.indices.astype(np.uint32),
        csr.indptr.astype(np.uint32),
        csr.shape,
    )


def five_point_operator(
    nx: int,
    ny: int,
    kx: np.ndarray,
    ky: np.ndarray,
    dt_over_h2: float,
) -> CSRMatrix:
    """Assemble TeaLeaf's implicit 5-point conduction operator.

    Solves ``(I + dt * L) u = b`` where ``L`` is the negative divergence
    of the conductivity-weighted gradient.  ``kx[j, i]`` is the face
    conductivity between cells ``(j, i-1)`` and ``(j, i)``; ``ky[j, i]``
    between ``(j-1, i)`` and ``(j, i)`` — both of shape ``(ny, nx)`` with
    their first column/row ignored at the domain boundary (zero-flux /
    Neumann condition, as in TeaLeaf).

    Every row stores exactly 5 entries in the fixed band order
    (south, west, centre, east, north); out-of-domain neighbours keep a
    zero coefficient and a clamped in-range column index.
    """
    kx = np.asarray(kx, dtype=np.float64)
    ky = np.asarray(ky, dtype=np.float64)
    if kx.shape != (ny, nx) or ky.shape != (ny, nx):
        raise ValueError(f"kx/ky must have shape {(ny, nx)}")
    n = nx * ny
    c = float(dt_over_h2)

    j, i = np.indices((ny, nx))
    idx = (j * nx + i).ravel()

    # Face coefficients, zero across the physical boundary.
    w = np.where(i > 0, kx, 0.0).ravel() * c
    e = np.where(i < nx - 1, np.roll(kx, -1, axis=1), 0.0).ravel() * c
    s = np.where(j > 0, ky, 0.0).ravel() * c
    nn = np.where(j < ny - 1, np.roll(ky, -1, axis=0), 0.0).ravel() * c
    centre = 1.0 + (w + e + s + nn)

    # Clamped neighbour indices keep zero-coefficient slots in range.
    south_idx = np.where(j > 0, idx.reshape(ny, nx) - nx, idx.reshape(ny, nx)).ravel()
    west_idx = np.where(i > 0, idx.reshape(ny, nx) - 1, idx.reshape(ny, nx)).ravel()
    east_idx = np.where(i < nx - 1, idx.reshape(ny, nx) + 1, idx.reshape(ny, nx)).ravel()
    north_idx = np.where(
        j < ny - 1, idx.reshape(ny, nx) + nx, idx.reshape(ny, nx)
    ).ravel()

    values = np.empty(5 * n, dtype=np.float64)
    colidx = np.empty(5 * n, dtype=np.uint32)
    values[0::5], colidx[0::5] = -s, south_idx
    values[1::5], colidx[1::5] = -w, west_idx
    values[2::5], colidx[2::5] = centre, idx
    values[3::5], colidx[3::5] = -e, east_idx
    values[4::5], colidx[4::5] = -nn, north_idx

    rowptr = (np.arange(n + 1, dtype=np.uint64) * 5).astype(np.uint32)
    if 5 * n >= 2**32:
        raise ValueError("operator exceeds 32-bit nnz indexing")
    return CSRMatrix(values, colidx, rowptr, (n, n), validate=False)
