"""CSR sparse matrix substrate (paper §V.B).

A from-scratch Compressed Sparse Row implementation with exactly the
memory layout the paper protects: a float64 value vector ``v`` (length
nnz), a uint32 column-index vector ``y`` (length nnz) and a uint32
row-pointer vector ``x`` (length m+1).
"""

from repro.csr.matrix import CSRMatrix
from repro.csr.build import (
    csr_from_coo,
    csr_from_dense,
    csr_from_scipy,
    five_point_operator,
)
from repro.csr.spmv import spmv, spmv_fixed_width, row_dot
from repro.csr.validate import validate_structure

__all__ = [
    "CSRMatrix",
    "csr_from_coo",
    "csr_from_dense",
    "csr_from_scipy",
    "five_point_operator",
    "spmv",
    "spmv_fixed_width",
    "row_dot",
    "validate_structure",
]
