"""Matrix Market (.mtx) I/O.

Production sparse solvers live on MatrixMarket files; a reproduction
meant for downstream adoption needs to read them.  Supports the
``coordinate`` (sparse) format with ``real``/``integer``/``pattern``
fields and ``general``/``symmetric`` symmetries — the subset covering
the SuiteSparse collection's SPD matrices a CG user would load.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.csr.build import csr_from_coo
from repro.csr.matrix import CSRMatrix


def read_matrix_market(source) -> CSRMatrix:
    """Read a MatrixMarket coordinate file into a CSRMatrix.

    ``source`` may be a path, a file object or a string containing the
    file's text.  Symmetric matrices are expanded to full storage
    (diagonal entries are not duplicated).
    """
    if isinstance(source, (str, pathlib.Path)) and "\n" not in str(source):
        text = pathlib.Path(source).read_text()
    elif isinstance(source, str):
        text = source
    else:
        text = source.read()
    lines = iter(text.splitlines())

    header = next(lines, "").strip().lower().split()
    if len(header) < 5 or header[:2] != ["%%matrixmarket", "matrix"]:
        raise ValueError("not a MatrixMarket file (bad banner)")
    layout, field, symmetry = header[2], header[3], header[4]
    if layout != "coordinate":
        raise ValueError(f"unsupported layout {layout!r} (only coordinate)")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    size_line = None
    for line in lines:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        raise ValueError("missing size line")
    m, n, nnz = (int(tok) for tok in size_line.split())

    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    vals = np.empty(nnz, dtype=np.float64)
    k = 0
    for line in lines:
        stripped = line.strip()
        if not stripped or stripped.startswith("%"):
            continue
        parts = stripped.split()
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
        vals[k] = 1.0 if field == "pattern" else float(parts[2])
        k += 1
        if k == nnz:
            break
    if k != nnz:
        raise ValueError(f"expected {nnz} entries, found {k}")

    if symmetry == "symmetric":
        off = rows != cols
        rows = np.concatenate([rows, cols[off]])
        cols = np.concatenate([cols, rows[: nnz][off]])
        vals = np.concatenate([vals, vals[off]])
    return csr_from_coo(rows, cols, vals, (m, n))


def write_matrix_market(matrix: CSRMatrix, target) -> None:
    """Write a CSRMatrix as a general real coordinate MatrixMarket file."""
    buf = io.StringIO()
    buf.write("%%MatrixMarket matrix coordinate real general\n")
    buf.write("% written by repro (ABFT sparse solver reproduction)\n")
    buf.write(f"{matrix.n_rows} {matrix.n_cols} {matrix.nnz}\n")
    ptr = matrix.rowptr.astype(np.int64)
    row_of = np.repeat(np.arange(matrix.n_rows), np.diff(ptr))
    for r, c, v in zip(row_of, matrix.colidx, matrix.values):
        buf.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
    text = buf.getvalue()
    if isinstance(target, (str, pathlib.Path)):
        pathlib.Path(target).write_text(text)
    else:
        target.write(text)
