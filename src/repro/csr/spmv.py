"""Reference SpMV kernels.

Two code paths, mirroring how the paper's kernels exploit structure:

* :func:`spmv` — general CSR via ``np.add.reduceat`` (any row lengths);
* :func:`spmv_fixed_width` — the fast path for matrices whose rows all
  store the same number of entries (TeaLeaf's 5-point operator stores 5
  per row), one reshape + row sum, no indirection over rows.

Both are pure gather-multiply-reduce over the three CSR vectors, so the
protected kernels in :mod:`repro.protect.kernels` can wrap them without
duplicating arithmetic.
"""

from __future__ import annotations

import numpy as np


def spmv(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    x: np.ndarray,
    n_rows: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """General CSR matrix-vector product.

    Handles empty rows (where ``reduceat`` alone would mis-assign
    segments) by masking them after the reduction.
    """
    if out is None:
        out = np.zeros(n_rows, dtype=np.float64)
    else:
        out[:] = 0.0
    if values.size == 0:
        return out
    # Callers holding pre-converted snapshots (the protected matrices'
    # clean views) pass int64 indices straight through; only narrower
    # stored indices pay the widening copy.
    if colidx.dtype != np.int64:
        colidx = colidx.astype(np.int64)
    if rowptr.dtype != np.int64:
        rowptr = rowptr.astype(np.int64)
    products = values * x[colidx]
    ptr = rowptr
    starts = ptr[:-1]
    lengths = ptr[1:] - starts
    nonempty = lengths > 0
    if np.all(nonempty):
        out[:] = np.add.reduceat(products, starts)
    else:
        # reduceat with repeated offsets returns products[start] for empty
        # rows; compute on the compacted rows then scatter back.
        sums = np.add.reduceat(products, starts[nonempty])
        out[nonempty] = sums
    return out


def spmv_fixed_width(
    values: np.ndarray,
    colidx: np.ndarray,
    x: np.ndarray,
    width: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """SpMV when every row stores exactly ``width`` entries."""
    n_rows = values.size // width
    if colidx.dtype != np.int64:
        colidx = colidx.astype(np.int64)
    products = values * x[colidx]
    result = products.reshape(n_rows, width).sum(axis=1)
    if out is None:
        return result
    out[:] = result
    return out


def row_dot(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    row: int,
    x: np.ndarray,
) -> float:
    """Single-row dot product (used by tests and the scalar oracle)."""
    ptr = rowptr.astype(np.int64)
    seg = slice(ptr[row], ptr[row + 1])
    return float(np.dot(values[seg], x[colidx[seg].astype(np.int64)]))
