"""Reference SpMV kernels.

Two code paths, mirroring how the paper's kernels exploit structure:

* :func:`spmv` — general CSR via ``np.add.reduceat`` (any row lengths);
* :func:`spmv_fixed_width` — the fast path for matrices whose rows all
  store the same number of entries (TeaLeaf's 5-point operator stores 5
  per row), one reshape + row sum, no indirection over rows.

Both are pure gather-multiply-reduce over the three CSR vectors, so the
protected kernels in :mod:`repro.protect.kernels` can wrap them without
duplicating arithmetic.
"""

from __future__ import annotations

import numpy as np


def reduce_rows(
    products: np.ndarray,
    rowptr: np.ndarray,
    out: np.ndarray,
    lengths: np.ndarray | None = None,
) -> np.ndarray:
    """Row-segment sums of precomputed per-element ``products`` into ``out``.

    The one reduction every SpMV variant shares — the plain kernel, the
    scratch-buffered kernel and the fused verify-in-SpMV kernels all
    finish through this helper, so their results are bitwise identical
    by construction (``np.add.reduceat`` sums each segment left to
    right, matching a scalar per-row loop exactly).  Handles empty rows
    (where ``reduceat`` alone would mis-assign segments) by masking them
    after the reduction.

    ``lengths`` is an optional caller-owned int64 scratch of size
    ``n_rows``; with it, the all-rows-nonempty fast path allocates
    nothing (the protected matrices pass their persistent buffer).
    """
    starts = rowptr[:-1]
    if lengths is None:
        lengths = rowptr[1:] - starts
    else:
        np.subtract(rowptr[1:], starts, out=lengths)
    if int(lengths.min(initial=1)) > 0:
        np.add.reduceat(products, starts, out=out)
    else:
        # reduceat with repeated offsets returns products[start] for empty
        # rows; compute on the compacted rows then scatter back.
        nonempty = lengths > 0
        out[:] = 0.0
        out[nonempty] = np.add.reduceat(products, starts[nonempty])
    return out


def spmv(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    x: np.ndarray,
    n_rows: int,
    out: np.ndarray | None = None,
    products: np.ndarray | None = None,
    gather: np.ndarray | None = None,
    lengths: np.ndarray | None = None,
) -> np.ndarray:
    """General CSR matrix-vector product.

    ``products`` (nnz-sized float64), ``gather`` (chunk-sized float64)
    and ``lengths`` (n_rows-sized int64) are optional caller-owned
    scratch buffers: with them, the gather and multiply run
    chunk-by-chunk into them and the product allocates nothing
    proportional to the matrix (the protected matrices pass their
    persistent buffers so engine-mediated SpMVs are allocation-free
    after warm-up).  The result is bitwise identical either way.
    """
    if out is None:
        out = np.zeros(n_rows, dtype=np.float64)
    if values.size == 0:
        out[:] = 0.0
        return out
    # Callers holding pre-converted snapshots (the protected matrices'
    # clean views) pass int64 indices straight through; only narrower
    # stored indices pay the widening copy.
    if colidx.dtype != np.int64:
        colidx = colidx.astype(np.int64)
    if rowptr.dtype != np.int64:
        rowptr = rowptr.astype(np.int64)
    if products is None or gather is None:
        products = values * x[colidx]
    else:
        chunk = gather.size
        for lo in range(0, values.size, chunk):
            hi = min(lo + chunk, values.size)
            g = gather[: hi - lo]
            # mode="clip" skips numpy's internal bounce buffer; callers
            # pass validated (bounds-checked) snapshot indices here.
            np.take(x, colidx[lo:hi], out=g, mode="clip")
            np.multiply(values[lo:hi], g, out=products[lo:hi])
        products = products[: values.size]
    return reduce_rows(products, rowptr, out, lengths=lengths)


def reduce_rows_multi(
    products: np.ndarray,
    rowptr: np.ndarray,
    out: np.ndarray,
    lengths: np.ndarray | None = None,
) -> np.ndarray:
    """Row-segment sums of a ``(k, nnz)`` product block into ``(k, n_rows)``.

    The multi-RHS twin of :func:`reduce_rows`: ``np.add.reduceat`` along
    ``axis=1`` performs the identical left-to-right segment sum per row
    of the block, so column ``j`` of the result is bitwise equal to a
    single-RHS :func:`reduce_rows` over ``products[j]``.  Empty matrix
    rows are masked exactly as in the 1-D kernel.
    """
    starts = rowptr[:-1]
    if lengths is None:
        lengths = rowptr[1:] - starts
    else:
        np.subtract(rowptr[1:], starts, out=lengths)
    if int(lengths.min(initial=1)) > 0:
        np.add.reduceat(products, starts, axis=1, out=out)
    else:
        nonempty = lengths > 0
        out[:] = 0.0
        out[:, nonempty] = np.add.reduceat(products, starts[nonempty], axis=1)
    return out


def spmm(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    X: np.ndarray,
    n_rows: int,
    out: np.ndarray | None = None,
    products: np.ndarray | None = None,
    tile: np.ndarray | None = None,
    lengths: np.ndarray | None = None,
) -> np.ndarray:
    """Blocked CSR product ``A @ X.T`` for a ``(k, n_cols)`` RHS block.

    ``X`` holds one right-hand side per *row* (C-contiguous, so each
    system's vector is a contiguous slab); the result is ``(k, n_rows)``
    in the same layout.  ``products`` (``(k, nnz)`` float64) and ``tile``
    (flat ``k * chunk`` float64) are optional caller-owned scratch: with
    them the gather runs chunk-by-chunk through ``np.take(..., axis=1)``
    into contiguous tile views and the product allocates nothing
    proportional to the matrix.  Row ``j`` of the result is bitwise
    identical to :func:`spmv` on ``X[j]`` — the gather/multiply is the
    same elementwise arithmetic and the reduction goes through
    :func:`reduce_rows_multi`.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    k = X.shape[0]
    if out is None:
        out = np.zeros((k, n_rows), dtype=np.float64)
    if values.size == 0:
        out[:] = 0.0
        return out
    if colidx.dtype != np.int64:
        colidx = colidx.astype(np.int64)
    if rowptr.dtype != np.int64:
        rowptr = rowptr.astype(np.int64)
    if products is None or tile is None:
        products = values[None, :] * X[:, colidx]
    else:
        chunk = tile.size // k
        for lo in range(0, values.size, chunk):
            hi = min(lo + chunk, values.size)
            t = tile[: k * (hi - lo)].reshape(k, hi - lo)
            # mode="clip" skips numpy's internal bounce buffer; callers
            # pass validated (bounds-checked) snapshot indices here.
            np.take(X, colidx[lo:hi], axis=1, out=t, mode="clip")
            np.multiply(values[lo:hi], t, out=products[:, lo:hi])
        products = products[:, : values.size]
    return reduce_rows_multi(products, rowptr, out, lengths=lengths)


def spmv_fixed_width(
    values: np.ndarray,
    colidx: np.ndarray,
    x: np.ndarray,
    width: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """SpMV when every row stores exactly ``width`` entries."""
    n_rows = values.size // width
    if colidx.dtype != np.int64:
        colidx = colidx.astype(np.int64)
    products = values * x[colidx]
    result = products.reshape(n_rows, width).sum(axis=1)
    if out is None:
        return result
    out[:] = result
    return out


def row_dot(
    values: np.ndarray,
    colidx: np.ndarray,
    rowptr: np.ndarray,
    row: int,
    x: np.ndarray,
) -> float:
    """Single-row dot product (used by tests and the scalar oracle)."""
    ptr = rowptr.astype(np.int64)
    seg = slice(ptr[row], ptr[row + 1])
    return float(np.dot(values[seg], x[colidx[seg].astype(np.int64)]))
