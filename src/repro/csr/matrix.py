"""The CSR container.

Mirrors the paper's data-structure description verbatim: an ``m x n``
sparse matrix is three dense vectors —

* ``values``  (paper's *v*): float64, length nnz, row-major non-zeros;
* ``colidx``  (paper's *y*): uint32 column index per non-zero;
* ``rowptr``  (paper's *x*): uint32, length m+1, index into ``values`` of
  each row's first non-zero.

32-bit indices are deliberate: the unused top bits are exactly where the
ABFT schemes hide their redundancy, and they cap the supported problem
sizes the same way the paper describes (§V.B).
"""

from __future__ import annotations

import numpy as np

from repro.csr.spmv import spmv
from repro.csr.validate import validate_structure


class CSRMatrix:
    """A plain (unprotected) CSR matrix over float64/uint32 storage.

    Parameters are taken by reference when their dtypes already match, so
    protected wrappers can alias the same memory.
    """

    __slots__ = ("values", "colidx", "rowptr", "shape", "_scratch")

    def __init__(self, values, colidx, rowptr, shape, *, validate: bool = True):
        self.values = np.ascontiguousarray(values, dtype=np.float64)
        self.colidx = np.ascontiguousarray(colidx, dtype=np.uint32)
        self.rowptr = np.ascontiguousarray(rowptr, dtype=np.uint32)
        self.shape = (int(shape[0]), int(shape[1]))
        self._scratch = None
        if validate:
            validate_structure(self.values, self.colidx, self.rowptr, self.shape)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return int(self.values.size)

    @property
    def n_rows(self) -> int:
        return self.shape[0]

    @property
    def n_cols(self) -> int:
        return self.shape[1]

    def row_lengths(self) -> np.ndarray:
        """Stored entries per row (int64)."""
        ptr = self.rowptr.astype(np.int64)
        return ptr[1:] - ptr[:-1]

    def is_fixed_width(self) -> int | None:
        """The common row length when every row stores it, else ``None``."""
        lengths = self.row_lengths()
        if lengths.size and np.all(lengths == lengths[0]):
            return int(lengths[0])
        return None

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Sparse matrix-vector product ``A @ x``.

        Runs through per-matrix persistent scratch (widened indices,
        product and gather buffers), so repeated products allocate
        nothing proportional to the matrix — solver inner loops stay off
        the allocator, whose large-block behaviour otherwise dominates
        (and destabilises) the product's run time.  The stored indices
        are re-widened and re-range-checked on every call, so mutating
        ``colidx``/``rowptr`` between products stays safe.
        """
        if self._scratch is None:
            self._scratch = (
                np.empty(self.nnz, dtype=np.int64),
                np.empty(self.rowptr.size, dtype=np.int64),
                np.empty(self.nnz, dtype=np.float64),
                np.empty(min(16384, max(self.nnz, 1)), dtype=np.float64),
                np.empty(self.n_rows, dtype=np.int64),
            )
        col64, ptr64, products, gather, lengths = self._scratch
        np.copyto(col64, self.colidx, casting="same_kind")
        np.copyto(ptr64, self.rowptr, casting="same_kind")
        if col64.size and int(col64.max()) >= self.n_cols:
            raise IndexError(
                f"column index out of range for {self.n_cols} columns"
            )
        return spmv(
            self.values, col64, ptr64, x, self.n_rows, out=out,
            products=products, gather=gather, lengths=lengths,
        )

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal, accumulating duplicate entries.

        Duplicates matter: the 5-point operator clamps out-of-domain
        neighbours onto existing columns (with zero coefficients), so a
        boundary row can store several entries in its diagonal column.
        """
        ptr = self.rowptr.astype(np.int64)
        row_of = np.repeat(np.arange(self.n_rows, dtype=np.int64), np.diff(ptr))
        on_diag = self.colidx.astype(np.int64) == row_of
        diag = np.zeros(min(self.shape), dtype=np.float64)
        np.add.at(diag, row_of[on_diag], self.values[on_diag])
        return diag

    def to_dense(self) -> np.ndarray:
        """Materialise as a dense array (tests / tiny matrices only)."""
        dense = np.zeros(self.shape, dtype=np.float64)
        ptr = self.rowptr.astype(np.int64)
        for i in range(self.n_rows):
            seg = slice(ptr[i], ptr[i + 1])
            # += (not assignment): duplicates accumulate like scipy's CSR.
            np.add.at(dense[i], self.colidx[seg].astype(np.int64), self.values[seg])
        return dense

    def to_scipy(self):
        """Convert to :class:`scipy.sparse.csr_array` (used as a test oracle)."""
        import scipy.sparse as sp

        return sp.csr_array(
            (self.values.copy(), self.colidx.astype(np.int64), self.rowptr.astype(np.int64)),
            shape=self.shape,
        )

    def copy(self) -> "CSRMatrix":
        return CSRMatrix(
            self.values.copy(),
            self.colidx.copy(),
            self.rowptr.copy(),
            self.shape,
            validate=False,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
