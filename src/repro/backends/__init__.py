"""Pluggable verification-kernel backends.

One registry maps backend names to the kernel sets (SpMV, SECDED
syndrome, SECDED encode) the protection stack runs on:

* ``numpy_fused`` — the default: cache-blocked, ``out=``-threaded NumPy
  kernels with persistent scratch (zero large temporaries per check);
* ``numba`` — jitted kernels, auto-detected at import and falling back
  cleanly to ``numpy_fused`` when numba is absent.

Selection, in priority order:

1. an :func:`active` override installed by the deferred-verification
   engine when its :class:`~repro.protect.config.ProtectionConfig`
   names a backend;
2. the ``REPRO_BACKEND`` environment variable;
3. the ``numpy_fused`` default.

``get_backend()`` is called on the hot path, so resolution is one list
peek plus one dict lookup.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from collections.abc import Callable, Iterator

from repro.backends.base import KernelBackend, SyndromeScratch
from repro.backends.numpy_fused import NumpyFusedBackend
from repro.errors import ConfigurationError

DEFAULT_BACKEND = "numpy_fused"

#: name -> zero-arg factory.  Factories may raise ImportError, which
#: get_backend() converts into a warned fallback to the default.
_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}

#: name -> built instance (factories run once).
_INSTANCES: dict[str, KernelBackend] = {}

#: Stack of engine-installed overrides (innermost last).
_OVERRIDES: list[KernelBackend] = []


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> list[str]:
    """Names of every backend that can actually be built in this process."""
    names = []
    for name in _FACTORIES:
        try:
            _build(name)
        except ImportError:
            continue
        names.append(name)
    return names


def _build(name: str) -> KernelBackend:
    if name not in _INSTANCES:
        if name not in _FACTORIES:
            raise ConfigurationError(
                f"unknown backend {name!r}; registered: {sorted(_FACTORIES)}"
            )
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def get_backend(name: str | None = None) -> KernelBackend:
    """Resolve the active kernel backend.

    With ``name=None`` the innermost :func:`active` override wins, then
    ``REPRO_BACKEND``, then the default.  A named-but-unavailable
    backend (e.g. ``numba`` without numba installed) warns once and
    falls back to the default rather than failing the solve.
    """
    if name is None:
        if _OVERRIDES:
            return _OVERRIDES[-1]
        name = os.environ.get("REPRO_BACKEND") or DEFAULT_BACKEND
    try:
        return _build(name)
    except ImportError as exc:
        warnings.warn(
            f"backend {name!r} is unavailable ({exc}); "
            f"falling back to {DEFAULT_BACKEND!r}",
            RuntimeWarning,
            stacklevel=2,
        )
        return _build(DEFAULT_BACKEND)


@contextlib.contextmanager
def active(backend: KernelBackend | str | None) -> Iterator[KernelBackend]:
    """Install ``backend`` as the process-wide default for the block.

    The deferred-verification engine wraps its verification entry points
    in this so a per-config backend choice reaches the SECDED kernels
    without threading a parameter through every container.  ``None`` is
    a no-op passthrough (the surrounding resolution applies).
    """
    if backend is None:
        yield get_backend()
        return
    if isinstance(backend, str):
        backend = get_backend(backend)
    _OVERRIDES.append(backend)
    try:
        yield backend
    finally:
        _OVERRIDES.pop()


def _numba_factory() -> KernelBackend:
    from repro.backends.numba_backend import make_backend

    return make_backend()


register_backend("numpy_fused", NumpyFusedBackend)
register_backend("numba", _numba_factory)

__all__ = [
    "DEFAULT_BACKEND",
    "KernelBackend",
    "SyndromeScratch",
    "active",
    "available_backends",
    "get_backend",
    "register_backend",
]
