"""The kernel-backend contract shared by every verification backend.

The protection stack spends essentially all of its time in three kernel
families — the CSR sparse matrix-vector product, the SECDED syndrome
pass and the SECDED encode pass.  A :class:`KernelBackend` supplies all
three behind one interface so the registry in :mod:`repro.backends` can
swap implementations (fused NumPy, numba, ...) without the data
structures knowing which one is active.

Backend methods never allocate arrays proportional to the codeword count
on the clean path: callers pass preallocated outputs and each
:class:`~repro.ecc.hamming.SECDEDCode` carries a persistent
:class:`SyndromeScratch` with the cache-blocked chunk buffers the
kernels work through.
"""

from __future__ import annotations

import numpy as np

#: Codewords per cache block.  16384 codewords of two uint64 lanes is
#: 256 KiB — the chunk plus its scratch stays resident in L2 while the
#: ~m+1 mask/fold/popcount passes run over it.
CHUNK = 16384


class SyndromeScratch:
    """Preallocated chunk buffers for the fused syndrome/encode passes.

    One instance lives on each :class:`~repro.ecc.hamming.SECDEDCode`
    (those are process-wide singletons, see :mod:`repro.ecc.profiles`),
    so the buffers are allocated once per code and reused by every check
    of every protected structure bound to that code.  Not thread-safe —
    neither is the rest of the protection stack.
    """

    def __init__(self, chunk: int = CHUNK):
        self.chunk = int(chunk)
        self.fold = np.empty(self.chunk, dtype=np.uint64)
        self.tmp = np.empty(self.chunk, dtype=np.uint64)
        self.pc8 = np.empty(self.chunk, dtype=np.uint8)
        self.pc16 = np.empty(self.chunk, dtype=np.uint16)
        self.syn = np.empty(self.chunk, dtype=np.uint16)
        # Fused verify-in-SpMV scratch: the widened colidx lane under
        # syndrome/decode and the gathered x values for one chunk.
        self.lane = np.empty(self.chunk, dtype=np.uint64)
        self.gather = np.empty(self.chunk, dtype=np.float64)
        # Aggregate-screen scratch: the grid row/column XOR aggregates of
        # one chunk (see numpy_fused's clean-path screen).  Sized for a
        # chunk reduced over 32 columns plus the tail, at up to 8 lanes.
        self.screen = np.empty((self.chunk // 32 + 64) * 8, dtype=np.uint64)


class KernelBackend:
    """Abstract kernel set; concrete backends override every method.

    SECDED kernels receive the bound :class:`SECDEDCode` (for its masks,
    slots and persistent scratch) plus an ``(N, L)`` uint64 lane array.
    The SpMV kernel mirrors :func:`repro.csr.spmv.spmv` and must accept
    pre-converted ``int64`` index arrays without copying them.
    """

    #: Registry name; concrete backends override.
    name = "abstract"

    #: True when the backend is importable/usable in this process.
    available = True

    #: True when the backend implements :meth:`fused_gather_verify`, the
    #: single-pass verify-in-SpMV primitive.  Backends without it still
    #: work — the protected matrices fall back to check-then-multiply.
    supports_fused_verify = False

    #: True when the backend implements :meth:`fused_gather_verify_multi`
    #: (and :meth:`spmm`), the blocked multi-RHS variants that verify
    #: each codeword chunk once per ``k`` products.  Backends without
    #: them still serve blocked solves — the protected matrices fall
    #: back to check-then-multiply over the whole block.
    supports_fused_verify_multi = False

    def syndrome_into(self, code, lanes, syn, parity) -> None:
        """Fill ``syn`` (uint16) and ``parity`` (uint8) per codeword."""
        raise NotImplementedError

    def scan(self, code, lanes) -> int:
        """Number of codewords with a nonzero syndrome or parity.

        The clean-path screen: allocates nothing proportional to the
        codeword count, so a full check of an intact structure is pure
        compute over the persistent buffers.
        """
        raise NotImplementedError

    def encode(self, code, lanes) -> None:
        """Recompute the redundancy slots of every codeword in place."""
        raise NotImplementedError

    def spmv(
        self, values, colidx, rowptr, x, n_rows,
        out=None, products=None, gather=None, lengths=None,
    ):
        """General CSR matrix-vector product (see :func:`repro.csr.spmv.spmv`).

        ``products``/``gather``/``lengths`` are optional caller-owned
        scratch buffers (nnz-sized float64 / chunk-sized float64 /
        n_rows-sized int64); backends that gather or reduce through
        temporaries use them to keep the inner loop allocation-free.
        Compiled backends whose loops are scalar may ignore them.
        """
        raise NotImplementedError

    def spmm(
        self, values, colidx, rowptr, X, n_rows,
        out=None, products=None, tile=None, lengths=None,
    ):
        """Blocked CSR product over a ``(k, n_cols)`` RHS block.

        Mirrors :func:`repro.csr.spmv.spmm`: one right-hand side per row
        of ``X``, result ``(k, n_rows)``.  ``products`` (``(k, nnz)``
        float64), ``tile`` (flat ``k * chunk`` float64) and ``lengths``
        (n_rows int64) are optional caller-owned scratch; row ``j`` of
        the result must be bitwise identical to :meth:`spmv` on
        ``X[j]``.
        """
        raise NotImplementedError

    def fused_gather_verify_multi(
        self, code, values, colidx, X, index_mask, n_cols, col64, products, tile
    ):
        """Blocked :meth:`fused_gather_verify`: one screen per chunk, k gathers.

        Identical syndrome screen, decode and bounds check as the
        single-RHS primitive, but each clean chunk gathers all ``k``
        rows of ``X`` through a contiguous ``(k, chunk)`` view of the
        flat ``tile`` scratch into ``products[:, lo:hi]`` — the SECDED
        verification cost is paid once and amortized over ``k``
        products.  Returns the same ``[lo, hi)`` dirty-window list.
        """
        raise NotImplementedError

    def fused_gather_verify(
        self, code, values, colidx, x, index_mask, n_cols, col64, products
    ):
        """Verify one-element codewords while gathering the SpMV operands.

        The verify-in-SpMV primitive: per cache-blocked chunk of the
        ``(values, colidx)`` lane pair, compute the SECDED syndrome,
        decode the column index (``colidx & index_mask``), bounds-check
        it against ``n_cols``, gather ``x`` through it and multiply —
        filling ``col64[:nnz]`` and ``products[:nnz]`` in the same pass
        that screens the codewords.  Chunks containing a nonzero
        syndrome or an out-of-range index are *not* gathered; their
        ``[lo, hi)`` codeword windows are returned for the caller to
        re-check (and correct) through the container's scalar cold path
        before retrying.  Returns ``[]`` when everything was clean.

        Only meaningful for schemes whose codeword is a single
        ``(value, colidx)`` element pair (secded64); callers gate on
        :attr:`supports_fused_verify` plus the scheme.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<KernelBackend {self.name}>"
