"""Optional numba backend: jitted SECDED + SpMV kernels.

Importing this module never fails — :data:`HAS_NUMBA` records whether
numba is usable and :func:`make_backend` raises ``ImportError`` when it
is not, which the registry in :mod:`repro.backends` turns into a clean
fallback to the default NumPy backend.

The kernels are deliberately line-for-line transcriptions of the fused
NumPy semantics (same masks, same decode rules), so the numpy↔numba
parity tests can compare them bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - the container path
    numba = None
    HAS_NUMBA = False


if HAS_NUMBA:  # pragma: no cover - compiled/exercised only with numba

    @numba.njit(cache=True, inline="always")
    def _parity64(x):
        x ^= x >> np.uint64(32)
        x ^= x >> np.uint64(16)
        x ^= x >> np.uint64(8)
        x ^= x >> np.uint64(4)
        x ^= x >> np.uint64(2)
        x ^= x >> np.uint64(1)
        return np.uint8(x & np.uint64(1))

    @numba.njit(cache=True, parallel=True)
    def _syndrome(lanes, full_masks, all_mask, syn, parity):
        n, n_lanes = lanes.shape
        m = full_masks.shape[0]
        for i in numba.prange(n):
            s = np.uint16(0)
            for j in range(m):
                fold = np.uint64(0)
                for lane in range(n_lanes):
                    fold ^= lanes[i, lane] & full_masks[j, lane]
                s |= np.uint16(_parity64(fold)) << np.uint16(j)
            syn[i] = s
            fold = np.uint64(0)
            for lane in range(n_lanes):
                fold ^= lanes[i, lane] & all_mask[lane]
            parity[i] = _parity64(fold)

    @numba.njit(cache=True, parallel=True)
    def _scan(lanes, full_masks, all_mask):
        n, n_lanes = lanes.shape
        m = full_masks.shape[0]
        bad = 0
        for i in numba.prange(n):
            s = np.uint16(0)
            for j in range(m):
                fold = np.uint64(0)
                for lane in range(n_lanes):
                    fold ^= lanes[i, lane] & full_masks[j, lane]
                s |= np.uint16(_parity64(fold)) << np.uint16(j)
            fold = np.uint64(0)
            for lane in range(n_lanes):
                fold ^= lanes[i, lane] & all_mask[lane]
            if s != np.uint16(0) or _parity64(fold) != np.uint8(0):
                bad += 1
        return bad

    @numba.njit(cache=True, parallel=True)
    def _encode(lanes, data_masks, all_mask, check_mask, slots, parity_slot):
        n, n_lanes = lanes.shape
        m = data_masks.shape[0]
        for i in numba.prange(n):
            for lane in range(n_lanes):
                lanes[i, lane] &= ~check_mask[lane]
            for j in range(m):
                fold = np.uint64(0)
                for lane in range(n_lanes):
                    fold ^= lanes[i, lane] & data_masks[j, lane]
                bit = np.uint64(_parity64(fold))
                slot = slots[j]
                lanes[i, slot // 64] |= bit << np.uint64(slot % 64)
            fold = np.uint64(0)
            for lane in range(n_lanes):
                fold ^= lanes[i, lane] & all_mask[lane]
            bit = np.uint64(_parity64(fold))
            lanes[i, parity_slot // 64] |= bit << np.uint64(parity_slot % 64)

    @numba.njit(cache=True, parallel=True)
    def _spmv(values, colidx, rowptr, x, out):
        for row in numba.prange(out.size):
            acc = 0.0
            for k in range(rowptr[row], rowptr[row + 1]):
                acc += values[k] * x[colidx[k]]
            out[row] = acc

    @numba.njit(cache=True, parallel=True)
    def _spmm(values, colidx, rowptr, X, out):
        k = X.shape[0]
        for row in numba.prange(out.shape[1]):
            for j in range(k):
                acc = 0.0
                for p in range(rowptr[row], rowptr[row + 1]):
                    acc += values[p] * X[j, colidx[p]]
                out[j, row] = acc

    @numba.njit(cache=True, parallel=True)
    def _fused_gather_verify_multi(
        values, vwords, colidx, X, full_masks, all_mask,
        index_mask, n_cols, col64, products, chunk, bad_counts,
    ):
        nnz = values.size
        m = full_masks.shape[0]
        k = X.shape[0]
        for c in numba.prange(bad_counts.size):
            lo = c * chunk
            hi = min(lo + chunk, nnz)
            bad = 0
            for i in range(lo, hi):
                v = vwords[i]
                y = np.uint64(colidx[i])
                s = np.uint16(0)
                for j in range(m):
                    fold = (v & full_masks[j, 0]) ^ (y & full_masks[j, 1])
                    s |= np.uint16(_parity64(fold)) << np.uint16(j)
                fold = (v & all_mask[0]) ^ (y & all_mask[1])
                if s != np.uint16(0) or _parity64(fold) != np.uint8(0):
                    bad += 1
                    continue
                col = np.int64(y & index_mask)
                if col >= n_cols:
                    bad += 1
                    continue
                col64[i] = col
                # One syndrome per element, k products off it.
                for j in range(k):
                    products[j, i] = values[i] * X[j, col]
            bad_counts[c] = bad

    @numba.njit(cache=True, parallel=True)
    def _fused_gather_verify(
        values, vwords, colidx, x, full_masks, all_mask,
        index_mask, n_cols, col64, products, chunk, bad_counts,
    ):
        nnz = values.size
        m = full_masks.shape[0]
        for c in numba.prange(bad_counts.size):
            lo = c * chunk
            hi = min(lo + chunk, nnz)
            bad = 0
            for i in range(lo, hi):
                v = vwords[i]
                y = np.uint64(colidx[i])
                s = np.uint16(0)
                for j in range(m):
                    fold = (v & full_masks[j, 0]) ^ (y & full_masks[j, 1])
                    s |= np.uint16(_parity64(fold)) << np.uint16(j)
                fold = (v & all_mask[0]) ^ (y & all_mask[1])
                if s != np.uint16(0) or _parity64(fold) != np.uint8(0):
                    bad += 1
                    continue
                col = np.int64(y & index_mask)
                if col >= n_cols:
                    bad += 1
                    continue
                col64[i] = col
                products[i] = values[i] * x[col]
            bad_counts[c] = bad


class NumbaBackend(KernelBackend):
    """Jitted kernels; only constructible when numba imports."""

    name = "numba"
    available = HAS_NUMBA
    supports_fused_verify = HAS_NUMBA
    supports_fused_verify_multi = HAS_NUMBA

    def __init__(self):  # pragma: no cover - needs numba
        if not HAS_NUMBA:
            raise ImportError("numba is not installed")

    # pragma's below: the container image has no numba, so these bodies
    # are exercised only on hosts that do.
    def syndrome_into(self, code, lanes, syn, parity):  # pragma: no cover
        _syndrome(lanes, code._full_masks, code._all_mask, syn, parity)

    def scan(self, code, lanes):  # pragma: no cover
        return int(_scan(lanes, code._full_masks, code._all_mask))

    def encode(self, code, lanes):  # pragma: no cover
        slots = np.asarray(code.syndrome_slots, dtype=np.int64)
        _encode(lanes, code._data_masks, code._all_mask, code._check_mask,
                slots, code.parity_slot)

    def spmv(self, values, colidx, rowptr, x, n_rows,
             out=None, products=None, gather=None,
             lengths=None):  # pragma: no cover
        # The jitted loop is scalar per row, so the products/gather/
        # lengths scratch buffers are unnecessary and ignored.
        if out is None:
            out = np.empty(n_rows, dtype=np.float64)
        _spmv(values, np.asarray(colidx, dtype=np.int64),
              np.asarray(rowptr, dtype=np.int64), x, out)
        return out

    def fused_gather_verify(
        self, code, values, colidx, x, index_mask, n_cols, col64, products
    ):  # pragma: no cover
        chunk = code.scratch.chunk
        n_chunks = max(1, -(-values.size // chunk))
        bad_counts = np.zeros(n_chunks, dtype=np.int64)
        _fused_gather_verify(
            values, values.view(np.uint64), colidx, x,
            code._full_masks, code._all_mask,
            np.uint64(index_mask), np.int64(n_cols),
            col64, products, np.int64(chunk), bad_counts,
        )
        return [
            (c * chunk, min(c * chunk + chunk, values.size))
            for c in np.flatnonzero(bad_counts)
        ]

    def spmm(self, values, colidx, rowptr, X, n_rows,
             out=None, products=None, tile=None,
             lengths=None):  # pragma: no cover
        # Scalar per (row, rhs) accumulation; the tile/products scratch
        # buffers are unnecessary and ignored.
        X = np.ascontiguousarray(X, dtype=np.float64)
        if out is None:
            out = np.empty((X.shape[0], n_rows), dtype=np.float64)
        _spmm(values, np.asarray(colidx, dtype=np.int64),
              np.asarray(rowptr, dtype=np.int64), X, out)
        return out

    def fused_gather_verify_multi(
        self, code, values, colidx, X, index_mask, n_cols, col64, products, tile
    ):  # pragma: no cover
        chunk = code.scratch.chunk
        n_chunks = max(1, -(-values.size // chunk))
        bad_counts = np.zeros(n_chunks, dtype=np.int64)
        _fused_gather_verify_multi(
            values, values.view(np.uint64), colidx, X,
            code._full_masks, code._all_mask,
            np.uint64(index_mask), np.int64(n_cols),
            col64, products, np.int64(chunk), bad_counts,
        )
        return [
            (c * chunk, min(c * chunk + chunk, values.size))
            for c in np.flatnonzero(bad_counts)
        ]


def make_backend() -> NumbaBackend:
    """Build the numba backend, raising ``ImportError`` when unusable."""
    return NumbaBackend()
