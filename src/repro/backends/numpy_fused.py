"""The default backend: cache-blocked, ``out=``-threaded NumPy kernels.

The original SECDED hot path computed every syndrome bit with
``parity64(np.bitwise_xor.reduce(lanes & mask, axis=-1))`` — each of the
``m + 1`` passes allocated an ``(N, L)`` masked temporary plus two
``(N,)`` reductions and streamed the whole lane array from DRAM again.
This backend runs the same mathematics chunk-by-chunk: a block of
codewords is pulled through the cache once and all ``m + 1``
mask/fold/popcount passes run over it with every intermediate landing in
the code's persistent :class:`~repro.backends.base.SyndromeScratch`.
No temporary proportional to the codeword count is ever allocated.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend
from repro.csr.spmv import spmv as _numpy_spmv

_ONE16 = np.uint16(1)


def _fold_masked(chunk, masks, n, scratch):
    """XOR-fold ``chunk & masks`` across lanes into ``scratch.fold[:n]``."""
    fold = scratch.fold[:n]
    np.bitwise_and(chunk[:, 0], masks[0], out=fold)
    for lane in range(1, chunk.shape[1]):
        tmp = scratch.tmp[:n]
        np.bitwise_and(chunk[:, lane], masks[lane], out=tmp)
        np.bitwise_xor(fold, tmp, out=fold)
    return fold


def _parity_of_fold(fold, n, scratch):
    """Per-element parity of ``fold`` into ``scratch.pc8[:n]``."""
    pc = scratch.pc8[:n]
    np.bitwise_count(fold, out=pc)
    np.bitwise_and(pc, np.uint8(1), out=pc)
    return pc


def _chunk_syndrome(code, chunk, n, scratch):
    """Syndrome (into ``scratch.syn[:n]``) and parity (``scratch.pc8[:n]``).

    The parity pass runs last so ``scratch.pc8`` still holds the overall
    parity when this returns.
    """
    syn = scratch.syn[:n]
    syn[:] = 0
    for j in range(code.n_syndrome_bits):
        fold = _fold_masked(chunk, code._full_masks[j], n, scratch)
        pc = _parity_of_fold(fold, n, scratch)
        p16 = scratch.pc16[:n]
        np.copyto(p16, pc, casting="unsafe")
        np.left_shift(p16, np.uint16(j), out=p16)
        np.bitwise_or(syn, p16, out=syn)
    fold = _fold_masked(chunk, code._all_mask, n, scratch)
    pc = _parity_of_fold(fold, n, scratch)
    return syn, pc


class NumpyFusedBackend(KernelBackend):
    """Chunked ``out=`` NumPy kernels (the ``numpy_fused`` default)."""

    name = "numpy_fused"

    # -- SECDED ---------------------------------------------------------
    def syndrome_into(self, code, lanes, syn, parity) -> None:
        scratch = code.scratch
        n_total = lanes.shape[0]
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            syn_c, pc = _chunk_syndrome(code, lanes[lo:hi], n, scratch)
            syn[lo:hi] = syn_c
            parity[lo:hi] = pc

    def scan(self, code, lanes) -> int:
        scratch = code.scratch
        n_total = lanes.shape[0]
        bad = 0
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            syn_c, pc = _chunk_syndrome(code, lanes[lo:hi], n, scratch)
            # Fold the overall parity into the syndrome word so one
            # count_nonzero sees both corruption signals.
            p16 = scratch.pc16[:n]
            np.copyto(p16, pc, casting="unsafe")
            np.left_shift(p16, np.uint16(15), out=p16)
            np.bitwise_or(syn_c, p16, out=syn_c)
            bad += int(np.count_nonzero(syn_c))
        return bad

    def encode(self, code, lanes) -> None:
        scratch = code.scratch
        n_total = lanes.shape[0]
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            chunk = lanes[lo:hi]
            np.bitwise_and(chunk, ~code._check_mask, out=chunk)
            for j in range(code.n_syndrome_bits):
                fold = _fold_masked(chunk, code._data_masks[j], n, scratch)
                pc = _parity_of_fold(fold, n, scratch)
                self._set_bit(chunk, code.syndrome_slots[j], pc, n, scratch)
            fold = _fold_masked(chunk, code._all_mask, n, scratch)
            pc = _parity_of_fold(fold, n, scratch)
            self._set_bit(chunk, code.parity_slot, pc, n, scratch)

    @staticmethod
    def _set_bit(chunk, position, bit_values, n, scratch) -> None:
        lane, bit = divmod(int(position), 64)
        word = scratch.tmp[:n]
        np.copyto(word, bit_values, casting="unsafe")
        np.left_shift(word, np.uint64(bit), out=word)
        np.bitwise_or(chunk[:, lane], word, out=chunk[:, lane])

    # -- SpMV -----------------------------------------------------------
    def spmv(self, values, colidx, rowptr, x, n_rows, out=None):
        return _numpy_spmv(values, colidx, rowptr, x, n_rows, out=out)
