"""The default backend: cache-blocked, ``out=``-threaded NumPy kernels.

The original SECDED hot path computed every syndrome bit with
``parity64(np.bitwise_xor.reduce(lanes & mask, axis=-1))`` — each of the
``m + 1`` passes allocated an ``(N, L)`` masked temporary plus two
``(N,)`` reductions and streamed the whole lane array from DRAM again.
This backend runs the same mathematics chunk-by-chunk: a block of
codewords is pulled through the cache once and all ``m + 1``
mask/fold/popcount passes run over it with every intermediate landing in
the code's persistent :class:`~repro.backends.base.SyndromeScratch`.
No temporary proportional to the codeword count is ever allocated.

The clean-path screens go one step further: because syndromes are
GF(2)-linear, a chunk can be XOR-reduced over a ``(rows, 32)`` grid and
only the ``rows + 32`` aggregate codewords syndromed (two reduction
passes plus ~3% of the per-element mask work).  An intact chunk never
fires the screen; a chunk that fires for any reason falls back to the
exact per-element passes, so correction behaviour is unchanged (see
:func:`_chunk_screen` for the precise detection guarantee).
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import KernelBackend
from repro.csr.spmv import spmm as _numpy_spmm
from repro.csr.spmv import spmv as _numpy_spmv

_ONE16 = np.uint16(1)


def _fold_masked(chunk, masks, n, scratch):
    """XOR-fold ``chunk & masks`` across lanes into ``scratch.fold[:n]``."""
    fold = scratch.fold[:n]
    np.bitwise_and(chunk[:, 0], masks[0], out=fold)
    for lane in range(1, chunk.shape[1]):
        tmp = scratch.tmp[:n]
        np.bitwise_and(chunk[:, lane], masks[lane], out=tmp)
        np.bitwise_xor(fold, tmp, out=fold)
    return fold


def _parity_of_fold(fold, n, scratch):
    """Per-element parity of ``fold`` into ``scratch.pc8[:n]``."""
    pc = scratch.pc8[:n]
    np.bitwise_count(fold, out=pc)
    np.bitwise_and(pc, np.uint8(1), out=pc)
    return pc


def _chunk_syndrome(code, chunk, n, scratch):
    """Syndrome (into ``scratch.syn[:n]``) and parity (``scratch.pc8[:n]``).

    The parity pass runs last so ``scratch.pc8`` still holds the overall
    parity when this returns.
    """
    syn = scratch.syn[:n]
    syn[:] = 0
    for j in range(code.n_syndrome_bits):
        fold = _fold_masked(chunk, code._full_masks[j], n, scratch)
        pc = _parity_of_fold(fold, n, scratch)
        p16 = scratch.pc16[:n]
        np.copyto(p16, pc, casting="unsafe")
        np.left_shift(p16, np.uint16(j), out=p16)
        np.bitwise_or(syn, p16, out=syn)
    fold = _fold_masked(chunk, code._all_mask, n, scratch)
    pc = _parity_of_fold(fold, n, scratch)
    return syn, pc


#: Columns of the aggregate-screen grid.  A chunk is viewed as a
#: ``(rows, 32)`` grid of codewords and XOR-reduced along both axes;
#: the syndrome passes then run over ``rows + 32`` aggregate codewords
#: instead of the whole chunk (~3% of the per-element work).
_SCREEN_COLS = 32


def _screen_shape(n: int) -> tuple[int, int, int]:
    """Grid rows, tail length and aggregate count for an ``n``-codeword chunk."""
    rows = n // _SCREEN_COLS
    rem = n - rows * _SCREEN_COLS
    return rows, rem, (rows + _SCREEN_COLS if rows else 0) + rem


def _screen_clean(code, agg, k, scratch) -> bool:
    """True when every aggregate codeword has zero syndrome and parity."""
    syn, pc = _chunk_syndrome(code, agg, k, scratch)
    return not (int(np.count_nonzero(syn)) or int(np.count_nonzero(pc)))


def _screen_lane(lane1d, rows, agg_col, scratch):
    """Row/column aggregates of one contiguous lane into an ``agg`` column.

    ``lane1d`` (length ``rows * 32``, contiguous) is viewed as the
    ``(rows, 32)`` screen grid and XOR-reduced along both axes.  Both
    reductions are first-or-last-axis ``ufunc.reduce`` calls over a
    contiguous grid into contiguous scratch — the only forms NumPy runs
    through its non-buffering (allocation-free) inner reduce loop; a
    middle-axis reduce, a strided ``out=`` or a strided-half halving all
    fall into the buffered iterator and allocate a ~64 KiB bounce buffer
    per call.
    """
    grid = lane1d.reshape(rows, _SCREEN_COLS)
    ragg = scratch.tmp[:rows]
    np.bitwise_xor.reduce(grid, axis=1, out=ragg)
    agg_col[:rows] = ragg
    cagg = scratch.tmp[rows : rows + _SCREEN_COLS]
    np.bitwise_xor.reduce(grid, axis=0, out=cagg)
    agg_col[rows : rows + _SCREEN_COLS] = cagg


def _chunk_screen(code, block, n, scratch) -> bool:
    """Aggregate clean-chunk screen over an ``(n, L)`` lane block.

    Syndromes are GF(2)-linear, so the XOR of any subset of *clean*
    codewords is itself a zero-syndrome, zero-parity word — an intact
    chunk never fires the screen, and the ``rows + 32`` grid aggregates
    cost ~3% of the per-element syndrome passes they stand in for.
    Detection: every pattern of one or two flipped bits in the chunk
    survives into some aggregate — two flips in one codeword meet
    SECDED's double-error detection inside that codeword's row
    aggregate, and flips in different codewords land in different grid
    rows or different grid columns (or the exactly-screened tail), each
    aggregate seeing a single nonzero-syndrome flip.  Four or more
    flips escape only by cancelling in *every* row and column aggregate
    (e.g. one bit position flipped on all four corners of a
    grid-aligned rectangle); a chunk that fires for any reason falls
    back to the exact per-element passes, so correction strength is
    unchanged.
    """
    lanes = block.shape[1]
    rows, rem, k = _screen_shape(n)
    if k == 0:
        return True
    if k * lanes > scratch.screen.size:  # very wide codewords: exact path
        return False
    agg = scratch.screen[: k * lanes].reshape(k, lanes)
    span = rows * _SCREEN_COLS
    pos = 0
    if rows:
        lanebuf = scratch.fold[:span]
        for lane in range(lanes):
            np.copyto(lanebuf, block[:span, lane])
            _screen_lane(lanebuf, rows, agg[:, lane], scratch)
        pos = rows + _SCREEN_COLS
    if rem:
        agg[pos:] = block[span:]
    return _screen_clean(code, agg, k, scratch)


def _chunk_screen_split(code, a, b, n, scratch) -> bool:
    """The :func:`_chunk_screen` screen over split one-element lanes.

    ``a``/``b`` are the storage arrays themselves (values viewed as
    uint64, widened colidx), so the fused SpMV path never packs an
    ``(n, 2)`` lane buffer.  Same guarantee as the packed screen.
    """
    rows, rem, k = _screen_shape(n)
    if k == 0:
        return True
    agg = scratch.screen[: k * 2].reshape(k, 2)
    span = rows * _SCREEN_COLS
    pos = 0
    if rows:
        _screen_lane(a[:span], rows, agg[:, 0], scratch)
        _screen_lane(b[:span], rows, agg[:, 1], scratch)
        pos = rows + _SCREEN_COLS
    if rem:
        agg[pos:, 0] = a[span:]
        agg[pos:, 1] = b[span:]
    return _screen_clean(code, agg, k, scratch)


class NumpyFusedBackend(KernelBackend):
    """Chunked ``out=`` NumPy kernels (the ``numpy_fused`` default)."""

    name = "numpy_fused"
    supports_fused_verify = True
    supports_fused_verify_multi = True

    # -- SECDED ---------------------------------------------------------
    def syndrome_into(self, code, lanes, syn, parity) -> None:
        scratch = code.scratch
        n_total = lanes.shape[0]
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            syn_c, pc = _chunk_syndrome(code, lanes[lo:hi], n, scratch)
            syn[lo:hi] = syn_c
            parity[lo:hi] = pc

    def scan(self, code, lanes) -> int:
        scratch = code.scratch
        n_total = lanes.shape[0]
        bad = 0
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            # Clean chunks (the overwhelmingly common case) are fully
            # screened by their grid aggregates; only a chunk that fires
            # pays the per-element syndrome passes for the exact count.
            if _chunk_screen(code, lanes[lo:hi], n, scratch):
                continue
            syn_c, pc = _chunk_syndrome(code, lanes[lo:hi], n, scratch)
            # Fold the overall parity into the syndrome word so one
            # count_nonzero sees both corruption signals.
            p16 = scratch.pc16[:n]
            np.copyto(p16, pc, casting="unsafe")
            np.left_shift(p16, np.uint16(15), out=p16)
            np.bitwise_or(syn_c, p16, out=syn_c)
            bad += int(np.count_nonzero(syn_c))
        return bad

    def encode(self, code, lanes) -> None:
        scratch = code.scratch
        n_total = lanes.shape[0]
        for lo in range(0, n_total, scratch.chunk):
            hi = min(lo + scratch.chunk, n_total)
            n = hi - lo
            chunk = lanes[lo:hi]
            np.bitwise_and(chunk, ~code._check_mask, out=chunk)
            for j in range(code.n_syndrome_bits):
                fold = _fold_masked(chunk, code._data_masks[j], n, scratch)
                pc = _parity_of_fold(fold, n, scratch)
                self._set_bit(chunk, code.syndrome_slots[j], pc, n, scratch)
            fold = _fold_masked(chunk, code._all_mask, n, scratch)
            pc = _parity_of_fold(fold, n, scratch)
            self._set_bit(chunk, code.parity_slot, pc, n, scratch)

    @staticmethod
    def _set_bit(chunk, position, bit_values, n, scratch) -> None:
        lane, bit = divmod(int(position), 64)
        word = scratch.tmp[:n]
        np.copyto(word, bit_values, casting="unsafe")
        np.left_shift(word, np.uint64(bit), out=word)
        np.bitwise_or(chunk[:, lane], word, out=chunk[:, lane])

    # -- SpMV -----------------------------------------------------------
    def spmv(
        self, values, colidx, rowptr, x, n_rows,
        out=None, products=None, gather=None, lengths=None,
    ):
        return _numpy_spmv(
            values, colidx, rowptr, x, n_rows, out=out,
            products=products, gather=gather, lengths=lengths,
        )

    def fused_gather_verify(
        self, code, values, colidx, x, index_mask, n_cols, col64, products
    ):
        """Single-pass syndrome + decode + gather + multiply (see base class).

        Per chunk: widen the stored colidx lane once into the scratch,
        run the grid-aggregate screen (:func:`_chunk_screen_split`) over
        the (value word, widened index) pairs, and — when the chunk
        screens clean — strip the redundancy bits, bounds-check, gather
        ``x`` and multiply into ``products``, all through persistent
        buffers.  Dirty or out-of-range chunks are skipped and returned
        as ``[lo, hi)`` windows for the container's scalar correction
        path (which re-screens them with exact per-element syndromes).
        """
        scratch = code.scratch
        vwords = values.view(np.uint64)
        nnz = values.size
        mask64 = np.uint64(index_mask)
        bad: list[tuple[int, int]] = []
        for lo in range(0, nnz, scratch.chunk):
            hi = min(lo + scratch.chunk, nnz)
            n = hi - lo
            lane = scratch.lane[:n]
            np.copyto(lane, colidx[lo:hi], casting="same_kind")
            if not _chunk_screen_split(code, vwords[lo:hi], lane, n, scratch):
                bad.append((lo, hi))
                continue
            col = col64[lo:hi]
            np.bitwise_and(lane, mask64, out=lane)
            np.copyto(col, lane, casting="same_kind")
            if int(col.max(initial=0)) >= n_cols:
                bad.append((lo, hi))
                continue
            g = scratch.gather[:n]
            # mode="clip" skips numpy's internal bounce buffer; the
            # max() screen above already guarantees in-range indices.
            np.take(x, col, out=g, mode="clip")
            np.multiply(values[lo:hi], g, out=products[lo:hi])
        return bad

    def spmm(
        self, values, colidx, rowptr, X, n_rows,
        out=None, products=None, tile=None, lengths=None,
    ):
        return _numpy_spmm(
            values, colidx, rowptr, X, n_rows, out=out,
            products=products, tile=tile, lengths=lengths,
        )

    def fused_gather_verify_multi(
        self, code, values, colidx, X, index_mask, n_cols, col64, products, tile
    ):
        """Blocked single-pass syndrome + decode + gather (see base class).

        The per-chunk screen, decode and bounds check are byte-for-byte
        the single-RHS loop — one `_chunk_screen_split` pass covers all
        ``k`` products of the chunk.  Clean chunks gather every row of
        ``X`` through a contiguous ``(k, n)`` view of the flat ``tile``
        scratch (contiguity keeps ``np.take(..., axis=1, out=)`` on its
        non-buffering path) and broadcast-multiply into
        ``products[:, lo:hi]``, whose row ``j`` is then bitwise equal to
        the single-RHS products over ``X[j]``.
        """
        scratch = code.scratch
        vwords = values.view(np.uint64)
        nnz = values.size
        k = X.shape[0]
        mask64 = np.uint64(index_mask)
        bad: list[tuple[int, int]] = []
        for lo in range(0, nnz, scratch.chunk):
            hi = min(lo + scratch.chunk, nnz)
            n = hi - lo
            lane = scratch.lane[:n]
            np.copyto(lane, colidx[lo:hi], casting="same_kind")
            if not _chunk_screen_split(code, vwords[lo:hi], lane, n, scratch):
                bad.append((lo, hi))
                continue
            col = col64[lo:hi]
            np.bitwise_and(lane, mask64, out=lane)
            np.copyto(col, lane, casting="same_kind")
            if int(col.max(initial=0)) >= n_cols:
                bad.append((lo, hi))
                continue
            t = tile[: k * n].reshape(k, n)
            # mode="clip" skips numpy's internal bounce buffer; the
            # max() screen above already guarantees in-range indices.
            np.take(X, col, axis=1, out=t, mode="clip")
            np.multiply(values[lo:hi], t, out=products[:, lo:hi])
        return bad
