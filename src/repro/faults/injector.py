"""Applying fault specs to protected structures.

Injection happens on the *stored* representation — values, redundancy
bits, everything is fair game, exactly like a real memory upset.  The
injector reports whether each fault actually changed memory (stuck-at
faults can be no-ops), which the campaign needs for ground truth.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.faults.models import FaultSpec
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.vector import ProtectedVector


class Region(enum.Enum):
    """Which stored array a fault targets."""

    VALUES = "values"
    COLIDX = "colidx"
    ROWPTR = "rowptr"
    VECTOR = "vector"

    @property
    def bits_per_element(self) -> int:
        return 64 if self in (Region.VALUES, Region.VECTOR) else 32


def flip_array_bit(array: np.ndarray, element: int, bit: int,
                   stuck: int | None = None) -> bool:
    """Flip (or stick) one bit of one element; True when memory changed.

    ``array`` may be float64 (treated through its uint64 view) or any
    unsigned integer dtype.
    """
    if array.dtype == np.float64:
        words = f64_to_u64(array)
        one = np.uint64(1) << np.uint64(bit)
    elif array.dtype == np.uint32:
        words = array
        one = np.uint32(1) << np.uint32(bit)
    elif array.dtype == np.uint64:
        words = array
        one = np.uint64(1) << np.uint64(bit)
    else:
        raise TypeError(f"cannot inject into dtype {array.dtype}")
    before = words[element]
    if stuck is None:
        words[element] = before ^ one
    elif stuck:
        words[element] = before | one
    else:
        words[element] = before & ~one
    return bool(words[element] != before)


def _target_array(matrix: ProtectedCSRMatrix, region: Region) -> np.ndarray:
    if region is Region.VALUES:
        return matrix.values
    if region is Region.COLIDX:
        return matrix.colidx
    if region is Region.ROWPTR:
        return matrix.rowptr
    raise ValueError(f"region {region} is not a matrix region")


def inject_into_matrix(
    matrix: ProtectedCSRMatrix, region: Region, faults: Iterable[FaultSpec]
) -> int:
    """Apply faults to one region of a protected matrix; returns #changed."""
    array = _target_array(matrix, region)
    changed = 0
    for fault in faults:
        changed += flip_array_bit(array, fault.element, fault.bit, fault.stuck)
    return changed


def inject_into_vector(vector: ProtectedVector, faults: Iterable[FaultSpec]) -> int:
    """Apply faults to a protected vector's stored doubles; returns #changed."""
    changed = 0
    for fault in faults:
        changed += flip_array_bit(vector.raw, fault.element, fault.bit, fault.stuck)
    return changed
