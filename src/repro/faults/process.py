"""Continuous fault processes: MTBF-style Poisson injection over a run.

The exascale motivation is falling MTBF; this module models a memory
subject to a Poisson soft-error process (rate per bit per unit time, as
the DRAM field studies report) and drives injection *during* a solve —
between iterations, which is when real upsets strike — so the
deferred-checking semantics of §VI.A.2 (errors discovered up to N
iterations late, mandatory end-of-step sweep) can be observed end to end.

Two drivers:

* :func:`faulty_solve` — the registry-threaded harness: any solver
  method, any :class:`~repro.protect.config.ProtectionConfig` (including
  its ``recovery=`` strategy), faults injected through the engine's
  iteration hook into the matrix *and* the live protected state vectors.
  This is what the resilience campaigns and the sharded executor run.
* :func:`faulty_cg_solve` — the original hand-rolled eager-CG loop with
  explicit re-encode/abort handling, kept for the MTBF ablation (it
  predates the recovery layer and demonstrates application-level
  re-encode without it).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import BoundsViolationError, DetectedUncorrectableError
from repro.faults.injector import Region, inject_into_matrix, inject_into_vector
from repro.faults.models import FaultSpec
from repro.protect.kernels import verify_matrix
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.solvers.base import SolverResult


@dataclasses.dataclass
class PoissonProcess:
    """Homogeneous Poisson bit-flip process over a protected matrix.

    ``rate_per_bit`` is the upset probability per stored bit per exposure
    unit (one CG iteration here).  ``advance`` draws the number of events
    for an exposure window and returns concrete fault specs.
    """

    rate_per_bit: float
    rng: np.random.Generator = dataclasses.field(
        default_factory=lambda: np.random.default_rng(0)
    )

    def advance(self, n_bits: int, exposure: float = 1.0) -> int:
        """Number of upsets in ``n_bits`` over ``exposure`` iterations."""
        lam = self.rate_per_bit * n_bits * exposure
        return int(self.rng.poisson(lam))

    def sample_region(
        self, matrix: ProtectedCSRMatrix, exposure: float = 1.0
    ) -> list[tuple[Region, FaultSpec]]:
        """Draw upsets across all three matrix regions, area-weighted."""
        regions = [
            (Region.VALUES, matrix.nnz, 64),
            (Region.COLIDX, matrix.nnz, 32),
            (Region.ROWPTR, matrix.rowptr.size, 32),
        ]
        events = []
        for region, n_elements, bits in regions:
            for _ in range(self.advance(n_elements * bits, exposure)):
                events.append(
                    (
                        region,
                        FaultSpec(
                            int(self.rng.integers(0, n_elements)),
                            int(self.rng.integers(0, bits)),
                        ),
                    )
                )
        return events

    def sample_vector(
        self, n_elements: int, exposure: float = 1.0, bits: int = 64
    ) -> list[FaultSpec]:
        """Draw upsets over one dense vector's stored doubles."""
        return [
            FaultSpec(
                int(self.rng.integers(0, n_elements)),
                int(self.rng.integers(0, bits)),
            )
            for _ in range(self.advance(n_elements * bits, exposure))
        ]


@dataclasses.dataclass
class FaultyRunReport:
    """What happened during a solve under continuous fault injection."""

    result: SolverResult | None
    injected: int
    corrected: int
    detected_uncorrectable: int
    bounds_trips: int
    silent_at_end: int
    #: Iterations at which at least one fault was injected.
    injection_iterations: list[int]
    #: In-solve recoveries the recovery layer performed (rollbacks +
    #: repopulates + transparent vector repairs); 0 without a recovery
    #: strategy.
    recovered: int = 0
    #: The recovery strategy that was in force.
    recovery: str = "raise"

    @property
    def all_accounted(self) -> bool:
        """True when no injected corruption survived undetected."""
        return self.silent_at_end == 0


def faulty_solve(
    matrix,
    b: np.ndarray,
    process: PoissonProcess,
    *,
    method: str = "cg",
    config=None,
    recovery=None,
    x0: np.ndarray | None = None,
    eps: float = 1e-16,
    max_iters: int = 500,
    vector_faults: bool = True,
) -> FaultyRunReport:
    """Any registry solver under a live fault process, with recovery.

    Faults are injected at iteration boundaries through the engine's
    iteration hook: matrix upsets are sampled area-weighted across all
    three CSR regions (and made live by invalidating the cached index
    snapshot, as a real storage upset would be), and — when
    ``vector_faults`` — the solve's registered protected state vectors
    take Poisson hits too.

    ``config`` is a :class:`~repro.protect.config.ProtectionConfig`
    (default: the paper's full protection); ``recovery`` overrides its
    recovery policy (a strategy name or
    :class:`~repro.recover.policy.RecoveryPolicy`).  With an escalating
    strategy, DUEs route through the checkpointed recovery layer and the
    run reports how many times it survived; with ``"raise"`` the first
    unrecovered DUE aborts the run (``result=None``), matching the
    historical surface.
    """
    from repro.protect.config import ProtectionConfig
    from repro.solvers.registry import get_method

    cfg = config if config is not None else ProtectionConfig.paper_default()
    if recovery is not None:
        cfg = cfg.replace(recovery=recovery)
    pmat = cfg.wrap_matrix(matrix)
    pristine = pmat.to_csr()
    engine = cfg.engine()

    state = {"iter": 0, "injected": 0}
    injection_iters: list[int] = []

    def _between_iterations() -> None:
        changed = 0
        events = process.sample_region(pmat)
        for region, spec in events:
            changed += inject_into_matrix(pmat, region, [spec])
        if events:
            # The SpMV consumes cached clean index views; drop them so
            # injected corruption is live in this iteration's compute.
            pmat.invalidate_clean_views()
        if vector_faults:
            for vec in engine.registered_vectors().values():
                changed += inject_into_vector(
                    vec, process.sample_vector(len(vec))
                )
        if changed:
            injection_iters.append(state["iter"])
        state["injected"] += changed
        state["iter"] += 1

    engine.add_iteration_hook(_between_iterations)

    runner = get_method(method)
    result = None
    dues = bounds_trips = 0
    try:
        result = runner.protected(
            pmat, b, x0, eps=eps, max_iters=max_iters,
            engine=engine, vector_scheme=cfg.vector_scheme,
        )
    except DetectedUncorrectableError:
        dues += 1
    except BoundsViolationError:
        bounds_trips += 1

    manager = engine.recovery
    recovered = 0
    strategy = "raise"
    if manager is not None:
        strategy = manager.strategy
        recovered = manager.stats.total_recoveries
        # Escalations (including the one that may have aborted the run)
        # plus transparent repairs are each one DUE detection; the
        # caught exception above was already counted by the manager.
        dues = manager.stats.dues + manager.stats.vector_repairs

    # Anything the checks and the recovery layer both missed shows up as
    # decoded matrix content that differs from pristine after the run's
    # mandatory sweep (vector state has no pristine reference — its
    # ground truth is the returned solution, which campaigns compare).
    silent = 0
    if result is not None:
        decoded = pmat.to_csr()
        if not (
            np.array_equal(decoded.values, pristine.values)
            and np.array_equal(decoded.colidx, pristine.colidx)
            and np.array_equal(decoded.rowptr, pristine.rowptr)
        ):
            silent = 1
    return FaultyRunReport(
        result=result,
        injected=state["injected"],
        corrected=engine.policy.stats.corrected,
        detected_uncorrectable=dues,
        bounds_trips=bounds_trips,
        silent_at_end=silent,
        injection_iterations=injection_iters,
        recovered=recovered,
        recovery=strategy,
    )


def faulty_cg_solve(
    matrix: ProtectedCSRMatrix,
    b: np.ndarray,
    process: PoissonProcess,
    *,
    eps: float = 1e-16,
    max_iters: int = 500,
    policy: CheckPolicy | None = None,
    on_due: str = "reencode",
) -> FaultyRunReport:
    """CG under a live fault process, with the paper's recovery options.

    Faults are injected between iterations; the policy decides how soon
    they are noticed.  ``on_due`` selects the recovery for uncorrectable
    detections: ``"reencode"`` (rebuild redundancy from a pristine copy
    and continue — the ABFT recovery story) or ``"abort"``.
    """
    if policy is None:
        policy = CheckPolicy(interval=1, correct=True)
    pristine = matrix.to_csr()
    n = matrix.n_rows
    injected = corrected0 = dues = bounds_trips = 0
    injection_iters: list[int] = []

    x = np.zeros(n)
    r = b.copy()
    p = r.copy()
    rr = float(np.dot(r, r))
    it = 0
    result = None
    policy.reset()
    while it < max_iters:
        events = process.sample_region(matrix)
        if events:
            injection_iters.append(it)
            for region, spec in events:
                injected += inject_into_matrix(matrix, region, [spec])
            # The SpMV consumes cached clean index views; drop them so the
            # injected corruption is live in this iteration's compute, as
            # the campaign semantics require.
            matrix.invalidate_clean_views()
        try:
            verify_matrix(matrix, policy)
            w = matrix.matvec_unchecked(p)
        except (DetectedUncorrectableError, BoundsViolationError) as exc:
            if isinstance(exc, BoundsViolationError):
                bounds_trips += 1
            else:
                dues += 1
            if on_due == "abort":
                break
            matrix.reencode_from(pristine)
            continue  # retry the iteration on repaired data
        pw = float(np.dot(p, w))
        if pw == 0.0:
            break
        alpha = rr / pw
        x += alpha * p
        r -= alpha * w
        rr_new = float(np.dot(r, r))
        it += 1
        if rr_new < eps:
            result = SolverResult(
                x=x, iterations=it, converged=True,
                residual_norms=[float(np.sqrt(rr_new))],
            )
            break
        p = r + (rr_new / rr) * p
        rr = rr_new
    corrected0 = policy.stats.corrected

    # Mandatory end-of-step sweep: anything still lurking is found here.
    silent = 0
    try:
        verify_matrix(matrix, policy, force=True)
    except DetectedUncorrectableError:
        dues += 1
        matrix.reencode_from(pristine)
    decoded = matrix.to_csr()
    if not (
        np.array_equal(decoded.values, pristine.values)
        and np.array_equal(decoded.colidx, pristine.colidx)
        and np.array_equal(decoded.rowptr, pristine.rowptr)
    ):
        silent = 1
    return FaultyRunReport(
        result=result,
        injected=injected,
        corrected=policy.stats.corrected,
        detected_uncorrectable=dues,
        bounds_trips=bounds_trips,
        silent_at_end=silent,
        injection_iterations=injection_iters,
    )


