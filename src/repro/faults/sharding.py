"""Sharded parallel campaign execution: minutes instead of hours.

Fault-injection campaigns are embarrassingly parallel — every trial is
independent — but determinism must survive the parallelism: a campaign
must produce *bitwise-identical* merged counts whether it runs on 1
worker or 16.  The shard plan gets that by decomposing the trial count
into fixed-size shards first (the decomposition depends only on
``n_trials``, ``shard_size`` and ``seed``, never on the worker count)
and deriving each shard's RNG from its own
:func:`repro.sweeps.executor.spawn_streams` child.  Shards then run as
tasks on the shared sweep executor's spawn pool (spawn, not fork: BLAS
thread pools and fork do not mix), stream one JSONL record each as they
finish, and merge by summing counts.

    spec = CampaignTask("matrix", dict(matrix=A, element_scheme="sed", ...))
    result = run_sharded_campaign(spec, n_trials=200, workers=4,
                                  out="campaign.jsonl")

``python -m repro.faults.campaign`` is the CLI wrapper.  This module
keeps only what is campaign-*specific* — the shard plan and the
commutative count merge; pool scheduling and streaming live in
:mod:`repro.sweeps.executor`, shared with every sweep grid.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np

from repro.errors import ConfigurationError, Outcome
from repro.faults.campaign import (
    CampaignResult,
    run_matrix_campaign,
    run_poisson_campaign,
    run_shard_death_campaign,
    run_solver_campaign,
    run_vector_campaign,
)
from repro.sweeps.executor import Task, run_tasks, spawn_streams

#: Campaign kind → runner.  Every runner accepts ``n_trials`` and a
#: ``seed`` that may be a SeedSequence; everything else rides in
#: :attr:`CampaignTask.params`.  The ``shard-death`` kind nests its own
#: process fan-out (each trial is a whole distributed solve), which the
#: shared executor's non-daemonic pool workers allow.
CAMPAIGN_KINDS = {
    "matrix": run_matrix_campaign,
    "vector": run_vector_campaign,
    "solver": run_solver_campaign,
    "poisson": run_poisson_campaign,
    "shard-death": run_shard_death_campaign,
}


@dataclasses.dataclass(frozen=True)
class CampaignTask:
    """One campaign to shard: which runner, and its fixed parameters.

    ``params`` must be picklable (shards cross a process boundary) and
    must not contain ``n_trials`` or ``seed`` — the executor owns both.
    """

    kind: str
    params: dict

    def __post_init__(self):
        if self.kind not in CAMPAIGN_KINDS:
            raise ConfigurationError(
                f"unknown campaign kind {self.kind!r}; "
                f"choose from {sorted(CAMPAIGN_KINDS)}"
            )
        overlap = {"n_trials", "seed"} & set(self.params)
        if overlap:
            raise ConfigurationError(
                f"{sorted(overlap)} belong to the executor, not CampaignTask.params"
            )


@dataclasses.dataclass(frozen=True)
class Shard:
    """One unit of campaign work: a trial slice with its own RNG stream."""

    index: int
    n_trials: int
    seed: np.random.SeedSequence


def plan_shards(
    n_trials: int, seed: int = 0, shard_size: int = 50
) -> list[Shard]:
    """Deterministic shard decomposition, independent of worker count.

    :func:`~repro.sweeps.executor.spawn_streams` gives every shard a
    statistically independent stream whose derivation depends only on
    the shard index — the whole point: the same (n_trials, seed,
    shard_size) plan merges to bitwise-identical counts no matter how
    the shards are scheduled.
    """
    if n_trials < 1:
        raise ConfigurationError("n_trials must be >= 1")
    if shard_size < 1:
        raise ConfigurationError("shard_size must be >= 1")
    n_shards = -(-n_trials // shard_size)
    seeds = spawn_streams(seed, n_shards)
    return [
        Shard(
            index=i,
            n_trials=min(shard_size, n_trials - i * shard_size),
            seed=seeds[i],
        )
        for i in range(n_shards)
    ]


def run_shard(*, task: CampaignTask, shard_index: int, n_trials: int,
              seed=None) -> dict:
    """Executor task runner: one shard -> one JSON-serialisable record.

    Module-level with the shared executor's ``(*, seed, **params)``
    convention, so spawn-pool workers resolve it by name.
    """
    runner = CAMPAIGN_KINDS[task.kind]
    result = runner(**task.params, n_trials=n_trials, seed=seed)
    return shard_record(Shard(index=shard_index, n_trials=n_trials, seed=seed),
                        result)


def shard_record(shard: Shard, result: CampaignResult) -> dict:
    """The JSONL line for one finished shard."""
    return {
        "shard": shard.index,
        "n_trials": result.n_trials,
        "scheme": result.scheme,
        "region": result.region,
        "model": result.model,
        "counts": {outcome.value: n for outcome, n in result.counts.items()},
        "info": result.info,
    }


#: Info keys that are per-shard tallies (summed at merge); ``mean_*``
#: keys are trial-weighted averages; anything else is a campaign
#: parameter, identical across shards, taken from the first record.
_SUMMED_INFO_KEYS = {"recovered", "aborted", "injected", "checkpoints"}


def merge_records(records: list[dict]) -> CampaignResult:
    """Fold shard records into one :class:`CampaignResult`.

    Counts (and the tally info keys) are summed, ``mean_*`` info keys
    are trial-weighted averages, campaign parameters come from the
    first shard.  Record order does not matter — merging is
    commutative, which is what lets an unordered pool stream results as
    they finish.
    """
    if not records:
        raise ConfigurationError("cannot merge an empty record list")
    records = sorted(records, key=lambda r: r["shard"])
    total = sum(r["n_trials"] for r in records)
    counts: dict[Outcome, int] = {}
    for record in records:
        for key, n in record["counts"].items():
            outcome = Outcome(key)
            counts[outcome] = counts.get(outcome, 0) + n
    info: dict = {"shards": len(records)}
    for record in records:
        for key, value in record["info"].items():
            if key in _SUMMED_INFO_KEYS:
                info[key] = info.get(key, 0) + value
            elif key.startswith("mean_"):
                info[key] = info.get(key, 0.0) + value * record["n_trials"] / total
            else:
                info.setdefault(key, value)
    first = records[0]
    return CampaignResult(
        scheme=first["scheme"],
        region=first["region"],
        model=first["model"],
        n_trials=total,
        counts=counts,
        info=info,
    )


def merge_jsonl(path) -> CampaignResult:
    """Rebuild a merged :class:`CampaignResult` from a shard JSONL file."""
    with open(path) as fh:
        records = [json.loads(line) for line in fh if line.strip()]
    return merge_records(records)


def run_sharded_campaign(
    task: CampaignTask,
    n_trials: int,
    *,
    workers: int = 1,
    seed: int = 0,
    shard_size: int = 50,
    out=None,
) -> CampaignResult:
    """Run one campaign split into shards, serially or on a spawn pool.

    Parameters
    ----------
    workers:
        ``<= 1`` runs the shards in-process (same plan, same results —
        the determinism guarantee is exactly this equivalence); ``> 1``
        fans them out over a ``multiprocessing`` spawn pool, capped at
        the shard count.
    shard_size:
        Trials per shard.  Part of the deterministic plan: changing it
        changes each shard's RNG stream (and therefore the sampled
        faults), so compare runs only at a fixed shard size.
    out:
        Optional JSONL path; one record per shard is appended as it
        completes, so a killed campaign keeps its finished shards
        (:func:`merge_jsonl` rebuilds the partial result).
    """
    shards = plan_shards(n_trials, seed=seed, shard_size=shard_size)
    tasks = [
        Task(
            key=f"shard-{shard.index}",
            runner="repro.faults.sharding:run_shard",
            params={"task": task, "shard_index": shard.index,
                    "n_trials": shard.n_trials},
            seed=shard.seed,
        )
        for shard in shards
    ]
    sink = open(out, "w") if out is not None else None
    records: list[dict] = []

    def on_record(_key: str, record: dict) -> None:
        records.append(record)
        if sink is not None:
            sink.write(json.dumps(record) + "\n")
            sink.flush()

    try:
        run_tasks(tasks, workers=workers, on_record=on_record)
    finally:
        if sink is not None:
            sink.close()
    return merge_records(records)
