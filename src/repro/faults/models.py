"""Fault models: how many bits flip, and where, per event.

Soft errors (the paper's focus) flip bits without damaging hardware; hard
errors can present as stuck bits.  Each model turns an RNG into a list of
:class:`FaultSpec` records — (element index, bit offset) pairs plus a
stuck polarity for hard faults — that the injector applies to a target
array.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One bit-level fault: flip (or stick) bit ``bit`` of element ``element``."""

    element: int
    bit: int
    #: ``None`` = flip; ``0``/``1`` = stuck-at (hard fault).
    stuck: int | None = None


class FaultModel:
    """Base class; subclasses generate fault lists for an element space."""

    def sample(self, rng: np.random.Generator, n_elements: int, bits_per_element: int):
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


@dataclasses.dataclass
class SingleBitFlip(FaultModel):
    """The canonical soft error: exactly one flipped bit."""

    def sample(self, rng, n_elements, bits_per_element):
        return [
            FaultSpec(
                int(rng.integers(0, n_elements)),
                int(rng.integers(0, bits_per_element)),
            )
        ]

    name = "single-bit"


@dataclasses.dataclass
class MultiBitFlip(FaultModel):
    """``k`` independent flips, optionally confined near one element.

    ``spread`` limits how many elements after the first may be hit, which
    models multi-bit upsets striking one memory line; ``spread=None``
    sprays uniformly (distinct positions).
    """

    k: int = 2
    spread: int | None = None

    def sample(self, rng, n_elements, bits_per_element):
        if self.spread is None:
            total = n_elements * bits_per_element
            flat = rng.choice(total, size=min(self.k, total), replace=False)
            return [
                FaultSpec(int(f // bits_per_element), int(f % bits_per_element))
                for f in flat
            ]
        base = int(rng.integers(0, n_elements))
        hi = min(n_elements, base + self.spread + 1)
        span = (hi - base) * bits_per_element
        flat = rng.choice(span, size=min(self.k, span), replace=False)
        return [
            FaultSpec(base + int(f // bits_per_element), int(f % bits_per_element))
            for f in flat
        ]

    @property
    def name(self):
        where = "local" if self.spread is not None else "uniform"
        return f"{self.k}-bit-{where}"


@dataclasses.dataclass
class BurstError(FaultModel):
    """Contiguous burst of up to ``length`` bits with random inner pattern.

    Both endpoints are always flipped so the burst truly spans ``length``
    bits (the quantity CRC's burst guarantee is stated over).  The burst
    may cross element boundaries, as a physical line upset would.
    """

    length: int = 8

    def sample(self, rng, n_elements, bits_per_element):
        total = n_elements * bits_per_element
        length = min(self.length, total)
        start = int(rng.integers(0, total - length + 1))
        pattern = rng.integers(0, 2, size=length)
        pattern[0] = pattern[-1] = 1
        return [
            FaultSpec(int((start + k) // bits_per_element),
                      int((start + k) % bits_per_element))
            for k in range(length)
            if pattern[k]
        ]

    @property
    def name(self):
        return f"burst-{self.length}"


@dataclasses.dataclass
class StuckBits(FaultModel):
    """Hard fault: ``k`` bits stuck at a polarity (may be no-op flips)."""

    k: int = 1
    polarity: int = 1

    def sample(self, rng, n_elements, bits_per_element):
        total = n_elements * bits_per_element
        flat = rng.choice(total, size=min(self.k, total), replace=False)
        return [
            FaultSpec(int(f // bits_per_element), int(f % bits_per_element),
                      stuck=self.polarity)
            for f in flat
        ]

    @property
    def name(self):
        return f"stuck-{self.k}@{self.polarity}"


def build_model(spec: str) -> FaultModel:
    """Model spec string -> :class:`FaultModel`.

    The declarative form campaign CLIs and sweep cells share:
    ``single`` | ``double`` | ``multi<k>`` | ``burst<len>``.
    """
    if spec == "single":
        return SingleBitFlip()
    if spec == "double":
        return MultiBitFlip(k=2, spread=0)
    if spec.startswith("multi"):
        return MultiBitFlip(k=int(spec.removeprefix("multi")), spread=0)
    if spec.startswith("burst"):
        return BurstError(length=int(spec.removeprefix("burst")))
    raise ConfigurationError(
        f"unknown fault model spec {spec!r}; "
        "use single | double | multi<k> | burst<len>"
    )
