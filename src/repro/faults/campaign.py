"""Fault-injection campaigns with DCE/DUE/SDC outcome accounting.

A campaign repeatedly (1) restores a protected structure to a pristine
snapshot, (2) injects faults from a model, (3) runs the scheme's check
and (4) classifies what happened, using the decoded *data* (not the raw
stored bits) as ground truth — a flip confined to redundancy that the
check repairs or that never corrupts data still counts as handled.

Classification:

=============  ==========================================================
CORRECTED      check repaired everything; decoded data matches pristine
DETECTED       check reported an uncorrectable codeword (DUE)
MISCORRECTED   check claims success but decoded data differs (SDC!)
SILENT         checks passed yet the run trusted wrong data (SDC!)
RESIDUAL       checks missed it but the solver failed to converge — the
               residual exposed the corruption at the application level
CLEAN          check passed and data matches (fault was a stored no-op)
BOUNDS         a range check caught the corruption before use
=============  ==========================================================

Campaigns are embarrassingly parallel; every runner here accepts
``seed`` as either an integer or a :class:`numpy.random.SeedSequence`,
which is what lets :mod:`repro.faults.sharding` split one campaign into
deterministic shards across a process pool (``python -m
repro.faults.campaign --workers N`` is the CLI for that).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csr.matrix import CSRMatrix
from repro.errors import (
    BoundsViolationError,
    DetectedUncorrectableError,
    Outcome,
)
from repro.faults.injector import Region, inject_into_matrix, inject_into_vector
from repro.faults.models import FaultModel
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.vector import ProtectedVector
from repro.solvers.registry import solve


@dataclasses.dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    scheme: str
    region: str
    model: str
    n_trials: int
    counts: dict[Outcome, int]
    info: dict = dataclasses.field(default_factory=dict)

    def rate(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.n_trials

    @property
    def sdc_rate(self) -> float:
        """Trials that ended up *trusting* wrong data (true SDC)."""
        return (
            self.counts.get(Outcome.SILENT, 0)
            + self.counts.get(Outcome.MISCORRECTED, 0)
        ) / self.n_trials

    @property
    def silent_converged_rate(self) -> float:
        """Converged-to-the-wrong-answer trials: the worst failure mode."""
        return self.counts.get(Outcome.SILENT, 0) / self.n_trials

    @property
    def residual_detected_rate(self) -> float:
        """Trials the scheme missed but the residual criterion caught.

        A diverging (or stalling) solve after an undetected flip is not
        silent corruption — no wrong answer was trusted — but it is not
        a scheme detection either; it gets its own rate so detection
        claims are not inflated by solver-side luck.
        """
        return self.counts.get(Outcome.RESIDUAL, 0) / self.n_trials

    @property
    def detection_rate(self) -> float:
        """Fraction of *data-corrupting* trials that did not go silent."""
        effective = self.n_trials - self.counts.get(Outcome.CLEAN, 0)
        if effective == 0:
            return 1.0
        noticed = (
            self.counts.get(Outcome.CORRECTED, 0)
            + self.counts.get(Outcome.DETECTED, 0)
            + self.counts.get(Outcome.BOUNDS, 0)
            + self.counts.get(Outcome.RESIDUAL, 0)
        )
        return noticed / effective

    def row(self) -> str:
        """One formatted line for campaign tables."""
        c = self.counts
        return (
            f"{self.scheme:>9}  {self.region:>7}  {self.model:>14}  "
            f"corrected={c.get(Outcome.CORRECTED, 0):>5}  "
            f"detected={c.get(Outcome.DETECTED, 0):>5}  "
            f"residual={c.get(Outcome.RESIDUAL, 0):>4}  "
            f"silent={c.get(Outcome.SILENT, 0) + c.get(Outcome.MISCORRECTED, 0):>5}  "
            f"clean={c.get(Outcome.CLEAN, 0):>5}  "
            f"SDC-rate={self.sdc_rate:.4f}"
        )


def _tally(outcomes) -> dict[Outcome, int]:
    counts: dict[Outcome, int] = {}
    for outcome in outcomes:
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


# ---------------------------------------------------------------------------
def run_matrix_campaign(
    matrix: CSRMatrix,
    element_scheme: str,
    rowptr_scheme: str,
    region: Region,
    model: FaultModel,
    n_trials: int = 200,
    seed: int | np.random.SeedSequence = 0,
    correct: bool = True,
) -> CampaignResult:
    """Inject into one region of a protected matrix, n_trials times."""
    rng = np.random.default_rng(seed)
    pmat = ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
    snap_values = pmat.values.copy()
    snap_colidx = pmat.colidx.copy()
    snap_rowptr = pmat.rowptr.copy()
    pristine_colidx = pmat.elements.colidx_clean().copy()
    pristine_rowptr = pmat.rowptr_protected.clean().copy()

    if region is Region.VALUES:
        n_elements = pmat.nnz
    elif region is Region.COLIDX:
        n_elements = pmat.nnz
    else:
        n_elements = pmat.rowptr.size

    outcomes = []
    for _ in range(n_trials):
        np.copyto(pmat.values, snap_values)
        np.copyto(pmat.colidx, snap_colidx)
        np.copyto(pmat.rowptr, snap_rowptr)
        faults = model.sample(rng, n_elements, region.bits_per_element)
        inject_into_matrix(pmat, region, faults)
        reports = pmat.check_all(correct=correct)
        data_ok = (
            np.array_equal(pmat.values, snap_values)
            and np.array_equal(pmat.elements.colidx_clean(), pristine_colidx)
            and np.array_equal(pmat.rowptr_protected.clean(), pristine_rowptr)
        )
        outcomes.append(_classify(reports.values(), data_ok))
    return CampaignResult(
        scheme=f"{element_scheme}+{rowptr_scheme}",
        region=region.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
    )


def run_vector_campaign(
    values: np.ndarray,
    scheme: str,
    model: FaultModel,
    n_trials: int = 200,
    seed: int | np.random.SeedSequence = 0,
    correct: bool = True,
) -> CampaignResult:
    """Inject into a protected vector, n_trials times."""
    rng = np.random.default_rng(seed)
    vec = ProtectedVector(values, scheme)
    snap = vec.raw.copy()
    pristine = vec.values().copy()
    outcomes = []
    for _ in range(n_trials):
        np.copyto(vec.raw, snap)
        faults = model.sample(rng, len(vec), 64)
        inject_into_vector(vec, faults)
        report = vec.check(correct=correct)
        data_ok = np.array_equal(vec.values(), pristine)
        outcomes.append(_classify([report], data_ok))
    return CampaignResult(
        scheme=scheme,
        region=Region.VECTOR.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
    )


def _classify(reports, data_ok: bool, converged: bool | None = None) -> Outcome:
    """Outcome of one trial from its check reports and ground truth.

    ``converged`` is the application-level signal solver campaigns add:
    when the checks missed corruption (no DUE, no correction) but the
    solve failed to converge, the residual criterion exposed the damage
    — that is :attr:`Outcome.RESIDUAL`, not SILENT, because no wrong
    answer was ever trusted.  Structure-only campaigns pass ``None``.
    """
    n_uncorrectable = sum(r.n_uncorrectable for r in reports)
    n_corrected = sum(r.n_corrected for r in reports)
    if n_uncorrectable:
        return Outcome.DETECTED
    if data_ok:
        return Outcome.CORRECTED if n_corrected else Outcome.CLEAN
    if converged is not None and not converged:
        return Outcome.RESIDUAL
    return Outcome.MISCORRECTED if n_corrected else Outcome.SILENT


# ---------------------------------------------------------------------------
def _recovery_events(info: dict) -> int:
    """In-solve recoveries a solver result reports (0 without recovery).

    The count itself is defined once, by
    :attr:`repro.recover.manager.RecoveryStats.total_recoveries`.
    """
    return (info.get("recovery") or {}).get("recoveries", 0)


def _classify_solve(result, solution_ok: bool) -> Outcome:
    """Outcome of a completed solve against the reference solution."""
    if not result.converged and not solution_ok:
        return Outcome.RESIDUAL
    if result.info.get("corrected", 0):
        return Outcome.CORRECTED if solution_ok else Outcome.MISCORRECTED
    return Outcome.CLEAN if solution_ok else Outcome.SILENT


def run_solver_campaign(
    matrix: CSRMatrix,
    b: np.ndarray,
    element_scheme: str = "secded64",
    rowptr_scheme: str = "secded64",
    region: Region = Region.VALUES,
    model: FaultModel | None = None,
    n_trials: int = 50,
    seed: int | np.random.SeedSequence = 0,
    eps: float = 1e-20,
    method: str = "cg",
    max_iters: int = 10_000,
    recovery=None,
    reference_x: np.ndarray | None = None,
) -> CampaignResult:
    """End-to-end: corrupt the matrix, then run a fully protected solve.

    ``reference_x`` is the fault-free solution to classify against;
    ``None`` computes it here.  Sharded callers pass it through
    ``CampaignTask.params`` so each shard does not redo the identical
    clean solve.

    Method-parametric via the solver registry (``method`` accepts any
    registered name — cg, ppcg, jacobi, chebyshev).  Demonstrates the
    paper's recovery story at two granularities:

    * without ``recovery`` (or with ``"raise"``), an uncorrectable
      detection aborts the solve; the application re-encodes from
      pristine data and redoes it — recovery at *solve* granularity,
      counted in ``info["recovered"]``;
    * with ``recovery="rollback"`` / ``"repopulate"`` the campaign
      registers its own pristine copy as a *persistent* source with the
      recovery layer, so the DUE the up-front forced check raises is
      repaired in place and the solve itself survives — also counted in
      ``info["recovered"]``, with the trial classified DETECTED (the
      DUE was seen and handled).  Faults that strike *mid-solve* (the
      :func:`run_poisson_campaign` scenario) recover the same way from
      the toolkit's own post-verification snapshot.

    A solve that completes with a wrong answer is split by convergence:
    converged-wrong is SILENT/MISCORRECTED (true SDC — the wrong answer
    was trusted), while a non-converged solve is RESIDUAL (the
    application-level criterion exposed the damage).
    """
    from repro.faults.models import SingleBitFlip

    model = model or SingleBitFlip()
    rng = np.random.default_rng(seed)
    config = ProtectionConfig(
        element_scheme=element_scheme, rowptr_scheme=rowptr_scheme,
        vector_scheme=None, interval=1, correct=True, recovery=recovery,
    )

    escalates = config.recovery is not None and config.recovery.escalates

    def run_protected(pmat, source=None):
        if not escalates or source is None:
            return solve(pmat, b, method=method, protection=config,
                         eps=eps, max_iters=max_iters)
        # Recovery armed: give the layer the campaign's pristine copy as
        # a persistent source, so even corruption injected *before* the
        # solve (which the up-front forced check detects) is repaired
        # in-solve instead of unwinding.
        from repro.solvers.registry import get_method

        engine = config.engine()
        engine.recovery.store.put_matrix_source(pmat, source, persistent=True)
        return get_method(method).protected(
            pmat, b, engine=engine, vector_scheme=config.vector_scheme,
            eps=eps, max_iters=max_iters,
        )

    if reference_x is None:
        reference_x = run_protected(
            ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
        ).x
    outcomes = []
    recovered = 0
    for _ in range(n_trials):
        pmat = ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
        pristine = pmat.to_csr() if escalates else None
        n_elements = pmat.nnz if region is not Region.ROWPTR else pmat.rowptr.size
        faults = model.sample(rng, n_elements, region.bits_per_element)
        inject_into_matrix(pmat, region, faults)
        try:
            result = run_protected(pmat, pristine)
            solution_ok = bool(
                np.allclose(result.x, reference_x, rtol=1e-8, atol=1e-10)
            )
            if _recovery_events(result.info) and solution_ok:
                # The DUE was detected and survived in-solve.
                recovered += 1
                outcomes.append(Outcome.DETECTED)
            else:
                outcomes.append(_classify_solve(result, solution_ok))
        except DetectedUncorrectableError:
            outcomes.append(Outcome.DETECTED)
            # ABFT recovery at solve granularity: rebuild the operator
            # and redo the solve (no checkpoint/restart from disk).
            retry = run_protected(
                ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
            )
            if retry.converged:
                recovered += 1
        except BoundsViolationError:
            outcomes.append(Outcome.BOUNDS)
    return CampaignResult(
        scheme=f"{element_scheme}+{rowptr_scheme}",
        region=region.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
        info={"recovered": recovered, "method": method,
              "recovery": getattr(config.recovery, "strategy", "raise")},
    )


# ---------------------------------------------------------------------------
def run_poisson_campaign(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    rate: float = 1e-6,
    method: str = "cg",
    element_scheme: str | None = "secded64",
    rowptr_scheme: str | None = "secded64",
    vector_scheme: str | None = None,
    interval: int = 1,
    recovery=None,
    n_trials: int = 20,
    seed: int | np.random.SeedSequence = 0,
    eps: float = 1e-20,
    max_iters: int = 2_000,
    vector_faults: bool = True,
    reference_x: np.ndarray | None = None,
) -> CampaignResult:
    """Time-to-solution under a live Poisson fault process, per trial.

    ``reference_x`` is the fault-free solution to classify against;
    ``None`` computes it here.  Sharded callers pass it through
    ``CampaignTask.params`` so each shard does not redo the identical
    clean solve.

    The end-to-end resilience measurement the recovery layer exists for:
    every trial runs a full protected solve with upsets injected between
    iterations (:func:`repro.faults.process.faulty_solve`), classifies
    the outcome against the fault-free reference solution, and records
    wall time — so the solver × scheme × recovery-strategy matrix can be
    compared on *time-to-correct-solution under faults*, not just
    detection rates.

    ``info`` carries ``recovered`` (trials that survived ≥ 1 DUE
    in-solve), ``aborted`` (trials the first unrecovered DUE killed),
    ``injected`` (total upsets that actually changed memory) and
    ``mean_time`` (seconds per trial, shard-weighted when merged).
    """
    import time

    from repro.faults.process import PoissonProcess, faulty_solve

    rng = np.random.default_rng(seed)
    config = ProtectionConfig(
        element_scheme=element_scheme, rowptr_scheme=rowptr_scheme,
        vector_scheme=vector_scheme, interval=interval,
        correct=interval <= 1, recovery=recovery,
    )
    if reference_x is None:
        reference_x = solve(matrix, b, method=method, eps=eps,
                            max_iters=max_iters).x
    outcomes = []
    recovered = aborted = injected = 0
    t_total = 0.0
    for _ in range(n_trials):
        process = PoissonProcess(
            rate, rng=np.random.default_rng(rng.integers(0, 2**63 - 1))
        )
        t0 = time.perf_counter()
        report = faulty_solve(
            matrix, b, process, method=method, config=config,
            eps=eps, max_iters=max_iters, vector_faults=vector_faults,
        )
        t_total += time.perf_counter() - t0
        injected += report.injected
        if report.result is None:
            aborted += 1
            outcomes.append(Outcome.DETECTED)
            continue
        if report.recovered:
            # "Survived >= 1 DUE in-solve" — counted regardless of how
            # the trial classifies, so the survival column matches its
            # definition even for runs that then stalled or went wrong.
            recovered += 1
        solution_ok = bool(
            np.allclose(report.result.x, reference_x, rtol=1e-6, atol=1e-9)
        )
        if report.silent_at_end or (report.result.converged and not solution_ok):
            outcomes.append(Outcome.SILENT)
        elif not report.result.converged:
            outcomes.append(Outcome.RESIDUAL)
        elif report.recovered:
            outcomes.append(Outcome.DETECTED)
        elif report.corrected:
            outcomes.append(Outcome.CORRECTED)
        else:
            outcomes.append(Outcome.CLEAN)
    scheme = "+".join(
        s if s is not None else "none"
        for s in (element_scheme, rowptr_scheme, vector_scheme)
    )
    return CampaignResult(
        scheme=scheme,
        region="live",
        model=f"poisson-{rate:.0e}",
        n_trials=n_trials,
        counts=_tally(outcomes),
        info={
            "method": method,
            "recovery": getattr(config.recovery, "strategy", "raise"),
            "rate": rate,
            "recovered": recovered,
            "aborted": aborted,
            "injected": injected,
            "mean_time": t_total / max(n_trials, 1),
        },
    )


# ---------------------------------------------------------------------------
def run_shard_death_campaign(
    matrix: CSRMatrix,
    b: np.ndarray,
    *,
    mtbf: float = 8.0,
    n_shards: int = 2,
    method: str = "cg",
    element_scheme: str | None = "secded64",
    rowptr_scheme: str | None = "secded64",
    vector_scheme: str | None = None,
    interval: int = 4,
    recovery=None,
    n_trials: int = 5,
    seed: int | np.random.SeedSequence = 0,
    eps: float = 1e-20,
    max_iters: int = 2_000,
    reference_x: np.ndarray | None = None,
) -> CampaignResult:
    """Time-to-solution and recovery rate under whole-shard process loss.

    The fault model the bit-flip injector cannot express: each trial
    runs one *distributed* solve (:func:`repro.dist.solve.distributed_solve`,
    ``n_shards`` worker processes, per-shard protection domains) with a
    kill plan sampled from the trial's RNG stream — inter-death gaps are
    geometric with mean ``mtbf`` iterations, the victim shard uniform —
    and the coordinator's :class:`~repro.recover.policy.RecoveryPolicy`
    must respawn and re-seed the lost shards for the solve to finish.

    Sampling is capped at ``max_retries + 1`` death events per trial
    (one past the respawn budget: anything further could never change
    the outcome), which keeps the plan finite without coupling it to the
    solve's unknown iteration count.

    Classification: a trial with no death that landed on the reference
    solution is CLEAN; deaths survived to a correct solution are
    DETECTED with ``info["recovered"]`` incremented (process loss is
    always "seen" — there is nothing silent about a dead worker);
    :class:`~repro.errors.ShardDeathError` (``"raise"`` policy or
    exhausted budget) counts DETECTED + ``info["aborted"]``; a wrong
    answer splits SILENT/RESIDUAL by convergence exactly as the other
    solve campaigns do.  ``info["injected"]`` totals the deaths actually
    delivered, so the merged record reports a recovery rate as
    ``recovered`` vs ``aborted`` over ``injected`` events —
    bitwise-identically for any worker count, since the kill plans
    derive from the sharded campaign's per-trial streams.
    """
    import time

    from repro.dist.solve import distributed_solve
    from repro.errors import ShardDeathError
    from repro.recover.policy import RecoveryPolicy

    rng = np.random.default_rng(seed)
    if mtbf < 1.0:
        from repro.errors import ConfigurationError

        raise ConfigurationError("mtbf must be >= 1 iteration")
    recovery = RecoveryPolicy.coerce(recovery)
    config = ProtectionConfig(
        element_scheme=element_scheme, rowptr_scheme=rowptr_scheme,
        vector_scheme=vector_scheme, interval=interval,
        correct=interval <= 1, recovery=recovery,
    )
    if reference_x is None:
        reference_x = solve(matrix, b, method=method, eps=eps,
                            max_iters=max_iters).x
    max_kills = (recovery.max_retries if recovery is not None else 0) + 1
    outcomes = []
    recovered = aborted = injected = checkpoints = 0
    t_total = 0.0
    iters_total = 0
    executed_total = 0
    for _ in range(n_trials):
        kill_plan = []
        t = 0
        for _kill in range(max_kills):
            t += int(rng.geometric(1.0 / mtbf))
            kill_plan.append((t, int(rng.integers(n_shards))))
        t0 = time.perf_counter()
        try:
            result = distributed_solve(
                matrix, b, n_shards=n_shards, method=method,
                protection=config, eps=eps, max_iters=max_iters,
                kill_plan=kill_plan,
            )
        except ShardDeathError:
            t_total += time.perf_counter() - t0
            # Every sampled death up to the fatal one was delivered: the
            # budget spends one respawn per death, so an abort means
            # max_retries survived kills plus the fatal one ("raise" and
            # no-policy solves die on the first).
            escalates = recovery is not None and recovery.escalates
            injected += (recovery.max_retries + 1) if escalates else 1
            aborted += 1
            outcomes.append(Outcome.DETECTED)
            continue
        t_total += time.perf_counter() - t0
        iters_total += result.iterations
        dist_stats = result.info["distributed"]
        executed_total += dist_stats.get("iters_executed", result.iterations)
        checkpoints += dist_stats.get("checkpoints", 0)
        deaths = dist_stats["deaths"]
        injected += deaths
        solution_ok = bool(
            np.allclose(result.x, reference_x, rtol=1e-6, atol=1e-9)
        )
        if not solution_ok:
            outcomes.append(
                Outcome.SILENT if result.converged else Outcome.RESIDUAL
            )
        elif deaths:
            recovered += 1
            outcomes.append(Outcome.DETECTED)
        else:
            outcomes.append(Outcome.CLEAN)
    scheme = "+".join(
        s if s is not None else "none"
        for s in (element_scheme, rowptr_scheme, vector_scheme)
    )
    return CampaignResult(
        scheme=scheme,
        region="process",
        model=f"shard-death-{mtbf:g}",
        n_trials=n_trials,
        counts=_tally(outcomes),
        info={
            "method": method,
            "recovery": getattr(config.recovery, "strategy", "raise"),
            "mtbf": mtbf,
            "n_shards": n_shards,
            "recovered": recovered,
            "aborted": aborted,
            "injected": injected,
            "checkpoints": checkpoints,
            "mean_time": t_total / max(n_trials, 1),
            "mean_iters": iters_total / max(n_trials, 1),
            # Update rounds actually executed, replays included — the
            # deterministic time-to-solution measure (wall time folds in
            # process-spawn noise at smoke sizes).
            "mean_iters_executed": executed_total / max(n_trials, 1),
        },
    )


def compare_shard_death_recoveries(
    matrix: CSRMatrix,
    b: np.ndarray,
    strategies,
    *,
    mtbf: float = 8.0,
    n_shards: int = 2,
    erasure_shards: int = 1,
    max_retries: int = 3,
    n_trials: int = 5,
    seed: int = 0,
    workers: int = 1,
    shard_size: int = 50,
    **kwargs,
) -> list[CampaignResult]:
    """Run the shard-death campaign once per recovery strategy.

    Every strategy sees the *same kill plans*: the plans derive from the
    campaign's per-trial RNG streams, which depend only on the campaign
    seed and ``max_retries`` (the sampling cap) — both held fixed here —
    so the comparison isolates the recovery mechanism.  Returns one
    :class:`CampaignResult` per strategy, in the given order; render
    them with :func:`render_recovery_comparison`.
    """
    from repro.faults.sharding import CampaignTask, run_sharded_campaign
    from repro.recover.policy import RecoveryPolicy

    results = []
    for strategy in strategies:
        recovery = RecoveryPolicy(
            strategy=strategy, max_retries=max_retries,
            erasure_shards=erasure_shards,
        )
        task = CampaignTask("shard-death", dict(
            matrix=matrix, b=b, mtbf=mtbf, n_shards=n_shards,
            recovery=recovery, **kwargs,
        ))
        results.append(run_sharded_campaign(
            task, n_trials, workers=workers, seed=seed,
            shard_size=shard_size,
        ))
    return results


def render_recovery_comparison(results) -> str:
    """The time-to-solution table of a shard-death strategy comparison.

    One row per strategy: survival tallies, mean wall time per trial,
    converged iteration count, *executed* update rounds (replays
    included — rollback pays its window here, erasure does not) and
    coordinator checkpoints taken (zero under erasure, by design).
    """
    header = (f"{'strategy':12s}{'recovered':>10s}{'aborted':>9s}"
              f"{'injected':>10s}{'mean_time':>11s}{'mean_iters':>12s}"
              f"{'iters_exec':>12s}{'checkpoints':>13s}")
    lines = [header]
    for result in results:
        info = result.info
        lines.append(
            f"{info['recovery']:12s}{info['recovered']:>10d}"
            f"{info['aborted']:>9d}{info['injected']:>10d}"
            f"{info['mean_time']:>10.3f}s{info['mean_iters']:>12.1f}"
            f"{info['mean_iters_executed']:>12.1f}"
            f"{info.get('checkpoints', 0):>13d}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI: python -m repro.faults.campaign --kind solver --workers 4 --out x.jsonl
def _build_model(name: str):
    """Model spec → FaultModel: single, double, multi<k>, burst<len>."""
    from repro.errors import ConfigurationError
    from repro.faults.models import build_model

    try:
        return build_model(name)
    except ConfigurationError as exc:
        raise SystemExit(str(exc)) from exc


def build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.faults.campaign",
        description="Sharded fault-injection campaigns (deterministic "
                    "across worker counts; see README 'Resilience').",
    )
    parser.add_argument("--kind", default="matrix",
                        choices=sorted(["matrix", "vector", "solver", "poisson",
                                        "shard-death"]),
                        help="campaign family (default: matrix)")
    parser.add_argument("--trials", type=int, default=200)
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size; 1 runs shards in-process")
    parser.add_argument("--shard-size", type=int, default=50,
                        help="trials per shard (part of the deterministic plan)")
    parser.add_argument("--out", default=None,
                        help="stream per-shard JSONL records to this file")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--grid", type=int, default=16,
                        help="five-point operator cells per side")
    parser.add_argument("--scheme", default="secded64",
                        help="element scheme (and vector scheme for --kind vector)")
    parser.add_argument("--rowptr-scheme", default=None,
                        help="row-pointer scheme (default: same as --scheme)")
    parser.add_argument("--region", default="values",
                        choices=["values", "colidx", "rowptr"])
    parser.add_argument("--model", default="single",
                        help="single | double | multi<k> | burst<len>")
    parser.add_argument("--method", default="cg",
                        help="solver method for --kind solver/poisson")
    parser.add_argument("--recovery", default=None,
                        choices=["raise", "repopulate", "rollback", "erasure"],
                        help="DUE recovery strategy for --kind solver/poisson; "
                             "shard-death response for --kind shard-death "
                             "(erasure needs the distributed layout)")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="per-solve recovery budget (with --recovery)")
    parser.add_argument("--erasure-shards", type=int, default=1,
                        help="checksum shards for --recovery erasure")
    parser.add_argument("--compare-recoveries", nargs="+", default=None,
                        metavar="STRATEGY",
                        help="--kind shard-death only: run the campaign once "
                             "per strategy on identical kill plans and print "
                             "a time-to-solution comparison table")
    parser.add_argument("--rate", type=float, default=1e-6,
                        help="per-bit per-iteration upset rate for --kind poisson")
    parser.add_argument("--interval", type=int, default=1,
                        help="check interval for --kind poisson/shard-death")
    parser.add_argument("--mtbf", type=float, default=8.0,
                        help="mean iterations between shard kills for "
                             "--kind shard-death")
    parser.add_argument("--shards", type=int, default=2,
                        help="worker shards per distributed solve for "
                             "--kind shard-death")
    return parser


def _build_task(args) -> "tuple":
    """(CampaignTask, n_trials) from parsed CLI arguments."""
    from repro.csr.build import five_point_operator
    from repro.faults.sharding import CampaignTask

    rng = np.random.default_rng(args.seed)
    shape = (args.grid, args.grid)
    matrix = five_point_operator(
        args.grid, args.grid,
        rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3,
    )
    rowptr_scheme = args.rowptr_scheme or args.scheme
    recovery = None
    if args.recovery is not None:
        from repro.recover import RecoveryPolicy

        recovery = RecoveryPolicy(
            strategy=args.recovery, max_retries=args.max_retries,
            erasure_shards=args.erasure_shards,
        )
    if args.kind == "matrix":
        params = dict(
            matrix=matrix, element_scheme=args.scheme,
            rowptr_scheme=rowptr_scheme, region=Region(args.region),
            model=_build_model(args.model),
        )
    elif args.kind == "vector":
        params = dict(
            values=rng.standard_normal(matrix.n_rows), scheme=args.scheme,
            model=_build_model(args.model),
        )
    elif args.kind == "solver":
        b = rng.standard_normal(matrix.n_rows)
        eps, max_iters = 1e-20, 10_000
        # One clean reference solve in the parent; shards classify
        # against it instead of each redoing the identical solve.
        reference = solve(matrix, b, method=args.method, eps=eps,
                          max_iters=max_iters)
        params = dict(
            matrix=matrix, b=b,
            element_scheme=args.scheme, rowptr_scheme=rowptr_scheme,
            region=Region(args.region), model=_build_model(args.model),
            method=args.method, recovery=recovery,
            eps=eps, max_iters=max_iters, reference_x=reference.x,
        )
    elif args.kind == "shard-death":
        b = rng.standard_normal(matrix.n_rows)
        eps, max_iters = 1e-20, 2_000
        # One clean reference solve in the parent; shards classify
        # against it instead of each redoing the identical solve.
        reference = solve(matrix, b, method=args.method, eps=eps,
                          max_iters=max_iters)
        params = dict(
            matrix=matrix, b=b, mtbf=args.mtbf, n_shards=args.shards,
            method=args.method,
            element_scheme=args.scheme, rowptr_scheme=rowptr_scheme,
            vector_scheme=None, interval=args.interval,
            recovery=recovery or "rollback",
            eps=eps, max_iters=max_iters, reference_x=reference.x,
        )
    else:  # poisson
        b = rng.standard_normal(matrix.n_rows)
        eps, max_iters = 1e-20, 2_000
        # One clean reference solve in the parent; shards classify
        # against it instead of each redoing the identical solve.
        reference = solve(matrix, b, method=args.method, eps=eps,
                          max_iters=max_iters)
        params = dict(
            matrix=matrix, b=b, rate=args.rate, method=args.method,
            element_scheme=args.scheme, rowptr_scheme=rowptr_scheme,
            vector_scheme=None, interval=args.interval, recovery=recovery,
            eps=eps, max_iters=max_iters, reference_x=reference.x,
        )
    return CampaignTask(args.kind, params), args.trials


def main(argv=None) -> int:
    from repro.faults.sharding import run_sharded_campaign

    args = build_parser().parse_args(argv)
    if args.compare_recoveries is not None:
        if args.kind != "shard-death":
            raise SystemExit("--compare-recoveries needs --kind shard-death")
        return _run_comparison(args)
    task, n_trials = _build_task(args)
    result = run_sharded_campaign(
        task, n_trials, workers=args.workers, seed=args.seed,
        shard_size=args.shard_size, out=args.out,
    )
    print(result.row())
    extras = {k: v for k, v in result.info.items() if k != "shards"}
    print(f"  shards={result.info['shards']}  workers={args.workers}  "
          + "  ".join(f"{k}={v:.3g}" if isinstance(v, float) else f"{k}={v}"
                      for k, v in extras.items()))
    if args.out:
        print(f"  per-shard records: {args.out}")
    return 0


def _run_comparison(args) -> int:
    """``--compare-recoveries``: one campaign per strategy, one table."""
    from repro.csr.build import five_point_operator

    rng = np.random.default_rng(args.seed)
    shape = (args.grid, args.grid)
    matrix = five_point_operator(
        args.grid, args.grid,
        rng.uniform(0.5, 2.0, shape), rng.uniform(0.5, 2.0, shape), 0.3,
    )
    b = rng.standard_normal(matrix.n_rows)
    eps, max_iters = 1e-20, 2_000
    reference = solve(matrix, b, method=args.method, eps=eps,
                      max_iters=max_iters)
    results = compare_shard_death_recoveries(
        matrix, b, args.compare_recoveries,
        mtbf=args.mtbf, n_shards=args.shards,
        erasure_shards=args.erasure_shards, max_retries=args.max_retries,
        n_trials=args.trials, seed=args.seed, workers=args.workers,
        shard_size=args.shard_size,
        method=args.method, element_scheme=args.scheme,
        rowptr_scheme=args.rowptr_scheme or args.scheme,
        vector_scheme=None, interval=args.interval,
        eps=eps, max_iters=max_iters, reference_x=reference.x,
    )
    print(f"shard-death recovery comparison (mtbf {args.mtbf:g}, "
          f"{args.shards} shards, {args.trials} trials, "
          f"identical kill plans)")
    print(render_recovery_comparison(results))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke tests
    import sys

    sys.exit(main())
