"""Fault-injection campaigns with DCE/DUE/SDC outcome accounting.

A campaign repeatedly (1) restores a protected structure to a pristine
snapshot, (2) injects faults from a model, (3) runs the scheme's check
and (4) classifies what happened, using the decoded *data* (not the raw
stored bits) as ground truth — a flip confined to redundancy that the
check repairs or that never corrupts data still counts as handled.

Classification:

=============  ==========================================================
CORRECTED      check repaired everything; decoded data matches pristine
DETECTED       check reported an uncorrectable codeword (DUE)
MISCORRECTED   check claims success but decoded data differs (SDC!)
SILENT         check passed yet decoded data differs (SDC!)
CLEAN          check passed and data matches (fault was a stored no-op)
BOUNDS         a range check caught the corruption before use
=============  ==========================================================
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csr.matrix import CSRMatrix
from repro.errors import (
    BoundsViolationError,
    DetectedUncorrectableError,
    Outcome,
)
from repro.faults.injector import Region, inject_into_matrix, inject_into_vector
from repro.faults.models import FaultModel
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.vector import ProtectedVector
from repro.solvers.registry import solve


@dataclasses.dataclass
class CampaignResult:
    """Aggregated campaign statistics."""

    scheme: str
    region: str
    model: str
    n_trials: int
    counts: dict[Outcome, int]
    info: dict = dataclasses.field(default_factory=dict)

    def rate(self, outcome: Outcome) -> float:
        return self.counts.get(outcome, 0) / self.n_trials

    @property
    def sdc_rate(self) -> float:
        return (
            self.counts.get(Outcome.SILENT, 0)
            + self.counts.get(Outcome.MISCORRECTED, 0)
        ) / self.n_trials

    @property
    def detection_rate(self) -> float:
        """Fraction of *data-corrupting* trials the scheme noticed."""
        effective = self.n_trials - self.counts.get(Outcome.CLEAN, 0)
        if effective == 0:
            return 1.0
        noticed = (
            self.counts.get(Outcome.CORRECTED, 0)
            + self.counts.get(Outcome.DETECTED, 0)
            + self.counts.get(Outcome.BOUNDS, 0)
        )
        return noticed / effective

    def row(self) -> str:
        """One formatted line for campaign tables."""
        c = self.counts
        return (
            f"{self.scheme:>9}  {self.region:>7}  {self.model:>14}  "
            f"corrected={c.get(Outcome.CORRECTED, 0):>5}  "
            f"detected={c.get(Outcome.DETECTED, 0):>5}  "
            f"silent={c.get(Outcome.SILENT, 0) + c.get(Outcome.MISCORRECTED, 0):>5}  "
            f"clean={c.get(Outcome.CLEAN, 0):>5}  "
            f"SDC-rate={self.sdc_rate:.4f}"
        )


def _tally(outcomes) -> dict[Outcome, int]:
    counts: dict[Outcome, int] = {}
    for outcome in outcomes:
        counts[outcome] = counts.get(outcome, 0) + 1
    return counts


# ---------------------------------------------------------------------------
def run_matrix_campaign(
    matrix: CSRMatrix,
    element_scheme: str,
    rowptr_scheme: str,
    region: Region,
    model: FaultModel,
    n_trials: int = 200,
    seed: int = 0,
    correct: bool = True,
) -> CampaignResult:
    """Inject into one region of a protected matrix, n_trials times."""
    rng = np.random.default_rng(seed)
    pmat = ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
    snap_values = pmat.values.copy()
    snap_colidx = pmat.colidx.copy()
    snap_rowptr = pmat.rowptr.copy()
    pristine_colidx = pmat.elements.colidx_clean().copy()
    pristine_rowptr = pmat.rowptr_protected.clean().copy()

    if region is Region.VALUES:
        n_elements = pmat.nnz
    elif region is Region.COLIDX:
        n_elements = pmat.nnz
    else:
        n_elements = pmat.rowptr.size

    outcomes = []
    for _ in range(n_trials):
        np.copyto(pmat.values, snap_values)
        np.copyto(pmat.colidx, snap_colidx)
        np.copyto(pmat.rowptr, snap_rowptr)
        faults = model.sample(rng, n_elements, region.bits_per_element)
        inject_into_matrix(pmat, region, faults)
        reports = pmat.check_all(correct=correct)
        data_ok = (
            np.array_equal(pmat.values, snap_values)
            and np.array_equal(pmat.elements.colidx_clean(), pristine_colidx)
            and np.array_equal(pmat.rowptr_protected.clean(), pristine_rowptr)
        )
        outcomes.append(_classify(reports.values(), data_ok))
    return CampaignResult(
        scheme=f"{element_scheme}+{rowptr_scheme}",
        region=region.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
    )


def run_vector_campaign(
    values: np.ndarray,
    scheme: str,
    model: FaultModel,
    n_trials: int = 200,
    seed: int = 0,
    correct: bool = True,
) -> CampaignResult:
    """Inject into a protected vector, n_trials times."""
    rng = np.random.default_rng(seed)
    vec = ProtectedVector(values, scheme)
    snap = vec.raw.copy()
    pristine = vec.values().copy()
    outcomes = []
    for _ in range(n_trials):
        np.copyto(vec.raw, snap)
        faults = model.sample(rng, len(vec), 64)
        inject_into_vector(vec, faults)
        report = vec.check(correct=correct)
        data_ok = np.array_equal(vec.values(), pristine)
        outcomes.append(_classify([report], data_ok))
    return CampaignResult(
        scheme=scheme,
        region=Region.VECTOR.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
    )


def _classify(reports, data_ok: bool) -> Outcome:
    n_uncorrectable = sum(r.n_uncorrectable for r in reports)
    n_corrected = sum(r.n_corrected for r in reports)
    if n_uncorrectable:
        return Outcome.DETECTED
    if n_corrected:
        return Outcome.CORRECTED if data_ok else Outcome.MISCORRECTED
    if data_ok:
        return Outcome.CLEAN
    return Outcome.SILENT


# ---------------------------------------------------------------------------
def run_solver_campaign(
    matrix: CSRMatrix,
    b: np.ndarray,
    element_scheme: str = "secded64",
    rowptr_scheme: str = "secded64",
    region: Region = Region.VALUES,
    model: FaultModel | None = None,
    n_trials: int = 50,
    seed: int = 0,
    eps: float = 1e-20,
    method: str = "cg",
    max_iters: int = 10_000,
) -> CampaignResult:
    """End-to-end: corrupt the matrix, then run a fully protected solve.

    Method-parametric via the solver registry (``method`` accepts any
    registered name — cg, ppcg, jacobi, chebyshev).  Demonstrates the
    paper's recovery story: correctable errors are fixed transparently
    mid-solve; uncorrectable ones raise, the application re-encodes from
    pristine data and *continues without checkpoint restart* (counted in
    ``info["recovered"]``).
    """
    from repro.faults.models import SingleBitFlip

    model = model or SingleBitFlip()
    rng = np.random.default_rng(seed)
    config = ProtectionConfig(
        element_scheme=element_scheme, rowptr_scheme=rowptr_scheme,
        vector_scheme=None, interval=1, correct=True,
    )

    def run_protected(pmat):
        return solve(pmat, b, method=method, protection=config,
                     eps=eps, max_iters=max_iters)

    reference = run_protected(ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme))
    outcomes = []
    recovered = 0
    for _ in range(n_trials):
        pmat = ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
        n_elements = pmat.nnz if region is not Region.ROWPTR else pmat.rowptr.size
        faults = model.sample(rng, n_elements, region.bits_per_element)
        inject_into_matrix(pmat, region, faults)
        try:
            result = run_protected(pmat)
            solution_ok = bool(
                np.allclose(result.x, reference.x, rtol=1e-8, atol=1e-10)
            )
            if result.info.get("corrected", 0):
                outcomes.append(
                    Outcome.CORRECTED if solution_ok else Outcome.MISCORRECTED
                )
            else:
                outcomes.append(Outcome.CLEAN if solution_ok else Outcome.SILENT)
        except DetectedUncorrectableError:
            outcomes.append(Outcome.DETECTED)
            # ABFT recovery: rebuild the operator and redo the solve.
            retry = run_protected(
                ProtectedCSRMatrix(matrix, element_scheme, rowptr_scheme)
            )
            if retry.converged:
                recovered += 1
        except BoundsViolationError:
            outcomes.append(Outcome.BOUNDS)
    return CampaignResult(
        scheme=f"{element_scheme}+{rowptr_scheme}",
        region=region.value,
        model=model.name,
        n_trials=n_trials,
        counts=_tally(outcomes),
        info={"recovered": recovered, "method": method},
    )
