"""Fault injection: bit-flip models, injectors and campaign machinery.

The paper's evaluation is overhead-focused but its claims rest on the
codes' guarantees (SED detects odd flips; SECDED corrects 1/detects 2;
CRC32C handles up to 5 within a HD-6 codeword).  This package provides
the harness that validates those guarantees empirically: pick a fault
model, spray flips into protected structures, classify every outcome as
corrected / detected / silent and aggregate campaign statistics —
serially, or sharded across a process pool
(:mod:`repro.faults.sharding`, ``python -m repro.faults.campaign``).

Exports resolve lazily (PEP 562) so ``python -m repro.faults.campaign``
does not double-import the campaign module through the package.
"""

_EXPORTS = {
    "PoissonProcess": "repro.faults.process",
    "FaultyRunReport": "repro.faults.process",
    "faulty_cg_solve": "repro.faults.process",
    "faulty_solve": "repro.faults.process",
    "FaultModel": "repro.faults.models",
    "SingleBitFlip": "repro.faults.models",
    "MultiBitFlip": "repro.faults.models",
    "BurstError": "repro.faults.models",
    "StuckBits": "repro.faults.models",
    "FaultSpec": "repro.faults.models",
    "Region": "repro.faults.injector",
    "inject_into_matrix": "repro.faults.injector",
    "inject_into_vector": "repro.faults.injector",
    "flip_array_bit": "repro.faults.injector",
    "CampaignResult": "repro.faults.campaign",
    "run_matrix_campaign": "repro.faults.campaign",
    "run_vector_campaign": "repro.faults.campaign",
    "run_solver_campaign": "repro.faults.campaign",
    "run_poisson_campaign": "repro.faults.campaign",
    "CampaignTask": "repro.faults.sharding",
    "Shard": "repro.faults.sharding",
    "plan_shards": "repro.faults.sharding",
    "run_sharded_campaign": "repro.faults.sharding",
    "merge_records": "repro.faults.sharding",
    "merge_jsonl": "repro.faults.sharding",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value  # cache for subsequent lookups
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
