"""Fault injection: bit-flip models, injectors and campaign machinery.

The paper's evaluation is overhead-focused but its claims rest on the
codes' guarantees (SED detects odd flips; SECDED corrects 1/detects 2;
CRC32C handles up to 5 within a HD-6 codeword).  This package provides
the harness that validates those guarantees empirically: pick a fault
model, spray flips into protected structures, classify every outcome as
corrected / detected / silent and aggregate campaign statistics.
"""

from repro.faults.models import (
    FaultModel,
    SingleBitFlip,
    MultiBitFlip,
    BurstError,
    StuckBits,
    FaultSpec,
)
from repro.faults.injector import (
    Region,
    inject_into_matrix,
    inject_into_vector,
    flip_array_bit,
)
from repro.faults.campaign import (
    CampaignResult,
    run_matrix_campaign,
    run_vector_campaign,
    run_solver_campaign,
)
from repro.faults.process import PoissonProcess, FaultyRunReport, faulty_cg_solve

__all__ = [
    "PoissonProcess",
    "FaultyRunReport",
    "faulty_cg_solve",
    "FaultModel",
    "SingleBitFlip",
    "MultiBitFlip",
    "BurstError",
    "StuckBits",
    "FaultSpec",
    "Region",
    "inject_into_matrix",
    "inject_into_vector",
    "flip_array_bit",
    "CampaignResult",
    "run_matrix_campaign",
    "run_vector_campaign",
    "run_solver_campaign",
]
