"""The roofline-style overhead model.

TeaLeaf is memory-bandwidth bound (the paper's premise), so a CG
iteration's base time is the bytes it moves divided by bandwidth.  ABFT
adds *compute* — the checks are fused into the kernels and touch no extra
memory (that is the whole point of zero-storage ABFT) — so the overhead
of a scheme is the check's op count divided by the platform's effective
throughput, relative to the memory-bound base time.

Per grid cell and CG iteration the kernels move:

* matrix: 5 elements x 12 B + 4 B row pointer   = 64 B
* vectors: SpMV gather ~8 B + ~12 dot/axpy sweeps x 8 B = 104 B

Overheads are size-independent ratios (both numerator and denominator
scale with n), matching the paper's use of a single 2048^2 deck.

Op-count mix per scheme (mask+popcount+compare instruction groups):

===========  =================  ===============  =================
scheme        per CSR element    per rowptr entry  per vector touch
===========  =================  ===============  =================
sed           4                  3                 3
secded64      28                 15                28
secded128     20                 10                17.5
crc32c        12 B @ crc rate    4 B @ crc rate    8 B @ crc rate
===========  =================  ===============  =================

(SECDED128 is cheaper per element than SECDED64 because one codeword
amortises over 2-4 elements, but wins no resiliency — the paper's
"no benefits of using SECDED128 over SECDED64" observation.)
"""

from __future__ import annotations

from repro.platforms.specs import PLATFORMS, PlatformSpec

#: Bytes moved per cell per CG iteration (base, unprotected).
BYTES_MATRIX = 64.0   # 5 x (8 + 4) + 4
BYTES_VECTORS = 104.0
BYTES_TOTAL = BYTES_MATRIX + BYTES_VECTORS

#: ABFT op counts per protected unit (see table in the module docstring).
OPS_ELEMENT = {"sed": 4.0, "secded64": 28.0, "secded128": 20.0}
OPS_ROWPTR = {"sed": 3.0, "secded64": 15.0, "secded128": 10.0}
OPS_VECTOR = {"sed": 3.0, "secded64": 28.0, "secded128": 17.5}

#: Bytes fed to CRC32C per cell for each region.
CRC_BYTES = {"elements": 60.0, "rowptr": 4.0, "vector": 8.0 * 12}

#: Range checks per cell (5 column indices + 1 row pointer entry).
RANGECHECK_OPS = 12.0

#: Vector elements touched per cell per iteration (reads + re-encoded writes).
VECTOR_TOUCHES = 8.0


def _spec(platform: str | PlatformSpec) -> PlatformSpec:
    if isinstance(platform, PlatformSpec):
        return platform
    return PLATFORMS[platform]


def _base_time_per_cell(spec: PlatformSpec) -> float:
    """Nanoseconds-per-cell-equivalent; only ratios matter."""
    return BYTES_TOTAL / spec.bw_gbs


def _check_time_per_cell(spec: PlatformSpec, region: str, scheme: str) -> float:
    """Cost of one full integrity pass over `region`, per cell."""
    if scheme == "none":
        return 0.0
    if region == "vector":
        fixed = VECTOR_TOUCHES * spec.vector_fixed_ops / spec.vector_ecc_gops
        if scheme == "crc32c":
            return fixed + CRC_BYTES[region] / spec.crc_gbps
        return fixed + VECTOR_TOUCHES * OPS_VECTOR[scheme] / spec.vector_ecc_gops
    if scheme == "crc32c":
        return CRC_BYTES[region] / spec.crc_gbps
    if region == "elements":
        return 5.0 * OPS_ELEMENT[scheme] / spec.ecc_gops
    if region == "rowptr":
        return 1.0 * OPS_ROWPTR[scheme] / spec.ecc_gops
    raise ValueError(f"unknown region {region!r}")


def rangecheck_floor(platform: str | PlatformSpec) -> float:
    """The fixed overhead of index range checks (interval > 1 floor)."""
    spec = _spec(platform)
    return (RANGECHECK_OPS / spec.rangecheck_gops) / _base_time_per_cell(spec)


def predict_overhead(
    platform: str | PlatformSpec,
    region: str,
    scheme: str,
    interval: int = 1,
) -> float:
    """Predicted runtime overhead fraction for one protection configuration.

    ``region`` is ``"elements"``, ``"rowptr"``, ``"vector"``, ``"matrix"``
    (= elements + rowptr) or ``"full"`` (= matrix + vector).  ``interval``
    spreads the full check cost over N accesses and adds the range-check
    floor on the skipped ones (§VI.A.2); it applies to the matrix regions
    only (vectors change every iteration and cannot defer checks).
    """
    spec = _spec(platform)
    base = _base_time_per_cell(spec)
    if region == "matrix":
        return predict_overhead(spec, "elements", scheme, interval) + predict_overhead(
            spec, "rowptr", scheme, interval
        )
    if region == "full":
        return predict_overhead(spec, "matrix", scheme, interval) + predict_overhead(
            spec, "vector", scheme, 1
        )
    t_check = _check_time_per_cell(spec, region, scheme)
    if region == "vector":
        return t_check / base
    if interval <= 1:
        return t_check / base
    # Deferred mode: 1/N of accesses pay the check, the rest pay range
    # checks; the per-region share of the floor is proportional to its
    # index count (5 of 6 checks guard the elements, 1 of 6 the rowptr).
    share = 5.0 / 6.0 if region == "elements" else 1.0 / 6.0
    floor = share * rangecheck_floor(spec)
    return t_check / base / interval + floor * (1.0 - 1.0 / interval)


def predict_interval_curve(
    platform: str | PlatformSpec,
    scheme: str,
    intervals=(1, 2, 4, 8, 16, 32, 64, 128),
) -> dict[int, float]:
    """Whole-matrix overhead vs check interval (Figs. 6-8 series)."""
    return {
        int(n): predict_overhead(platform, "matrix", scheme, int(n))
        for n in intervals
    }


def predict_engine_overhead(
    platform: str | PlatformSpec,
    scheme: str,
    interval: int = 16,
    stripes: int = 1,
    region: str = "full",
) -> float:
    """Predicted overhead for the deferred-verification *engine* schedule.

    Differs from :func:`predict_overhead`'s §VI.A.2 interval model in
    the three ways the engine differs from the paper:

    * **striping** — a due matrix check covers ``1/stripes`` of the
      region, so the amortised check cost is ``t_check / (interval *
      stripes)`` (full coverage still every ``interval * stripes``
      accesses);
    * **snapshot floor** — non-due accesses gather through a
      bounds-validated index snapshot instead of re-running the range
      check, so the floor is paid once per check window (``/ interval``)
      rather than on every skipped access;
    * **deferred vectors** — vector checks follow the solver-iteration
      interval and dirty-window write buffering amortises the re-encode
      the same way, so the per-iteration vector cost divides by the
      interval as well.
    """
    if interval < 1:
        raise ValueError("the engine schedule needs interval >= 1")
    if stripes < 1:
        raise ValueError("stripes must be >= 1")
    spec = _spec(platform)
    base = _base_time_per_cell(spec)
    if region == "full":
        return predict_engine_overhead(spec, scheme, interval, stripes, "matrix") + (
            _check_time_per_cell(spec, "vector", scheme) / base / interval
        )
    if region == "matrix":
        return predict_engine_overhead(
            spec, scheme, interval, stripes, "elements"
        ) + predict_engine_overhead(spec, scheme, interval, stripes, "rowptr")
    t_check = _check_time_per_cell(spec, region, scheme)
    share = 5.0 / 6.0 if region == "elements" else 1.0 / 6.0
    floor = share * rangecheck_floor(spec)
    return t_check / base / (interval * stripes) + floor / interval


def predict_engine_interval_curve(
    platform: str | PlatformSpec,
    scheme: str,
    intervals=(1, 2, 4, 8, 16, 32, 64, 128),
    stripes: int = 1,
) -> dict[int, float]:
    """Whole-matrix engine-schedule overhead vs interval (Figs. 6-8 overlay)."""
    return {
        int(n): predict_engine_overhead(platform, scheme, int(n), stripes, "matrix")
        for n in intervals
    }


def model_summary(platform: str | PlatformSpec) -> dict[str, float]:
    """Key predicted numbers for one platform (used in reports)."""
    spec = _spec(platform)
    out = {}
    for region in ("elements", "rowptr", "vector"):
        for scheme in ("sed", "secded64", "secded128", "crc32c"):
            out[f"{region}/{scheme}"] = predict_overhead(spec, region, scheme)
    out["floor"] = rangecheck_floor(spec)
    return out
