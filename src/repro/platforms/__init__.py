"""Analytic platform model (the cross-platform substitution).

We cannot run on the paper's five machines (Broadwell, ThunderX, K40,
GTX 1080 Ti, P100), so this package models them: a roofline-style cost
model whose per-platform parameters (memory bandwidth, effective ABFT
op throughput, CRC32C byte rate, range-check throughput) are calibrated
against every overhead number the paper's text states.  The model then
*predicts* all the bars/curves of Figs. 4-9 so their cross-platform shape
can be reproduced and compared; DESIGN.md §4 records the rationale.
"""

from repro.platforms.specs import PlatformSpec, PLATFORMS, PAPER_ANCHORS, Anchor
from repro.platforms.model import predict_overhead, predict_interval_curve
from repro.platforms.predict import (
    figure4_table,
    figure5_table,
    figure9_table,
    interval_figure,
    combined_full_protection,
)

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "PAPER_ANCHORS",
    "Anchor",
    "predict_overhead",
    "predict_interval_curve",
    "figure4_table",
    "figure5_table",
    "figure9_table",
    "interval_figure",
    "combined_full_protection",
]
