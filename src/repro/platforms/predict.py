"""Figure-shaped tables from the platform model (Figs. 4-9 cross-platform).

Each function returns the same rows/series the paper plots, as plain
dicts keyed like the figure legends, so the benchmark harness can print
paper-vs-model tables.
"""

from __future__ import annotations

from repro.platforms.model import (
    predict_engine_interval_curve,
    predict_engine_overhead,
    predict_interval_curve,
    predict_overhead,
)
from repro.platforms.specs import PLATFORMS

#: Scheme order used on the figures' x axes.
SCHEME_ORDER = ("sed", "secded64", "secded128", "crc32c")


def figure4_table() -> dict[str, dict[str, float]]:
    """Fig. 4: CSR-element protection overhead, platform x scheme."""
    return {
        key: {s: predict_overhead(key, "elements", s) for s in SCHEME_ORDER}
        for key in PLATFORMS
    }


def figure5_table() -> dict[str, dict[str, float]]:
    """Fig. 5: row-pointer protection overhead, platform x scheme."""
    return {
        key: {s: predict_overhead(key, "rowptr", s) for s in SCHEME_ORDER}
        for key in PLATFORMS
    }


def figure9_table() -> dict[str, dict[str, float]]:
    """Fig. 9: dense-vector protection overhead, platform x scheme."""
    return {
        key: {s: predict_overhead(key, "vector", s) for s in SCHEME_ORDER}
        for key in PLATFORMS
    }


def interval_figure(platform: str, scheme: str,
                    intervals=(1, 2, 4, 8, 16, 32, 64, 128)) -> dict[int, float]:
    """Figs. 6/7/8: whole-matrix overhead vs check interval."""
    return predict_interval_curve(platform, scheme, intervals)


def deferred_interval_figure(platform: str, scheme: str,
                             intervals=(1, 2, 4, 8, 16, 32, 64, 128),
                             stripes: int = 1) -> dict[int, float]:
    """Figs. 6/7/8 overlay: the *engine's* schedule on the same axes.

    Snapshot-validated non-due accesses and (optionally) striped due
    checks — see :func:`repro.platforms.model.predict_engine_overhead`.
    """
    return predict_engine_interval_curve(platform, scheme, intervals, stripes)


def combined_full_protection(platform: str, scheme: str = "secded64") -> float:
    """The paper's headline: full matrix + vectors, one scheme."""
    return predict_overhead(platform, "full", scheme)


def combined_full_protection_deferred(platform: str, scheme: str = "secded64",
                                      interval: int = 16,
                                      stripes: int = 1) -> float:
    """The engine's headline: full protection on the deferred schedule."""
    return predict_engine_overhead(platform, scheme, interval, stripes, "full")
