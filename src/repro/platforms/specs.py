"""Platform parameter tables and the paper's quoted overhead anchors.

Each :class:`PlatformSpec` carries *effective* rates, not datasheet
numbers: ``ecc_gops`` is the achieved throughput of the mask/popcount
ABFT instruction mix (which on the K40 collapses due to the
register-pressure/occupancy problem the paper describes), ``crc_gbps``
the achieved CRC32C byte rate (hardware-assisted on Broadwell/ThunderX
via the CRC32 instructions, software table lookups on GPUs), and
``vector_ecc_gops`` the rate for the dense-vector encode+check mix
(lower than the matrix path because every write re-encodes).

The values were fitted so the model lands on :data:`PAPER_ANCHORS` — the
complete list of overheads the paper's text states numerically.  Each
anchor records its provenance sentence.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class PlatformSpec:
    """Effective performance parameters of one evaluation platform."""

    name: str
    kind: str  # "cpu" | "gpu"
    #: Achieved memory bandwidth, GB/s (drives the memory-bound base time).
    bw_gbs: float
    #: Effective ABFT bit-op throughput for matrix protection, Gop/s.
    ecc_gops: float
    #: Effective ABFT throughput for dense-vector protection, Gop/s.
    vector_ecc_gops: float
    #: Achieved CRC32C throughput, GB/s.
    crc_gbps: float
    #: Range-check throughput (the §VI.A.2 floor), Gop/s.
    rangecheck_gops: float
    #: Fixed per-vector-touch mask/bookkeeping ops (dominates SED's cost
    #: on Pascal GPUs, keeping the paper's 4..32 % Fig. 9 range).
    vector_fixed_ops: float = 0.0
    #: True when CRC32C uses ISA support (Intel SSE4.2 / ARMv8 CRC).
    hw_crc32c: bool = False
    #: Hardware-ECC overhead fraction when togglable (K40's 8.1 %).
    hw_ecc_overhead: float | None = None


#: The paper's five platforms (§VII), parameters fitted to PAPER_ANCHORS.
PLATFORMS: dict[str, PlatformSpec] = {
    "broadwell": PlatformSpec(
        name="Intel Broadwell (2x E5-2695 v4)", kind="cpu",
        bw_gbs=130.0, ecc_gops=255.0, vector_ecc_gops=110.0,
        crc_gbps=165.0, rangecheck_gops=232.0, hw_crc32c=True,
    ),
    "thunderx": PlatformSpec(
        name="Cavium ThunderX (2x 48 cores)", kind="cpu",
        bw_gbs=80.0, ecc_gops=150.0, vector_ecc_gops=60.0,
        crc_gbps=100.0, rangecheck_gops=64.0, hw_crc32c=True,
    ),
    "k40": PlatformSpec(
        name="NVIDIA K40 (Kepler)", kind="gpu",
        bw_gbs=288.0, ecc_gops=100.0, vector_ecc_gops=160.0,
        crc_gbps=100.0, rangecheck_gops=900.0, hw_crc32c=False,
        hw_ecc_overhead=0.081,
    ),
    "gtx1080ti": PlatformSpec(
        name="NVIDIA GTX 1080 Ti (Pascal, consumer)", kind="gpu",
        bw_gbs=484.0, ecc_gops=42_000.0, vector_ecc_gops=7_200.0,
        crc_gbps=210.0, rangecheck_gops=8_600.0, vector_fixed_ops=9.5,
        hw_crc32c=False,
    ),
    "p100": PlatformSpec(
        name="NVIDIA P100 (Pascal, HPC)", kind="gpu",
        bw_gbs=732.0, ecc_gops=63_000.0, vector_ecc_gops=14_520.0,
        crc_gbps=26_000.0, rangecheck_gops=5_300.0, vector_fixed_ops=17.0,
        hw_crc32c=False,
    ),
}


@dataclasses.dataclass(frozen=True)
class Anchor:
    """One overhead number stated in the paper's text."""

    platform: str
    #: "elements" | "rowptr" | "matrix" (elements+rowptr) | "vector" | "full"
    region: str
    scheme: str
    #: Check interval the number refers to (1 = every access).
    interval: int
    #: Overhead fraction (0.30 = 30 %).
    value: float
    #: Comparison mode: "eq" (approximately equals) or "le" (at most).
    mode: str
    #: The sentence in the paper the number comes from.
    source: str


#: Every numeric overhead claim in the paper's text (§VII).
PAPER_ANCHORS: list[Anchor] = [
    Anchor("k40", "hw_ecc", "hardware", 1, 0.081, "eq",
           "hardware ECC on this GPU incurs a measured overhead of 8.1%"),
    Anchor("gtx1080ti", "matrix", "sed", 1, 0.02, "le",
           "protecting the whole matrix with SED ... less than 2% on GTX 1080 Ti"),
    Anchor("gtx1080ti", "matrix", "secded64", 1, 0.02, "le",
           "protecting the whole matrix with SECDED(64) ... less than 2%"),
    Anchor("p100", "matrix", "sed", 1, 0.02, "le",
           "... on both NVIDIA GTX 1080 Ti and P100"),
    Anchor("p100", "matrix", "secded64", 1, 0.02, "le",
           "... on both NVIDIA GTX 1080 Ti and P100"),
    Anchor("p100", "elements", "secded64", 1, 0.01, "le",
           "on the NVIDIA Pascal GPUs these techniques cause an overhead of less than 1%"),
    Anchor("gtx1080ti", "elements", "secded64", 1, 0.01, "le",
           "on the NVIDIA Pascal GPUs these techniques cause an overhead of less than 1%"),
    Anchor("p100", "elements", "crc32c", 1, 0.01, "eq",
           "the 1% overhead for CRC32C on the NVIDIA P100 GPU"),
    Anchor("broadwell", "matrix", "crc32c", 1, 0.30, "eq",
           "hardware accelerated CRC32C ... whole matrix with a 30% runtime overhead"),
    Anchor("broadwell", "matrix", "sed", 999, 0.04, "eq",
           "none of them achieve below a 4% runtime overhead (Fig. 6 floor)"),
    Anchor("thunderx", "matrix", "secded64", 999, 0.09, "eq",
           "less frequent checks ... reduce the overheads down to just 9% (Fig. 7)"),
    Anchor("gtx1080ti", "matrix", "crc32c", 1, 0.88, "eq",
           "reduce the overhead ... from 88% (Fig. 8, every iteration)"),
    Anchor("gtx1080ti", "matrix", "crc32c", 128, 0.01, "eq",
           "... checks only every 128 iterations ... to just 1% (Fig. 8)"),
    Anchor("gtx1080ti", "vector", "secded64", 1, 0.12, "eq",
           "overheads of just 12% and 9% for the GTX 1080 Ti and P100 (Fig. 9)"),
    Anchor("p100", "vector", "secded64", 1, 0.09, "eq",
           "overheads of just 12% and 9% for the GTX 1080 Ti and P100 (Fig. 9)"),
    Anchor("p100", "full", "secded64", 1, 0.11, "eq",
           "fully protects the matrix and the ... vectors using SECDED with ~11%"),
]

#: Fig. 9 range claim: SED vector protection costs 4..32% across platforms.
VECTOR_SED_RANGE = (0.04, 0.32)


def find_anchor(region: str, scheme: str, platform: str,
                interval: int = 1) -> float | None:
    """The paper's quoted overhead for a configuration, if it quoted one.

    Interval ``999`` on an anchor means "the large-interval floor"; it
    matches any requested interval, mirroring how the paper states those
    numbers ("none of them achieve below ...").
    """
    for anchor in PAPER_ANCHORS:
        if (
            anchor.region == region
            and anchor.scheme == scheme
            and anchor.platform == platform
            and (anchor.interval == interval or anchor.interval == 999)
        ):
            return anchor.value
    return None
