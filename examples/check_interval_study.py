"""Check-interval study: regenerate Figs. 6-8 (overhead vs interval).

Less-frequent checking (§VI.A.2): integrity checks every N matrix
accesses, cheap range checks in between.  The curves fall like 1/N until
the range-check floor dominates — 4% on Broadwell/SED, 9% on
ThunderX/SECDED, and 88%→1% for CRC32C on the consumer GTX 1080 Ti.

Run:  python examples/check_interval_study.py [grid_n]
"""

import sys

from repro.harness.experiments import run_experiment
from repro.harness.report import format_interval_series


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    for figure, title in (
        ("fig6", "Fig. 6: whole-matrix SED vs check interval (Broadwell)"),
        ("fig7", "Fig. 7: whole-matrix SECDED64 vs check interval (ThunderX)"),
        ("fig8", "Fig. 8: whole-matrix CRC32C vs check interval (GTX 1080 Ti)"),
    ):
        rows = run_experiment(figure, n=n, repeats=3)
        print(format_interval_series(rows, title))
        print()
    print("note: 'host' rows are this library's NumPy kernels; the model rows")
    print("are the calibrated predictions for the paper's platforms.")


if __name__ == "__main__":
    main()
