"""Quickstart: protect a sparse system, flip bits, watch ABFT handle them.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import DetectedUncorrectableError
from repro.protect import CheckPolicy, ProtectedCSRMatrix, ProtectedVector
from repro.solvers import cg_solve, protected_cg_solve


def main() -> None:
    # --- build a TeaLeaf-style operator: 2-D heat conduction, 5-point ---
    rng = np.random.default_rng(42)
    nx = ny = 32
    kx = rng.uniform(0.5, 2.0, (ny, nx))
    ky = rng.uniform(0.5, 2.0, (ny, nx))
    A = five_point_operator(nx, ny, kx, ky, dt_over_h2=0.4)
    x_true = rng.standard_normal(A.n_rows)
    b = A.matvec(x_true)
    print(f"operator: {A.shape}, nnz={A.nnz} (5 per row, TeaLeaf layout)")

    # --- wrap it in ABFT protection: zero extra storage ------------------
    pmat = ProtectedCSRMatrix(A, element_scheme="secded64", rowptr_scheme="secded64")
    print(f"protected: {pmat}")
    print("storage overhead: 0 bytes (redundancy lives in unused index bits)")

    # --- a single bit flip in the value array is corrected in place ------
    f64_to_u64(pmat.values)[1234] ^= np.uint64(1) << np.uint64(37)
    reports = pmat.check_all(correct=True)
    print(f"\nflipped bit 37 of element 1234 -> "
          f"corrected codewords: {reports['csr_elements'].n_corrected}")

    # --- protected vectors hide redundancy in mantissa LSBs --------------
    vec = ProtectedVector(b, scheme="secded64")
    noise = np.abs(vec.values() - b).max() / np.abs(b).max()
    print(f"\nvector protection noise (8 mantissa LSBs masked): {noise:.2e}")
    f64_to_u64(vec.raw)[10] ^= np.uint64(1) << np.uint64(51)
    report = vec.check()
    print(f"flipped mantissa bit of element 10 -> corrected: {report.n_corrected}")

    # --- a fully protected CG solve --------------------------------------
    plain = cg_solve(A, b, eps=1e-20)
    prot = protected_cg_solve(
        pmat, b, eps=1e-20,
        policy=CheckPolicy(interval=1, correct=True),
        vector_scheme="secded64",
    )
    err = np.linalg.norm(prot.x - x_true) / np.linalg.norm(x_true)
    print(f"\nplain CG:      {plain.iterations} iterations")
    print(f"protected CG:  {prot.iterations} iterations "
          f"({prot.info['full_checks']} matrix checks), solution error {err:.2e}")

    # --- SED detects but cannot correct: the application decides ---------
    sed = ProtectedCSRMatrix(A, "sed", "sed")
    f64_to_u64(sed.values)[777] ^= np.uint64(1) << np.uint64(3)
    try:
        protected_cg_solve(sed, b, eps=1e-20, vector_scheme=None)
    except DetectedUncorrectableError as exc:
        print(f"\nSED caught an uncorrectable error ({exc.region}); "
              "re-encoding and retrying (no checkpoint/restart needed):")
        retry = protected_cg_solve(
            ProtectedCSRMatrix(A, "sed", "sed"), b, eps=1e-20, vector_scheme=None
        )
        print(f"  retry converged in {retry.iterations} iterations")


if __name__ == "__main__":
    main()
