"""Quickstart: protect a sparse system, flip bits, watch ABFT handle them.

Everything goes through the one protection API: a frozen
``ProtectionConfig`` says what is protected and when it is verified,
``repro.solve`` runs any solver method under it, and a
``ProtectionSession`` keeps one deferred-verification engine alive
across many solves.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.errors import DetectedUncorrectableError
from repro.protect import ProtectedCSRMatrix, ProtectedVector, ProtectionConfig


def main() -> None:
    # --- build a TeaLeaf-style operator: 2-D heat conduction, 5-point ---
    rng = np.random.default_rng(42)
    nx = ny = 32
    kx = rng.uniform(0.5, 2.0, (ny, nx))
    ky = rng.uniform(0.5, 2.0, (ny, nx))
    A = five_point_operator(nx, ny, kx, ky, dt_over_h2=0.4)
    x_true = rng.standard_normal(A.n_rows)
    b = A.matvec(x_true)
    print(f"operator: {A.shape}, nnz={A.nnz} (5 per row, TeaLeaf layout)")

    # --- wrap it in ABFT protection: zero extra storage ------------------
    pmat = ProtectedCSRMatrix(A, element_scheme="secded64", rowptr_scheme="secded64")
    print(f"protected: {pmat}")
    print("storage overhead: 0 bytes (redundancy lives in unused index bits)")

    # --- a single bit flip in the value array is corrected in place ------
    f64_to_u64(pmat.values)[1234] ^= np.uint64(1) << np.uint64(37)
    reports = pmat.check_all(correct=True)
    print(f"\nflipped bit 37 of element 1234 -> "
          f"corrected codewords: {reports['csr_elements'].n_corrected}")

    # --- protected vectors hide redundancy in mantissa LSBs --------------
    vec = ProtectedVector(b, scheme="secded64")
    noise = np.abs(vec.values() - b).max() / np.abs(b).max()
    print(f"\nvector protection noise (8 mantissa LSBs masked): {noise:.2e}")
    f64_to_u64(vec.raw)[10] ^= np.uint64(1) << np.uint64(51)
    report = vec.check()
    print(f"flipped mantissa bit of element 10 -> corrected: {report.n_corrected}")

    # --- one API, every solver method ------------------------------------
    # The paper's check-on-every-access mode and the deferred-engine
    # window are two presets of the same config; any registered method
    # (cg, ppcg, jacobi, chebyshev) runs under either.
    plain = repro.solve(A, b, method="cg", eps=1e-20)
    prot = repro.solve(A, b, method="cg", eps=1e-20,
                       protection=ProtectionConfig.paper_default())
    err = np.linalg.norm(prot.x - x_true) / np.linalg.norm(x_true)
    print(f"\nplain CG:      {plain.iterations} iterations")
    print(f"protected CG:  {prot.iterations} iterations "
          f"({prot.info['full_checks']} matrix checks), solution error {err:.2e}")

    deferred = ProtectionConfig.deferred(window=16)
    print(f"\ndeferred window of 16 across every method "
          f"({', '.join(repro.available_methods())}):")
    for method in repro.available_methods():
        res = repro.solve(A, b, method=method, eps=1e-20, max_iters=20_000,
                          protection=deferred)
        print(f"  {method:>9}: {res.iterations:5d} iters, "
              f"{res.info['full_checks']:3d} full checks, "
              f"{res.info['bounds_checks']:5d} range checks, "
              f"{res.info['deferred_stores']:5d} buffered stores")

    # --- a session holds one engine across many solves -------------------
    with repro.ProtectionSession(deferred) as session:
        r1 = session.solve(A, b, method="cg", eps=1e-20)
        r2 = session.solve(A, b, r1.x, method="cg", eps=1e-20)
        print(f"\nsession: 2 solves ({r1.iterations} + {r2.iterations} iters) "
              f"on one engine, {session.pending_windows()} dirty windows "
              "open at the boundary")
    print(f"after end_step: {session.pending_windows()} dirty windows, "
          f"{session.stats.dirty_flushes} flushes total")

    # --- SED detects but cannot correct: the application decides ---------
    sed_config = ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                                  vector_scheme=None)
    sed = ProtectedCSRMatrix(A, "sed", "sed")
    f64_to_u64(sed.values)[777] ^= np.uint64(1) << np.uint64(3)
    try:
        repro.solve(sed, b, method="cg", eps=1e-20, protection=sed_config)
    except DetectedUncorrectableError as exc:
        print(f"\nSED caught an uncorrectable error ({exc.region}); "
              "re-encoding and retrying (no checkpoint/restart needed):")
        retry = repro.solve(A, b, method="cg", eps=1e-20, protection=sed_config)
        print(f"  retry converged in {retry.iterations} iterations")


if __name__ == "__main__":
    main()
