"""Overhead study: regenerate the Fig. 4 / 5 / 9 bar charts as tables.

Every table shows the calibrated platform-model predictions for the
paper's five machines (with the paper's quoted numbers where its text
states them) next to live measurements of this library's NumPy kernels.

Run:  python examples/overhead_study.py [grid_n]
"""

import sys

from repro.harness.experiments import run_experiment
from repro.harness.report import format_table
from repro.platforms import combined_full_protection


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    for figure, title in (
        ("fig4", "Fig. 4: CSR element protection overhead"),
        ("fig5", "Fig. 5: row-pointer protection overhead"),
        ("fig9", "Fig. 9: dense vector protection overhead"),
    ):
        rows = run_experiment(figure, n=n, repeats=3)
        print(format_table(rows, title))
        print()

    print("combined full protection (matrix + vectors, SECDED64):")
    for platform in ("broadwell", "thunderx", "k40", "gtx1080ti", "p100"):
        print(f"  {platform:>10}: {100 * combined_full_protection(platform):5.1f}%")
    print("  paper: ~11% vs the K40's 8.1% hardware-ECC target")


if __name__ == "__main__":
    main()
