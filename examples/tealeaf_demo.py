"""TeaLeaf demo: the paper's host application, plain vs fully protected.

Runs the classic tea_bm-style deck (hot region diffusing into a cold
background), once unprotected and once with full ABFT (SECDED matrix +
SECDED vectors), then compares field summaries — the paper's observation
that protection leaves the physics untouched while adding integrity
checks to every kernel.

Run:  python examples/tealeaf_demo.py [path/to/tea.in]
"""

import sys

import numpy as np

from repro.protect import ProtectionConfig
from repro.tealeaf import Deck, TeaLeafDriver, parse_deck, total_energy


def run_one(deck, protection, label):
    driver = TeaLeafDriver(deck, protection)
    e0 = total_energy(driver.state)
    summary = driver.run()
    print(f"\n=== {label} ===")
    for s in summary.steps:
        extra = ""
        if s.info.get("full_checks") is not None:
            extra = (f"  checks={s.info['full_checks']}"
                     f"  bounds={s.info.get('bounds_checks', 0)}")
        print(f"  step {s.step}: {s.iterations:4d} CG iters, "
              f"residual {s.residual:.3e}, {s.wall_time:.3f}s{extra}")
    fs = summary.field_summary
    print(f"  field summary: temp={fs['temp']:.9e}  ie={fs['ie']:.6e}")
    print(f"  energy conservation: |dE|/E = "
          f"{abs(total_energy(driver.state) - e0) / e0:.2e}")
    return driver, summary


def main() -> None:
    if len(sys.argv) > 1:
        deck = parse_deck(open(sys.argv[1]).read())
    else:
        deck = Deck(x_cells=96, y_cells=96, end_step=3, tl_eps=1e-18)
    print("deck:")
    print(deck.to_text())

    plain_driver, plain = run_one(deck, None, "unprotected")
    prot_driver, prot = run_one(
        deck,
        ProtectionConfig.paper_default(),
        "fully protected (SECDED64 matrix + vectors)",
    )

    norm_dev = abs(
        np.linalg.norm(prot_driver.state.u) - np.linalg.norm(plain_driver.state.u)
    ) / np.linalg.norm(plain_driver.state.u)
    iter_dev = prot.total_iterations / plain.total_iterations - 1.0
    print("\n=== protected vs plain ===")
    print(f"  solution norm deviation : {norm_dev:.3e}  (paper: ~2e-13, noise floor)")
    print(f"  iteration overhead      : {100 * iter_dev:+.2f}%  (paper: < 1%)")
    print(f"  runtime overhead        : "
          f"{100 * (prot.wall_time / plain.wall_time - 1):+.1f}%  "
          "(Python kernels; see EXPERIMENTS.md for platform-model numbers)")


if __name__ == "__main__":
    main()
