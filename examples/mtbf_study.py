"""MTBF study: solves under a continuous Poisson soft-error process.

Sweeps the per-bit upset rate across four orders of magnitude and, for
each (protection scheme, recovery strategy), runs a sharded
time-to-solution campaign with faults injected *live* between iterations
— the exascale scenario the paper's introduction motivates (shrinking
MTBF).  Reports, per configuration: how many upsets landed, how many
trials survived a DUE in-solve (recovered), how many were aborted by an
unrecovered DUE, and the mean wall time per solve — the resilience
cost/benefit matrix, not just detection rates.

Run:  python examples/mtbf_study.py [--workers N]
"""

import argparse

import numpy as np

import repro
from repro.csr import five_point_operator
from repro.faults import CampaignTask, run_sharded_campaign
from repro.recover import RecoveryPolicy

#: (element/rowptr scheme, recovery strategy) axis of the study.
CONFIGS = [
    ("secded64", None),          # correction absorbs single flips
    ("sed", None),               # detection-only: DUEs abort the run
    ("sed", "repopulate"),       # ...or are repaired in place
    ("sed", "rollback"),         # ...or roll back to a checkpoint
]
RATES = [1e-8, 1e-7, 1e-6, 1e-5]
TRIALS = 10


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    rng = np.random.default_rng(0)
    matrix = five_point_operator(
        16, 16, rng.uniform(0.5, 2.0, (16, 16)), rng.uniform(0.5, 2.0, (16, 16)), 0.3
    )
    b = rng.standard_normal(matrix.n_rows)
    # One clean reference solve; every shard classifies against it.
    reference = repro.solve(matrix, b, method="cg", eps=1e-20, max_iters=2000)

    print(f"{'scheme':>9} {'recovery':>10} {'rate/bit/iter':>14} {'flips':>6} "
          f"{'recovered':>10} {'aborted':>8} {'silent':>7} {'ms/solve':>9}")
    for scheme, strategy in CONFIGS:
        recovery = None
        if strategy is not None:
            recovery = RecoveryPolicy(strategy=strategy, max_retries=64,
                                      checkpoint_interval=4)
        for rate in RATES:
            task = CampaignTask("poisson", dict(
                matrix=matrix, b=b, rate=rate, method="cg",
                element_scheme=scheme, rowptr_scheme=scheme,
                vector_scheme=None, interval=1, recovery=recovery,
                eps=1e-20, max_iters=2000, reference_x=reference.x,
            ))
            res = run_sharded_campaign(task, TRIALS, workers=args.workers,
                                       shard_size=5)
            silent = res.sdc_rate * res.n_trials
            print(f"{scheme:>9} {strategy or 'raise':>10} {rate:>14.0e} "
                  f"{res.info['injected']:>6} {res.info['recovered']:>10} "
                  f"{res.info['aborted']:>8} {silent:>7.0f} "
                  f"{res.info['mean_time'] * 1e3:>9.2f}")
        print()
    print("Reading: SECDED absorbs upsets transparently; detection-only SED")
    print("aborts on every DUE unless a recovery strategy is armed, in which")
    print("case the run survives in-solve (recovered) at a small time cost —")
    print("and every configuration ends with zero silent corruption.")


if __name__ == "__main__":
    main()
