"""MTBF study: CG solves under a continuous Poisson soft-error process.

Sweeps the per-bit upset rate across four orders of magnitude and, for
each protection scheme, runs repeated solves with faults injected *live*
between iterations — the exascale scenario the paper's introduction
motivates (shrinking MTBF).  Reports, per (scheme, rate): how many flips
landed, how many were corrected transparently, how many forced a
detect-and-reencode recovery, and whether anything survived silently.

Run:  python examples/mtbf_study.py
"""

import numpy as np

from repro.csr import five_point_operator
from repro.faults import PoissonProcess, faulty_cg_solve
from repro.protect import CheckPolicy, ProtectedCSRMatrix

SCHEMES = [("sed", "sed"), ("secded64", "secded64"), ("crc32c", "crc32c")]
RATES = [1e-8, 1e-7, 1e-6, 1e-5]
RUNS = 10


def main() -> None:
    rng = np.random.default_rng(0)
    matrix = five_point_operator(
        16, 16, rng.uniform(0.5, 2.0, (16, 16)), rng.uniform(0.5, 2.0, (16, 16)), 0.3
    )
    b = rng.standard_normal(matrix.n_rows)

    print(f"{'scheme':>20} {'rate/bit/iter':>14} {'flips':>6} {'corrected':>10} "
          f"{'DUE-recov':>10} {'silent':>7} {'converged':>10}")
    for es, rs in SCHEMES:
        for rate in RATES:
            flips = corrected = dues = silent = converged = 0
            for run in range(RUNS):
                pmat = ProtectedCSRMatrix(matrix, es, rs)
                proc = PoissonProcess(
                    rate, rng=np.random.default_rng(1000 * run + int(rate * 1e10))
                )
                report = faulty_cg_solve(
                    pmat, b, proc, eps=1e-20, max_iters=400,
                    policy=CheckPolicy(interval=1, correct=True),
                )
                flips += report.injected
                corrected += report.corrected
                dues += report.detected_uncorrectable
                silent += report.silent_at_end
                converged += bool(report.result and report.result.converged)
            print(f"{es + '+' + rs:>20} {rate:>14.0e} {flips:>6} {corrected:>10} "
                  f"{dues:>10} {silent:>7} {converged:>8}/{RUNS}")
        print()
    print("Reading: SECDED/CRC absorb upsets transparently (corrected);")
    print("SED pays detect-and-reencode recoveries (DUE-recov) but, like the")
    print("others, ends every run with zero silent corruption.")


if __name__ == "__main__":
    main()
