"""MTBF study: solves under a continuous Poisson soft-error process.

Runs the ``mtbf`` sweep preset — the *same* declarative grid the CLI
resolves (``python -m repro.sweeps --preset mtbf``), so this example
cannot drift from the orchestrator.  The grid sweeps the per-bit upset
rate across four orders of magnitude for each (protection scheme,
recovery strategy) pair and runs a live-injection time-to-solution
campaign per cell — the exascale scenario the paper's introduction
motivates (shrinking MTBF).  Reports, per configuration: how many
upsets landed, how many trials survived a DUE in-solve (recovered), how
many were aborted by an unrecovered DUE, and the mean wall time per
solve — the resilience cost/benefit matrix, not just detection rates.

Run:  python examples/mtbf_study.py [--workers N]
"""

import argparse

from repro.sweeps.core import run_sweep
from repro.sweeps.presets import get_preset


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--store", default=None,
                        help="JSONL run store; rerunning resumes from it")
    args = parser.parse_args()

    spec = get_preset("mtbf")
    result = run_sweep(spec, workers=args.workers, store=args.store)

    print(f"{'scheme':>9} {'recovery':>10} {'rate/bit/iter':>14} {'flips':>6} "
          f"{'recovered':>10} {'aborted':>8} {'silent':>7} {'ms/solve':>9}")
    previous = None
    for record in result.records:
        cell, res = record["cell"], record["result"]
        config = (cell["scheme"], cell["recovery"])
        if previous is not None and config != previous:
            print()
        previous = config
        info = res["info"]
        silent = res["rates"]["sdc"] * res["n_trials"]
        print(f"{cell['scheme']:>9} {cell['recovery']:>10} "
              f"{cell['rate']:>14.0e} {info['injected']:>6} "
              f"{info['recovered']:>10} {info['aborted']:>8} {silent:>7.0f} "
              f"{info['mean_time'] * 1e3:>9.2f}")
    print()
    print("Reading: SECDED absorbs upsets transparently; detection-only SED")
    print("aborts on every DUE unless a recovery strategy is armed, in which")
    print("case the run survives in-solve (recovered) at a small time cost —")
    print("and every configuration ends with zero silent corruption.")


if __name__ == "__main__":
    main()
