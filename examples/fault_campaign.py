"""Fault-injection campaign: empirical detection/correction guarantees.

Sprays single flips, double flips, 5-bit flips and 32-bit bursts into
every protected structure under every scheme and tabulates the outcomes
(DCE / DUE / SDC), reproducing the guarantee matrix the paper's scheme
choice rests on (SED=odd-detect, SECDED=1-correct/2-detect, CRC32C=HD 6).

Run:  python examples/fault_campaign.py
"""

import numpy as np

from repro.csr import five_point_operator
from repro.faults import (
    BurstError,
    MultiBitFlip,
    Region,
    SingleBitFlip,
    run_matrix_campaign,
    run_solver_campaign,
    run_vector_campaign,
)

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]
TRIALS = 300


def main() -> None:
    rng = np.random.default_rng(7)
    matrix = five_point_operator(
        16, 16, rng.uniform(0.5, 2.0, (16, 16)), rng.uniform(0.5, 2.0, (16, 16)), 0.3
    )
    vector = rng.standard_normal(512)

    print(f"matrix campaigns ({TRIALS} trials each), region = CSR values:")
    for model in (SingleBitFlip(), MultiBitFlip(k=2, spread=0),
                  MultiBitFlip(k=5, spread=0), BurstError(length=32)):
        for scheme in SCHEMES:
            res = run_matrix_campaign(
                matrix, scheme, scheme, Region.VALUES, model, n_trials=TRIALS
            )
            print("  " + res.row())
        print()

    print("row-pointer campaigns, single flips:")
    for scheme in SCHEMES:
        res = run_matrix_campaign(
            matrix, scheme, scheme, Region.ROWPTR, SingleBitFlip(), n_trials=TRIALS
        )
        print("  " + res.row())

    print("\ndense-vector campaigns, single flips:")
    for scheme in SCHEMES:
        res = run_vector_campaign(vector, scheme, SingleBitFlip(), n_trials=TRIALS)
        print("  " + res.row())

    print("\nend-to-end: corrupt the matrix, run a fully protected solve")
    print("(method-parametric via the solver registry):")
    b = rng.standard_normal(matrix.n_rows)
    for method in ("cg", "jacobi"):
        for scheme in ("sed", "secded64"):
            res = run_solver_campaign(matrix, b, scheme, scheme, n_trials=40,
                                      method=method)
            rec = res.info["recovered"]
            print(f"  [{method:>6}] {res.row()}  recovered-by-reencode={rec}")
    print("\n(SECDED solves continue transparently; SED detects, the app "
          "re-encodes and retries - no checkpoint/restart, the paper's point.)")


if __name__ == "__main__":
    main()
