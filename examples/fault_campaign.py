"""Fault-injection campaign: empirical detection/correction guarantees.

Sprays single flips, double flips, 5-bit flips and 32-bit bursts into
every protected structure under every scheme and tabulates the outcomes
(DCE / DUE / SDC), reproducing the guarantee matrix the paper's scheme
choice rests on (SED=odd-detect, SECDED=1-correct/2-detect, CRC32C=HD 6).

Everything runs through the sharded executor
(:mod:`repro.faults.sharding`) — pass ``--workers N`` to fan the trials
out over a process pool; the merged counts are bitwise-identical to a
serial run.  The end-to-end section adds the recovery-strategy axis:
the same corrupted solves survive in-solve once ``recovery=`` escalates
DUEs through the checkpointed recovery layer.

Run:  python examples/fault_campaign.py [--workers N] [--trials T]
"""

import argparse

import numpy as np

import repro
from repro.csr import five_point_operator
from repro.faults import (
    BurstError,
    CampaignTask,
    MultiBitFlip,
    Region,
    SingleBitFlip,
    run_sharded_campaign,
)

SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for the sharded executor")
    parser.add_argument("--trials", type=int, default=300)
    args = parser.parse_args()
    workers, trials = args.workers, args.trials

    rng = np.random.default_rng(7)
    matrix = five_point_operator(
        16, 16, rng.uniform(0.5, 2.0, (16, 16)), rng.uniform(0.5, 2.0, (16, 16)), 0.3
    )
    vector = rng.standard_normal(512)

    print(f"matrix campaigns ({trials} trials each, {workers} workers), "
          "region = CSR values:")
    for model in (SingleBitFlip(), MultiBitFlip(k=2, spread=0),
                  MultiBitFlip(k=5, spread=0), BurstError(length=32)):
        for scheme in SCHEMES:
            task = CampaignTask("matrix", dict(
                matrix=matrix, element_scheme=scheme, rowptr_scheme=scheme,
                region=Region.VALUES, model=model,
            ))
            res = run_sharded_campaign(task, trials, workers=workers)
            print("  " + res.row())
        print()

    print("row-pointer campaigns, single flips:")
    for scheme in SCHEMES:
        task = CampaignTask("matrix", dict(
            matrix=matrix, element_scheme=scheme, rowptr_scheme=scheme,
            region=Region.ROWPTR, model=SingleBitFlip(),
        ))
        print("  " + run_sharded_campaign(task, trials, workers=workers).row())

    print("\ndense-vector campaigns, single flips:")
    for scheme in SCHEMES:
        task = CampaignTask("vector", dict(
            values=vector, scheme=scheme, model=SingleBitFlip(),
        ))
        print("  " + run_sharded_campaign(task, trials, workers=workers).row())

    print("\nend-to-end: corrupt the matrix, run a fully protected solve,")
    print("with and without the in-solve recovery layer:")
    b = rng.standard_normal(matrix.n_rows)
    for method in ("cg", "jacobi"):
        # One clean reference per method; shards classify against it.
        reference = repro.solve(matrix, b, method=method, eps=1e-20)
        for scheme, recovery in (("sed", None), ("sed", "rollback"),
                                 ("secded64", None)):
            task = CampaignTask("solver", dict(
                matrix=matrix, b=b, element_scheme=scheme,
                rowptr_scheme=scheme, region=Region.VALUES,
                model=SingleBitFlip(), method=method, recovery=recovery,
                reference_x=reference.x,
            ))
            res = run_sharded_campaign(task, 40, workers=workers, shard_size=10)
            rec = res.info["recovered"]
            label = recovery or "raise"
            print(f"  [{method:>6}/{label:>8}] {res.row()}  recovered={rec}")
    print("\n(SECDED solves continue transparently; SED detects, and the "
          "application\nsurvives either by re-encode-and-redo (raise) or "
          "in-solve via the recovery\nlayer (rollback) - no checkpoint/restart "
          "from disk, the paper's point.)")


if __name__ == "__main__":
    main()
