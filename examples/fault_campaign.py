"""Fault-injection campaign: empirical detection/correction guarantees.

Runs two sweep presets — the *same* declarative grids the CLI resolves,
so example and orchestrator cannot drift:

* ``guarantee-matrix`` sprays single flips, double flips, 5-bit flips
  and 32-bit bursts into every protected structure under every scheme
  and tabulates the outcomes (DCE / DUE / SDC), reproducing the
  guarantee matrix the paper's scheme choice rests on (SED=odd-detect,
  SECDED=1-correct/2-detect, CRC32C=HD 6);
* ``solver-recovery`` adds the end-to-end axis: corrupt the matrix,
  run a fully protected solve, with and without the in-solve recovery
  layer.

Cells fan out over a process pool (``--workers N``); the merged records
are bitwise-identical to a serial run.

Run:  python examples/fault_campaign.py [--workers N] [--trials T]
"""

import argparse

from repro.errors import Outcome
from repro.sweeps.core import run_sweep
from repro.sweeps.presets import get_preset
from repro.sweeps.render import render_sweep


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool size for the sweep executor")
    parser.add_argument("--trials", type=int, default=300)
    args = parser.parse_args()

    spec = get_preset("guarantee-matrix", trials=args.trials)
    result = run_sweep(spec, workers=args.workers)
    print(render_sweep(spec, result.records))
    print(f"\n({args.trials} trials per cell, {args.workers} workers; "
          "rowptr/vector rows run the single-flip model)")

    print("\nend-to-end: corrupt the matrix, run a fully protected solve,")
    print("with and without the in-solve recovery layer:")
    spec = get_preset("solver-recovery", trials=40)
    result = run_sweep(spec, workers=args.workers)
    for record in result.records:
        cell, res = record["cell"], record["result"]
        counts = res["counts"]
        print(f"  [{cell['method']:>6}/{cell['recovery']:>8}] "
              f"{res['scheme']:>17}  "
              f"corrected={counts.get(Outcome.CORRECTED.value, 0):>3}  "
              f"detected={counts.get(Outcome.DETECTED.value, 0):>3}  "
              f"silent={counts.get(Outcome.SILENT.value, 0):>3}  "
              f"SDC-rate={res['rates']['sdc']:.4f}  "
              f"recovered={res['info']['recovered']}")
    print("\n(SECDED solves continue transparently; SED detects, and the "
          "application\nsurvives either by re-encode-and-redo (raise) or "
          "in-solve via the recovery\nlayer (rollback) - no checkpoint/restart "
          "from disk, the paper's point.)")


if __name__ == "__main__":
    main()
