"""Protection-as-a-service, end to end — including surviving a kill -9.

The demo drives a real ``python -m repro.serve`` subprocess through its
whole durability story:

1. start a server with a job journal;
2. submit a batch of RHS solves against ONE matrix — the service groups
   them into same-matrix batches over a single warm
   :class:`~repro.protect.session.ProtectionSession` and a single cached
   encoded matrix (watch the ``encodes`` counter stay at 1);
3. ``SIGKILL`` the server mid-stream, with jobs still in flight;
4. restart it on the same journal — the new process re-adopts every
   admitted-but-unfinished job (reopen *is* resume, the same contract
   as the sweep store) and serves already-completed ones from their
   committed records, so nothing is solved twice;
5. collect all results and replay a pre-kill job's event stream.

Run:  python examples/serve_demo.py [--jobs N] [--throttle SECONDS]
"""

import argparse
import json
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import ServeClient  # noqa: E402

MATRIX = {"kind": "five-point", "grid": 12, "seed": 3}


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port: int, journal: Path, throttle: float) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--port", str(port),
         "--journal", str(journal), "--throttle", str(throttle),
         "--batch-window", "0.05", "--max-batch", "4"],
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    for _ in range(100):
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return proc
        except OSError:
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server never came up")


def journalled_done(journal: Path) -> set:
    done = set()
    try:
        for line in journal.read_text().splitlines():
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from the kill — expected
            if record.get("status") == "done":
                done.add(record["key"])
    except FileNotFoundError:
        pass
    return done


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--jobs", type=int, default=8)
    parser.add_argument("--throttle", type=float, default=0.15,
                        help="artificial per-solve delay so the kill "
                             "lands mid-stream")
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="serve-demo-"))
    journal = workdir / "journal.jsonl"

    print("== life 1: start, submit, kill -9 mid-stream ==")
    port = free_port()
    proc = start_server(port, journal, args.throttle)
    client = ServeClient(port=port)
    job_ids = []
    for i in range(args.jobs):
        response = client.submit({
            "matrix": MATRIX, "b": {"seed": i}, "method": "cg",
            "eps": 1e-10, "protection": "deferred",
        })
        job_ids.append(response["job_id"])
    print(f"submitted {len(job_ids)} RHS solves against one matrix")

    deadline = time.time() + 60
    while len(journalled_done(journal)) < max(2, args.jobs // 4):
        if time.time() > deadline:
            raise RuntimeError("server made no progress before the kill")
        time.sleep(0.05)
    done_before = journalled_done(journal)
    proc.send_signal(signal.SIGKILL)
    proc.wait()
    print(f"SIGKILL with {len(done_before)}/{len(job_ids)} jobs done, "
          f"{len(job_ids) - len(done_before)} in flight\n")

    print("== life 2: restart on the same journal ==")
    port2 = free_port()
    proc2 = start_server(port2, journal, args.throttle)
    client2 = ServeClient(port=port2)
    statuses = [client2.result(job_id)["status"] for job_id in job_ids]
    print(f"all jobs terminal after restart: "
          f"{statuses.count('done')}/{len(job_ids)} done")

    replayed = [e["event"] for e in client2.stream(next(iter(done_before)))]
    print(f"pre-kill job's stream replays from the journal: {replayed}")

    status = client2.status()
    print(f"life-2 matrix encodes: {status['cache']['encodes']} "
          f"(one per life — the encoded-matrix cache is per process, "
          f"the journal is what survives)")
    print(f"life-2 re-adopted jobs: {status['stats']['adopted']}")
    client2.shutdown()
    proc2.wait(timeout=15)

    assert statuses == ["done"] * len(job_ids), statuses
    assert status["cache"]["encodes"] == 1, status["cache"]
    print("\nOK: killed server resumed from its journal; "
          "no job was lost, every matrix was encoded once per life")
    return 0


if __name__ == "__main__":
    sys.exit(main())
