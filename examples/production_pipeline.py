"""Production pipeline: the extension surface end to end.

1. write/read a Matrix Market file (how production matrices arrive);
2. run it protected through the unified registry (`repro.solve` handles
   every registered method), and through ProtectedOperator for solvers
   the registry does not own — e.g. scipy's cg over ABFT storage;
3. the COO format (prior-work surface) and 64-bit indices
   (the paper's >2**32-columns extension note) with live corrections.

Run:  python examples/production_pipeline.py
"""

import io

import numpy as np

from repro.bits.float_bits import f64_to_u64
from repro.csr import five_point_operator
from repro.csr.coo import COOMatrix
from repro.csr.io import read_matrix_market, write_matrix_market
import repro
from repro.protect import (
    CheckPolicy,
    ProtectedCOOMatrix,
    ProtectedCSRElements64,
    ProtectedCSRMatrix,
    ProtectedOperator,
    ProtectionConfig,
)


def main() -> None:
    rng = np.random.default_rng(3)
    A = five_point_operator(
        24, 24, rng.uniform(0.5, 2.0, (24, 24)), rng.uniform(0.5, 2.0, (24, 24)), 0.4
    )
    x_true = rng.standard_normal(A.n_rows)
    b = A.matvec(x_true)

    # 1. Matrix Market round trip --------------------------------------
    buf = io.StringIO()
    write_matrix_market(A, buf)
    loaded = read_matrix_market(buf.getvalue())
    print(f"MatrixMarket round trip: shape={loaded.shape}, nnz={loaded.nnz}")

    # 2. Any solver, protected ------------------------------------------
    # Registered methods go through the one API (engine-threaded, vector
    # protection available)...
    config = ProtectionConfig.paper_default()
    res_cg = repro.solve(loaded, b, method="cg", eps=1e-22, protection=config)
    res_jac = repro.solve(loaded, b, method="jacobi", eps=1e-22,
                          max_iters=20000, protection=config)
    print(f"protected CG:     {res_cg.iterations} iters, "
          f"err={np.linalg.norm(res_cg.x - x_true):.2e}")
    print(f"protected Jacobi: {res_jac.iterations} iters, "
          f"err={np.linalg.norm(res_jac.x - x_true):.2e}")
    # ...while ProtectedOperator still adapts solvers the registry does
    # not own (scipy et al.) to checked ABFT storage.
    policy = CheckPolicy(interval=1, correct=True)
    op = ProtectedOperator(ProtectedCSRMatrix(loaded, "secded64", "secded64"), policy)
    try:
        from scipy.sparse.linalg import cg as scipy_cg

        x, info = scipy_cg(op.to_scipy(), b, rtol=1e-10)
        print(f"scipy.sparse.linalg.cg over ABFT storage: info={info}, "
              f"err={np.linalg.norm(x - x_true):.2e}")
    except ImportError:
        pass

    # 3a. COO protection (prior-work format) ----------------------------
    coo = COOMatrix.from_csr(A)
    pcoo = ProtectedCOOMatrix(coo, "secded128")
    f64_to_u64(pcoo.values)[100] ^= np.uint64(1) << np.uint64(22)
    report = pcoo.check_all()["coo_elements"]
    print(f"\nCOO (secded128): injected 1 flip -> corrected {report.n_corrected}")

    # 3b. 64-bit indices: columns beyond 2**32 ---------------------------
    offset = 2**40
    colidx64 = A.colidx.astype(np.uint64) + np.uint64(offset)
    prot64 = ProtectedCSRElements64(
        A.values.copy(), colidx64, A.rowptr.astype(np.uint64),
        A.n_cols + offset, "secded",
    )
    prot64.colidx[50] ^= np.uint64(1) << np.uint64(39)
    report = prot64.check()
    print(f"CSR64 (secded, columns ~2**40): injected 1 flip -> "
          f"corrected {report.n_corrected}")
    print("\nsame engine, different layouts - the paper's 'easily extended' note.")


if __name__ == "__main__":
    main()
