"""ProtectedRowPointer tests across all Fig.-2 schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.protect import ProtectedRowPointer
from repro.protect.base import GROUPS, ROWPTR_SCHEMES

SCHEMES = list(ROWPTR_SCHEMES)


def make_rowptr(n_rows=40, width=5):
    return (np.arange(n_rows + 1, dtype=np.uint64) * width).astype(np.uint32)


def flip(prot, entry, bit):
    prot.raw[entry] ^= np.uint32(1) << np.uint32(bit)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestPerScheme:
    def test_clean_after_encode(self, scheme):
        prot = ProtectedRowPointer(make_rowptr(), scheme)
        assert not prot.detect().any()
        assert prot.check().clean

    def test_clean_values_roundtrip(self, scheme):
        ptr = make_rowptr()
        prot = ProtectedRowPointer(ptr, scheme)
        assert np.array_equal(prot.clean(), ptr)

    def test_data_bit_flip_detected(self, scheme):
        prot = ProtectedRowPointer(make_rowptr(), scheme)
        flip(prot, 9, 3)
        assert prot.detect().any()

    def test_redundancy_bit_flip_detected(self, scheme):
        prot = ProtectedRowPointer(make_rowptr(), scheme)
        bit = 31 if scheme == "sed" else 29
        flip(prot, 4, bit)
        assert prot.detect().any()

    def test_original_not_aliased(self, scheme):
        ptr = make_rowptr()
        before = ptr.copy()
        ProtectedRowPointer(ptr, scheme)
        assert np.array_equal(ptr, before)

    def test_flag_localised_to_codeword(self, scheme):
        prot = ProtectedRowPointer(make_rowptr(63), scheme)  # 64 entries
        flip(prot, 13, 7)
        flags = prot.detect()
        group = GROUPS["rowptr"][scheme]
        assert flags[13 // group]
        assert flags.sum() == 1


@pytest.mark.parametrize("scheme", ["secded64", "secded128", "crc32c"])
class TestCorrection:
    def test_single_flip_corrected(self, scheme):
        ptr = make_rowptr(63)
        prot = ProtectedRowPointer(ptr, scheme)
        raw0 = prot.raw.copy()
        for entry, bit in [(0, 0), (17, 13), (40, 27), (63, 5)]:
            flip(prot, entry, bit)
            report = prot.check()
            assert report.n_corrected == 1, (entry, bit)
            assert np.array_equal(prot.raw, raw0)
            assert np.array_equal(prot.clean(), ptr)

    def test_double_flip_same_codeword_handling(self, scheme):
        prot = ProtectedRowPointer(make_rowptr(63), scheme)
        raw0 = prot.raw.copy()
        flip(prot, 0, 3)
        flip(prot, 1, 9)  # same codeword for every grouped scheme
        report = prot.check()
        if scheme == "crc32c":
            # HD=6 window: two flips are corrected.
            assert report.n_corrected == 1
            assert np.array_equal(prot.raw, raw0)
        else:
            assert report.n_uncorrectable == 1


class TestSED:
    def test_cannot_correct(self):
        prot = ProtectedRowPointer(make_rowptr(), "sed")
        flip(prot, 3, 3)
        report = prot.check()
        assert report.n_uncorrectable == 1

    def test_per_entry_codewords(self):
        prot = ProtectedRowPointer(make_rowptr(10), "sed")
        assert prot.n_codewords == 11


class TestTails:
    @pytest.mark.parametrize("scheme", ["secded64", "secded128", "crc32c"])
    def test_tail_is_sed_protected(self, scheme):
        group = GROUPS["rowptr"][scheme]
        n_entries = 4 * group + (group - 1)  # force a maximal tail
        ptr = (np.arange(n_entries, dtype=np.uint64) * 3).astype(np.uint32)
        prot = ProtectedRowPointer(ptr, scheme)
        assert prot.tail_size == group - 1
        assert not prot.detect().any()
        assert np.array_equal(prot.clean(), ptr)
        flip(prot, n_entries - 1, 8)
        flags = prot.detect()
        assert flags[-1]
        report = prot.check()
        assert report.n_uncorrectable == 1  # SED tail: detect only

    def test_rowptr_plus_one_entries(self):
        """Typical CSR: n_rows+1 entries rarely divides the group size."""
        for n_rows in (7, 30, 63, 64, 101):
            prot = ProtectedRowPointer(make_rowptr(n_rows), "crc32c")
            assert not prot.detect().any()


class TestLimits:
    def test_sed_value_limit(self):
        with pytest.raises(ConfigurationError):
            ProtectedRowPointer(np.array([0, 2**31], np.uint32), "sed")

    def test_nibble_value_limit(self):
        with pytest.raises(ConfigurationError):
            ProtectedRowPointer(np.array([0, 2**28], np.uint32), "secded64")

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ProtectedRowPointer(make_rowptr(), "ecc")

    def test_limit_boundary_accepted(self):
        prot = ProtectedRowPointer(
            np.array([0, 2**28 - 1], np.uint32), "secded64"
        )
        assert int(prot.clean()[1]) == 2**28 - 1


@given(
    st.sampled_from(SCHEMES),
    st.integers(0, 40),
    st.integers(0, 31),
)
@settings(max_examples=80, deadline=None)
def test_any_single_flip_never_silent(scheme, entry, bit):
    prot = ProtectedRowPointer(make_rowptr(40), scheme)
    flip(prot, entry, bit)
    assert prot.detect().any()
