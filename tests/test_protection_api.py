"""The unified protection API: ProtectionConfig, ProtectionSession, repro.solve.

ISSUE 2's contract: one frozen config is the single source of truth,
``repro.solve`` threads every registered method through the deferred
engine, and a session keeps one engine (and its dirty windows) alive
across solves and TeaLeaf time-steps.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.csr import five_point_operator
from repro.errors import ConfigurationError
from repro.protect import (
    CheckPolicy,
    DeferredVerificationEngine,
    ProtectedCSRMatrix,
    ProtectionConfig,
    ProtectionSession,
)
from repro.solvers import available_methods, get_method, solve

METHODS = ("cg", "ppcg", "jacobi", "chebyshev")


def make_system(n=10, seed=3):
    rng = np.random.default_rng(seed)
    A = five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.4
    )
    x_true = rng.standard_normal(A.n_rows)
    return A, A.matvec(x_true), x_true


class TestProtectionConfig:
    def test_paper_default_preset(self):
        config = ProtectionConfig.paper_default()
        assert config.element_scheme == "secded64"
        assert config.rowptr_scheme == "secded64"
        assert config.vector_scheme == "secded64"
        assert config.interval == 1 and config.correct
        assert config.enabled and config.protects_matrix and config.protects_vectors

    def test_off_preset(self):
        config = ProtectionConfig.off()
        assert not config.enabled
        assert not config.protects_matrix and not config.protects_vectors

    def test_deferred_preset_follows_paper_rule(self):
        config = ProtectionConfig.deferred(window=16)
        assert config.interval == 16
        assert config.correct is False  # deferral => detection-only
        policy = config.policy()
        assert policy.interval == 16
        assert policy.vector_interval == 16
        assert policy.defer_writes is True

    def test_deferred_rejects_zero_window(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig.deferred(window=0)

    def test_matrix_only_preset(self):
        config = ProtectionConfig.matrix_only("crc32c", interval=8, correct=False)
        assert config.protects_matrix and not config.protects_vectors
        assert config.element_scheme == "crc32c"

    def test_rejects_unknown_schemes(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(element_scheme="md5")
        with pytest.raises(ConfigurationError):
            ProtectionConfig(rowptr_scheme="md5")
        with pytest.raises(ConfigurationError):
            ProtectionConfig(vector_scheme="md5")

    def test_rejects_negative_intervals(self):
        with pytest.raises(ConfigurationError):
            ProtectionConfig(interval=-1)
        with pytest.raises(ConfigurationError):
            ProtectionConfig(vector_interval=-2)

    def test_frozen_and_hashable(self):
        config = ProtectionConfig.paper_default()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.interval = 5
        assert len({config, ProtectionConfig.paper_default()}) == 1

    def test_replace_revalidates(self):
        config = ProtectionConfig.paper_default()
        assert config.replace(interval=8).interval == 8
        with pytest.raises(ConfigurationError):
            config.replace(element_scheme="nope")

    def test_factories_mint_fresh_objects(self):
        config = ProtectionConfig.deferred(window=4)
        assert config.policy() is not config.policy()
        engine = config.engine()
        assert isinstance(engine, DeferredVerificationEngine)
        assert engine.policy.interval == 4

    def test_wrap_matrix_idempotent_on_protected(self):
        A, _, _ = make_system(6)
        config = ProtectionConfig.paper_default()
        pmat = ProtectedCSRMatrix(A, "sed", "sed")
        assert config.wrap_matrix(pmat) is pmat
        wrapped = config.wrap_matrix(A)
        assert isinstance(wrapped, ProtectedCSRMatrix)
        assert wrapped.elements.scheme == "secded64"


class TestRegistry:
    def test_all_four_methods_registered(self):
        assert set(available_methods()) == set(METHODS)
        assert set(repro.available_methods()) == set(METHODS)

    def test_unknown_method_raises_with_choices(self):
        with pytest.raises(ConfigurationError, match="multigrid"):
            get_method("multigrid")
        with pytest.raises(ValueError):  # ConfigurationError is a ValueError
            solve(None, None, method="multigrid")

    @pytest.mark.parametrize("method", METHODS)
    def test_plain_solve_matches_truth(self, method):
        A, b, x_true = make_system()
        res = repro.solve(A, b, method=method, eps=1e-24, max_iters=20_000)
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-8)

    @pytest.mark.parametrize("method", METHODS)
    def test_deferred_protected_solve_all_methods(self, method):
        """The acceptance criterion: engine-threaded vector protection
        for every method under ProtectionConfig.deferred(window=16)."""
        A, b, x_true = make_system()
        res = repro.solve(
            A, b, method=method, eps=1e-24, max_iters=20_000,
            protection=ProtectionConfig.deferred(window=16),
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert res.info["vector_scheme"] == "secded64"
        assert res.info["deferred_stores"] > 0
        assert res.info["cached_reads"] > 0
        assert res.info["bounds_checks"] > res.info["full_checks"]

    @pytest.mark.parametrize("method", METHODS)
    def test_paper_default_protected_solve_all_methods(self, method):
        A, b, x_true = make_system()
        res = repro.solve(
            A, b, method=method, eps=1e-24, max_iters=20_000,
            protection=ProtectionConfig.paper_default(),
        )
        assert res.converged
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert res.info["full_checks"] > 0

    def test_disabled_config_runs_plain(self):
        A, b, x_true = make_system()
        res = solve(A, b, protection=ProtectionConfig.off(), eps=1e-24)
        assert np.allclose(res.x, x_true, atol=1e-8)
        assert "full_checks" not in res.info

    def test_protected_matrix_decoded_for_plain_solve(self):
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        res = solve(pmat, b, protection=None, eps=1e-24)
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_prewrapped_matrix_not_reencoded(self):
        """Campaigns hand over injected matrices; wrap must be identity."""
        A, b, _ = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        config = ProtectionConfig.paper_default()
        assert config.wrap_matrix(pmat) is pmat

    def test_method_specific_kwargs_pass_through(self):
        A, b, x_true = make_system()
        res = solve(A, b, method="ppcg", inner_steps=6, eps=1e-24)
        assert res.info["inner_steps"] == 6
        res = solve(A, b, method="jacobi", check_every=5, eps=1e-24,
                    max_iters=20_000)
        assert np.allclose(res.x, x_true, atol=1e-8)


class TestProtectionSession:
    def test_one_engine_across_solves(self):
        A, b, x_true = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        engine = session.engine
        r1 = session.solve(A, b, eps=1e-24)
        r2 = session.solve(A, b, r1.x, method="cg", eps=1e-24)
        assert session.engine is engine
        assert np.allclose(r2.x, x_true, atol=1e-7)
        # Stats are cumulative across both solves.
        assert session.stats.cached_reads >= r1.info["cached_reads"]

    def test_dirty_windows_span_solve_boundary(self):
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=128))
        session.solve(A, b, eps=1e-24)
        # No per-solve finalize: buffered writes are still pending.
        assert session.pending_windows() > 0
        assert session.stats.deferred_stores > 0
        flushed_before = session.stats.dirty_flushes
        session.end_step()
        assert session.pending_windows() == 0
        assert session.stats.dirty_flushes > flushed_before
        assert session.steps_completed == 1

    def test_end_step_releases_transients(self):
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        session.solve(A, b, eps=1e-24)
        assert len(session.engine._vectors) > 0
        assert len(session.engine._matrices) == 1
        session.end_step()
        assert len(session.engine._vectors) == 0
        assert len(session.engine._matrices) == 0

    def test_prewrapped_matrices_released_per_step(self):
        """A long-running session looping over fresh pre-wrapped matrices
        must not accumulate them (no O(N^2) sweep work, no leak)."""
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        sweep_costs = []
        for _ in range(3):
            pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
            session.solve(pmat, b, eps=1e-24)
            assert len(session.engine._matrices) == 1  # only this step's
            before = session.stats.full_checks
            session.end_step()
            sweep_costs.append(session.stats.full_checks - before)
            assert len(session.engine._matrices) == 0
        # Each sweep checks one matrix, not every past one.
        assert sweep_costs[0] == sweep_costs[1] == sweep_costs[2]

    def test_reused_matrix_tracked_once_per_window(self):
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        r1 = session.solve(pmat, b, eps=1e-24)
        session.solve(pmat, b, r1.x, eps=1e-24)
        assert sum(region is pmat for region in session._transient) == 1
        session.end_step()
        # Re-registered on the next solve after release.
        session.solve(pmat, b, eps=1e-24)
        assert len(session.engine._matrices) == 1

    def test_session_solve_mixed_methods(self):
        A, b, x_true = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=8))
        for method in METHODS:
            res = session.solve(A, b, method=method, eps=1e-24, max_iters=20_000)
            assert res.converged
            assert np.allclose(res.x, x_true, atol=1e-7)
            session.end_step()
        assert session.steps_completed == len(METHODS)

    def test_disabled_session_runs_plain(self):
        A, b, x_true = make_system()
        session = ProtectionSession(ProtectionConfig.off())
        assert session.engine is None
        res = session.solve(A, b, eps=1e-24)
        assert np.allclose(res.x, x_true, atol=1e-8)
        session.end_step()  # no-op, still counts the step
        assert session.steps_completed == 1

    def test_disabled_session_decodes_wrapped_matrix(self):
        """Parity with registry.solve: protection off + protected input."""
        A, b, x_true = make_system()
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        session = ProtectionSession(ProtectionConfig.off())
        res = session.solve(pmat, b, method="jacobi", eps=1e-24, max_iters=20_000)
        assert np.allclose(res.x, x_true, atol=1e-8)

    def test_info_counters_are_per_solve_not_cumulative(self):
        """A shared session engine must still yield per-solve info blocks;
        the cumulative totals live on session.stats."""
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.paper_default())
        r1 = session.solve(A, b, eps=1e-24)
        r2 = session.solve(A, b, r1.x, eps=1e-24)
        # Solve 2 warm-starts from the solution: far fewer checks than
        # solve 1, and nothing close to the running total.
        assert r2.info["full_checks"] < r1.info["full_checks"]
        assert session.stats.full_checks >= (
            r1.info["full_checks"] + r2.info["full_checks"]
        )

    def test_solve_dispatches_session_protection(self):
        A, b, x_true = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        res = solve(A, b, method="cg", protection=session, eps=1e-24)
        assert np.allclose(res.x, x_true, atol=1e-7)
        assert session.pending_windows() > 0  # session semantics applied

    def test_context_manager_sweeps_on_exit(self):
        A, b, _ = make_system()
        with ProtectionSession(ProtectionConfig.deferred(window=128)) as session:
            session.solve(A, b, eps=1e-24)
            assert session.pending_windows() > 0
        assert session.pending_windows() == 0
        assert session.steps_completed == 1

    def test_due_solve_releases_regions_so_retry_recovers(self):
        """The paper's recovery story on a session: a DUE solve must not
        poison later sweeps — re-encode, retry, end_step stays clean."""
        from repro.bits.float_bits import f64_to_u64
        from repro.errors import DetectedUncorrectableError

        A, b, x_true = make_system()
        session = ProtectionSession(
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             vector_scheme="secded64", interval=8, correct=False)
        )
        bad = ProtectedCSRMatrix(A, "sed", "sed")
        f64_to_u64(bad.values)[11] ^= np.uint64(1) << np.uint64(19)
        with pytest.raises(DetectedUncorrectableError):
            session.solve(bad, b, eps=1e-24)
        # The corrupt matrix and the aborted solve's vectors are gone.
        assert len(session.engine._matrices) == 0
        assert len(session.engine._vectors) == 0
        retry = session.solve(A, b, eps=1e-24)  # re-encoded from pristine data
        assert np.allclose(retry.x, x_true, atol=1e-7)
        session.end_step()  # must not re-raise from the dead matrix

    def test_exit_sweeps_after_unrelated_exception(self):
        """An unrelated error must not drop the mandatory sweep owed to
        solves that already completed inside the context."""
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=128))
        with pytest.raises(ValueError):
            with session:
                session.solve(A, b, eps=1e-24)
                assert session.pending_windows() > 0
                session.solve(A, b, method="jacobbi")  # typo
        assert session.pending_windows() == 0  # swept on exit anyway
        assert session.stats.dirty_flushes > 0

    def test_exit_skips_sweep_on_integrity_error(self):
        from repro.bits.float_bits import f64_to_u64
        from repro.errors import DetectedUncorrectableError

        A, b, _ = make_system()
        session = ProtectionSession(
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             vector_scheme=None, interval=1, correct=False)
        )
        bad = ProtectedCSRMatrix(A, "sed", "sed")
        f64_to_u64(bad.values)[3] ^= np.uint64(1) << np.uint64(9)
        with pytest.raises(DetectedUncorrectableError):
            with session:
                session.solve(bad, b, eps=1e-24)
        assert session.steps_completed == 0  # no sweep counted

    def test_due_at_end_step_does_not_poison_session(self):
        """A sweep that raises must still release the window's regions:
        the session stays usable for the re-encode-and-retry story."""
        from repro.bits.float_bits import f64_to_u64
        from repro.errors import DetectedUncorrectableError

        A, b, x_true = make_system()
        session = ProtectionSession(
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             vector_scheme="secded64", interval=16, correct=False)
        )
        session.solve(A, b, eps=1e-24)
        pmat = next(r for r in session._transient
                    if isinstance(r, ProtectedCSRMatrix))
        f64_to_u64(pmat.values)[7] ^= np.uint64(1) << np.uint64(13)
        with pytest.raises(DetectedUncorrectableError):
            session.end_step()
        assert len(session.engine._matrices) == 0
        assert len(session.engine._vectors) == 0
        assert session.steps_completed == 0
        retry = session.solve(A, b, eps=1e-24)
        session.end_step()  # must not re-raise from the dead window
        assert np.allclose(retry.x, x_true, atol=1e-7)
        assert session.steps_completed == 1

    def test_due_mid_window_aborts_whole_window(self):
        """Corruption in a region tracked by an *earlier* solve of the
        same window releases everything — no stale region survives to
        poison later sweeps."""
        from repro.bits.float_bits import f64_to_u64
        from repro.errors import DetectedUncorrectableError

        A, b, x_true = make_system()
        session = ProtectionSession(
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             vector_scheme=None, interval=8, correct=False)
        )
        pmat = ProtectedCSRMatrix(A, "sed", "sed")
        session.solve(pmat, b, eps=1e-24)
        f64_to_u64(pmat.values)[21] ^= np.uint64(1) << np.uint64(40)
        with pytest.raises(DetectedUncorrectableError):
            session.solve(pmat, b, eps=1e-24)  # up-front verify fires
        assert len(session._transient) == 0
        assert len(session.engine._matrices) == 0
        retry = session.solve(A, b, eps=1e-24)
        session.end_step()
        assert np.allclose(retry.x, x_true, atol=1e-7)

    def test_retire_step_bounds_window_accumulation(self):
        """retire_step verifies and releases finished regions so a long
        step window does not pile up dead matrices/vectors."""
        A, b, _ = make_system()
        session = ProtectionSession(ProtectionConfig.deferred(window=64))
        for _ in range(3):
            pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
            r = session.solve(pmat, b, eps=1e-24)
            session.retire_step()
            # The per-step matrix retires with a full check; only vectors
            # still carrying dirty windows stay registered.
            assert len(session.engine._matrices) == 0
            assert all(
                v.dirty_window is not None
                for _, v in session.engine._vectors.values()
            )
            b = r.x
        checks_before = session.stats.full_checks
        session.end_step()  # sweep covers only the surviving regions
        assert session.stats.full_checks == checks_before
        assert len(session.engine._vectors) == 0

    def test_session_checks_still_detect_corruption(self):
        """Deferral across solves must not weaken detection: a flip in a
        tracked region surfaces at the next scheduled check or sweep."""
        from repro.bits.float_bits import f64_to_u64
        from repro.errors import DetectedUncorrectableError

        A, b, _ = make_system()
        session = ProtectionSession(
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             vector_scheme=None, interval=128, correct=False)
        )
        session.solve(A, b, eps=1e-24)
        pmat = session._transient[0]
        f64_to_u64(pmat.values)[7] ^= np.uint64(1) << np.uint64(13)
        with pytest.raises(DetectedUncorrectableError):
            session.end_step()


class TestSupportingPolicyPlumbing:
    def test_engine_policy_still_rejected_with_conflicting_policy(self):
        A, b, _ = make_system(6)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        engine = DeferredVerificationEngine(CheckPolicy(interval=16))
        with pytest.raises(ConfigurationError):
            get_method("cg").protected(
                pmat, b, policy=CheckPolicy(interval=1), engine=engine
            )

    def test_session_without_engine_uses_session_engine(self):
        """session= without engine= must ride the session's engine, not a
        silent throwaway that end_step() would never sweep."""
        A, b, _ = make_system(6)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        session = ProtectionSession(ProtectionConfig.deferred(window=64))
        get_method("cg").protected(
            pmat, b, eps=1e-24, vector_scheme="secded64", session=session
        )
        assert len(session.engine._vectors) == 3  # x, r, p live on it
        session.end_step()
        assert len(session.engine._vectors) == 0

    def test_session_with_foreign_engine_rejected(self):
        A, b, _ = make_system(6)
        pmat = ProtectedCSRMatrix(A, "secded64", "secded64")
        session = ProtectionSession(ProtectionConfig.deferred(window=16))
        with pytest.raises(ConfigurationError):
            get_method("cg").protected(
                pmat, b, engine=DeferredVerificationEngine(CheckPolicy()),
                session=session,
            )
        with pytest.raises(ConfigurationError):
            get_method("cg").protected(
                pmat, b, session=ProtectionSession(ProtectionConfig.off()),
            )
