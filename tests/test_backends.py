"""Backend registry, fused-kernel parity, allocation bounds, striping.

Four contracts pinned here:

* the registry resolves ``numpy_fused`` by default, honours
  ``REPRO_BACKEND`` and the engine's :func:`repro.backends.active`
  override, and falls back cleanly when a named backend is unusable;
* the fused kernels compute bit-identical syndromes/encodes to the
  direct (unchunked) formulas, and match numba when it is present;
* a full SECDED matrix check allocates no temporaries proportional to
  nnz — the persistent lane buffers and scratch do the work;
* striped verification detects an injected flip within
  ``interval * n_stripes`` matrix accesses, for every scheme.
"""

import tracemalloc

import numpy as np
import pytest

from repro import backends
from repro.backends.numpy_fused import NumpyFusedBackend
from repro.bits.float_bits import f64_to_u64
from repro.bits.popcount import parity64
from repro.csr.build import five_point_operator
from repro.csr.spmv import spmv
from repro.ecc.profiles import csr_element_secded, vector_secded128
from repro.errors import ConfigurationError, DetectedUncorrectableError
from repro.protect.config import ProtectionConfig
from repro.protect.matrix import ProtectedCSRMatrix
from repro.protect.policy import CheckPolicy
from repro.protect.vector import ProtectedVector


def make_matrix(n=12, seed=3):
    rng = np.random.default_rng(seed)
    kx = rng.uniform(0.5, 2.0, (n, n))
    ky = rng.uniform(0.5, 2.0, (n, n))
    return five_point_operator(n, n, kx, ky, 0.25)


def encoded_lanes(code, n=257, seed=0):
    rng = np.random.default_rng(seed)
    lanes = rng.integers(0, 2**63, (n, code.n_lanes), dtype=np.uint64)
    lanes &= code._all_mask  # zero the padding outside the codeword
    code.encode(lanes)
    return lanes


class TestRegistry:
    def test_default_is_numpy_fused(self):
        assert backends.get_backend().name == "numpy_fused"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy_fused")
        assert backends.get_backend().name == "numpy_fused"

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError):
            backends.get_backend("no-such-backend")

    def test_numpy_fused_always_available(self):
        assert "numpy_fused" in backends.available_backends()

    def test_numba_falls_back_cleanly_when_absent(self):
        """get_backend('numba') must never fail the solve outright."""
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: the fallback path is not reachable")
        except ImportError:
            pass
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = backends.get_backend("numba")
        assert backend.name == backends.DEFAULT_BACKEND
        assert "numba" not in backends.available_backends()

    def test_active_override_wins(self):
        marker = NumpyFusedBackend()
        with backends.active(marker) as installed:
            assert installed is marker
            assert backends.get_backend() is marker
        assert backends.get_backend() is not marker

    def test_active_none_is_passthrough(self):
        with backends.active(None) as installed:
            assert installed is backends.get_backend()

    def test_config_with_unavailable_backend_still_solves(self):
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: nothing to fall back from")
        except ImportError:
            pass
        matrix = make_matrix()
        b = np.random.default_rng(0).standard_normal(matrix.n_rows)
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        config = ProtectionConfig.deferred(window=4).replace(backend="numba")
        from repro.solvers.registry import solve

        with pytest.warns(RuntimeWarning, match="falling back"):
            res = solve(pmat, b, method="cg", protection=config,
                        eps=1e-20, max_iters=200)
        assert res.converged


class TestFusedKernelParity:
    """The chunked kernels equal the direct formulas, bit for bit."""

    @pytest.mark.parametrize("factory", [csr_element_secded, vector_secded128])
    def test_syndrome_matches_direct_formula(self, factory):
        code = factory()
        lanes = encoded_lanes(code, n=3 * code.scratch.chunk // 2 + 7)
        # Corrupt a scattering of codewords so syndromes are nonzero too.
        lanes[5, 0] ^= np.uint64(1) << np.uint64(33)
        lanes[-1, code.n_lanes - 1] ^= np.uint64(1)
        syn, ptot = code.syndrome(lanes)
        m = code.n_syndrome_bits
        expect_syn = np.zeros(lanes.shape[0], dtype=np.uint16)
        for j in range(m):
            sj = parity64(np.bitwise_xor.reduce(lanes & code._full_masks[j], axis=-1))
            expect_syn |= sj.astype(np.uint16) << np.uint16(j)
        expect_p = parity64(np.bitwise_xor.reduce(lanes & code._all_mask, axis=-1))
        assert np.array_equal(syn, expect_syn)
        assert np.array_equal(ptot, expect_p)

    @pytest.mark.parametrize("factory", [csr_element_secded, vector_secded128])
    def test_scan_counts_exactly_the_detect_flags(self, factory):
        code = factory()
        lanes = encoded_lanes(code, n=501, seed=7)
        assert code.scan(lanes) == 0
        rng = np.random.default_rng(8)
        hits = rng.choice(501, size=9, replace=False)
        for i in hits:
            lanes[i, 0] ^= np.uint64(1) << np.uint64(rng.integers(0, 60))
        assert code.scan(lanes) == int(code.detect(lanes).sum())

    def test_encode_spans_chunk_boundaries(self):
        code = csr_element_secded()
        chunk = code.scratch.chunk
        lanes = encoded_lanes(code, n=chunk + 3, seed=11)
        assert code.scan(lanes) == 0  # valid across the chunk seam

    def test_backend_spmv_matches_reference(self):
        matrix = make_matrix()
        x = np.random.default_rng(5).standard_normal(matrix.n_cols)
        expect = spmv(matrix.values, matrix.colidx, matrix.rowptr, x, matrix.n_rows)
        got = backends.get_backend().spmv(
            matrix.values,
            matrix.colidx.astype(np.int64),
            matrix.rowptr.astype(np.int64),
            x,
            matrix.n_rows,
        )
        assert np.allclose(got, expect)


@pytest.mark.skipif(
    not pytest.importorskip("repro.backends.numba_backend").HAS_NUMBA,
    reason="numba not installed",
)
class TestNumbaParity:  # pragma: no cover - exercised only with numba
    def test_syndrome_and_encode_match_numpy(self):
        numba_backend = backends.get_backend("numba")
        fused = backends.get_backend("numpy_fused")
        code = csr_element_secded()
        lanes = encoded_lanes(code, n=403, seed=13)
        lanes[17, 0] ^= np.uint64(1) << np.uint64(40)
        syn_a = np.empty(403, np.uint16)
        par_a = np.empty(403, np.uint8)
        syn_b = syn_a.copy()
        par_b = par_a.copy()
        fused.syndrome_into(code, lanes, syn_a, par_a)
        numba_backend.syndrome_into(code, lanes, syn_b, par_b)
        assert np.array_equal(syn_a, syn_b) and np.array_equal(par_a, par_b)
        assert fused.scan(code, lanes) == numba_backend.scan(code, lanes)
        a, b = lanes.copy(), lanes.copy()
        fused.encode(code, a)
        numba_backend.encode(code, b)
        assert np.array_equal(a, b)

    def test_spmv_matches_numpy(self):
        numba_backend = backends.get_backend("numba")
        matrix = make_matrix()
        x = np.random.default_rng(5).standard_normal(matrix.n_cols)
        expect = matrix.matvec(x)
        got = numba_backend.spmv(
            matrix.values,
            matrix.colidx.astype(np.int64),
            matrix.rowptr.astype(np.int64),
            x,
            matrix.n_rows,
        )
        assert np.allclose(got, expect)

    def test_fused_gather_verify_matches_numpy(self):
        """Same flagged windows, decoded indices and products, clean or
        corrupt, as the numpy_fused verify-in-SpMV primitive."""
        numba_backend = backends.get_backend("numba")
        fused = backends.get_backend("numpy_fused")
        assert numba_backend.supports_fused_verify
        matrix = make_matrix(n=16)
        x = np.random.default_rng(5).standard_normal(matrix.n_cols)
        for flip in (None, 100):
            pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
            if flip is not None:
                f64_to_u64(pmat.values)[flip] ^= np.uint64(1) << np.uint64(31)
            el = pmat.elements
            results = []
            for backend in (fused, numba_backend):
                col64 = np.zeros(pmat.nnz, dtype=np.int64)
                products = np.zeros(pmat.nnz, dtype=np.float64)
                bad = backend.fused_gather_verify(
                    el.fused_code(), el.values, el.colidx, x,
                    el.index_mask, pmat.n_cols, col64, products,
                )
                results.append((bad, col64, products))
            assert results[0][0] == results[1][0]
            assert (results[0][0] == []) == (flip is None)
            assert np.array_equal(results[0][1], results[1][1])
            assert np.array_equal(results[0][2], results[1][2])

    def test_fused_solve_matches_numpy_backend(self):
        matrix = make_matrix()
        x = np.random.default_rng(9).standard_normal(matrix.n_cols)
        results = {}
        for name in ("numpy_fused", "numba"):
            pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
            y, reports = pmat.spmv_verified(x, backend=backends.get_backend(name))
            assert reports["csr_elements"].ok
            results[name] = y
        assert np.array_equal(results["numpy_fused"], results["numba"])


class TestAllocationFreeChecks:
    def test_persistent_lane_buffer_identity(self):
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        pmat.check_all(correct=False)
        buf1 = pmat.elements._lane_buf
        pmat.check_all(correct=False)
        assert pmat.elements._lane_buf is buf1
        rp1 = pmat.rowptr_protected._lane_buf
        pmat.check_all(correct=True)
        assert pmat.rowptr_protected._lane_buf is rp1
        assert pmat.elements._lane_buf is buf1

    def test_clean_matrix_check_allocates_no_nnz_temporaries(self):
        """The acceptance bound: a full SECDED check is allocation-free.

        After one warm-up check (which builds the persistent buffers),
        every later clean check may allocate only O(chunk)-sized
        scratch — far below the nnz-proportional arrays the old path
        materialised per check.
        """
        pmat = ProtectedCSRMatrix(make_matrix(n=48), "secded64", "secded64")
        nnz_bytes = pmat.nnz * 16  # the old (nnz, 2)-uint64 temporary
        pmat.check_all(correct=False)  # warm: builds lane buffers
        pmat.clean_views()
        tracemalloc.start()
        pmat.check_all(correct=False)
        pmat.clean_views()  # snapshot refresh is in-place too
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert pmat.nnz > 10_000  # the bound below must be meaningful
        assert peak < nnz_bytes / 8

    def test_clean_vector_check_is_compact(self):
        vec = ProtectedVector(np.linspace(0.0, 1.0, 1024), "secded64")
        report = vec.check(correct=False)
        assert report._status is None  # compact all-OK form
        assert report.ok and report.n_codewords == 1024
        # materialises lazily, and correctly
        assert report.status.shape == (1024,)
        assert not report.status.any()


MATRIX_SCHEMES = ["sed", "secded64", "secded128", "crc32c"]


class TestStripedVerification:
    @pytest.mark.parametrize("scheme", MATRIX_SCHEMES)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flip_detected_within_interval_times_stripes(self, scheme, seed):
        """Property: full coverage every interval * n_stripes accesses."""
        interval, n_stripes = 3, 4
        matrix = make_matrix(seed=seed)
        pmat = ProtectedCSRMatrix(matrix, scheme, scheme)
        config = ProtectionConfig(
            element_scheme=scheme, rowptr_scheme=scheme,
            interval=interval, correct=False, stripes=n_stripes,
            fused_verify=False,  # this test exercises the striped sweep path
        )
        engine = config.engine()
        x = np.ones(matrix.n_cols)
        engine.spmv(pmat, x)  # access 0 checks stripe 0, clean
        rng = np.random.default_rng(seed + 100)
        flip_at = int(rng.integers(0, pmat.nnz))
        f64_to_u64(pmat.values)[flip_at] ^= np.uint64(1) << np.uint64(21)
        detected = None
        for access in range(1, interval * n_stripes + 1):
            try:
                engine.spmv(pmat, x)
            except DetectedUncorrectableError:
                detected = access
                break
        assert detected is not None
        assert detected <= interval * n_stripes
        assert engine.stats.stripe_checks > 0

    def test_stripe_reports_carry_absolute_indices(self):
        """A flip in a late stripe is reported at its real codeword index."""
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        n_stripes = 4
        target = pmat.nnz - 2  # lands in the last stripe
        # double flip -> uncorrectable under secded64
        f64_to_u64(pmat.values)[target] ^= np.uint64(0b11) << np.uint64(30)
        k = (target * n_stripes) // pmat.nnz
        report = pmat.check_stripe(k, n_stripes, correct=False)["csr_elements"]
        assert report.uncorrectable_indices().tolist() == [target]

    def test_stripe_union_covers_every_codeword(self):
        """check_stripe over a full rotation equals one check_all."""
        pmat = ProtectedCSRMatrix(make_matrix(), "secded64", "secded64")
        n_stripes = 5
        total = {"csr_elements": 0, "row_pointer": 0}
        for k in range(n_stripes):
            reports = pmat.check_stripe(k, n_stripes, correct=False)
            for region, report in reports.items():
                total[region] += report.n_codewords
        assert total["csr_elements"] == pmat.elements.n_codewords
        assert total["row_pointer"] == pmat.rowptr_protected.n_codewords

    @pytest.mark.parametrize("scheme", MATRIX_SCHEMES)
    def test_stripe_rotation_localises_rowptr_flip(self, scheme):
        """A row-pointer flip is caught by exactly one stripe of the rotation."""
        pmat = ProtectedCSRMatrix(make_matrix(), scheme, scheme)
        pmat.rowptr_protected.raw[7] ^= np.uint32(1) << np.uint32(5)
        n_stripes = 3
        bad_stripes = [
            k for k in range(n_stripes)
            if not pmat.check_stripe(k, n_stripes, correct=False)["row_pointer"].ok
        ]
        assert len(bad_stripes) == 1

    def test_finalize_sweep_is_always_full(self):
        """The end-of-step sweep ignores striping: nothing escapes it."""
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        config = ProtectionConfig(
            element_scheme="secded64", rowptr_scheme="secded64",
            interval=1000, correct=False, stripes=8,
            fused_verify=False,  # fused coverage would legitimately skip it
        )
        engine = config.engine()
        engine.spmv(pmat, np.ones(matrix.n_cols))
        f64_to_u64(pmat.values)[11] ^= np.uint64(1) << np.uint64(13)
        with pytest.raises(DetectedUncorrectableError):
            engine.finalize()

    def test_eager_kernel_path_honours_stripes(self):
        """verify_matrix (no engine) rotates stripes like the engine does."""
        from repro.protect.kernels import verify_matrix

        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        policy = CheckPolicy(interval=1, correct=False, stripes=4)
        for _ in range(8):  # two full rotations of due accesses
            verify_matrix(pmat, policy)
        assert policy.stats.stripe_checks == 8
        assert policy.stats.full_checks == 0
        f64_to_u64(pmat.values)[5] ^= np.uint64(1) << np.uint64(9)
        with pytest.raises(DetectedUncorrectableError):
            for _ in range(4):  # at most one rotation until the stripe hits
                verify_matrix(pmat, policy)
        with pytest.raises(DetectedUncorrectableError):
            verify_matrix(pmat, policy, force=True)  # sweep is always full
        assert policy.stats.full_checks == 1

    def test_coo_wrapper_falls_back_to_full_checks(self):
        """Containers without check_stripe still verify (full, not crash)."""
        from repro.csr.coo import COOMatrix
        from repro.protect.coo_elements import ProtectedCOOMatrix
        from repro.protect.kernels import verify_matrix

        csr = make_matrix()
        dense_rows = np.repeat(
            np.arange(csr.n_rows, dtype=np.uint32), np.diff(csr.rowptr.astype(np.int64))
        )
        coo = COOMatrix(dense_rows, csr.colidx.copy(), csr.values.copy(), csr.shape)
        pmat = ProtectedCOOMatrix(coo, "secded128")
        policy = CheckPolicy(interval=1, correct=False, stripes=3)
        for _ in range(3):
            verify_matrix(pmat, policy)
        assert policy.stats.full_checks == 3
        assert policy.stats.stripe_checks == 0

    def test_policy_stripe_cursor_resets(self):
        policy = CheckPolicy(interval=1, stripes=3)
        assert [policy.next_stripe() for _ in range(4)] == [0, 1, 2, 0]
        policy.reset()
        assert policy.next_stripe() == 0

    def test_policy_rejects_bad_stripes(self):
        with pytest.raises(ValueError):
            CheckPolicy(stripes=0)
        with pytest.raises(ConfigurationError):
            ProtectionConfig(stripes=0)


class TestSnapshotValidation:
    def test_nondue_access_skips_decode_but_stays_guarded(self):
        """Non-due SpMVs gather via the validated snapshot: same results,
        bounds_checks now counts snapshot-guarded accesses."""
        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "secded64", "secded64")
        policy = CheckPolicy(interval=4, correct=False)
        engine = ProtectionConfig.deferred(window=4).engine()
        engine.policy = policy
        x = np.random.default_rng(2).standard_normal(matrix.n_cols)
        expect = matrix.matvec(x)
        for _ in range(6):
            assert np.allclose(engine.spmv(pmat, x), expect)
        assert policy.stats.bounds_checks == 4  # accesses 1..3, 5

    def test_out_of_range_index_raises_at_snapshot_rebuild(self):
        """The documented exception-surface change: a raw out-of-range
        index surfaces as BoundsViolationError when the snapshot is next
        populated, not on intermediate snapshot-guarded accesses."""
        from repro.errors import BoundsViolationError

        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, None, None)  # unprotected regions
        x = np.ones(matrix.n_cols)
        pmat.matvec_unchecked(x)
        pmat.colidx[3] = np.uint32(10_000)  # way past n_cols
        pmat.matvec_unchecked(x)  # cached snapshot: no raise, no fault
        pmat.invalidate_clean_views()
        with pytest.raises(BoundsViolationError):
            pmat.matvec_unchecked(x)
