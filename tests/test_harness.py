"""Harness tests: timing, host overhead measurement, experiment registry."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    format_interval_series,
    format_table,
    measure_element_overheads,
    measure_interval_curve,
    run_experiment,
    time_callable,
)
from repro.harness.overhead import tealeaf_like_matrix
from repro.harness.timing import Timing, overhead_ratio


class TestTiming:
    def test_time_callable_counts(self):
        calls = []
        timing = time_callable(lambda: calls.append(1), repeats=4, warmup=2)
        assert len(calls) == 6
        assert len(timing.samples) == 4
        assert timing.best <= timing.mean

    def test_overhead_ratio(self):
        base = Timing(samples=[1.0, 1.1])
        prot = Timing(samples=[1.5, 1.6])
        assert overhead_ratio(prot, base) == pytest.approx(0.5)


class TestOverheadMeasurement:
    def test_tealeaf_like_matrix_shape(self):
        m = tealeaf_like_matrix(16)
        assert m.shape == (256, 256)
        assert m.is_fixed_width() == 5

    def test_element_overheads_positive_and_ordered(self):
        out = measure_element_overheads(n=48, iters=2, repeats=2)
        assert set(out) == {"sed", "secded64", "secded128", "crc32c"}
        assert all(v > -0.5 for v in out.values())
        # SED must be the cheapest scheme (the paper's robust finding).
        assert out["sed"] < out["secded64"]
        assert out["sed"] < out["crc32c"]

    def test_interval_curve_decreases(self):
        curve = measure_interval_curve("secded64", n=48, intervals=(1, 8, 64),
                                       iters=16, repeats=2)
        assert curve[64] < curve[1]


class TestExperimentRegistry:
    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "t1"
        }

    def test_fig4_rows_have_model_and_host(self):
        rows = run_experiment("fig4", n=48, repeats=2)
        sources = {r.source for r in rows}
        assert sources == {"model", "measured"}
        platforms = {r.series for r in rows}
        assert "host" in platforms and "broadwell" in platforms
        # Anchored rows carry the paper value.
        anchored = [r for r in rows if r.paper_value is not None]
        assert anchored

    def test_fig8_interval_rows(self):
        rows = run_experiment("fig8", n=48, repeats=2)
        gtx = {int(r.key): r for r in rows if r.series == "gtx1080ti"}
        assert gtx[1].paper_value == pytest.approx(0.88)
        assert gtx[1].overhead > gtx[128].overhead

    def test_report_formatting(self):
        rows = run_experiment("fig4", n=48, repeats=2)
        table = format_table(rows, title="Fig 4")
        assert "Fig 4" in table and "host" in table and "%" in table

    def test_interval_formatting(self):
        rows = run_experiment("fig6", n=48, repeats=2)
        table = format_interval_series(rows, title="Fig 6")
        assert "N=   1" in table or "N=  1" in table.replace("  ", " ")
