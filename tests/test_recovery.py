"""Checkpointed DUE recovery: the solve survives and still converges.

The acceptance bar (ISSUE 4): with ``recovery="rollback"`` or
``"repopulate"``, a CG solve under a Poisson fault process that triggers
at least one DUE completes and matches the unprotected reference
solution within solver tolerance; ``recovery="raise"`` (and no recovery
at all) preserves the historical exception surface.
"""

import numpy as np
import pytest

from repro.csr import five_point_operator
from repro.errors import ConfigurationError, DetectedUncorrectableError
from repro.faults import (
    FaultSpec,
    PoissonProcess,
    faulty_solve,
    inject_into_matrix,
    inject_into_vector,
)
from repro.faults.injector import Region
from repro.protect import ProtectionConfig, ProtectionSession
from repro.recover import CheckpointStore, RecoveryManager, RecoveryPolicy
from repro.solvers.registry import get_method, solve

EPS = 1e-22
TOL = dict(rtol=1e-6, atol=1e-9)


def make_matrix(n=12, seed=0):
    rng = np.random.default_rng(seed)
    return five_point_operator(
        n, n, rng.uniform(0.5, 2.0, (n, n)), rng.uniform(0.5, 2.0, (n, n)), 0.3
    )


def make_problem(n=12, seed=0):
    matrix = make_matrix(n, seed)
    b = np.random.default_rng(seed + 100).standard_normal(matrix.n_rows)
    return matrix, b


def sed_config(recovery, **overrides):
    """Detection-only SED everywhere: every flip is a guaranteed DUE."""
    base = dict(
        element_scheme="sed", rowptr_scheme="sed", vector_scheme="sed",
        interval=4, correct=False, recovery=recovery,
    )
    base.update(overrides)
    return ProtectionConfig(**base)


def run_cg_with_hook(config, matrix, b, hook_factory):
    """Protected CG on a fresh engine with an iteration hook attached."""
    engine = config.engine()
    pmat = config.wrap_matrix(matrix)
    engine.add_iteration_hook(hook_factory(engine, pmat))
    return get_method("cg").protected(
        pmat, b, engine=engine, vector_scheme=config.vector_scheme, eps=EPS
    )


def flip_matrix_value_at(iteration, element=7, bit=33):
    """Hook factory: one values-region flip at the given iteration."""
    def factory(engine, pmat):
        state = {"i": 0}

        def hook():
            if state["i"] == iteration:
                inject_into_matrix(pmat, Region.VALUES, [FaultSpec(element, bit)])
                pmat.invalidate_clean_views()
            state["i"] += 1

        return hook
    return factory


def flip_vector_at(iteration, name="r", element=5, bit=20):
    """Hook factory: one state-vector flip at the given iteration.

    Injecting at a check-due iteration means raw storage is live (the
    previous iteration's store already committed), so the flip is
    detected rather than landing in dead dirty-window storage.
    """
    def factory(engine, pmat):
        state = {"i": 0}

        def hook():
            if state["i"] == iteration:
                inject_into_vector(
                    engine.registered_vectors()[name], [FaultSpec(element, bit)]
                )
            state["i"] += 1

        return hook
    return factory


# ---------------------------------------------------------------------------
class TestRecoveryPolicy:
    def test_bad_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(strategy="retry-harder")

    def test_bad_budgets_rejected(self):
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RecoveryPolicy(checkpoint_interval=0)

    def test_config_accepts_string_shorthand(self):
        config = ProtectionConfig(recovery="rollback")
        assert isinstance(config.recovery, RecoveryPolicy)
        assert config.recovery.strategy == "rollback"
        assert config.recovery == RecoveryPolicy(strategy="rollback")

    def test_config_stays_hashable(self):
        a = ProtectionConfig(recovery="repopulate")
        b = ProtectionConfig(recovery=RecoveryPolicy(strategy="repopulate"))
        assert hash(a) == hash(b) and a == b

    def test_raise_strategy_builds_no_manager(self):
        assert ProtectionConfig(recovery="raise").engine().recovery is None
        assert ProtectionConfig(recovery=None).engine().recovery is None
        assert ProtectionConfig(recovery="rollback").engine().recovery is not None

    def test_resilient_preset(self):
        config = ProtectionConfig.resilient(window=8, strategy="repopulate")
        assert config.interval == 8
        assert config.recovery.strategy == "repopulate"


class TestCheckpointStore:
    def test_snapshot_copies_and_rolls(self):
        store = CheckpointStore()
        x = np.arange(4.0)
        store.snapshot({"x": x}, {"it": 3})
        x[:] = 0.0
        saved = store.latest()
        assert saved.scalars["it"] == 3
        np.testing.assert_array_equal(saved.vectors["x"], np.arange(4.0))
        store.snapshot({"x": x}, {"it": 5})
        assert store.latest().scalars["it"] == 5
        assert store.snapshots_taken == 2

    def test_begin_solve_clears(self):
        store = CheckpointStore()
        token = object()
        store.put_matrix_source(token, "src")
        store.snapshot({}, {"it": 0})
        store.begin_solve()
        assert store.matrix_source(token) is None
        assert store.latest() is None


# ---------------------------------------------------------------------------
class TestMidSolveRecovery:
    @pytest.mark.parametrize("strategy", ["rollback", "repopulate"])
    def test_matrix_flip_recovers_and_matches_reference(self, strategy):
        matrix, b = make_problem()
        reference = solve(matrix, b, method="cg", eps=EPS)
        result = run_cg_with_hook(
            sed_config(strategy), matrix, b, flip_matrix_value_at(3)
        )
        assert result.converged
        assert np.allclose(result.x, reference.x, **TOL)
        rec = result.info["recovery"]
        assert rec["strategy"] == strategy
        assert rec["matrix_reencodes"] >= 1
        assert rec["rollbacks" if strategy == "rollback" else "repopulates"] >= 1

    def test_vector_flip_repopulate_is_transparent(self):
        matrix, b = make_problem()
        reference = solve(matrix, b, method="cg", eps=EPS)
        config = sed_config("repopulate", defer_writes=False)
        result = run_cg_with_hook(config, matrix, b, flip_vector_at(8))
        assert result.converged
        assert np.allclose(result.x, reference.x, **TOL)
        rec = result.info["recovery"]
        # Engine-level repair: no solver escalation was needed.
        assert rec["vector_repairs"] >= 1
        assert rec["dues"] == 0

    def test_vector_flip_rollback_restores_checkpoint(self):
        matrix, b = make_problem()
        reference = solve(matrix, b, method="cg", eps=EPS)
        config = sed_config("rollback", defer_writes=False)
        result = run_cg_with_hook(config, matrix, b, flip_vector_at(8))
        assert result.converged
        assert np.allclose(result.x, reference.x, **TOL)
        assert result.info["recovery"]["rollbacks"] >= 1

    @pytest.mark.parametrize("method", ["cg", "ppcg", "jacobi", "chebyshev"])
    def test_every_method_is_restartable(self, method):
        matrix, b = make_problem()
        reference = solve(matrix, b, method=method, eps=1e-18, max_iters=4000)
        config = sed_config("rollback", interval=4)
        engine = config.engine()
        pmat = config.wrap_matrix(matrix)
        engine.add_iteration_hook(flip_matrix_value_at(3)(engine, pmat))
        result = get_method(method).protected(
            pmat, b, engine=engine, vector_scheme="sed",
            eps=1e-18, max_iters=4000,
        )
        assert result.converged
        assert np.allclose(result.x, reference.x, rtol=1e-5, atol=1e-7)
        rec = result.info["recovery"]
        assert rec["rollbacks"] >= 1

    @pytest.mark.parametrize("strategy", ["rollback", "repopulate"])
    def test_presolve_corruption_recovers_via_persistent_source(self, strategy):
        """Corruption injected *before* the solve is caught by the
        up-front forced check; with an application-held persistent
        source registered, the solve survives instead of unwinding."""
        matrix, b = make_problem()
        reference = solve(matrix, b, method="cg", eps=EPS)
        config = sed_config(strategy)
        pmat = config.wrap_matrix(matrix)
        pristine = pmat.to_csr()
        inject_into_matrix(pmat, Region.VALUES, [FaultSpec(7, 33)])
        engine = config.engine()
        engine.recovery.store.put_matrix_source(pmat, pristine, persistent=True)
        result = get_method("cg").protected(
            pmat, b, engine=engine, vector_scheme="sed", eps=EPS
        )
        assert result.converged
        assert np.allclose(result.x, reference.x, **TOL)
        assert result.info["recovery"]["recoveries"] >= 1
        assert result.info["recovery"]["matrix_reencodes"] >= 1

    def test_presolve_corruption_without_source_still_raises(self):
        matrix, b = make_problem()
        config = sed_config("rollback")
        pmat = config.wrap_matrix(matrix)
        inject_into_matrix(pmat, Region.VALUES, [FaultSpec(7, 33)])
        engine = config.engine()
        with pytest.raises(DetectedUncorrectableError):
            get_method("cg").protected(
                pmat, b, engine=engine, vector_scheme="sed", eps=EPS
            )
        # The granted-but-failed attempt must not count as a recovery.
        assert engine.recovery.stats.dues == 1
        assert engine.recovery.stats.total_recoveries == 0

    def test_solver_campaign_recovery_axis_engages_in_solve(self):
        """run_solver_campaign with recovery= must route pre-solve DUEs
        through the recovery layer (not the redo-the-solve fallback)."""
        from repro.faults import SingleBitFlip, run_solver_campaign
        from repro.recover.manager import RecoveryManager

        matrix, b = make_problem(10, seed=2)
        grants = {"n": 0}
        original = RecoveryManager.on_due

        def counting(self, exc):
            action = original(self, exc)
            grants["n"] += 1
            return action

        RecoveryManager.on_due = counting
        try:
            result = run_solver_campaign(
                matrix, b, "sed", "sed", Region.VALUES, SingleBitFlip(),
                n_trials=10, seed=0, recovery="rollback",
            )
        finally:
            RecoveryManager.on_due = original
        assert grants["n"] >= 1
        assert result.info["recovered"] >= 1
        assert result.sdc_rate == 0.0

    def test_raise_strategy_preserves_exception_surface(self):
        matrix, b = make_problem()
        with pytest.raises(DetectedUncorrectableError):
            run_cg_with_hook(
                sed_config("raise"), matrix, b, flip_matrix_value_at(3)
            )

    def test_no_recovery_preserves_exception_surface(self):
        matrix, b = make_problem()
        with pytest.raises(DetectedUncorrectableError):
            run_cg_with_hook(
                sed_config(None), matrix, b, flip_matrix_value_at(3)
            )

    def test_exhausted_budget_reraises(self):
        matrix, b = make_problem()
        config = sed_config(RecoveryPolicy(strategy="rollback", max_retries=0))
        with pytest.raises(DetectedUncorrectableError):
            run_cg_with_hook(config, matrix, b, flip_matrix_value_at(3))

    def test_budget_resets_per_solve(self):
        matrix, b = make_problem()
        config = sed_config(RecoveryPolicy(strategy="rollback", max_retries=1))
        engine = config.engine()
        for _ in range(3):  # each solve spends its own budget
            pmat = config.wrap_matrix(matrix)
            state = {"i": 0}

            def hook(pmat=pmat, state=state):
                if state["i"] == 3:
                    inject_into_matrix(pmat, Region.VALUES, [FaultSpec(7, 33)])
                    pmat.invalidate_clean_views()
                state["i"] += 1

            engine.add_iteration_hook(hook)
            result = get_method("cg").protected(
                pmat, b, engine=engine, vector_scheme="sed", eps=EPS
            )
            assert result.converged
            engine._iteration_hooks.clear()


# ---------------------------------------------------------------------------
class TestPoissonRecoveryAcceptance:
    """The ISSUE 4 acceptance test: survive a live Poisson process."""

    @pytest.mark.parametrize("strategy", ["rollback", "repopulate"])
    def test_cg_survives_poisson_dues_and_matches_reference(self, strategy):
        matrix, b = make_problem(10, seed=1)
        reference = solve(matrix, b, method="cg", eps=EPS)
        config = ProtectionConfig(
            element_scheme="sed", rowptr_scheme="sed", vector_scheme=None,
            interval=2, correct=False,
            recovery=RecoveryPolicy(strategy=strategy, max_retries=64,
                                    checkpoint_interval=4),
        )
        # SED detects but never corrects, so every hit is a DUE; scan
        # seeds until a run both injects and recovers at least once.
        for seed in range(20):
            process = PoissonProcess(2e-6, rng=np.random.default_rng(seed))
            report = faulty_solve(
                matrix, b, process, method="cg", config=config,
                eps=EPS, max_iters=3000,
            )
            if report.detected_uncorrectable >= 1:
                break
        assert report.detected_uncorrectable >= 1, "no DUE triggered; rate too low"
        assert report.recovered >= 1
        assert report.result is not None and report.result.converged
        assert np.allclose(report.result.x, reference.x, **TOL)
        assert report.silent_at_end == 0

    def test_raise_config_aborts_the_run(self):
        matrix, b = make_problem(10, seed=1)
        config = ProtectionConfig(
            element_scheme="sed", rowptr_scheme="sed", vector_scheme=None,
            interval=2, correct=False,
        )
        for seed in range(20):
            process = PoissonProcess(2e-6, rng=np.random.default_rng(seed))
            report = faulty_solve(
                matrix, b, process, method="cg", config=config,
                eps=EPS, max_iters=3000,
            )
            if report.result is None:
                break
        assert report.result is None
        assert report.recovery == "raise"
        assert report.recovered == 0


# ---------------------------------------------------------------------------
class TestSessionAndDriverRecovery:
    def test_session_exposes_manager_and_abort_step(self):
        matrix, b = make_problem()
        session = ProtectionSession(sed_config("rollback"))
        assert session.recovery is not None
        # A pre-corrupted matrix has no clean source: the DUE surfaces
        # from the up-front forced check, before recovery can engage.
        pmat = sed_config("rollback").wrap_matrix(matrix)
        inject_into_matrix(pmat, Region.VALUES, [FaultSpec(3, 40)])
        with pytest.raises(DetectedUncorrectableError):
            session.solve(pmat, b, method="cg", eps=EPS)
        session.abort_step()
        assert session.steps_completed == 0
        # Step-granularity recovery: fresh operator, same session.
        result = session.solve(matrix, b, method="cg", eps=EPS)
        session.end_step()
        assert result.converged
        assert session.steps_completed == 1

    def test_driver_step_retry_redoes_failed_step(self, monkeypatch):
        from repro.tealeaf.deck import Deck
        from repro.tealeaf.driver import TeaLeafDriver

        deck = Deck(x_cells=12, y_cells=12, end_step=2, tl_eps=1e-12,
                    tl_recovery="raise", tl_step_retries=1)
        config = deck.protection_config("sed", "sed", None)
        driver = TeaLeafDriver(deck, config)

        # Sabotage the first solve's matrix after wrapping: corrupt it
        # through the session's wrap so the solve dies exactly once.
        real_wrap = driver.session.wrap_matrix
        state = {"failures": 1}

        def sabotaged(matrix):
            pmat = real_wrap(matrix)
            if state["failures"]:
                state["failures"] -= 1
                inject_into_matrix(pmat, Region.VALUES, [FaultSpec(5, 35)])
            return pmat

        monkeypatch.setattr(driver.session, "wrap_matrix", sabotaged)
        summary = driver.run()
        assert driver.step_retries == 1
        assert summary.steps[0].info.get("step_retries") == 1
        assert all(step.converged for step in summary.steps)

    def test_driver_without_retries_still_raises(self, monkeypatch):
        from repro.tealeaf.deck import Deck
        from repro.tealeaf.driver import TeaLeafDriver

        deck = Deck(x_cells=12, y_cells=12, end_step=1, tl_eps=1e-12)
        driver = TeaLeafDriver(deck, ProtectionConfig(
            element_scheme="sed", rowptr_scheme="sed", correct=False,
        ))
        real_wrap = driver.session.wrap_matrix

        def sabotaged(matrix):
            pmat = real_wrap(matrix)
            inject_into_matrix(pmat, Region.VALUES, [FaultSpec(5, 35)])
            return pmat

        monkeypatch.setattr(driver.session, "wrap_matrix", sabotaged)
        with pytest.raises(DetectedUncorrectableError):
            driver.run()


# ---------------------------------------------------------------------------
class TestInSweepVectorRepair:
    """ISSUE 5 satellite: a vector DUE at the mandatory ``end_step()``
    sweep repopulates from the authoritative cache instead of aborting
    the window — for *any* escalating strategy, since the sweep runs
    outside every solver recurrence and a rollback target no longer
    exists there.  ``raise`` keeps the historical abort (driver
    step-retry is the fallback)."""

    @pytest.mark.parametrize("strategy", ["repopulate", "rollback"])
    def test_end_step_due_repairs_instead_of_aborting(self, strategy):
        matrix, b = make_problem()
        session = ProtectionSession(sed_config(strategy))
        result = session.solve(matrix, b, method="cg", eps=EPS)
        assert result.converged
        vectors = session.engine.registered_vectors()
        assert vectors, "the solve should leave protected state registered"
        name, vec = next(iter(vectors.items()))
        # Commit the pending window first: a flip *inside* a dirty
        # window hits dead storage and is legitimately harmless, so the
        # sweep-repair scenario needs committed codewords to corrupt.
        vec.flush()
        reference = vec.values().copy()
        inject_into_vector(vec, [FaultSpec(2, 21)])
        session.end_step()  # in-sweep repair: the window survives
        assert session.steps_completed == 1
        assert session.recovery.stats.vector_repairs == 1
        # Content-exact: the rebuild restored exactly what was computed.
        assert np.array_equal(vec.values(), reference)
        # The session stays usable; the next step is clean.
        next_result = session.solve(matrix, b, method="cg", eps=EPS)
        session.end_step()
        assert next_result.converged
        assert session.recovery.stats.vector_repairs == 1

    def test_end_step_due_still_raises_without_escalation(self):
        matrix, b = make_problem()
        session = ProtectionSession(sed_config("raise"))
        session.solve(matrix, b, method="cg", eps=EPS)
        vectors = session.engine.registered_vectors()
        _, vec = next(iter(vectors.items()))
        vec.flush()
        inject_into_vector(vec, [FaultSpec(2, 21)])
        with pytest.raises(DetectedUncorrectableError):
            session.end_step()

    def test_mid_solve_vector_check_does_not_use_sweep_repair(self):
        """Outside the sweep, rollback vector DUEs still escalate to the
        solver (checkpoint restore), not to the cache rebuild — the
        in-sweep path must not widen the mid-solve semantics."""
        from repro.protect import ProtectedVector

        config = sed_config("rollback")
        engine = config.engine()
        vec = ProtectedVector(np.arange(16.0), "sed")
        engine.read(vec)  # registers + populates the cache
        inject_into_vector(vec, [FaultSpec(1, 12)])
        with pytest.raises(DetectedUncorrectableError):
            engine.verify_vector(vec)
        assert engine.recovery.stats.vector_repairs == 0


# ---------------------------------------------------------------------------
class TestRecoveryPrimitives:
    def test_vector_rebuild_from_cache(self):
        from repro.protect import ProtectedVector

        vec = ProtectedVector(np.arange(32.0), "sed")
        assert not vec.rebuild_from_cache()  # no cache yet
        before = vec.view().copy()
        inject_into_vector(vec, [FaultSpec(3, 17)])
        assert vec.detect().any()
        assert vec.rebuild_from_cache()
        assert not vec.detect().any()
        np.testing.assert_array_equal(vec.view(), before)

    def test_matrix_reencode_from_restores_all_regions(self):
        from repro.protect import ProtectedCSRMatrix

        matrix = make_matrix()
        pmat = ProtectedCSRMatrix(matrix, "sed", "sed")
        pristine = pmat.to_csr()
        inject_into_matrix(pmat, Region.VALUES, [FaultSpec(2, 60)])
        inject_into_matrix(pmat, Region.COLIDX, [FaultSpec(4, 3)])
        inject_into_matrix(pmat, Region.ROWPTR, [FaultSpec(1, 2)])
        assert pmat.detect_any()
        pmat.reencode_from(pristine)
        assert not pmat.detect_any()
        decoded = pmat.to_csr()
        np.testing.assert_array_equal(decoded.values, pristine.values)
        np.testing.assert_array_equal(decoded.colidx, pristine.colidx)
        np.testing.assert_array_equal(decoded.rowptr, pristine.rowptr)

    def test_manager_counts_and_budget(self):
        manager = RecoveryManager(RecoveryPolicy(strategy="rollback", max_retries=1))
        exc = DetectedUncorrectableError("matrix")
        assert manager.on_due(exc) == "rollback"
        # Recoveries count only once the repair completes, so a granted
        # attempt that later fails never inflates the survival metrics.
        assert manager.stats.rollbacks == 0
        manager.note_recovered("rollback")
        with pytest.raises(DetectedUncorrectableError):
            manager.on_due(exc)
        assert manager.stats.dues == 2
        assert manager.stats.rollbacks == 1
        assert manager.stats.total_recoveries == 1
        assert manager.stats.retries_exhausted == 1
        manager.begin_solve()
        assert manager.on_due(exc) == "rollback"
