"""TeaLeaf miniapp tests: deck parsing, physics oracles, protected runs."""

import numpy as np
import pytest

from repro.tealeaf import (
    Deck,
    State,
    TeaLeafDriver,
    TeaLeafState,
    analytic_decay_error,
    build_conductivities,
    build_operator,
    parse_deck,
    temperature_bounds_ok,
    total_energy,
)
from repro.protect import ProtectionConfig
from repro.tealeaf.reference import fourier_mode

SMALL = Deck(x_cells=24, y_cells=24, end_step=2, tl_eps=1e-18)


class TestDeck:
    def test_roundtrip_through_text(self):
        deck = Deck(x_cells=128, y_cells=96, end_step=7, initial_timestep=0.01)
        parsed = parse_deck(deck.to_text())
        assert parsed.x_cells == 128
        assert parsed.y_cells == 96
        assert parsed.end_step == 7
        assert parsed.initial_timestep == 0.01
        assert parsed.solver == "cg"
        assert len(parsed.states) == 2

    def test_parse_real_world_syntax(self):
        text = """
        *tea
        state 1 density=100.0 energy=0.0001
        state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=5.0 ymin=0.0 ymax=2.0
        x_cells=32 ! inline comment
        y_cells=16
        initial_timestep=0.5
        end_step=3
        tl_use_ppcg
        tl_eps=1e-12
        unknown_knob=whatever
        *endtea
        """
        deck = parse_deck(text)
        assert deck.x_cells == 32 and deck.y_cells == 16
        assert deck.solver == "ppcg"
        assert deck.tl_eps == 1e-12
        assert deck.states[1].geometry == "rectangle"
        assert deck.states[1].xmax == 5.0

    def test_default_states_applied(self):
        deck = Deck()
        assert deck.states[0].density == 100.0
        assert deck.states[1].energy == 25.0

    def test_cell_sizes(self):
        deck = Deck(x_cells=10, xmin=0.0, xmax=5.0)
        assert deck.dx == 0.5

    def test_engine_knobs_parsed(self):
        text = """
        *tea
        state 1 density=1.0 energy=1.0
        x_cells=8
        y_cells=8
        tl_check_interval=16
        tl_vector_interval=8
        tl_defer_writes=true
        tl_step_window=4
        *endtea
        """
        deck = parse_deck(text)
        assert deck.tl_check_interval == 16
        assert deck.tl_vector_interval == 8
        assert deck.tl_defer_writes is True
        assert deck.tl_step_window == 4

    def test_engine_knobs_roundtrip(self):
        deck = Deck(x_cells=8, y_cells=8, tl_check_interval=32,
                    tl_vector_interval=16, tl_defer_writes=False,
                    tl_step_window=2)
        parsed = parse_deck(deck.to_text())
        assert parsed.tl_check_interval == 32
        assert parsed.tl_vector_interval == 16
        assert parsed.tl_defer_writes is False
        assert parsed.tl_step_window == 2

    def test_engine_knob_defaults(self):
        deck = parse_deck(Deck(x_cells=8, y_cells=8).to_text())
        assert deck.tl_check_interval == 1
        assert deck.tl_vector_interval is None
        assert deck.tl_defer_writes is None
        assert deck.tl_step_window == 1

    def test_protection_config_from_deck(self):
        deck = Deck(x_cells=8, y_cells=8, tl_check_interval=16,
                    tl_vector_interval=8, tl_defer_writes=True)
        config = deck.protection_config(vector_scheme="secded64")
        assert config.interval == 16
        assert config.vector_interval == 8
        assert config.defer_writes is True
        # Deferred checks imply detection-only, per the paper's rule.
        assert config.correct is False
        policy = config.policy()
        assert policy.interval == 16 and policy.vector_interval == 8
        # Check-on-every-access decks keep correction on.
        assert Deck(x_cells=8, y_cells=8).protection_config().correct is True


class TestState:
    def test_rectangle_region_applied(self):
        state = TeaLeafState(SMALL)
        # Hot region occupies the lower-left: x < 5, y < 2.
        assert state.energy[0, 0] == 25.0
        assert state.energy[-1, -1] == 0.0001
        assert state.density[0, 0] == 0.1

    def test_temperature_is_density_times_energy(self):
        state = TeaLeafState(SMALL)
        assert np.allclose(state.u, state.density * state.energy)

    def test_conduction_coefficient_modes(self):
        state = TeaLeafState(SMALL)
        recip = state.conduction_coefficient()
        assert np.allclose(recip, 1.0 / state.density)
        deck2 = Deck(x_cells=8, y_cells=8, use_reciprocal_conductivity=False)
        state2 = TeaLeafState(deck2)
        assert np.allclose(state2.conduction_coefficient(), state2.density)

    def test_unsupported_geometry(self):
        deck = Deck(x_cells=4, y_cells=4)
        deck.states.append(State(1.0, 1.0, geometry="circle"))
        with pytest.raises(ValueError):
            TeaLeafState(deck)


class TestAssembly:
    def test_face_coefficients_harmonic(self):
        w = np.array([[1.0, 2.0], [4.0, 4.0]])
        kx, ky = build_conductivities(w)
        assert kx[0, 1] == pytest.approx((1 + 2) / (2 * 1 * 2))
        assert ky[1, 0] == pytest.approx((1 + 4) / (2 * 1 * 4))
        assert kx[:, 0].sum() == 0.0 and ky[0, :].sum() == 0.0

    def test_operator_is_spd(self):
        state = TeaLeafState(Deck(x_cells=6, y_cells=6))
        A = build_operator(state, 0.004)
        dense = A.to_dense()
        assert np.allclose(dense, dense.T)
        assert np.linalg.eigvalsh(dense).min() > 0

    def test_rejects_non_square_cells(self):
        deck = Deck(x_cells=10, y_cells=10, xmax=10.0, ymax=20.0)
        with pytest.raises(ValueError):
            build_operator(TeaLeafState(deck), 0.1)


class TestPhysics:
    def test_energy_conserved_across_run(self):
        driver = TeaLeafDriver(SMALL)
        e0 = total_energy(driver.state)
        driver.run()
        assert total_energy(driver.state) == pytest.approx(e0, rel=1e-10)

    def test_maximum_principle(self):
        driver = TeaLeafDriver(SMALL)
        u0 = driver.state.u.copy()
        driver.step()
        assert temperature_bounds_ok(u0, driver.state.u)

    def test_heat_flows_hot_to_cold(self):
        driver = TeaLeafDriver(SMALL)
        hot0 = driver.state.u.max()
        driver.run()
        assert driver.state.u.max() < hot0

    def test_analytic_mode_decay(self):
        """Single Fourier mode decays by exactly 1/(1 + dt*lambda)."""
        nx = ny = 32
        deck = Deck(x_cells=nx, y_cells=ny, initial_timestep=0.05,
                    xmax=1.0, ymax=1.0, tl_eps=1e-26)
        deck.states = [State(density=1.0, energy=1.0)]
        driver = TeaLeafDriver(deck)
        u0 = 1.0 + 0.25 * fourier_mode(nx, ny, 3, 2)
        driver.state.u = u0.copy()
        driver.state.energy = u0 / driver.state.density
        driver.step()
        r = deck.initial_timestep / (deck.dx * deck.dx)
        # Unit density => unit conductivity faces => standard Laplacian.
        err = analytic_decay_error(u0, driver.state.u, 3, 2, r)
        assert err < 1e-8

    def test_field_summary_keys(self):
        driver = TeaLeafDriver(SMALL)
        summary = driver.run().field_summary
        assert set(summary) == {"volume", "mass", "ie", "temp"}


class TestDriver:
    @pytest.mark.parametrize("solver", ["cg", "jacobi", "chebyshev", "ppcg"])
    def test_all_solvers_agree(self, solver):
        deck = Deck(x_cells=12, y_cells=12, end_step=1, tl_eps=1e-22)
        deck.solver = solver
        driver = TeaLeafDriver(deck)
        summary = driver.run()
        assert all(s.converged for s in summary.steps)
        if solver == "cg":
            TestDriver._reference_u = driver.state.u.copy()
        else:
            assert np.allclose(driver.state.u, TestDriver._reference_u, atol=1e-7)

    def test_step_results_recorded(self):
        driver = TeaLeafDriver(SMALL)
        summary = driver.run()
        assert len(summary.steps) == SMALL.end_step
        assert summary.total_iterations > 0
        assert all(s.wall_time >= 0 for s in summary.steps)

    def test_unknown_solver(self):
        deck = Deck(x_cells=4, y_cells=4)
        deck.solver = "multigrid"
        with pytest.raises(ValueError):
            TeaLeafDriver(deck).step()


class TestProtectedRuns:
    def test_protected_run_matches_plain(self):
        """Paper: solution norm essentially unaffected by LSB redundancy.

        The paper reports deviations within 2.0e-11 % (2e-13 relative) on
        its configuration; our measured plateau is ~3e-12 relative —
        the same "noise floor, far below solver tolerance" regime.  The
        asserted bound is 1e-10 to stay seed-robust; EXPERIMENTS.md
        records the measured value against the paper's.
        """
        plain = TeaLeafDriver(SMALL)
        plain.run()
        prot = TeaLeafDriver(
            SMALL,
            ProtectionConfig.paper_default(),
        )
        prot.run()
        norm_plain = np.linalg.norm(plain.state.u)
        norm_prot = np.linalg.norm(prot.state.u)
        assert abs(norm_prot - norm_plain) / norm_plain < 1.0e-10

    def test_protected_iteration_overhead_under_one_percent(self):
        plain = TeaLeafDriver(SMALL).run()
        prot = TeaLeafDriver(
            SMALL,
            ProtectionConfig.paper_default(),
        ).run()
        assert prot.total_iterations <= int(plain.total_iterations * 1.01) + 1

    def test_check_interval_run(self):
        prot = TeaLeafDriver(
            SMALL,
            ProtectionConfig(element_scheme="sed", rowptr_scheme="sed",
                             interval=16, correct=False),
        )
        summary = prot.run()
        assert all(s.converged for s in summary.steps)
        # Deferred mode: bounds checks dominate full checks.
        step = summary.steps[0]
        assert step.info["bounds_checks"] > step.info["full_checks"]

    @pytest.mark.parametrize("solver", ["jacobi", "chebyshev", "ppcg"])
    def test_protected_other_solvers_matrix_only(self, solver):
        """Matrix-only protection works for every solver via the engine."""
        deck = Deck(x_cells=12, y_cells=12, end_step=1, tl_eps=1e-20)
        deck.solver = solver
        plain = TeaLeafDriver(Deck(x_cells=12, y_cells=12, end_step=1,
                                   tl_eps=1e-20))
        plain.run()
        driver = TeaLeafDriver(deck, ProtectionConfig(vector_scheme=None))
        summary = driver.run()
        assert all(s.converged for s in summary.steps)
        assert summary.steps[0].info["full_checks"] > 0
        assert np.allclose(driver.state.u, plain.state.u, atol=1e-7)

    @pytest.mark.parametrize("solver", ["jacobi", "chebyshev", "ppcg"])
    def test_vector_protection_for_every_solver(self, solver):
        """The old "vector protection is only implemented for the CG
        solver" restriction is gone: every registered method threads its
        state vectors through the engine."""
        deck = Deck(x_cells=12, y_cells=12, end_step=1, tl_eps=1e-20)
        deck.solver = solver
        plain = TeaLeafDriver(Deck(x_cells=12, y_cells=12, end_step=1,
                                   tl_eps=1e-20))
        plain.run()
        driver = TeaLeafDriver(deck, ProtectionConfig.paper_default())
        summary = driver.run()
        assert all(s.converged for s in summary.steps)
        step = summary.steps[0]
        assert step.info["vector_scheme"] == "secded64"
        assert step.info["vector_checks"] > 0
        assert np.allclose(driver.state.u, plain.state.u, atol=1e-7)

    def test_cross_step_windows_span_boundary(self):
        """tl_step_window > 1: one engine, dirty windows held open across
        the time-step boundary and swept only at the window edge."""
        deck = Deck(x_cells=12, y_cells=12, end_step=2, tl_eps=1e-18)
        deck.tl_check_interval = 64
        deck.tl_step_window = 2
        driver = TeaLeafDriver(
            deck,
            ProtectionConfig(element_scheme="secded64", rowptr_scheme="secded64",
                             vector_scheme="secded64", interval=64, correct=False),
        )
        first = driver.step()
        assert first.converged
        session = driver.session
        # The mandatory sweep is deferred: buffered writes from step 1
        # are still dirty at the boundary, and the engine stays alive.
        assert session.pending_windows() > 0
        assert first.info["deferred_stores"] > 0
        flushes_at_boundary = session.stats.dirty_flushes
        engine_before = session.engine
        driver.step()
        driver.finish()
        assert driver.session.engine is engine_before
        assert session.steps_completed == 1
        assert session.pending_windows() == 0
        assert session.stats.dirty_flushes > flushes_at_boundary
